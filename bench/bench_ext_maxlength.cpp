// Extension: maxLength vulnerability (Gilad et al., CoNEXT'17 — the §2.3
// background result that motivates the no-maxLength BCP). Measures, at the
// end of the study window, how many ROAs use maxLength and how many of
// those are open to forged-origin sub-prefix hijacks.
#include "bench/common.hpp"
#include "core/maxlength.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bench::Harness h = bench::Harness::make(argc, argv);
  core::MaxLengthResult r =
      core::analyze_maxlength(*h.study, h.study->window_end);

  bench::Comparison cmp("maxLength vulnerability at window end");
  cmp.row("ROAs published", "-", std::to_string(r.roas_total));
  cmp.row("ROAs with maxLength > prefix length",
          "~12% of ROAs (observed range)",
          std::to_string(r.roas_with_maxlength) + " (" +
              util::percent(r.roas_with_maxlength, r.roas_total) + ")");
  cmp.row("vulnerable to sub-prefix forged-origin", "84% (June 2017)",
          std::to_string(r.vulnerable) + " (" +
              util::percent(r.vulnerable, r.roas_with_maxlength) + ")");
  cmp.row("attackable space behind those ROAs", "-",
          util::fixed(r.vulnerable_space.slash8_equivalents(), 2) +
              " /8-eq");
  cmp.print();

  std::cout << "\nAblation — the no-maxLength BCP "
               "(draft-ietf-sidrops-rpkimaxlen): with minimal ROAs every "
               "sub-prefix announcement is INVALID, so this entire surface "
               "disappears; the Fig 4 hijacker's four /24s were invalid for "
               "exactly that reason (the /22 ROA had no maxLength).\n";
  return 0;
}
