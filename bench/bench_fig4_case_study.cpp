// Figure 4 + §6.1: the RPKI-valid hijack case study.
//
// The analysis *detects* the pattern from the data sets (no ground truth):
// a hijack-labeled, RPKI-signed prefix whose unrouted gap ends with a
// re-origination of the ROA ASN through a new upstream — then pivots on the
// origin+upstream pair to find the sibling prefixes.
#include "bench/common.hpp"
#include "core/case_study.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bench::Harness h = bench::Harness::make(argc, argv);
  core::CaseStudyResult r = core::analyze_case_study(*h.study, h.index);

  bench::Comparison cmp("§6.1 — RPKI-signed hijacked prefixes");
  cmp.row("hijack-labeled prefixes (non-incident)", "179 (incl. incidents)",
          std::to_string(r.hijacked_prefixes));
  cmp.row("RPKI-signed before listing", "3",
          std::to_string(r.signed_before_listing));
  cmp.row("  ROA under attacker control", "2",
          std::to_string(r.attacker_controlled_roas));
  cmp.row("  RPKI-valid hijack (Fig 4)", "1",
          std::to_string(r.valid_hijacks.size()));
  cmp.print();

  for (const core::RpkiValidHijack& hij : r.valid_hijacks) {
    std::cout << "\nRPKI-valid hijack of " << hij.prefix.to_string()
              << " (ROA " << hij.roa_asn.to_string() << ")\n"
              << "  owner stopped routing:  "
              << hij.unrouted_since.to_string() << "\n"
              << "  hijacker re-originated: "
              << hij.rehijacked_on.to_string() << "\n"
              << "  sibling prefixes: " << hij.siblings.size()
              << " (paper: 6), on DROP: " << hij.siblings_on_drop
              << " (paper: 3)\n";
    std::cout << "\nFig 4 timeline (episodes):\n";
    util::TextTable table(
        {"prefix", "from", "to", "AS path", "RPKI", "DROP"});
    for (const core::TimelineRow& row : hij.timeline) {
      table.add_row(
          {row.prefix.to_string(), row.begin.to_string(),
           row.end == net::DateRange::unbounded() ? "..."
                                                  : row.end.to_string(),
           row.path, row.rpki_valid ? "VALID" : "-",
           row.on_drop ? row.drop_date.to_string() : "-"});
    }
    table.print(std::cout);
  }
  if (r.valid_hijacks.empty()) {
    std::cout << "\n(no RPKI-valid hijack found in this scenario)\n";
    return 1;
  }
  return 0;
}
