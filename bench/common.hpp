// Shared scaffolding for the per-figure bench binaries: world generation,
// the Study view, and paper-vs-measured row printing.
#pragma once

#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "core/drop_index.hpp"
#include "core/study.hpp"
#include "sim/generator.hpp"
#include "util/text_table.hpp"

namespace droplens::bench {

struct Harness {
  std::unique_ptr<sim::World> world;
  std::unique_ptr<core::Study> study;
  core::DropIndex index;

  static Harness make(int argc, char** argv) {
    bool small = false;
    uint64_t seed = 0;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--small") == 0) small = true;
      if (std::strncmp(argv[i], "--seed=", 7) == 0) {
        seed = std::stoull(argv[i] + 7);
      }
    }
    sim::ScenarioConfig config =
        small ? sim::ScenarioConfig::small() : sim::ScenarioConfig{};
    if (seed) config.seed = seed;
    Harness h;
    std::cerr << "[generating " << (small ? "small" : "paper-scale")
              << " world...]\n";
    h.world = sim::generate(config);
    h.study = std::make_unique<core::Study>(core::Study{
        h.world->registry, h.world->fleet, h.world->irr, h.world->roas,
        h.world->drop, h.world->sbl, config.window_begin, config.window_end});
    h.index = core::DropIndex::build(*h.study);
    return h;
  }
};

/// Paper-vs-measured comparison table.
class Comparison {
 public:
  explicit Comparison(std::string title)
      : title_(std::move(title)),
        table_({"quantity", "paper", "measured"}) {}

  void row(const std::string& what, const std::string& paper,
           const std::string& measured) {
    table_.add_row({what, paper, measured});
  }
  void row(const std::string& what, double paper, double measured,
           int digits = 1) {
    row(what, util::fixed(paper, digits), util::fixed(measured, digits));
  }
  void rule() { table_.add_rule(); }

  void print() const {
    std::cout << "\n=== " << title_ << " ===\n";
    table_.print(std::cout);
  }

 private:
  std::string title_;
  util::TextTable table_;
};

}  // namespace droplens::bench
