// Substrate micro-benchmarks and the DESIGN.md ablations:
//   - PrefixMap (radix trie) covering-lookup vs. a sorted-vector scan
//   - RFC 6811 route-origin validation throughput
//   - IntervalSet accounting vs. a per-/24 bitmap
//   - SBL classifier throughput
//   - full-table search: std::upper_bound vs the Eytzinger index, scalar
//     and batched, at paper scale (1K) through full-table scale (1M/4M)
//
// `--scale-gate` skips the benchmark harness and runs the data-plane
// regression gate instead: best-of-3 timed sweeps over a 1M-segment array,
// exiting 1 if the batched Eytzinger path is not >= 3x the upper_bound
// reference on one core (the ISSUE acceptance bar; CI runs it).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string_view>
#include <vector>

#include "drop/sbl.hpp"
#include "net/cidr_cover.hpp"
#include "net/eytzinger.hpp"
#include "net/interval_set.hpp"
#include "net/prefix_trie.hpp"
#include "rpki/archive.hpp"
#include "rpki/repository_builder.hpp"
#include "rpki/rtr.hpp"
#include "rpki/validator.hpp"
#include "rpki/authority.hpp"
#include "sim/rng.hpp"

using namespace droplens;

namespace {

std::vector<net::Prefix> random_prefixes(size_t n, uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<net::Prefix> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int len = 12 + static_cast<int>(rng.below(13));  // /12../24
    out.push_back(net::Prefix::containing(
        net::Ipv4(static_cast<uint32_t>(rng.next())), len));
  }
  return out;
}

void BM_TrieCoveringLookup(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<net::Prefix> prefixes = random_prefixes(n, 1);
  net::PrefixMap<int> trie;
  for (size_t i = 0; i < prefixes.size(); ++i) {
    trie.insert_or_assign(prefixes[i], static_cast<int>(i));
  }
  std::vector<net::Prefix> probes = random_prefixes(1024, 2);
  size_t i = 0;
  for (auto _ : state) {
    int sum = 0;
    trie.for_each_covering(probes[i++ % probes.size()],
                           [&](const net::Prefix&, int v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieCoveringLookup)->Arg(1000)->Arg(10000)->Arg(100000);

// Ablation: the same covering query answered by scanning a sorted vector.
void BM_SortedVectorCoveringLookup(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<net::Prefix> prefixes = random_prefixes(n, 1);
  std::sort(prefixes.begin(), prefixes.end());
  std::vector<net::Prefix> probes = random_prefixes(1024, 2);
  size_t i = 0;
  for (auto _ : state) {
    const net::Prefix& probe = probes[i++ % probes.size()];
    int hits = 0;
    // Binary search to the insertion point, then walk left while candidates
    // could still cover the probe (classic sorted-CIDR scan).
    auto it = std::upper_bound(prefixes.begin(), prefixes.end(), probe);
    while (it != prefixes.begin()) {
      --it;
      if (it->contains(probe)) ++hits;
      if (it->network().value() < (probe.network().value() & 0xff000000)) {
        break;  // cannot cover from further left than the probe's /8
      }
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SortedVectorCoveringLookup)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RovValidate(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<net::Prefix> prefixes = random_prefixes(n, 3);
  rpki::RoaArchive archive;
  sim::Rng rng(4);
  net::Date d(18000);
  for (const net::Prefix& p : prefixes) {
    archive.publish(
        rpki::Roa(p, net::Asn(static_cast<uint32_t>(1000 + rng.below(5000))),
                  rpki::Tal::kRipe),
        d - 10);
  }
  std::vector<net::Prefix> probes = random_prefixes(1024, 5);
  size_t i = 0;
  for (auto _ : state) {
    rpki::Validity v = archive.validate_route(
        probes[i % probes.size()],
        net::Asn(static_cast<uint32_t>(1000 + (i % 5000))), d);
    benchmark::DoNotOptimize(v);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RovValidate)->Arg(10000)->Arg(100000);

void BM_IntervalSetInsert(benchmark::State& state) {
  std::vector<net::Prefix> prefixes =
      random_prefixes(static_cast<size_t>(state.range(0)), 6);
  for (auto _ : state) {
    net::IntervalSet set;
    for (const net::Prefix& p : prefixes) set.insert(p);
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IntervalSetInsert)->Arg(1000)->Arg(10000);

// Ablation: address-space accounting with a per-/24 bitmap instead of
// disjoint intervals.
void BM_BitmapInsert(benchmark::State& state) {
  std::vector<net::Prefix> prefixes =
      random_prefixes(static_cast<size_t>(state.range(0)), 6);
  for (auto _ : state) {
    std::vector<uint64_t> bitmap((uint64_t{1} << 24) / 64);
    for (const net::Prefix& p : prefixes) {
      uint64_t first = p.first() >> 8, last = (p.end() - 1) >> 8;
      for (uint64_t b = first; b <= last; ++b) {
        bitmap[b >> 6] |= uint64_t{1} << (b & 63);
      }
    }
    benchmark::DoNotOptimize(bitmap.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BitmapInsert)->Arg(1000)->Arg(10000);

void BM_IntervalSetIntersection(benchmark::State& state) {
  net::IntervalSet a, b;
  for (const net::Prefix& p : random_prefixes(20000, 7)) a.insert(p);
  for (const net::Prefix& p : random_prefixes(20000, 8)) b.insert(p);
  for (auto _ : state) {
    net::IntervalSet c = net::IntervalSet::set_intersection(a, b);
    benchmark::DoNotOptimize(c.size());
  }
}
BENCHMARK(BM_IntervalSetIntersection);

void BM_CidrCover(benchmark::State& state) {
  net::IntervalSet set;
  for (const net::Prefix& p : random_prefixes(5000, 9)) set.insert(p);
  for (auto _ : state) {
    std::vector<net::Prefix> cover = net::cidr_cover(set);
    benchmark::DoNotOptimize(cover.size());
  }
}
BENCHMARK(BM_CidrCover);

void BM_SblClassifier(benchmark::State& state) {
  drop::Classifier classifier;
  const char* texts[] = {
      "AS204139 spammer hosting",
      "hijacked IP range ... billing@ahostinginc.com",
      "Snowshoe IP block on Stolen AS62927 ... j.j@networxhosting.com",
      "Register Of Known Spam Operations ... snowshoe range",
      "Unallocated (bogon) netblock announced and used for abuse",
      "Spamhaus believes that this IP address range is being used or is "
      "about to be used for the purpose of high volume spam emission.",
  };
  size_t i = 0;
  for (auto _ : state) {
    drop::Classification c = classifier.classify(texts[i++ % 6]);
    benchmark::DoNotOptimize(c.categories);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SblClassifier);

void BM_RtrFullSync(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<net::Prefix> prefixes = random_prefixes(n, 21);
  std::vector<rpki::Vrp> vrps;
  for (size_t i = 0; i < prefixes.size(); ++i) {
    vrps.push_back(rpki::Vrp{prefixes[i], prefixes[i].length(),
                             net::Asn(static_cast<uint32_t>(i + 1))});
  }
  rpki::RtrServer server(1);
  server.update(vrps);
  for (auto _ : state) {
    rpki::RtrClient client;
    client.consume(server.handle(rpki::parse_pdus(client.poll())[0]));
    benchmark::DoNotOptimize(client.table_size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RtrFullSync)->Arg(1000)->Arg(10000);

void BM_ValidatorTreeWalk(benchmark::State& state) {
  // One TA, N delegated CAs with one ROA each.
  size_t n = static_cast<size_t>(state.range(0));
  net::IntervalSet space;
  space.insert(net::Prefix::parse("10.0.0.0/8"));
  net::Date now(19000);
  net::DateRange validity{now - 365, now + 365};
  rpki::CertificateAuthority ta =
      rpki::CertificateAuthority::trust_anchor("TA", 1, space, validity);
  rpki::RpkiRepository repo;
  std::vector<rpki::CertificateAuthority> children;
  for (size_t i = 0; i < n; ++i) {
    net::Prefix block = net::Prefix::containing(
        net::Ipv4(static_cast<uint32_t>((10u << 24) + (i << 12))), 20);
    net::IntervalSet child_space;
    child_space.insert(block);
    children.push_back(ta.delegate("ca" + std::to_string(i), 100 + i,
                                   child_space, validity));
    children.back().issue_roa(
        rpki::Roa(block, net::Asn(static_cast<uint32_t>(i + 1)),
                  rpki::Tal::kRipe),
        validity);
  }
  for (auto& child : children) {
    repo.points.emplace_back(child.name(), child.publish(now));
  }
  repo.points.emplace_back("TA", ta.publish(now));
  std::vector<rpki::TrustAnchorLocator> tals = {ta.tal()};
  for (auto _ : state) {
    rpki::ValidatorOutput out = rpki::run_validator(repo, tals, now);
    benchmark::DoNotOptimize(out.vrps.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ValidatorTreeWalk)->Arg(64)->Arg(512);

// ---------------------------------------------------------------------------
// Full-table search: the flat sorted array every snapshot substrate ends in,
// probed three ways. At 1K segments everything lives in L1 and the layouts
// tie; at 1M+ the sorted array's binary search takes a cache miss per level
// while the Eytzinger descent keeps the hot levels resident and the batched
// variant hides the cold-level misses behind prefetch.

std::vector<uint64_t> segment_begins(size_t n, uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  uint64_t cursor = uint64_t{1} << 24;
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(cursor);
    cursor += 256 * (1 + rng.below(4));
  }
  return keys;
}

std::vector<uint64_t> segment_probes(const std::vector<uint64_t>& keys,
                                     size_t n, uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<uint64_t> probes;
  probes.reserve(n);
  const uint64_t span = keys.back() + 1024;
  for (size_t i = 0; i < n; ++i) probes.push_back(rng.below(span));
  return probes;
}

void BM_SegmentSearchUpperBound(benchmark::State& state) {
  const std::vector<uint64_t> keys =
      segment_begins(static_cast<size_t>(state.range(0)), 31);
  const std::vector<uint64_t> probes = segment_probes(keys, 4096, 32);
  size_t i = 0;
  for (auto _ : state) {
    auto it = std::upper_bound(keys.begin(), keys.end(),
                               probes[i++ % probes.size()]);
    benchmark::DoNotOptimize(it - keys.begin());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegmentSearchUpperBound)
    ->Arg(1000)->Arg(1'000'000)->Arg(4'000'000);

void BM_SegmentSearchEytzinger(benchmark::State& state) {
  const std::vector<uint64_t> keys =
      segment_begins(static_cast<size_t>(state.range(0)), 31);
  const std::vector<uint64_t> probes = segment_probes(keys, 4096, 32);
  net::EytzingerIndex index;
  index.build(keys.size(), [&](size_t i) { return keys[i]; });
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.upper_bound(probes[i++ % probes.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegmentSearchEytzinger)
    ->Arg(1000)->Arg(1'000'000)->Arg(4'000'000);

void BM_SegmentSearchEytzingerBatch(benchmark::State& state) {
  constexpr size_t kBatch = 512;
  const std::vector<uint64_t> keys =
      segment_begins(static_cast<size_t>(state.range(0)), 31);
  const std::vector<uint64_t> probes = segment_probes(keys, 8 * kBatch, 32);
  net::EytzingerIndex index;
  index.build(keys.size(), [&](size_t i) { return keys[i]; });
  std::vector<uint32_t> out(kBatch);
  size_t i = 0;
  for (auto _ : state) {
    const size_t at = (i++ % 8) * kBatch;
    index.upper_bound_batch(
        std::span<const uint64_t>(probes.data() + at, kBatch), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_SegmentSearchEytzingerBatch)
    ->Arg(1000)->Arg(1'000'000)->Arg(4'000'000);

// The CI regression gate (see file comment). Prints both rates so the
// EXPERIMENTS.md table can be refreshed from its output.
int run_scale_gate() {
  constexpr size_t kSegments = 1'000'000;
  constexpr size_t kProbes = 1 << 20;
  constexpr size_t kBatch = 512;
  constexpr double kRequiredSpeedup = 3.0;
  const std::vector<uint64_t> keys = segment_begins(kSegments, 31);
  const std::vector<uint64_t> probes = segment_probes(keys, kProbes, 32);
  net::EytzingerIndex index;
  index.build(keys.size(), [&](size_t i) { return keys[i]; });

  using Clock = std::chrono::steady_clock;
  auto best_of_3 = [&](auto&& sweep) {
    double best = 1e300;
    uint64_t check = 0;
    for (int round = 0; round < 3; ++round) {
      uint64_t sum = 0;
      const auto t0 = Clock::now();
      sweep(sum);
      const auto t1 = Clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
      if (round == 0) {
        check = sum;
      } else if (sum != check) {
        std::fprintf(stderr, "scale-gate: nondeterministic checksum\n");
        std::exit(1);
      }
    }
    return std::pair<double, uint64_t>(best, check);
  };

  auto [ref_s, ref_sum] = best_of_3([&](uint64_t& sum) {
    for (uint64_t p : probes) {
      sum += static_cast<uint64_t>(
          std::upper_bound(keys.begin(), keys.end(), p) - keys.begin());
    }
  });
  std::vector<uint32_t> out(kBatch);
  auto [fast_s, fast_sum] = best_of_3([&](uint64_t& sum) {
    for (size_t at = 0; at < probes.size(); at += kBatch) {
      index.upper_bound_batch(
          std::span<const uint64_t>(probes.data() + at, kBatch), out.data());
      for (uint32_t r : out) sum += r;
    }
  });
  if (ref_sum != fast_sum) {
    std::fprintf(stderr,
                 "scale-gate: batched answers diverge from upper_bound "
                 "(checksum %llu vs %llu)\n",
                 static_cast<unsigned long long>(fast_sum),
                 static_cast<unsigned long long>(ref_sum));
    return 1;
  }
  const double ref_rate = kProbes / ref_s;
  const double fast_rate = kProbes / fast_s;
  const double speedup = fast_rate / ref_rate;
  std::printf(
      "scale-gate: %zu segments, %zu probes, best of 3\n"
      "  upper_bound        %8.2f Mlookups/s\n"
      "  eytzinger batched  %8.2f Mlookups/s\n"
      "  speedup            %8.2fx (required >= %.1fx)\n",
      kSegments, kProbes, ref_rate / 1e6, fast_rate / 1e6, speedup,
      kRequiredSpeedup);
  if (speedup < kRequiredSpeedup) {
    std::fprintf(stderr, "scale-gate: FAIL — batched speedup regressed\n");
    return 1;
  }
  std::printf("scale-gate: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--scale-gate") return run_scale_gate();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
