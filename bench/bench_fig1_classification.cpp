// Figure 1: classification of DROP entries by prefixes and address space.
//
// Regenerates the stacked-bar data: per category, exclusive vs. overlapping
// prefix counts and covered address space, with the AFRINIC-incident share
// of the hijack bars called out.
#include "bench/common.hpp"
#include "core/classification.hpp"
#include "util/csv.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bench::Harness h = bench::Harness::make(argc, argv);
  core::ClassificationResult r =
      core::analyze_classification(*h.study, h.index);

  bench::Comparison cmp("Figure 1 / §3.1 — DROP classification");
  cmp.row("prefixes added to DROP", "712", std::to_string(r.total_prefixes));
  cmp.row("with SBL record",
          "526 (73.9%)",
          std::to_string(r.with_record) + " (" +
              util::percent(r.with_record, r.total_prefixes) + ")");
  cmp.row("records naming a malicious ASN", "190",
          std::to_string(r.with_asn_annotation));
  cmp.row("...of which hijack-labeled", "130",
          std::to_string(r.hijacked_with_asn));
  cmp.row("incident prefixes", "45 (6.3%)",
          std::to_string(r.incident_prefixes) + " (" +
              util::percent(r.incident_prefixes, r.total_prefixes) + ")");
  cmp.row("incident share of DROP space", "48.8%",
          util::percent(static_cast<double>(r.incident_space.size()),
                        static_cast<double>(r.total_space.size())));
  cmp.print();

  std::cout << "\nPer-category breakdown (the two bars of Fig 1):\n";
  util::TextTable table({"category", "exclusive", "overlap", "total",
                         "space /8-eq", "space share"});
  for (const core::CategoryStats& s : r.per_category) {
    table.add_row({std::string(drop::full_name(s.category)),
                   std::to_string(s.exclusive_prefixes),
                   std::to_string(s.additional_prefixes),
                   std::to_string(s.total_prefixes()),
                   util::fixed(s.space.slash8_equivalents(), 4),
                   util::percent(static_cast<double>(s.space.size()),
                                 static_cast<double>(r.total_space.size()))});
  }
  table.print(std::cout);

  std::cout << "\nPaper anchors: snowshoe ~1/3 of prefixes but 8.5% of "
               "space; hijack + unallocated dominate the space bars.\n";

  // CSV series for replotting.
  std::cout << "\ncsv:\n";
  util::CsvWriter csv(std::cout);
  csv.header({"category", "exclusive", "overlap", "space_addrs",
              "incident_prefixes", "incident_space_addrs"});
  for (const core::CategoryStats& s : r.per_category) {
    csv.values(std::string(drop::abbrev(s.category)), s.exclusive_prefixes,
               s.additional_prefixes, s.space.size(), s.incident_prefixes,
               s.incident_space.size());
  }
  return 0;
}
