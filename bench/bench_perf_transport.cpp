// Load generator for the hardened serving edge (svc::EpollServer).
//
// Two phases against one epoll daemon in-process:
//
//   ramp    open --target concurrent connections (default 100000) and hold
//           them all open — the "millions of idle clients" posture, scaled
//           to one box. The target is clamped to the process fd limit
//           (each connection costs two fds here: client end + server end);
//           a clamp is LOUDLY reported, never silently truncated, so a run
//           on a small `ulimit -n` cannot masquerade as the full result.
//   churn   while the herd idles, --active client threads hammer request/
//           response roundtrips (p50/p99 reported) and a churn thread
//           closes and reopens connections continuously — accept/teardown
//           pressure under full load, the regime where a thread-per-
//           connection transport falls over.
//
// The service is a minimal line echo, so the numbers measure the transport,
// not snapshot lookups (bench_perf_service covers those).
//
//   $ ./bench_perf_transport [--target=N] [--event-threads=N] [--active=N]
//                            [--seconds=S] [--churn]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "svc/epoll_transport.hpp"
#include "svc/transport.hpp"
#include "util/text_table.hpp"

using namespace droplens;

namespace {

struct Options {
  size_t target = 100'000;
  unsigned event_threads = 2;
  unsigned active = 2;
  double seconds = 5.0;
  bool churn = true;
};

class PingService : public svc::Service {
 public:
  size_t message_size(std::string_view buffer) const override {
    size_t pos = buffer.find('\n');
    return pos == std::string_view::npos ? 0 : pos + 1;
  }
  std::string serve(std::string_view message) override {
    return "pong:" + std::string(message.substr(0, message.size() - 1)) + "\n";
  }
  std::string malformed_response(std::string_view) override { return "bad\n"; }
  std::string timeout_response() override { return "slow\n"; }
};

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t fd_budget() {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return 0;
  // Two fds per held connection (both ends live in this process), plus
  // slack for the listener, epoll/event fds, stdio, and the active clients.
  const uint64_t slack = 256;
  if (rl.rlim_cur <= slack) return 0;
  return static_cast<size_t>((rl.rlim_cur - slack) / 2);
}

struct LatencyRecorder {
  std::vector<uint32_t> ns;
  uint64_t roundtrips = 0;
  bool diverged = false;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--target=", 9) == 0) {
      opt.target = std::stoul(argv[i] + 9);
    }
    if (std::strncmp(argv[i], "--event-threads=", 16) == 0) {
      opt.event_threads = static_cast<unsigned>(std::stoul(argv[i] + 16));
    }
    if (std::strncmp(argv[i], "--active=", 9) == 0) {
      opt.active = static_cast<unsigned>(std::stoul(argv[i] + 9));
    }
    if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      opt.seconds = std::stod(argv[i] + 10);
    }
    if (std::strcmp(argv[i], "--no-churn") == 0) opt.churn = false;
  }

  // The ulimit guard: clamp to what the fd limit can actually hold, and say
  // so in a way no one can miss. A silent clamp would let a capped run pass
  // for the real 100K result.
  const size_t budget = fd_budget();
  size_t target = opt.target;
  bool fd_capped = false;
  if (budget < target) {
    fd_capped = true;
    target = budget;
    rlimit rl{};
    ::getrlimit(RLIMIT_NOFILE, &rl);
    std::cerr << "WARNING: RLIMIT_NOFILE=" << rl.rlim_cur << " caps this run at "
              << target << " concurrent connections — BELOW the requested "
              << opt.target << ".\n"
              << "WARNING: raise the limit (ulimit -n "
              << (2 * opt.target + 512)
              << ") to prove the full target on this machine.\n";
  }

  PingService service;
  svc::TransportOptions options;
  options.listen.backlog = 1024;
  options.event_threads = opt.event_threads;
  svc::EpollServer server(service, options);

  // Phase 1: ramp the idle herd.
  std::cerr << "[ramping " << target << " connections...]\n";
  const auto ramp_start = std::chrono::steady_clock::now();
  std::vector<int> herd;
  herd.reserve(target);
  size_t connect_failures = 0;
  for (size_t i = 0; i < target; ++i) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      if (fd >= 0) ::close(fd);
      ++connect_failures;
      continue;
    }
    herd.push_back(fd);
    // Throttle to the accept rate so the listen backlog never overflows:
    // stay within half a backlog of what the server has registered.
    if (herd.size() % 512 == 0) {
      while (server.stats().open + 512 < herd.size()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
  while (server.stats().open < herd.size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double ramp_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - ramp_start)
                            .count();
  const size_t held = herd.size();

  // Phase 2: latency under churn, with the herd still holding its fds.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> churn_cycles{0};
  std::vector<LatencyRecorder> recorders(opt.active);
  std::vector<std::thread> clients;
  for (unsigned t = 0; t < opt.active; ++t) {
    clients.emplace_back([&, t] {
      LatencyRecorder& r = recorders[t];
      r.ns.reserve(1 << 18);
      try {
        svc::TcpClientConnection conn(
            "127.0.0.1", server.port(), [](std::string_view b) {
              size_t pos = b.find('\n');
              return pos == std::string_view::npos ? size_t{0} : pos + 1;
            });
        const std::string request = "ping " + std::to_string(t) + "\n";
        const std::string expected = "pong:ping " + std::to_string(t) + "\n";
        while (!stop.load(std::memory_order_relaxed)) {
          const uint64_t begin = now_ns();
          if (conn.roundtrip(request) != expected) r.diverged = true;
          const uint64_t ns = now_ns() - begin;
          r.ns.push_back(static_cast<uint32_t>(
              std::min<uint64_t>(ns, std::numeric_limits<uint32_t>::max())));
          ++r.roundtrips;
        }
      } catch (const std::exception& e) {
        std::cerr << "active client " << t << " died: " << e.what() << "\n";
        r.diverged = true;
      }
    });
  }
  std::thread churner;
  if (opt.churn && held > 0) {
    churner = std::thread([&] {
      // Continuously retire the oldest herd member and enlist a fresh one:
      // accept + teardown pressure while the herd stays at full strength.
      size_t next = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(server.port());
        if (fd >= 0 && ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                                 sizeof(addr)) == 0) {
          ::close(herd[next]);
          herd[next] = fd;
          next = (next + 1) % herd.size();
          churn_cycles.fetch_add(1, std::memory_order_relaxed);
        } else if (fd >= 0) {
          ::close(fd);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(opt.seconds));
  stop.store(true);
  for (std::thread& c : clients) c.join();
  if (churner.joinable()) churner.join();

  uint64_t roundtrips = 0;
  bool diverged = false;
  std::vector<uint32_t> latencies;
  for (LatencyRecorder& r : recorders) {
    roundtrips += r.roundtrips;
    diverged |= r.diverged;
    latencies.insert(latencies.end(), r.ns.begin(), r.ns.end());
  }
  std::sort(latencies.begin(), latencies.end());
  auto pct = [&](double q) -> double {
    if (latencies.empty()) return 0;
    size_t idx = static_cast<size_t>(q * static_cast<double>(latencies.size()));
    return static_cast<double>(
               latencies[std::min(idx, latencies.size() - 1)]) /
           1000.0;  // µs
  };

  const svc::TransportStats stats = server.stats();
  for (int fd : herd) ::close(fd);
  server.stop();

  util::TextTable table({"quantity", "value"});
  table.add_row({"target connections", std::to_string(opt.target)});
  table.add_row({"fd-limit clamp", fd_capped ? "YES (see warning)" : "no"});
  table.add_row({"connections held", std::to_string(held)});
  table.add_row({"connect failures", std::to_string(connect_failures)});
  table.add_row({"ramp seconds", util::fixed(ramp_s, 2)});
  table.add_row({"ramp conns/sec",
                 util::fixed(ramp_s > 0 ? static_cast<double>(held) / ramp_s
                                        : 0,
                             0)});
  table.add_row({"event threads", std::to_string(opt.event_threads)});
  table.add_row({"churn cycles", std::to_string(churn_cycles.load())});
  table.add_row({"active roundtrips", std::to_string(roundtrips)});
  table.add_row({"p50 latency us", util::fixed(pct(0.50), 2)});
  table.add_row({"p99 latency us", util::fixed(pct(0.99), 2)});
  table.add_row({"server accepted", std::to_string(stats.accepted)});
  table.add_row({"accept errors survived", std::to_string(stats.accept_errors)});
  std::cout << "transport: epoll edge under idle herd + churn\n";
  table.print(std::cout);
  if (diverged) {
    std::cerr << "FATAL: a roundtrip response diverged\n";
    return 1;
  }
  // Machine-readable line for EXPERIMENTS.md.
  std::cout << "{\"bench\":\"perf_transport\",\"target\":" << opt.target
            << ",\"held\":" << held << ",\"fd_capped\":" << (fd_capped ? 1 : 0)
            << ",\"ramp_s\":" << ramp_s
            << ",\"churn_cycles\":" << churn_cycles.load()
            << ",\"roundtrips\":" << roundtrips << ",\"p50_us\":" << pct(0.50)
            << ",\"p99_us\":" << pct(0.99) << "}\n";

  // Overhead gate: with the flight recorder armed at the production 1/1024
  // sampling, the epoll edge's roundtrip cost must stay within 3% of the
  // untraced transport. Each measurement builds a fresh server (the
  // TraceBinding resolves the installed recorder at construction) and times
  // a fixed count of synchronous roundtrips; best-of-3 interleaved trials
  // keep scheduler noise out of a 3% comparison.
  {
    constexpr double kBudgetPct = 3.0;
    constexpr uint64_t kWarmup = 500;
    constexpr uint64_t kIters = 20'000;
    bool gate_diverged = false;
    auto roundtrip_ns = [&gate_diverged](bool armed) -> double {
      obs::FlightRecorder::Options armed_options;
      armed_options.sample_period = 1024;
      obs::FlightRecorder recorder(armed_options);
      std::optional<obs::ScopedFlightRecorder> scoped;
      if (armed) scoped.emplace(recorder);
      PingService gate_service;
      svc::TransportOptions gate_options;
      gate_options.name = "gate";
      gate_options.event_threads = 2;
      svc::EpollServer gate_server(gate_service, gate_options);
      svc::TcpClientConnection conn(
          "127.0.0.1", gate_server.port(), [](std::string_view b) {
            size_t pos = b.find('\n');
            return pos == std::string_view::npos ? size_t{0} : pos + 1;
          });
      const std::string request = "ping gate\n";
      const std::string expected = "pong:ping gate\n";
      for (uint64_t n = 0; n < kWarmup; ++n) {
        if (conn.roundtrip(request) != expected) gate_diverged = true;
      }
      const uint64_t begin = now_ns();
      for (uint64_t n = 0; n < kIters; ++n) {
        if (conn.roundtrip(request) != expected) gate_diverged = true;
      }
      const double ns = static_cast<double>(now_ns() - begin) /
                        static_cast<double>(kIters);
      gate_server.stop();
      return ns;
    };
    double base_ns = std::numeric_limits<double>::max();
    double armed_ns = std::numeric_limits<double>::max();
    for (int trial = 0; trial < 3; ++trial) {
      base_ns = std::min(base_ns, roundtrip_ns(false));
      armed_ns = std::min(armed_ns, roundtrip_ns(true));
    }
    const double overhead_pct = (armed_ns - base_ns) / base_ns * 100.0;
    std::cout << "overhead gate: recorder armed at 1/1024, epoll roundtrips\n"
              << "  untraced  " << base_ns / 1000.0 << " us/roundtrip\n"
              << "  traced    " << armed_ns / 1000.0 << " us/roundtrip\n"
              << "  overhead  " << overhead_pct << "%  (budget "
              << kBudgetPct << "%)\n";
    if (gate_diverged) {
      std::cerr << "FATAL: a gate roundtrip diverged\n";
      return 1;
    }
    if (overhead_pct > kBudgetPct) {
      std::cerr << "FATAL: recorder overhead " << overhead_pct
                << "% exceeds the " << kBudgetPct << "% budget\n";
      return 1;
    }
  }
  return 0;
}
