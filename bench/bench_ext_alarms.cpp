// Extension: PHAS-style hijack alarms over the study window. Shows how much
// of the DROP hijack activity a monitoring system would have caught — and
// how much was stealthy because the space was unmonitored (previously
// unannounced) or the attacker re-used the historic origin ASN, the evasion
// §6.1's case study demonstrates.
#include <map>

#include "bench/common.hpp"
#include "core/alarms.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bench::Harness h = bench::Harness::make(argc, argv);
  core::AlarmResult r = core::analyze_alarms(*h.study, h.index);

  std::map<core::AlarmKind, int> by_kind;
  std::map<core::AlarmKind, int> by_kind_on_drop;
  for (const core::Alarm& a : r.alarms) {
    ++by_kind[a.kind];
    if (a.on_drop) ++by_kind_on_drop[a.kind];
  }

  std::cout << "\n=== Hijack-alarm replay (PHAS-style monitor) ===\n";
  util::TextTable table({"alarm kind", "alarms", "on DROP prefixes"});
  for (core::AlarmKind k :
       {core::AlarmKind::kNewOrigin, core::AlarmKind::kMoas,
        core::AlarmKind::kNewSubPrefix}) {
    table.add_row({std::string(core::to_string(k)),
                   std::to_string(by_kind[k]),
                   std::to_string(by_kind_on_drop[k])});
  }
  table.print(std::cout);

  std::cout << "\nDROP hijack announcements:      " << r.drop_hijacks_total
            << "\n  raised an alarm:              " << r.drop_hijacks_alarmed
            << " (" << util::percent(r.alarm_coverage(), 1.0) << ")"
            << "\n  stealthy (unmonitored space / historic origin): "
            << r.drop_hijacks_stealthy << "\n";
  std::cout << "\nReading: detection systems watch *announced* prefixes, so "
               "attackers who target abandoned, never-announced space — the "
               "dominant pattern on DROP — trip nothing. The 132.255.0.0/22 "
               "re-origination with the ROA's own ASN is likewise silent.\n";
  return 0;
}
