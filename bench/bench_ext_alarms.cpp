// Extension: PHAS-style hijack alarms over the study window. Shows how much
// of the DROP hijack activity a monitoring system would have caught — and
// how much was stealthy because the space was unmonitored (previously
// unannounced) or the attacker re-used the historic origin ASN, the evasion
// §6.1's case study demonstrates.
//
// --crosscheck additionally replays the same history through the *online*
// monitor (sim::EventReplayer -> stream::AlarmMonitor) and asserts the two
// paths produce the exact same AlarmResult — same alarms in the same order,
// same coverage counters. Exit 1 on any divergence.
#include <cstring>
#include <map>

#include "bench/common.hpp"
#include "core/alarms.hpp"
#include "sim/event_replayer.hpp"
#include "stream/alarm_monitor.hpp"

using namespace droplens;

namespace {

int crosscheck(const bench::Harness& h, const core::AlarmResult& batch) {
  std::cerr << "[crosscheck: replaying event stream through the online "
               "monitor...]\n";
  sim::EventReplayer replayer(*h.world);
  stream::AlarmMonitor::Config config;
  config.window_begin = h.study->window_begin;
  config.window_end = h.study->window_end;
  config.drop = &h.world->drop;
  stream::AlarmMonitor monitor(config);
  for (const stream::Event& e : replayer.events()) monitor.on_event(e);
  core::AlarmResult online = monitor.result(*h.study, h.index);

  bool ok = online.alarms.size() == batch.alarms.size();
  for (size_t i = 0; ok && i < online.alarms.size(); ++i) {
    const core::Alarm& a = online.alarms[i];
    const core::Alarm& b = batch.alarms[i];
    ok = a.kind == b.kind && a.prefix == b.prefix &&
         a.monitored == b.monitored && a.when == b.when &&
         a.new_origin == b.new_origin && a.on_drop == b.on_drop;
  }
  ok = ok && online.drop_hijacks_total == batch.drop_hijacks_total &&
       online.drop_hijacks_alarmed == batch.drop_hijacks_alarmed &&
       online.drop_hijacks_stealthy == batch.drop_hijacks_stealthy;

  if (!ok) {
    std::cout << "\ncrosscheck: FAIL — online monitor diverges from the "
                 "batch replay ("
              << online.alarms.size() << " vs " << batch.alarms.size()
              << " alarms; coverage " << online.drop_hijacks_alarmed << "/"
              << online.drop_hijacks_total << " vs "
              << batch.drop_hijacks_alarmed << "/" << batch.drop_hijacks_total
              << ")\n";
    return 1;
  }
  std::cout << "\ncrosscheck: OK — online monitor reproduced all "
            << batch.alarms.size() << " alarms and coverage counters ("
            << replayer.size() << " events replayed)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool do_crosscheck = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--crosscheck") == 0) do_crosscheck = true;
  }
  bench::Harness h = bench::Harness::make(argc, argv);
  core::AlarmResult r = core::analyze_alarms(*h.study, h.index);

  std::map<core::AlarmKind, int> by_kind;
  std::map<core::AlarmKind, int> by_kind_on_drop;
  for (const core::Alarm& a : r.alarms) {
    ++by_kind[a.kind];
    if (a.on_drop) ++by_kind_on_drop[a.kind];
  }

  std::cout << "\n=== Hijack-alarm replay (PHAS-style monitor) ===\n";
  util::TextTable table({"alarm kind", "alarms", "on DROP prefixes"});
  for (core::AlarmKind k :
       {core::AlarmKind::kNewOrigin, core::AlarmKind::kMoas,
        core::AlarmKind::kNewSubPrefix}) {
    table.add_row({std::string(core::to_string(k)),
                   std::to_string(by_kind[k]),
                   std::to_string(by_kind_on_drop[k])});
  }
  table.print(std::cout);

  std::cout << "\nDROP hijack announcements:      " << r.drop_hijacks_total
            << "\n  raised an alarm:              " << r.drop_hijacks_alarmed
            << " (" << util::percent(r.alarm_coverage(), 1.0) << ")"
            << "\n  stealthy (unmonitored space / historic origin): "
            << r.drop_hijacks_stealthy << "\n";
  std::cout << "\nReading: detection systems watch *announced* prefixes, so "
               "attackers who target abandoned, never-announced space — the "
               "dominant pattern on DROP — trip nothing. The 132.255.0.0/22 "
               "re-origination with the ROA's own ASN is likewise silent.\n";
  if (do_crosscheck) return crosscheck(h, r);
  return 0;
}
