// Extension: hijack capture vs. ROV adoption.
//
// Propagates every contested DROP hijack (victim vs. attacker origination)
// through the AS graph derived from the observed AS paths, sweeping the
// fraction of networks that enforce route origin validation (largest
// networks first). Two worlds per hijack: the prefix as it was (mostly
// unsigned — ROV sees not-found and adoption is useless) and a counter-
// factual where the victim had a ROA (the hijack validates invalid).
// Quantifies the paper's argument that signing, not validator deployment,
// is the binding constraint.
#include "bench/common.hpp"
#include "core/impact.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bench::Harness h = bench::Harness::make(argc, argv);
  // Log-spaced: deployment is top-heavy (largest networks first), so the
  // interesting region is the first fraction of a percent.
  std::vector<double> levels = {0.0, 0.0001, 0.001, 0.01, 0.1, 1.0};
  core::ImpactResult r = core::analyze_rov_adoption(*h.study, h.index, levels);

  std::cout << "\n=== Hijack capture vs. ROV adoption ===\n"
            << "AS graph: " << r.graph_ases
            << " ASes (derived from observed paths); contested hijacks: "
            << r.hijacks_evaluated << "\n\n";
  util::TextTable table({"ROV adoption (largest first)",
                         "capture (unsigned prefix)",
                         "capture (signed prefix)"});
  for (const core::AdoptionPoint& p : r.points) {
    table.add_row({util::fixed(100.0 * p.adoption, 2) + "%",
                   util::percent(p.capture_unsigned, 1.0),
                   util::percent(p.capture_signed, 1.0)});
  }
  table.print(std::cout);

  std::cout << "\nReading: for the unsigned prefixes that dominate DROP, "
               "deploying validators changes nothing — the hijacked routes "
               "are not-found, not invalid. Had the victims signed, capture "
               "collapses as the big networks turn on ROV. Signing is the "
               "binding constraint; §4.2's finding that DROP remediation "
               "drives signing is therefore the hopeful note.\n";
  return 0;
}
