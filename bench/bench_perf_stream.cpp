// Streaming ingest under load: events/s through the live pipeline, online
// alarm latency, and compaction cost.
//
// Three phases over one generated world:
//
//   replay   the full canonical event stream (sim::EventReplayer) through a
//            stream::Publisher — applier + online alarms + delta log — then
//            cross-check that the online alarm sequence is identical to the
//            batch replay (core::analyze_alarms). A mismatch fails the run:
//            a throughput number for a pipeline that drifts from the batch
//            semantics would be meaningless.
//
//   churn    a sustained announce/withdraw cycle over the prefixes left
//            active at stream end, single-origin prefixes only, dated inside
//            the window — every alarm rule runs on every event but none can
//            fire, so state and memory stay bounded while the rate is
//            measured. This is the headline events/s-per-core number.
//
//   serve    compact() the live state into a snapshot (the zero-downtime
//            publish artifact) and time it.
//
// Alarm latency is read back from the publisher's own obs histogram
// (droplens_stream_ingest_alarm_latency_ns), p50/p99 via
// Histogram::quantile — resolution is the log2 bucket width.
//
//   $ ./bench_perf_stream [--small] [--seed=N] [--churn=N]
#include <chrono>
#include <cstring>
#include <iostream>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "core/alarms.hpp"
#include "obs/metrics.hpp"
#include "sim/event_replayer.hpp"
#include "stream/publisher.hpp"
#include "util/text_table.hpp"

using namespace droplens;

namespace {

bool same_alarms(const std::vector<core::Alarm>& a,
                 const std::vector<core::Alarm>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].prefix != b[i].prefix ||
        a[i].monitored != b[i].monitored || a[i].when != b[i].when ||
        a[i].new_origin != b[i].new_origin || a[i].on_drop != b[i].on_drop) {
      return false;
    }
  }
  return true;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string rate(double events, double secs) {
  return util::fixed(events / secs / 1e6, 2) + " M events/s";
}

}  // namespace

int main(int argc, char** argv) {
  size_t churn = 2'000'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--churn=", 8) == 0) {
      churn = std::stoull(argv[i] + 8);
    }
  }

  obs::Registry registry;
  obs::ScopedRegistry scoped(registry);

  bench::Harness h = bench::Harness::make(argc, argv);
  const sim::ScenarioConfig& config = h.world->config;

  std::cerr << "[lowering world to event stream...]\n";
  sim::EventReplayer replayer(*h.world);

  stream::AlarmMonitor::Config monitor_config;
  monitor_config.window_begin = config.window_begin;
  monitor_config.window_end = config.window_end;
  monitor_config.drop = &h.world->drop;
  stream::Publisher publisher(monitor_config);
  publisher.seed_rir(h.world->registry);

  // Phase 1: full-history replay.
  auto t0 = std::chrono::steady_clock::now();
  for (const stream::Event& e : replayer.events()) publisher.ingest(e);
  const double replay_secs = seconds_since(t0);

  // Online == batch, alarm for alarm, before any number is reported.
  core::AlarmResult batch = core::analyze_alarms(*h.study, h.index);
  if (!same_alarms(publisher.monitor().alarms(), batch.alarms)) {
    std::cerr << "bench_perf_stream: FAIL — online alarm stream diverges "
                 "from the batch replay ("
              << publisher.monitor().alarms().size() << " vs "
              << batch.alarms.size() << " alarms)\n";
    return 1;
  }

  // Phase 2: sustained churn over single-origin active prefixes (see top
  // comment for why no alarms can fire). The pattern is announce/withdraw
  // pairs, so live state is identical before and after.
  std::vector<stream::Event> pattern;
  for (const net::Prefix& p : h.world->fleet.announced_prefixes()) {
    uint32_t origin = 0;
    bool single = true;
    for (const bgp::Episode& e : h.world->fleet.episodes(p)) {
      if (e.range.end != net::DateRange::unbounded()) continue;
      const uint32_t o = e.origin().value();
      if (origin != 0 && o != origin) {
        single = false;
        break;
      }
      origin = o;
    }
    if (!single || origin == 0) continue;
    stream::Event e;
    e.date = config.window_end + -1;
    e.prefix = p;
    e.value = origin;
    e.type = stream::EventType::kBgpAnnounce;
    pattern.push_back(e);
    e.type = stream::EventType::kBgpWithdraw;
    pattern.push_back(e);
  }
  if (pattern.empty()) {
    std::cerr << "bench_perf_stream: no active single-origin prefixes to "
                 "churn\n";
    return 1;
  }
  const size_t alarms_before_churn = publisher.monitor().alarms().size();
  t0 = std::chrono::steady_clock::now();
  for (size_t k = 0; k < churn; ++k) {
    publisher.ingest(pattern[k % pattern.size()]);
    if ((k & 0x3ffff) == 0x3ffff) publisher.trim(size_t{1} << 16);
  }
  const double churn_secs = seconds_since(t0);
  if (publisher.monitor().alarms().size() != alarms_before_churn) {
    std::cerr << "bench_perf_stream: FAIL — churn workload raised alarms; "
                 "the measured rate would be polluted by alarm growth\n";
    return 1;
  }

  // Phase 3: compact the live state into the publish artifact.
  t0 = std::chrono::steady_clock::now();
  std::shared_ptr<const svc::Snapshot> head =
      publisher.compact(config.window_end, 1);
  const double compact_secs = seconds_since(t0);

  obs::Histogram latency =
      obs::histogram("droplens_stream_ingest_alarm_latency_ns",
                     obs::Registry::log2_bounds(39));

  std::cout << "\n=== Streaming ingest performance ===\n";
  util::TextTable table({"phase", "events", "wall", "rate"});
  table.add_row({"replay (full history + alarms)",
                 std::to_string(replayer.size()),
                 util::fixed(replay_secs * 1e3, 1) + " ms",
                 rate(static_cast<double>(replayer.size()), replay_secs)});
  table.add_row({"churn (sustained, 1 core)", std::to_string(churn),
                 util::fixed(churn_secs * 1e3, 1) + " ms",
                 rate(static_cast<double>(churn), churn_secs)});
  table.print(std::cout);

  std::cout << "\nonline alarms:            " << batch.alarms.size()
            << " (identical to batch replay)\n"
            << "ingest-to-alarm latency:  p50 <= " << latency.quantile(0.5)
            << " ns, p99 <= " << latency.quantile(0.99)
            << " ns (log2 buckets)\n"
            << "compact() to snapshot:    "
            << util::fixed(compact_secs * 1e3, 2) << " ms ("
            << head->routed().interval_count() << " routed intervals)\n";

  const double churn_rate = static_cast<double>(churn) / churn_secs;
  std::cout << "\nsustained apply rate "
            << (churn_rate >= 1e6 ? "meets" : "MISSES")
            << " the 1M events/s/core target\n";
  return churn_rate >= 1e6 ? 0 : 1;
}
