// Load generator for the query service.
//
// Compiles a snapshot of the generated world, then saturates a svc::Server
// over the in-process loopback transport with single-prefix lookups from N
// client threads, reporting throughput (lookups/sec) and the p50/p99
// response latency. Every response is checked byte-for-byte against the
// expected answer recorded before the run — with --reload the check runs
// while a background thread republishes equal-content snapshots, proving
// responses stay byte-identical across thread counts and through reloads.
//
//   $ ./bench_perf_service [--small] [--seed=N] [--threads=N] [--seconds=S]
//                          [--batch=N] [--reload]
//
// `--scale` skips the load generator and runs the full-table regression
// gate instead: a generate_scale() world (1M routed prefixes, or
// DROPLENS_SCALE_PREFIXES), served through svc::Server in kMaxBatch frames,
// best-of-3 fixed-work timing. The batched serving path must (a) answer
// byte-for-byte what the upper_bound reference path answers and (b) hold a
// >= 2x throughput edge over per-query reference lookups — the in-binary
// check that the data plane's full-table speedup never silently regresses.
// Exits 1 on either failure; CI runs it.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/drop_index.hpp"
#include "core/study.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/rng.hpp"
#include "sim/scale.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/snapshot.hpp"
#include "svc/transport.hpp"
#include "util/thread_pool.hpp"

using namespace droplens;

namespace {

struct Options {
  unsigned threads = util::ThreadPool::default_thread_count();
  double seconds = 2.0;
  size_t batch = 1;
  bool reload = false;
};

struct Workload {
  std::vector<std::string> requests;
  std::vector<std::string> expected;
  size_t queries_per_request = 1;
};

Workload build_workload(svc::Server& server, const bench::Harness& h,
                        net::Date d, size_t batch) {
  // Probe the spaces the paper cares about: every DROP entry plus a spread
  // of fixed prefixes, chunked into `batch`-sized request frames.
  std::vector<svc::Query> queries;
  for (const core::DropEntry& e : h.index.entries()) {
    queries.push_back(svc::Query{d, e.prefix, svc::kAllFields});
  }
  for (uint32_t octet = 1; octet < 224; ++octet) {
    queries.push_back(svc::Query{
        d, net::Prefix(net::Ipv4(octet << 24 | 0x00010000), 16),
        svc::kAllFields});
  }
  Workload w;
  w.queries_per_request = batch;
  for (size_t begin = 0; begin < queries.size(); begin += batch) {
    size_t end = std::min(queries.size(), begin + batch);
    std::vector<svc::Query> frame(queries.begin() + begin,
                                  queries.begin() + end);
    frame.resize(batch, frame.back());  // uniform frames: constant batch size
    w.requests.push_back(svc::encode_query_request(frame));
    w.expected.push_back(server.serve(w.requests.back()));
  }
  return w;
}

struct ThreadResult {
  uint64_t requests = 0;
  std::vector<uint32_t> latency_ns;
  bool diverged = false;
};

int run_scale_gate() {
  sim::ScaleConfig config;
  if (const char* env = std::getenv("DROPLENS_SCALE_PREFIXES")) {
    config.routed_prefixes =
        static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  std::cerr << "[scale gate: generating " << config.routed_prefixes
            << "-prefix world...]\n";
  auto world = sim::generate_scale(config);
  core::Study study{world->registry,
                    world->fleet,
                    world->irr,
                    world->roas,
                    world->drop,
                    world->sbl,
                    world->config.window_begin,
                    world->config.window_end};
  const core::DropIndex index = core::DropIndex::build(study);
  auto compile_start = std::chrono::steady_clock::now();
  auto snap = svc::compile_snapshot(study, index, config.day, 1);
  double compile_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - compile_start)
                          .count();

  // Probe corpus: routed-interval boundaries interleaved with seeded
  // randoms, packed into maximal frames.
  sim::Rng rng(7);
  const auto ivs = snap->routed().intervals();
  std::vector<svc::Query> queries;
  constexpr size_t kProbes = 1 << 17;
  queries.reserve(kProbes);
  while (queries.size() < kProbes) {
    uint64_t addr;
    if (queries.size() % 2 == 0) {
      const auto& iv = ivs[rng.below(ivs.size())];
      addr = rng.chance(0.5) ? iv.begin : iv.end - 1;
    } else {
      addr = rng.below(uint64_t{1} << 32);
    }
    queries.push_back(svc::Query{
        config.day,
        net::Prefix::containing(net::Ipv4(static_cast<uint32_t>(addr)),
                                8 + static_cast<int>(rng.below(25))),
        svc::kAllFields});
  }
  svc::Server server(snap);
  std::vector<std::string> requests;
  std::vector<std::string> expected;
  for (size_t begin = 0; begin < queries.size(); begin += svc::kMaxBatch) {
    std::vector<svc::Query> frame(
        queries.begin() + static_cast<std::ptrdiff_t>(begin),
        queries.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(queries.size(), begin + svc::kMaxBatch)));
    requests.push_back(svc::encode_query_request(frame));
    expected.push_back(server.serve(requests.back()));
  }

  // Correctness first: every served answer equals the reference path's.
  for (size_t f = 0, q = 0; f < requests.size(); ++f) {
    const svc::QueryResponse decoded =
        svc::decode_query_response(svc::frame_payload(expected[f]));
    for (const svc::Answer& a : decoded.answers) {
      if (a != snap->lookup_reference(queries[q].prefix, svc::kAllFields)) {
        std::cerr << "FATAL: served answer diverges from the reference at "
                  << queries[q].prefix.to_string() << "\n";
        return 1;
      }
      ++q;
    }
  }

  // Best-of-3 fixed-work timing: frames through the batched server vs the
  // same queries through per-query reference lookups.
  auto best_of_3 = [](auto&& work) {
    double best = std::numeric_limits<double>::max();
    for (int trial = 0; trial < 3; ++trial) {
      const auto start = std::chrono::steady_clock::now();
      work();
      best = std::min(
          best,
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count());
    }
    return best;
  };
  bool diverged = false;
  const double served_s = best_of_3([&] {
    for (size_t f = 0; f < requests.size(); ++f) {
      if (server.serve(requests[f]) != expected[f]) diverged = true;
    }
  });
  uint64_t sink = 0;
  const double reference_s = best_of_3([&] {
    for (const svc::Query& q : queries) {
      sink += snap->lookup_reference(q.prefix, svc::kAllFields).fields;
    }
  });
  if (diverged) {
    std::cerr << "FATAL: responses wobbled between timing trials\n";
    return 1;
  }
  const double n = static_cast<double>(queries.size());
  const double served_rate = n / served_s;
  const double reference_rate = n / reference_s;
  const double speedup = served_rate / reference_rate;
  constexpr double kRequiredSpeedup = 2.0;
  std::cout << "scale gate: " << snap->routed().interval_count()
            << " routed intervals, " << queries.size() << " queries, "
            << "compile " << util::fixed(compile_ms, 0) << " ms\n"
            << "  reference lookups  "
            << util::fixed(reference_rate / 1e6, 2) << " Mlookups/s\n"
            << "  served (batched)   " << util::fixed(served_rate / 1e6, 2)
            << " Mlookups/s (incl. frame codec)\n"
            << "  speedup            " << util::fixed(speedup, 2)
            << "x (required >= " << util::fixed(kRequiredSpeedup, 1) << "x)\n";
  std::cout << "{\"bench\":\"perf_service_scale\",\"prefixes\":"
            << config.routed_prefixes
            << ",\"served_per_sec\":" << static_cast<uint64_t>(served_rate)
            << ",\"reference_per_sec\":"
            << static_cast<uint64_t>(reference_rate)
            << ",\"speedup\":" << util::fixed(speedup, 2)
            << ",\"checksum\":" << sink << "}\n";
  if (speedup < kRequiredSpeedup) {
    std::cerr << "FATAL: batched serving speedup " << util::fixed(speedup, 2)
              << "x regressed below " << kRequiredSpeedup << "x\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0) return run_scale_gate();
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      opt.threads = static_cast<unsigned>(std::stoul(argv[i] + 10));
    }
    if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      opt.seconds = std::stod(argv[i] + 10);
    }
    if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      opt.batch = std::stoul(argv[i] + 8);
    }
    if (std::strcmp(argv[i], "--reload") == 0) opt.reload = true;
  }
  if (opt.threads == 0) opt.threads = 1;
  if (opt.batch == 0) opt.batch = 1;
  bench::Harness h = bench::Harness::make(argc, argv);

  net::Date d = h.study->window_begin + 60;
  std::cerr << "[compiling snapshot...]\n";
  auto compile_start = std::chrono::steady_clock::now();
  auto snap = svc::compile_snapshot(*h.study, h.index, d, 1);
  double compile_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - compile_start)
                          .count();
  // Reload mode republishes equal-content snapshots (fresh compilations, same
  // version) mid-run; responses must not wobble by a byte.
  auto snap_twin = opt.reload ? svc::compile_snapshot(*h.study, h.index, d, 1)
                              : snap;

  svc::Server server(snap);
  Workload w = build_workload(server, h, d, opt.batch);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reloads{0};
  std::vector<ThreadResult> results(opt.threads);
  std::vector<std::thread> clients;
  clients.reserve(opt.threads);
  auto run_start = std::chrono::steady_clock::now();
  for (unsigned t = 0; t < opt.threads; ++t) {
    clients.emplace_back([&, t] {
      ThreadResult& r = results[t];
      r.latency_ns.reserve(1 << 20);
      size_t i = t % w.requests.size();  // spread threads across the corpus
      while (!stop.load(std::memory_order_relaxed)) {
        auto begin = std::chrono::steady_clock::now();
        std::string response = server.serve(w.requests[i]);
        auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - begin)
                      .count();
        if (response != w.expected[i]) r.diverged = true;
        r.latency_ns.push_back(static_cast<uint32_t>(
            std::min<int64_t>(ns, std::numeric_limits<uint32_t>::max())));
        ++r.requests;
        i = (i + 1) % w.requests.size();
      }
    });
  }
  std::thread reloader;
  if (opt.reload) {
    reloader = std::thread([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        server.publish(reloads.fetch_add(1) % 2 ? snap : snap_twin);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(opt.seconds));
  stop.store(true);
  for (std::thread& c : clients) c.join();
  if (reloader.joinable()) reloader.join();
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - run_start)
                       .count();

  uint64_t total_requests = 0;
  bool diverged = false;
  std::vector<uint32_t> latencies;
  for (ThreadResult& r : results) {
    total_requests += r.requests;
    diverged |= r.diverged;
    latencies.insert(latencies.end(), r.latency_ns.begin(), r.latency_ns.end());
  }
  if (diverged) {
    std::cerr << "FATAL: a response diverged from the recorded expectation\n";
    return 1;
  }
  std::sort(latencies.begin(), latencies.end());
  auto pct = [&](double q) -> double {
    if (latencies.empty()) return 0;
    size_t idx = static_cast<size_t>(q * static_cast<double>(latencies.size()));
    return static_cast<double>(
               latencies[std::min(idx, latencies.size() - 1)]) /
           1000.0;  // µs
  };
  double lookups_per_sec = static_cast<double>(total_requests) *
                           static_cast<double>(w.queries_per_request) /
                           elapsed;

  bench::Comparison cmp("service: loopback load generator");
  cmp.row("client threads", "-", std::to_string(opt.threads));
  cmp.row("batch (queries/frame)", "-", std::to_string(w.queries_per_request));
  cmp.row("snapshot compile ms", "-", util::fixed(compile_ms, 1));
  cmp.row("frames served", "-", std::to_string(total_requests));
  cmp.row("reloads during run", "-", std::to_string(reloads.load()));
  cmp.rule();
  cmp.row("lookups/sec", "-", util::fixed(lookups_per_sec, 0));
  cmp.row("p50 latency us", "-", util::fixed(pct(0.50), 2));
  cmp.row("p99 latency us", "-", util::fixed(pct(0.99), 2));
  cmp.print();
  std::cout << "determinism: " << total_requests
            << " responses byte-identical to the recorded expectations"
            << (opt.reload ? " through " + std::to_string(reloads.load()) +
                                 " snapshot reloads"
                           : "")
            << "\n";
  // Machine-readable line for EXPERIMENTS.md.
  std::cout << "{\"bench\":\"perf_service\",\"threads\":" << opt.threads
            << ",\"batch\":" << w.queries_per_request
            << ",\"lookups_per_sec\":" << static_cast<uint64_t>(lookups_per_sec)
            << ",\"p50_us\":" << pct(0.50) << ",\"p99_us\":" << pct(0.99)
            << ",\"reloads\":" << reloads.load() << "}\n";

  // Overhead gate: the flight recorder, armed at the production 1/1024
  // sampling, must not tax serving by more than 3%. The gate drives the
  // traced path exactly as a transport does — begin a context per frame,
  // serve through the trace-aware overload, finish — against the untraced
  // loop as the baseline. Frames are production-weight (256 lookups,
  // ~30 µs of work, on par with the wire transport's per-request floor):
  // the trace cost is fixed per frame, so that is the honest denominator —
  // a 0.4 µs single-lookup loopback frame has no wire counterpart.
  // Fixed-work timing, best-of-3 interleaved trials, to keep scheduler
  // noise out of a 3% comparison.
  {
    constexpr double kBudgetPct = 3.0;
    Workload gate = build_workload(server, h, d, 256);
    obs::FlightRecorder::Options armed_options;
    armed_options.sample_period = 1024;
    obs::FlightRecorder recorder(armed_options);
    obs::ScopedFlightRecorder scoped(recorder);
    svc::TraceBinding trace("binary");

    bool gate_diverged = false;
    auto ns_per_frame = [&](bool armed, uint64_t iters) -> double {
      size_t i = 0;
      const auto start = std::chrono::steady_clock::now();
      for (uint64_t n = 0; n < iters; ++n) {
        std::string response;
        if (armed) {
          obs::SpanContext ctx = trace.begin();
          ctx.stage("serve");
          response = server.serve(gate.requests[i], ctx);
          ctx.finish("ok");
        } else {
          response = server.serve(gate.requests[i]);
        }
        if (response != gate.expected[i]) gate_diverged = true;
        i = (i + 1) % gate.requests.size();
      }
      const auto elapsed = std::chrono::steady_clock::now() - start;
      return static_cast<double>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                     .count()) /
             static_cast<double>(iters);
    };

    constexpr uint64_t kWarmup = 500;
    constexpr uint64_t kIters = 10'000;
    ns_per_frame(false, kWarmup);
    ns_per_frame(true, kWarmup);
    double base_ns = std::numeric_limits<double>::max();
    double armed_ns = std::numeric_limits<double>::max();
    for (int trial = 0; trial < 3; ++trial) {
      base_ns = std::min(base_ns, ns_per_frame(false, kIters));
      armed_ns = std::min(armed_ns, ns_per_frame(true, kIters));
    }
    const double overhead_pct = (armed_ns - base_ns) / base_ns * 100.0;
    std::cout << "overhead gate: recorder armed at 1/1024, 256-query frames\n"
              << "  untraced  " << base_ns / 1000.0 << " us/frame\n"
              << "  traced    " << armed_ns / 1000.0 << " us/frame\n"
              << "  overhead  " << overhead_pct << "%  (budget "
              << kBudgetPct << "%)\n";
    if (gate_diverged) {
      std::cerr << "FATAL: a gate response diverged from the expectation\n";
      return 1;
    }
    if (overhead_pct > kBudgetPct) {
      std::cerr << "FATAL: recorder overhead " << overhead_pct
                << "% exceeds the " << kBudgetPct << "% budget\n";
      return 1;
    }
  }

  return lookups_per_sec >= 1'000'000.0 || w.queries_per_request > 1 ? 0 : 2;
}
