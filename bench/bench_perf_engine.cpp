// Sequential vs. parallel analysis engine on the full-report path.
//
// Runs core::write_report over the same world with 1 engine thread (the old
// sequential behavior), N threads cold (fresh snapshot cache), and N
// threads warm (cache pre-populated by a prior run), then prints the
// wall-clock speedups. Outputs are cross-checked byte-for-byte — a run that
// broke the determinism contract fails loudly rather than report a bogus
// speedup.
//
//   $ ./bench_perf_engine [--small] [--seed=N] [--threads=N] [--reps=N]
#include <chrono>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "bench/common.hpp"
#include "core/report.hpp"
#include "core/snapshot_cache.hpp"
#include "util/thread_pool.hpp"

using namespace droplens;

namespace {

double run_report_ms(const core::Study& study,
                     const core::ReportOptions& options, std::string* out) {
  std::ostringstream text;
  auto start = std::chrono::steady_clock::now();
  core::write_report(text, study, options);
  auto stop = std::chrono::steady_clock::now();
  *out = text.str();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = util::ThreadPool::default_thread_count();
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::stoul(argv[i] + 10));
    }
    if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::stoi(argv[i] + 7);
    }
  }
  bench::Harness h = bench::Harness::make(argc, argv);

  core::ReportOptions options;
  options.include_series = true;

  std::string seq_text, par_text, warm_text;
  double seq_ms = 0, par_ms = 0, warm_ms = 0;
  for (int rep = 0; rep < reps; ++rep) {
    options.threads = 1;
    seq_ms += run_report_ms(*h.study, options, &seq_text);

    options.threads = threads;
    par_ms += run_report_ms(*h.study, options, &par_text);

    // Warm: share one cache across a pool the Study carries, so the second
    // run hits the memoized snapshots.
    util::ThreadPool pool(threads);
    core::SnapshotCache cache(h.study->registry, h.study->fleet,
                              h.study->roas, h.study->drop);
    core::Study warm = *h.study;
    warm.pool = &pool;
    warm.snapshots = &cache;
    std::string prime;
    run_report_ms(warm, options, &prime);
    warm_ms += run_report_ms(warm, options, &warm_text);

    if (seq_text != par_text || seq_text != warm_text) {
      std::cerr << "FATAL: parallel report diverged from sequential run\n";
      return 1;
    }
  }
  seq_ms /= reps;
  par_ms /= reps;
  warm_ms /= reps;

  bench::Comparison cmp("engine: sequential vs parallel full report");
  cmp.row("threads", "1", std::to_string(threads));
  cmp.row("sequential ms", seq_ms, seq_ms);
  cmp.row("parallel cold ms", seq_ms, par_ms);
  cmp.row("parallel warm ms", seq_ms, warm_ms);
  cmp.rule();
  cmp.row("speedup cold", 1.0, seq_ms / par_ms, 2);
  cmp.row("speedup warm", 1.0, seq_ms / warm_ms, 2);
  cmp.print();
  std::cout << "determinism: sequential, cold and warm outputs identical ("
            << seq_text.size() << " bytes)\n";
  return 0;
}
