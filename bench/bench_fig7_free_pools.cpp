// Figure 7: unallocated address space remaining in each RIR's free pool
// over time, and how much of it the AS0 policies cover.
#include "bench/common.hpp"
#include "core/as0_analysis.hpp"
#include "util/csv.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bench::Harness h = bench::Harness::make(argc, argv);
  core::As0Result r = core::analyze_as0(*h.study, h.index);

  const core::FreePoolSample& first = r.pool_series.front();
  const core::FreePoolSample& last = r.pool_series.back();

  std::cout << "\n=== Figure 7 — RIR free pools over the study window ===\n";
  util::TextTable table({"RIR", "start (addrs)", "end (addrs)",
                         "end AS0-covered", "uncovered at end"});
  for (rir::Rir rir : rir::kAllRirs) {
    size_t i = static_cast<size_t>(rir);
    auto addrs = [](double slash8) {
      return std::to_string(
          static_cast<long long>(slash8 * (uint64_t{1} << 24)));
    };
    double uncovered = last.pool_slash8[i] - last.pool_as0_covered[i];
    table.add_row({std::string(rir::display_name(rir)),
                   addrs(first.pool_slash8[i]), addrs(last.pool_slash8[i]),
                   addrs(last.pool_as0_covered[i]), addrs(uncovered)});
  }
  table.print(std::cout);
  std::cout << "\nPaper anchor: AFRINIC and ARIN end the window with the "
               "most unallocated space NOT covered by an AS0 ROA (their "
               "pools have no AS0 policy).\n";

  std::cout << "\nMonthly series:\n";
  util::CsvWriter csv(std::cout);
  csv.header({"date", "afrinic", "apnic", "arin", "lacnic", "ripencc"});
  for (const core::FreePoolSample& s : r.pool_series) {
    csv.values(
        s.date.to_string(),
        std::to_string(static_cast<long long>(s.pool_slash8[0] * (1 << 24))),
        std::to_string(static_cast<long long>(s.pool_slash8[1] * (1 << 24))),
        std::to_string(static_cast<long long>(s.pool_slash8[2] * (1 << 24))),
        std::to_string(static_cast<long long>(s.pool_slash8[3] * (1 << 24))),
        std::to_string(static_cast<long long>(s.pool_slash8[4] * (1 << 24))));
  }
  return 0;
}
