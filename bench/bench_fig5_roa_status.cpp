// Figure 5 + §6.2.1: routing status of RPKI-signed address space over time,
// and the organizations holding the signed-but-unrouted space.
#include "bench/common.hpp"
#include "core/roa_status.hpp"
#include "util/csv.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bench::Harness h = bench::Harness::make(argc, argv);
  core::RoaStatusResult r = core::analyze_roa_status(*h.study);

  bench::Comparison cmp("Figure 5 — ROA routing status");
  cmp.row("signed space at start (/8-eq)", 49.1, r.first().signed_slash8);
  cmp.row("signed space at end (/8-eq)", 70.4, r.last().signed_slash8);
  cmp.row("% of signed space routed, start", 97.1,
          r.first().percent_roas_routed());
  cmp.row("% of signed space routed, end", 90.5,
          r.last().percent_roas_routed());
  cmp.row("signed+unrouted non-AS0, start (/8-eq)", 1.6,
          r.first().signed_unrouted_nonas0_slash8);
  cmp.row("signed+unrouted non-AS0, end (/8-eq)", 6.7,
          r.last().signed_unrouted_nonas0_slash8);
  cmp.row("allocated+unrouted+no-ROA, start (/8-eq)", 29.2,
          r.first().alloc_unrouted_no_roa_slash8);
  cmp.row("allocated+unrouted+no-ROA, end (/8-eq)", 30.0,
          r.last().alloc_unrouted_no_roa_slash8);
  cmp.row("ARIN share of unrouted unsigned", "60.8%",
          util::percent(r.arin_share_of_unrouted_unsigned, 1.0));
  cmp.print();

  std::cout << "\n§6.2.1 — top holders of signed-but-unrouted space "
               "(paper: Amazon 3.1, Prudential 1.0, Alibaba 0.64 "
               "= 70.1% of 6.7):\n";
  for (const core::HolderSpace& hs : r.top_signed_unrouted_holders) {
    std::cout << "  " << hs.holder << ": " << util::fixed(hs.slash8, 2)
              << " /8-eq\n";
  }
  std::cout << "  top-3 share: " << util::percent(r.top3_share, 1.0)
            << "\n";

  std::cout << "\nMonthly series (Fig 5's four curves):\n";
  util::CsvWriter csv(std::cout);
  csv.header({"date", "signed_slash8", "pct_routed",
              "signed_unrouted_nonas0_slash8", "alloc_unrouted_noroa_slash8"});
  for (const core::RoaStatusSample& s : r.series) {
    csv.values(s.date.to_string(), util::fixed(s.signed_slash8, 2),
               util::fixed(s.percent_roas_routed(), 2),
               util::fixed(s.signed_unrouted_nonas0_slash8, 2),
               util::fixed(s.alloc_unrouted_no_roa_slash8, 2));
  }
  std::cout << "\nPaper anchor: the Amazon ROA-creation step is visible in "
               "the signed series around September 2020.\n";
  return 0;
}
