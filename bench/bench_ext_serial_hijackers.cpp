// Extension: serial-hijacker profiling (Testart et al., IMC'19 — the
// related-work baseline). Profiles every origin AS seen in the window and
// flags the ones whose behaviour matches the serial-hijacker pattern; on
// the synthetic world this should recover the §5 hijacking ASNs without
// looking at the ground truth.
#include "bench/common.hpp"
#include "core/serial_hijackers.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bench::Harness h = bench::Harness::make(argc, argv);
  core::SerialHijackerResult r =
      core::analyze_serial_hijackers(*h.study, h.index);

  std::cout << "\n=== Serial-hijacker profiling ===\n";
  std::cout << "origins profiled:             " << r.origins_profiled << "\n"
            << "origins with a DROP prefix:   " << r.origins_with_drop_prefix
            << "\n"
            << "flagged serial hijackers:     " << r.flagged.size()
            << " (generator planted " << h.world->config.hijacking_asn_count
            << " hijacking ASNs)\n\n";

  util::TextTable table({"ASN", "prefixes", "episodes", "short-lived",
                         "on DROP", "median days", "span (addrs)"});
  size_t shown = 0;
  for (const core::OriginProfile& p : r.flagged) {
    table.add_row({p.asn.to_string(), std::to_string(p.prefixes_originated),
                   std::to_string(p.episodes),
                   util::percent(p.short_lived_episodes, p.episodes),
                   std::to_string(p.prefixes_on_drop),
                   util::fixed(p.median_episode_days, 0),
                   std::to_string(p.address_span)});
    if (++shown >= 20) break;
  }
  table.print(std::cout);

  // How many of the flagged ASNs are actual planted hijackers?
  int true_positives = 0;
  for (const core::OriginProfile& p : r.flagged) {
    if (p.asn.value() >= 61000 && p.asn.value() < 61000 + 7 * 20 &&
        (p.asn.value() - 61000) % 7 == 0) {
      ++true_positives;  // the generator's hijacking ASN arithmetic
    }
  }
  std::cout << "\nflagged ASNs matching planted hijacking ASNs: "
            << true_positives << "\n";
  return 0;
}
