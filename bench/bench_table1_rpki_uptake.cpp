// Table 1 + §4.2: RPKI signing rate of prefixes without a ROA, split by
// their relationship with the DROP list.
#include "bench/common.hpp"
#include "core/rpki_uptake.hpp"

using namespace droplens;

namespace {

std::string cell(const core::SigningCell& c) {
  return util::percent(c.signed_, c.total) + " of " + std::to_string(c.total);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h = bench::Harness::make(argc, argv);
  core::RpkiUptakeResult r = core::analyze_rpki_uptake(*h.study, h.index);

  std::cout << "\n=== Table 1 — RPKI signing rate of unsigned prefixes ===\n";
  util::TextTable table(
      {"region", "never on DROP", "removed from DROP", "present on DROP"});
  const char* paper_rows[5] = {
      "paper: 11.8% of 3901 | 14.3% of 7  | 0.0% of 11",
      "paper: 26.3% of 42.2K | 44.4% of 18 | 21.6% of 37",
      "paper: 8.5% of 65.2K | 25.0% of 40 | 0.6% of 169",
      "paper: 25.5% of 15.1K | 35.1% of 37 | 0% of 9",
      "paper: 33.0% of 68.2K | 54.2% of 83 | 19.8% of 172",
  };
  for (rir::Rir rir : rir::kAllRirs) {
    size_t i = static_cast<size_t>(rir);
    table.add_row({std::string(rir::display_name(rir)),
                   cell(r.never_on_drop[i]), cell(r.removed_from_drop[i]),
                   cell(r.present_on_drop[i])});
    table.add_row({"  " + std::string(paper_rows[i]), "", ""});
  }
  table.add_rule();
  table.add_row({"Overall", cell(r.never_total), cell(r.removed_total),
                 cell(r.present_total)});
  table.add_row({"  paper: 22.3% of 195.6K | 42.5% of 186 | 13.8% of 420",
                 "", ""});
  table.print(std::cout);

  bench::Comparison cmp("§4.2 — ROA ASN vs. origin at listing "
                        "(removed-and-signed prefixes)");
  cmp.row("signed with a different ASN", "82.3%",
          util::percent(r.removed_signed_different_asn, r.removed_signed));
  cmp.row("signed with the same ASN", "6.3%",
          util::percent(r.removed_signed_same_asn, r.removed_signed));
  cmp.row("not announced at listing", "11.4%",
          util::percent(r.removed_signed_unannounced, r.removed_signed));
  cmp.print();
  return 0;
}
