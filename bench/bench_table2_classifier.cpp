// Table 2 / Appendix A: the SBL keyword classifier on the paper's own
// excerpt examples, plus keyword statistics over the generated SBL corpus.
#include "bench/common.hpp"
#include "core/classification.hpp"
#include "drop/sbl.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  // Part 1: the six excerpts of Table 2, verbatim from the paper, must
  // classify exactly as the paper classified them.
  struct Excerpt {
    const char* id;
    const char* text;
    const char* expect;
  };
  const Excerpt excerpts[] = {
      {"SBL310721", "AS204139 spammer hosting", "MH"},
      {"SBL240976", "hijacked IP range ... billing@ahostinginc.com", "HJ"},
      {"SBL502548",
       "Snowshoe IP block on Stolen AS62927 ... "
       "james.johnson@networxhosting.com",
       "HJ+SS"},  // the paper writes "snowshoe, hijack"; set order is ours
      {"SBL322513", "Register Of Known Spam Operations ... snowshoe range",
       "SS+KS"},
      {"SBL294939",
       "Register Of Known Spam Operations ... illegal netblock hijacking "
       "operation",
       "HJ+KS"},
      {"SBL325529",
       "Department of Defense ... Spamhaus believes that this IP address "
       "range is being used or is about to be used for the purpose of high "
       "volume spam emission.",
       "SS (inferred)"},
  };
  drop::Classifier classifier;
  std::cout << "=== Table 2 — classification of the paper's excerpts ===\n";
  util::TextTable table({"record", "paper", "measured", "ASN", "ok"});
  bool all_ok = true;
  for (const Excerpt& e : excerpts) {
    drop::Classification c = classifier.classify(e.text);
    std::string got = c.categories.to_string();
    if (c.inferred) got += " (inferred)";
    bool ok = got == e.expect;
    all_ok = all_ok && ok;
    table.add_row({e.id, e.expect, got,
                   c.malicious_asn ? c.malicious_asn->to_string() : "-",
                   ok ? "yes" : "NO"});
  }
  table.print(std::cout);

  // Part 2: keyword statistics over the generated corpus (App. A: 90% one
  // keyword, 2.7% two, 7.3% none).
  bench::Harness h = bench::Harness::make(argc, argv);
  core::ClassificationResult r =
      core::analyze_classification(*h.study, h.index);
  bench::Comparison cmp("Appendix A — keyword counts over SBL records");
  cmp.row("records with one keyword", "90%",
          util::percent(r.records_one_keyword, r.with_record));
  cmp.row("records with two keywords", "2.7%",
          util::percent(r.records_two_keywords, r.with_record));
  cmp.row("records with no keyword", "7.3%",
          util::percent(r.records_no_keyword, r.with_record));
  cmp.print();
  return all_ok ? 0 : 1;
}
