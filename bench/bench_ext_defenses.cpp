// Extension: the defense-comparison matrix. Replays every hijack on DROP
// and reports which defense (ROV, operator/RIR AS0, path-end validation,
// BGPsec) would have stopped it — the paper's §1 defense taxonomy made
// executable. The punchline matches the paper's conclusion: for abandoned
// unsigned space only AS0 policies help.
#include "bench/common.hpp"
#include "core/defenses.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bench::Harness h = bench::Harness::make(argc, argv);
  core::DefenseMatrixResult r = core::analyze_defenses(*h.study, h.index);

  std::cout << "\n=== Defense matrix over " << r.total()
            << " hijack announcements on DROP ===\n";
  util::TextTable table({"hijack kind", "events", "ROV", "ROV+opAS0",
                         "ROV+rirAS0", "path-end", "BGPsec"});
  for (core::HijackKind kind : core::kAllHijackKinds) {
    size_t k = static_cast<size_t>(kind);
    std::vector<std::string> row{std::string(core::to_string(kind)),
                                 std::to_string(r.events_by_kind[k])};
    for (core::Defense d : core::kAllDefenses) {
      row.push_back(util::percent(
          r.blocked_by_kind[k][static_cast<size_t>(d)],
          std::max(1, r.events_by_kind[k])));
    }
    table.add_row(row);
  }
  table.add_rule();
  {
    std::vector<std::string> row{"total", std::to_string(r.total())};
    for (core::Defense d : core::kAllDefenses) {
      row.push_back(util::percent(
          r.blocked_by_defense[static_cast<size_t>(d)],
          std::max(1, r.total())));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nHijacks only an AS0 policy would have stopped: "
            << r.unstoppable_without_as0 << " of " << r.total() << " ("
            << util::percent(r.unstoppable_without_as0, r.total())
            << ")\n";
  std::cout << "Hijacks no modeled defense stops (abandoned unsigned "
               "space): " << r.blocked_by_nothing << " ("
            << util::percent(r.blocked_by_nothing, r.total()) << ")\n";
  std::cout << "Reading: ROV as deployed barely helps (hijackers target "
               "unsigned space, and the one RPKI-valid hijack passes it); "
               "path authentication helps only against forged origins; the "
               "unrouted/unallocated attack surface falls to AS0 alone — "
               "the paper's §7 conclusion.\n";
  return 0;
}
