// SnapshotStore benchmark: the costs behind whole-window serving.
//
// Measures, over the first --days dates of the generated world's window:
//   - fill            compile + write-through save of every day (cold dir)
//   - directory size  all-keyframe vs delta-encoded (keyframe every K days)
//                     — the ratio the delta format exists for
//   - chain resolve   fresh store over the delta directory, days resolved
//                     in ascending order (each delta applies against its
//                     resident predecessor) and the worst case: the last
//                     day of a chain from a completely cold store
//   - keyframe load   plain validated mmap load, for comparison
//   - hit throughput  T threads hammering get() on resident days
//   - miss shadow     get() latency for a resident day WHILE another
//                     thread compiles a missing one — the per-date-latch
//                     payoff; under the old store-wide mutex this was the
//                     full compile time
//
//   $ ./bench_perf_store [--small] [--seed=N] [--days=N] [--threads=N]
//                        [--keyframe-every=K]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/snapshot_cache.hpp"
#include "net/date.hpp"
#include "svc/snapshot.hpp"
#include "svc/snapshot_io.hpp"
#include "svc/snapshot_store.hpp"
#include "util/thread_pool.hpp"

using namespace droplens;

namespace {

using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

uint64_t dir_bytes(const std::string& dir) {
  uint64_t total = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

double median(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  int days = 30;
  unsigned threads = util::ThreadPool::default_thread_count();
  int keyframe_every = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--days=", 7) == 0) {
      days = std::atoi(argv[i] + 7);
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::stoul(argv[i] + 10));
    }
    if (std::strncmp(argv[i], "--keyframe-every=", 17) == 0) {
      keyframe_every = std::atoi(argv[i] + 17);
    }
  }
  if (days < 2) days = 2;
  if (keyframe_every < 2) keyframe_every = 2;

  bench::Harness h = bench::Harness::make(argc, argv);
  util::ThreadPool pool(threads);
  h.study->pool = &pool;
  core::SnapshotCache cache(h.world->registry, h.world->fleet, h.world->roas,
                            h.world->drop, &h.world->irr);
  h.study->snapshots = &cache;

  char buf_key[] = "/tmp/droplens_store_key_XXXXXX";
  char buf_dlt[] = "/tmp/droplens_store_dlt_XXXXXX";
  if (!mkdtemp(buf_key) || !mkdtemp(buf_dlt)) return 1;
  const std::string dir_key = buf_key;
  const std::string dir_dlt = buf_dlt;

  // Fill: compile + write-through save of every day.
  svc::SnapshotStore::Config fill_cfg;
  fill_cfg.dir = dir_key;
  fill_cfg.max_resident = static_cast<size_t>(days) + 2;
  svc::SnapshotStore fill(fill_cfg, h.study.get(), &h.index);
  std::vector<net::Date> dates;
  for (int i = 0; i < days; ++i) dates.push_back(h.study->window_begin + 1 + i);
  auto t0 = Clock::now();
  for (net::Date d : dates) {
    if (!fill.get(d)) return 1;
  }
  const double fill_ms = ms_since(t0);

  // Delta-encode into a second directory: every K-th day a keyframe, the
  // rest patches over their predecessor (what `snapshot_tool delta` does).
  std::shared_ptr<const svc::Snapshot> prev;
  t0 = Clock::now();
  for (size_t i = 0; i < dates.size(); ++i) {
    auto snap = fill.get(dates[i]);
    const std::string path =
        dir_dlt + "/" + svc::SnapshotStore::file_name(dates[i]);
    if (i % static_cast<size_t>(keyframe_every) == 0) {
      svc::save_snapshot(*snap, path);
    } else {
      svc::save_snapshot_delta(*snap, *prev, path);
    }
    prev = snap;
  }
  const double encode_ms = ms_since(t0);
  prev.reset();
  const uint64_t key_bytes = dir_bytes(dir_key);
  const uint64_t dlt_bytes = dir_bytes(dir_dlt);

  // Chain resolution: a fresh disk-only store over the delta directory,
  // ascending (each day's base is resident when it loads)...
  svc::SnapshotStore::Config ro_cfg;
  ro_cfg.dir = dir_dlt;
  ro_cfg.max_resident = static_cast<size_t>(days) + 2;
  ro_cfg.save_compiled = false;
  svc::SnapshotStore ascend(ro_cfg, nullptr, nullptr);
  t0 = Clock::now();
  for (net::Date d : dates) {
    if (!ascend.get(d)) return 1;
  }
  const double ascend_ms = ms_since(t0);

  // ...and the worst case: the deepest day of the last full chain from a
  // completely cold store (keyframe + K-1 patch hops in one get()).
  const size_t last_anchor =
      ((dates.size() - 1) / static_cast<size_t>(keyframe_every)) *
      static_cast<size_t>(keyframe_every);
  const net::Date deepest = dates.back();
  std::vector<double> chain_ms;
  for (int i = 0; i < 9; ++i) {
    svc::SnapshotStore cold(ro_cfg, nullptr, nullptr);
    auto c0 = Clock::now();
    if (!cold.get(deepest)) return 1;
    chain_ms.push_back(ms_since(c0));
  }

  // Keyframe mmap load, for scale.
  std::vector<double> key_ms;
  for (int i = 0; i < 9; ++i) {
    auto c0 = Clock::now();
    auto loaded = svc::load_snapshot(
        dir_key + "/" + svc::SnapshotStore::file_name(dates.back()), 1);
    key_ms.push_back(ms_since(c0));
    if (loaded->date() != dates.back()) return 1;
  }

  // Hit throughput: everything resident, T threads round-robin the days.
  constexpr int kGetsPerThread = 200000;
  std::atomic<uint64_t> sink{0};
  std::vector<std::thread> workers;
  t0 = Clock::now();
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      uint64_t local = 0;
      for (int i = 0; i < kGetsPerThread; ++i) {
        local += ascend.get(dates[(t + static_cast<unsigned>(i)) %
                                  dates.size()]) != nullptr;
      }
      sink.fetch_add(local);
    });
  }
  for (std::thread& w : workers) w.join();
  const double hit_s = ms_since(t0) / 1e3;
  const double gets_per_s =
      static_cast<double>(threads) * kGetsPerThread / hit_s;
  if (sink.load() != uint64_t{threads} * kGetsPerThread) return 1;

  // Miss shadow: one thread compiles a day that exists nowhere while the
  // main thread keeps get()ing a resident one. The worst hit latency seen
  // during the compile is the contention the latch split removed.
  const net::Date missing = h.study->window_begin + days + 30;
  const net::Date hot = dates.front();
  std::atomic<bool> compiling{true};
  double compile_ms = 0;
  std::thread misser([&] {
    auto c0 = Clock::now();
    fill.get(missing);
    compile_ms = ms_since(c0);
    compiling.store(false);
  });
  std::vector<double> shadow_ms;
  while (compiling.load()) {
    auto c0 = Clock::now();
    if (!fill.get(hot)) return 1;
    shadow_ms.push_back(ms_since(c0));
  }
  misser.join();
  double shadow_worst = 0;
  for (double v : shadow_ms) shadow_worst = std::max(shadow_worst, v);

  std::printf("\n=== snapshot store (%d days, keyframe every %d, %u threads) "
              "===\n",
              days, keyframe_every, threads);
  std::printf("%-34s %12.0f ms\n", "fill (compile+save all days)", fill_ms);
  std::printf("%-34s %12.0f ms\n", "delta-encode directory", encode_ms);
  std::printf("%-34s %12.2f MiB\n", "directory, all keyframes",
              static_cast<double>(key_bytes) / (1 << 20));
  std::printf("%-34s %12.2f MiB\n", "directory, delta-encoded",
              static_cast<double>(dlt_bytes) / (1 << 20));
  std::printf("%-34s %12.1f x\n", "delta compression ratio",
              static_cast<double>(key_bytes) /
                  static_cast<double>(dlt_bytes ? dlt_bytes : 1));
  std::printf("%-34s %12.2f ms\n", "resolve all days, ascending",
              ascend_ms);
  std::printf("%-34s %12.2f ms  (%zu hops)\n",
              "cold chain resolve, deepest day", median(chain_ms),
              dates.size() - last_anchor);
  std::printf("%-34s %12.2f ms\n", "keyframe mmap load", median(key_ms));
  std::printf("%-34s %12.0f gets/s\n", "resident-hit throughput",
              gets_per_s);
  std::printf("%-34s %12.2f ms  (compile took %.0f ms, %zu hits)\n",
              "worst hit latency during a miss", shadow_worst, compile_ms,
              shadow_ms.size());

  std::error_code ec;
  fs::remove_all(dir_key, ec);
  fs::remove_all(dir_dlt, ec);
  return 0;
}
