// Figure 2 + §4.1: routing visibility after blocklisting.
//
// Left panel: CDF of DROP prefixes withdrawn by day offset from listing.
// Right panel: CDF of the fraction of full-table peers observing each
// prefix (the step below 1.0 is the DROP-filtering peers).
// Text stats: per-category withdrawal rates and RIR deallocations.
#include "bench/common.hpp"
#include "core/visibility.hpp"
#include "util/csv.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bench::Harness h = bench::Harness::make(argc, argv);
  core::VisibilityResult r = core::analyze_visibility(*h.study, h.index);

  auto cat_rate = [&](drop::Category c) {
    size_t i = static_cast<size_t>(c);
    return util::percent(r.withdrawn_30d_by_category[i],
                         r.routed_by_category[i]);
  };

  bench::Comparison cmp("Figure 2 / §4.1 — visibility after listing");
  cmp.row("withdrawn within 30 days", "19%",
          util::percent(r.withdrawn_within_30d, r.routed_at_listing));
  cmp.row("  hijacked", "70.7%", cat_rate(drop::Category::kHijacked));
  cmp.row("  unallocated", "54.8%", cat_rate(drop::Category::kUnallocated));
  cmp.row("RouteViews peers filtering DROP", "3",
          std::to_string(r.filtering_peers));
  cmp.rule();
  cmp.row("MH prefixes deallocated by RIR", "17.4%",
          util::percent(r.mh_deallocated, r.mh_allocated_at_listing));
  cmp.row("removed prefixes deallocated", "8.8%",
          util::percent(r.removed_deallocated, r.removed_prefixes));
  cmp.row("  removed within a week of dealloc", "half",
          util::percent(r.removed_within_week_of_dealloc,
                        r.removed_deallocated));
  cmp.print();

  std::cout << "\nLeft panel CDF (day offset -> fraction withdrawn):\n";
  util::CsvWriter csv(std::cout);
  csv.header({"day_offset", "fraction_withdrawn"});
  for (const core::WithdrawalCdfPoint& p : r.withdrawal_cdf) {
    csv.values(p.day_offset, util::fixed(p.fraction, 4));
  }

  std::cout << "\nRight panel CDF (fraction of peers observing; deciles):\n";
  util::CsvWriter csv2(std::cout);
  csv2.header({"percentile", "fraction_of_peers"});
  const auto& f = r.peer_visibility_fractions;
  for (int pct = 0; pct <= 100 && !f.empty(); pct += 10) {
    size_t idx = std::min(f.size() - 1, f.size() * pct / 100);
    csv2.values(pct, util::fixed(f[idx], 4));
  }

  std::cout << "\nPeers that appear to filter DROP prefixes:\n";
  for (const core::PeerFilterStat& s : r.peer_stats) {
    if (s.appears_to_filter) {
      const bgp::Peer& peer = h.world->fleet.peer(s.peer);
      std::cout << "  " << peer.name << " (" << peer.asn.to_string()
                << "): missing " << s.drop_prefixes_missing << "/"
                << (s.drop_prefixes_carried + s.drop_prefixes_missing)
                << " listed-and-announced prefixes\n";
    }
  }
  return 0;
}
