// Figure 6 + §6.2.2: unallocated address space on DROP vs. the RIR AS0
// policies, and whether any RouteViews peer actually filters with the AS0
// TALs.
#include <algorithm>

#include "bench/common.hpp"
#include "core/as0_analysis.hpp"
#include "rpki/as0_policy.hpp"
#include "util/csv.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bench::Harness h = bench::Harness::make(argc, argv);
  core::As0Result r = core::analyze_as0(*h.study, h.index);

  bench::Comparison cmp("Figure 6 / §6.2.2 — unallocated space on DROP");
  cmp.row("unallocated prefixes on DROP", "40",
          std::to_string(r.unallocated_listings.size()));
  cmp.row("  LACNIC cluster", "19",
          std::to_string(
              r.unallocated_by_rir[static_cast<size_t>(rir::Rir::kLacnic)]));
  cmp.row("  AFRINIC cluster", "12",
          std::to_string(
              r.unallocated_by_rir[static_cast<size_t>(rir::Rir::kAfrinic)]));
  cmp.row("listed after an RIR AS0 policy", ">0 (hijacks continued)",
          std::to_string(r.listed_after_policy));
  cmp.row("peers filtering via AS0 TALs", "0",
          std::to_string(r.peers_apparently_filtering_as0));
  cmp.row("AS0-rejectable routes per peer", "~30",
          util::fixed(r.mean_as0_rejectable, 1));
  cmp.print();

  std::cout << "\nAS0 policy dates: APNIC ";
  std::cout << rpki::as0_policy_date(rir::Rir::kApnic)->to_string()
            << ", LACNIC "
            << rpki::as0_policy_date(rir::Rir::kLacnic)->to_string()
            << " (ARIN / RIPE NCC / AFRINIC: none)\n";

  std::cout << "\nFig 6 timeline (unallocated listings):\n";
  std::vector<core::UnallocatedListing> sorted = r.unallocated_listings;
  std::sort(sorted.begin(), sorted.end(),
            [](const core::UnallocatedListing& a,
               const core::UnallocatedListing& b) {
              return a.listed < b.listed;
            });
  util::CsvWriter csv(std::cout);
  csv.header({"date", "prefix", "rir", "after_as0_policy"});
  for (const core::UnallocatedListing& l : sorted) {
    csv.values(l.listed.to_string(), l.prefix.to_string(),
               std::string(rir::display_name(l.rir)),
               l.after_rir_as0_policy ? 1 : 0);
  }
  return 0;
}
