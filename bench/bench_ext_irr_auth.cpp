// Extension: the authenticated-IRR what-if. Replays every RADb registration
// through an IRR that verifies the registrant is the recorded holder —
// quantifying how much of §5's abuse authorization would have prevented,
// and what it cannot (fraudulently allocated space still passes).
#include "bench/common.hpp"
#include "core/irr_analysis.hpp"
#include "core/irr_whatif.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bench::Harness h = bench::Harness::make(argc, argv);
  core::IrrWhatIfResult r = core::analyze_irr_whatif(*h.study);
  core::IrrResult baseline = core::analyze_irr(*h.study, h.index);

  bench::Comparison cmp("Authenticated-IRR what-if (holder verification)");
  cmp.row("registrations replayed", "-",
          std::to_string(r.registrations_replayed));
  cmp.row("rejected by holder check", "-",
          std::to_string(r.rejected) + " (" +
              util::percent(r.rejected, r.registrations_replayed) + ")");
  cmp.row("rejected forged hijack objects",
          "57 exist in RADb (§5)",
          std::to_string(r.rejected_forged));
  cmp.row("fraud-allocated objects still accepted",
          "45 incident prefixes (§3.1)",
          std::to_string(r.accepted_incident));
  cmp.print();

  std::cout << "\nBaseline RADb accepted all "
            << r.registrations_replayed << " registrations, including the "
            << baseline.hijacker_asn_in_route_object
            << " forged hijack objects.\n"
            << "Reading: holder verification kills the register-then-hijack "
               "workflow (§5, Fig 3), but is powerless against fraud at the "
               "registry itself — the AFRINIC incidents would have passed. "
               "Authorization moves the problem to allocation integrity; it "
               "does not solve it.\n";

  std::cout << "\nFirst rejected objects:\n";
  for (size_t i = 0; i < r.rejected_objects.size() && i < 8; ++i) {
    const irr::RouteObject& o = r.rejected_objects[i];
    std::cout << "  " << o.prefix.to_string() << " origin "
              << o.origin.to_string() << " org " << o.org_id << "\n";
  }
  return 0;
}
