// Persistence-path benchmark: what does a daemon restart cost with and
// without a snapshot directory?
//
// Measures, for one study date of the generated world:
//   - cold compile   engine compile with an empty SnapshotCache (first
//                    touch of a date after process start, no .dls file)
//   - warm compile   recompile with the cache already holding the date's
//                    daily substrates (SIGHUP recompile in a warm daemon)
//   - serialize      snapshot → .dls bytes in memory
//   - save           serialize + atomic write-through to disk
//   - mmap load      load_snapshot: map + validate header/CRCs/invariants
//                    (the restart path when a .dls exists)
//   - lookup parity  per-lookup latency over the compiled (owned arrays)
//                    and loaded (mmap views) snapshot, same probe set
//
//   $ ./bench_perf_snapshot_io [--small] [--seed=N] [--iters=N] [--threads=N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/snapshot_cache.hpp"
#include "net/prefix.hpp"
#include "svc/snapshot.hpp"
#include "svc/snapshot_io.hpp"
#include "util/thread_pool.hpp"

using namespace droplens;

namespace {

using Clock = std::chrono::steady_clock;

double median_us(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

template <typename F>
std::vector<double> time_us(int iters, F&& body) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    auto t0 = Clock::now();
    body();
    auto t1 = Clock::now();
    out.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int iters = 20;
  unsigned threads = util::ThreadPool::default_thread_count();
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::atoi(argv[i] + 8);
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::stoul(argv[i] + 10));
    }
  }

  bench::Harness h = bench::Harness::make(argc, argv);
  util::ThreadPool pool(threads);
  h.study->pool = &pool;
  net::Date date = h.study->window_begin + 60;

  // Cold: a fresh cache per compile, the way a just-started daemon with no
  // snapshot directory pays for its first date.
  std::vector<double> cold_us = time_us(iters, [&] {
    core::SnapshotCache cache(h.world->registry, h.world->fleet,
                              h.world->roas, h.world->drop, &h.world->irr);
    h.study->snapshots = &cache;
    auto snap = svc::compile_snapshot(*h.study, h.index, date, 1);
    h.study->snapshots = nullptr;
  });

  // Warm: one cache kept across compiles — the SIGHUP path.
  core::SnapshotCache cache(h.world->registry, h.world->fleet, h.world->roas,
                            h.world->drop, &h.world->irr);
  h.study->snapshots = &cache;
  auto snap = svc::compile_snapshot(*h.study, h.index, date, 1);
  std::vector<double> warm_us = time_us(iters, [&] {
    auto again = svc::compile_snapshot(*h.study, h.index, date, 1);
  });

  const std::string bytes = svc::serialize_snapshot(*snap);
  std::vector<double> ser_us = time_us(iters, [&] {
    std::string b = svc::serialize_snapshot(*snap);
    if (b.size() != bytes.size()) std::abort();
  });

  char dir[] = "/tmp/droplens_bench_XXXXXX";
  if (!mkdtemp(dir)) return 1;
  const std::string path = std::string(dir) + "/bench.dls";
  std::vector<double> save_us =
      time_us(iters, [&] { svc::save_snapshot(*snap, path); });

  std::vector<double> load_us = time_us(iters, [&] {
    auto loaded = svc::load_snapshot(path, 1);
    if (loaded->date() != date) std::abort();
  });

  // Per-lookup parity: owned arrays vs mmap views over the same probes.
  auto loaded = svc::load_snapshot(path, 1);
  std::vector<net::Prefix> probes;
  for (const core::DropEntry& e : h.index.entries()) probes.push_back(e.prefix);
  for (uint32_t octet = 1; octet < 224; ++octet) {
    probes.push_back(net::Prefix(net::Ipv4(octet << 24 | 0x00010000), 16));
  }
  auto lookup_ns = [&](const svc::Snapshot& s) {
    auto t0 = Clock::now();
    uint64_t sink = 0;
    for (int rep = 0; rep < 200; ++rep) {
      for (const net::Prefix& p : probes) {
        sink += s.lookup(p, svc::kAllFields).status;
      }
    }
    auto t1 = Clock::now();
    (void)sink;
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           (200.0 * static_cast<double>(probes.size()));
  };
  double owned_ns = lookup_ns(*snap);
  double view_ns = lookup_ns(*loaded);

  double save_mb_s = (static_cast<double>(bytes.size()) / (1 << 20)) /
                     (median_us(save_us) / 1e6);
  std::printf("\n=== snapshot persistence (date %s, %zu bytes, %u threads, "
              "%d iters, medians) ===\n",
              date.to_string().c_str(), bytes.size(), threads, iters);
  std::printf("%-28s %12.1f us\n", "cold compile", median_us(cold_us));
  std::printf("%-28s %12.1f us\n", "warm compile", median_us(warm_us));
  std::printf("%-28s %12.1f us\n", "serialize", median_us(ser_us));
  std::printf("%-28s %12.1f us  (%.0f MB/s)\n", "save (write-through)",
              median_us(save_us), save_mb_s);
  std::printf("%-28s %12.1f us\n", "mmap load (validated)",
              median_us(load_us));
  std::printf("%-28s %12.1f x\n", "restart speedup (cold/load)",
              median_us(cold_us) / median_us(load_us));
  std::printf("%-28s %12.1f ns\n", "lookup, owned arrays", owned_ns);
  std::printf("%-28s %12.1f ns\n", "lookup, mmap views", view_ns);

  std::remove(path.c_str());
  std::remove(dir);
  return 0;
}
