// Microbenchmark of the observability layer's record path.
//
// The contract the obs library sells: an uncontended counter increment is a
// single relaxed atomic add (a few ns), a no-op handle costs one branch,
// and spans cost nothing when no tracer is installed. This bench measures
// each, plus the contended case and page rendering, so a regression in the
// hot path shows up as a number — EXPERIMENTS.md records the baseline.
//
// The SpanContext rows price the request flight recorder's ladder: an inert
// context (recorder absent), the parked-resume shape the epoll transport
// uses (begin, stage, move across a callback boundary, stage, finish) with
// the recorder armed at the production 1/1024 sampling, and the full-capture
// worst case (every request sampled into the recent ring).
//
//   $ ./bench_perf_obs [--ops=N] [--threads=N]
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"

using namespace droplens;

namespace {

// Keep the compiler from hoisting the measured op out of the loop.
template <typename T>
inline void keep(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

// Inlined at the call site so only the measured op is in the loop body.
template <typename Op>
double ns_per_op(uint64_t ops, Op&& op) {
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < ops; ++i) op();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         static_cast<double>(ops);
}

void row(const char* name, double ns) {
  std::cout << name << "  " << ns << " ns/op\n";
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t ops = 50'000'000;
  unsigned threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      ops = std::stoull(argv[i] + 6);
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::stoul(argv[i] + 10));
    }
  }

  obs::Registry reg;
  obs::Counter counter = reg.counter("bench_total");
  obs::Histogram hist =
      reg.histogram("bench_ns", obs::Registry::log2_bounds(39));
  obs::Counter noop;  // default-constructed: the uninstalled path

  row("counter.inc   (uncontended)",
      ns_per_op(ops, [&counter] { counter.inc(); }));
  row("counter.inc   (no-op handle)",
      ns_per_op(ops, [&noop] { noop.inc(); }));
  row("histogram.observe",
      ns_per_op(ops, [&hist] { hist.observe(1234); }));
  row("span          (no tracer)", ns_per_op(ops, [] {
        obs::Span span("bench");
        keep(span);
      }));
  {
    obs::Tracer tracer(16);
    obs::ScopedTracer scoped(tracer);
    row("span          (tracer installed)", ns_per_op(ops / 50, [] {
          obs::Span span("bench");
          keep(span);
        }));
  }

  // The flight recorder's per-request ladder. "parked resume" replays the
  // epoll transport's lifecycle: begin on accept, mark a stage, MOVE the
  // context (park it on the connection object, resume in a later callback),
  // mark another stage, finish. Armed-but-unsampled is the production
  // steady state (1/1024); sample_period=1 is the full-capture worst case
  // (ring push + exemplar stamp under the op mutex on every request).
  row("span-context  (inert: no recorder)", ns_per_op(ops, [] {
        obs::SpanContext ctx;
        ctx.stage("read");
        ctx.stage("serve");
        ctx.finish("ok");
        keep(ctx);
      }));
  {
    obs::FlightRecorder::Options armed;
    armed.sample_period = 1024;
    obs::FlightRecorder recorder(armed);
    const uint16_t op = recorder.op_class("bench");
    row("span-context  (parked resume, armed 1/1024)",
        ns_per_op(ops / 50, [&recorder, op] {
          obs::SpanContext ctx = recorder.begin(op);
          ctx.stage("read");
          obs::SpanContext resumed = std::move(ctx);  // park → resume
          resumed.stage("serve");
          resumed.finish("ok");
        }));
    keep(recorder.finished());
  }
  {
    obs::FlightRecorder::Options every;
    every.sample_period = 1;
    obs::FlightRecorder recorder(every);
    const uint16_t op = recorder.op_class("bench");
    row("span-context  (full capture, sampled 1/1)",
        ns_per_op(ops / 50, [&recorder, op] {
          obs::SpanContext ctx = recorder.begin(op);
          ctx.stage("read");
          ctx.stage("serve");
          ctx.finish("ok");
        }));
    keep(recorder.finished());
  }

  {
    // Contended: `threads` workers hammering one cell.
    const uint64_t per_thread = ops / threads;
    std::vector<std::thread> workers;
    const auto start = std::chrono::steady_clock::now();
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&counter, per_thread] {
        for (uint64_t i = 0; i < per_thread; ++i) counter.inc();
      });
    }
    for (std::thread& w : workers) w.join();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()) /
        static_cast<double>(per_thread * threads);
    std::cout << "counter.inc   (contended x" << threads << ")  " << ns
              << " ns/op\n";
  }

  {
    // Render a realistically sized page (the droplensd registry is ~40
    // families): time per full exposition.
    for (int f = 0; f < 40; ++f) {
      std::string name = "bench_family_" + std::to_string(f) + "_total";
      for (int s = 0; s < 4; ++s) {
        reg.counter(name, {{"shard", std::to_string(s)}}).inc();
      }
    }
    constexpr int kRenders = 2000;
    const auto start = std::chrono::steady_clock::now();
    size_t bytes = 0;
    for (int i = 0; i < kRenders; ++i) {
      bytes += obs::render_prometheus(reg).size();
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    keep(bytes);
    std::cout << "render_prometheus  "
              << std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                         .count() /
                     kRenders
              << " us/page (" << bytes / kRenders << " bytes)\n";
  }

  std::cout << "checksum: counter=" << counter.value()
            << " hist_sum=" << hist.sum() << "\n";
  return 0;
}
