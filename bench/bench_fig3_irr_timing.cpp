// §5 + Figure 3: effectiveness of the IRR.
//
// Prints the route-object statistics of §5 and the Fig 3 CDFs: days from
// creation of the forged IRR record to the prefix appearing in BGP and on
// DROP.
#include <algorithm>

#include "bench/common.hpp"
#include "core/irr_analysis.hpp"
#include "util/csv.hpp"

using namespace droplens;

int main(int argc, char** argv) {
  bench::Harness h = bench::Harness::make(argc, argv);
  core::IrrResult r = core::analyze_irr(*h.study, h.index);

  bench::Comparison cmp("§5 — route objects for DROP prefixes");
  cmp.row("prefixes with route object (7d window)", "226 (31.7%)",
          std::to_string(r.prefixes_with_route_object) + " (" +
              util::percent(r.prefixes_with_route_object,
                            r.drop_prefix_count) +
              ")");
  cmp.row("DROP space covered by route objects", "68.8%",
          util::percent(static_cast<double>(r.route_object_space.size()),
                        static_cast<double>(r.drop_space.size())));
  cmp.row("objects created <=1 month before listing", "32%",
          util::percent(r.created_within_month_before,
                        r.prefixes_with_route_object));
  cmp.row("objects removed <=1 month after listing", "43%",
          util::percent(r.removed_within_month_after,
                        r.prefixes_with_route_object));
  cmp.rule();
  cmp.row("hijacked prefixes with SBL-named ASN", "130",
          std::to_string(r.hijacked_with_asn));
  cmp.row("  hijacker ASN in route object", "57 (45%)",
          std::to_string(r.hijacker_asn_in_route_object) + " (" +
              util::percent(r.hijacker_asn_in_route_object,
                            r.hijacked_with_asn) +
              ")");
  cmp.row("  no object / different ASN", "69 (55%)",
          std::to_string(r.no_object_or_different_asn) + " (" +
              util::percent(r.no_object_or_different_asn,
                            r.hijacked_with_asn) +
              ")");
  cmp.row("distinct hijacking ASNs", "13",
          std::to_string(r.distinct_hijacking_asns));
  cmp.row("prefixes under top-3 ORG-IDs", "49",
          std::to_string(r.top3_org_prefixes));
  cmp.row("records created >1yr after BGP", "2",
          std::to_string(r.late_records));
  cmp.row("prefixes with pre-existing owner entry", "5",
          std::to_string(r.preexisting_entries));
  cmp.row("route object for unallocated prefix", "1",
          std::to_string(r.unallocated_with_route_object));
  cmp.row("serial ORG common transit",
          "AS50509",
          r.serial_common_transit ? r.serial_common_transit->to_string()
                                  : "(none)");
  cmp.print();

  std::cout << "\nORG-ID histogram of forged route objects:\n";
  for (const auto& [org, count] : r.forged_org_histogram) {
    std::cout << "  " << org << ": " << count << "\n";
  }

  // Fig 3 CDFs over the forged cases.
  std::vector<int> to_bgp, to_drop;
  for (const core::ForgedIrrCase& c : r.forged_cases) {
    if (c.days_irr_to_bgp >= 0) to_bgp.push_back(c.days_irr_to_bgp);
    to_drop.push_back(std::max(0, c.days_irr_to_drop));
  }
  std::sort(to_bgp.begin(), to_bgp.end());
  std::sort(to_drop.begin(), to_drop.end());
  std::cout << "\nFig 3 CDF (days since IRR creation):\n";
  util::CsvWriter csv(std::cout);
  csv.header({"days", "cdf_appeared_in_bgp", "cdf_appeared_in_drop"});
  for (int day : {0, 1, 2, 3, 5, 7, 14, 30, 60, 90, 150, 200, 250, 300}) {
    auto frac = [&](const std::vector<int>& v) {
      if (v.empty()) return std::string("0");
      size_t n = static_cast<size_t>(
          std::upper_bound(v.begin(), v.end(), day) - v.begin());
      return util::fixed(static_cast<double>(n) / v.size(), 3);
    };
    csv.values(day, frac(to_bgp), frac(to_drop));
  }
  std::cout << "\nPaper anchors: all but 2 prefixes appear in BGP within a "
               "week of the record; DROP listings spread out to ~300 days.\n";
  return 0;
}
