#include "core/rpki_uptake.hpp"

#include <algorithm>
#include <unordered_set>

namespace droplens::core {

RpkiUptakeResult analyze_rpki_uptake(const Study& study,
                                     const DropIndex& index) {
  RpkiUptakeResult r;

  std::unordered_set<net::Prefix> on_drop;
  for (const DropEntry& e : index.entries()) on_drop.insert(e.prefix);

  // --- "Never on DROP": the routed prefix population ---------------------
  for (const net::Prefix& p : study.fleet.announced_prefixes()) {
    if (on_drop.contains(p)) continue;
    if (study.roas.signed_on(p, study.window_begin)) continue;
    auto rir = study.registry.rir_of(p);
    if (!rir) continue;
    SigningCell& cell = r.never_on_drop[static_cast<size_t>(*rir)];
    ++cell.total;
    ++r.never_total.total;
    auto first = study.roas.first_signed(p);
    if (first && *first > study.window_begin && *first <= study.window_end) {
      ++cell.signed_;
      ++r.never_total.signed_;
    }
  }

  // --- Listed prefixes: removed vs. present ------------------------------
  for (const DropEntry* e : index.non_incident()) {
    bool signed_at_listing = study.roas.signed_on(e->prefix, e->listed);
    if (signed_at_listing) {
      if (e->is(drop::Category::kHijacked)) {
        ++r.hijacked_signed_before_listing;
      }
      continue;  // Table 1 only covers prefixes without a ROA when added
    }
    auto rir = study.registry.rir_of(e->prefix);
    if (!rir) continue;
    size_t i_r = static_cast<size_t>(*rir);
    auto first = study.roas.first_signed(e->prefix);
    bool signed_after = first && *first >= e->listed &&
                        *first <= study.window_end;
    if (e->removed) {
      ++r.removed_from_drop[i_r].total;
      ++r.removed_total.total;
      if (signed_after) {
        ++r.removed_from_drop[i_r].signed_;
        ++r.removed_total.signed_;
        ++r.removed_signed;
        // §4.2: compare the new ROA's ASN with the origin at listing time.
        std::vector<net::Asn> origins =
            study.fleet.origins_on(e->prefix, e->listed);
        if (origins.empty()) {
          // Also look shortly before listing (withdrawn-just-before cases).
          origins = study.fleet.origins_on(e->prefix, e->listed - 3);
        }
        net::Asn roa_asn;
        net::Date best = net::DateRange::unbounded();
        for (const rpki::RoaRecord& rec :
             study.roas.records_covering(e->prefix)) {
          if (rec.lifetime.begin >= e->listed && rec.lifetime.begin < best) {
            best = rec.lifetime.begin;
            roa_asn = rec.roa.asn;
          }
        }
        if (origins.empty()) {
          ++r.removed_signed_unannounced;
        } else if (std::find(origins.begin(), origins.end(), roa_asn) !=
                   origins.end()) {
          ++r.removed_signed_same_asn;
        } else {
          ++r.removed_signed_different_asn;
        }
      }
    } else {
      ++r.present_on_drop[i_r].total;
      ++r.present_total.total;
      if (signed_after) {
        ++r.present_on_drop[i_r].signed_;
        ++r.present_total.signed_;
      }
    }
  }
  return r;
}

}  // namespace droplens::core
