// Fig 6 + Fig 7 + §6.2.2: unallocated address space — hijacks of it, how
// much remains in each RIR free pool, and whether anyone filters with the
// AS0 TALs.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "core/drop_index.hpp"
#include "core/study.hpp"
#include "rir/rir.hpp"

namespace droplens::core {

struct UnallocatedListing {
  net::Prefix prefix;
  net::Date listed;
  rir::Rir rir;                       // whose free pool it squats in
  bool after_rir_as0_policy = false;  // listed after that RIR's AS0 policy
};

struct FreePoolSample {
  net::Date date;
  std::array<double, 5> pool_slash8{};      // per RIR
  std::array<double, 5> pool_as0_covered{}; // portion under an AS0-TAL ROA
  // True when the delegation or ROA substrate was unavailable on this date;
  // the arrays above are then zero, not measured.
  bool degraded = false;
};

struct As0Result {
  // Fig 6.
  std::vector<UnallocatedListing> unallocated_listings;  // the paper's 40
  std::array<int, 5> unallocated_by_rir{};
  int listed_after_policy = 0;

  // Fig 7.
  std::vector<FreePoolSample> pool_series;
  size_t degraded_samples = 0;  // pool_series entries skipped for missing data

  // §6.2.2: per full-table peer, how many of its routes at window end would
  // an AS0-TAL-validating router have rejected.
  std::vector<size_t> peer_as0_rejectable;
  double mean_as0_rejectable = 0;
  int peers_apparently_filtering_as0 = 0;  // peers carrying none of them
};

As0Result analyze_as0(const Study& study, const DropIndex& index);

}  // namespace droplens::core
