#include "core/report.hpp"

#include <optional>
#include <ostream>

#include "core/alarms.hpp"
#include "core/as0_analysis.hpp"
#include "core/case_study.hpp"
#include "core/classification.hpp"
#include "core/data_quality.hpp"
#include "core/defenses.hpp"
#include "core/drop_index.hpp"
#include "core/engine.hpp"
#include "core/irr_analysis.hpp"
#include "core/maxlength.hpp"
#include "core/roa_status.hpp"
#include "core/rpki_uptake.hpp"
#include "core/serial_hijackers.hpp"
#include "core/snapshot_cache.hpp"
#include "core/visibility.hpp"
#include "obs/trace.hpp"
#include "util/text_table.hpp"
#include "util/thread_pool.hpp"

namespace droplens::core {

namespace {

void heading(std::ostream& out, const std::string& title) {
  out << "\n## " << title << "\n\n";
}

}  // namespace

int write_report(std::ostream& out, const Study& base_study,
                 const ReportOptions& options) {
  // Root span of the pipeline: the per-stage spans inside the analyses nest
  // under it, so `full_report --trace` shows one tree per run.
  obs::Span span("core.write_report");
  // Attach the engine unless the caller brought their own: one thread pool
  // (options.threads; 0 defers to DROPLENS_THREADS / hardware_concurrency,
  // 1 forces the sequential path) and one snapshot cache shared by every
  // analysis below. Output is byte-identical for any thread count — the
  // analyses only ever write to index-addressed buffers before aggregating
  // sequentially.
  std::optional<util::ThreadPool> pool;
  std::optional<SnapshotCache> cache;
  Study study = base_study;
  if (!study.pool) {
    pool.emplace(options.threads);
    study.pool = &*pool;
  }
  if (!study.snapshots) {
    cache.emplace(study.registry, study.fleet, study.roas, study.drop,
                  &study.irr);
    study.snapshots = &*cache;
  }

  int sections = 0;
  DropIndex index = DropIndex::build(study);

  out << "# DROP-lens study report (" << study.window_begin.to_string()
      << " .. " << study.window_end.to_string() << ")\n";

  // --- Composition --------------------------------------------------------
  heading(out, "The DROP list");
  ++sections;
  ClassificationResult cls = analyze_classification(study, index);
  out << "Prefixes ever listed: " << cls.total_prefixes << "; with SBL record: "
      << cls.with_record << " ("
      << util::percent(cls.with_record, cls.total_prefixes) << "); "
      << cls.incident_prefixes << " incident prefixes carrying "
      << util::percent(static_cast<double>(cls.incident_space.size()),
                       static_cast<double>(cls.total_space.size()))
      << " of the listed space.\n\n";
  util::TextTable cat_table({"category", "prefixes", "space /8-eq"});
  for (const CategoryStats& s : cls.per_category) {
    cat_table.add_row({std::string(drop::full_name(s.category)),
                       std::to_string(s.total_prefixes()),
                       util::fixed(s.space.slash8_equivalents(), 4)});
  }
  cat_table.print(out);

  // --- Blocklisting effects -----------------------------------------------
  heading(out, "Effects of blocklisting");
  ++sections;
  VisibilityResult vis = analyze_visibility(study, index);
  out << "Withdrawn within 30 days: "
      << util::percent(vis.withdrawn_within_30d, vis.routed_at_listing)
      << " of " << vis.routed_at_listing
      << " prefixes routed at listing. Peers filtering DROP: "
      << vis.filtering_peers << ".\n";
  RpkiUptakeResult uptake = analyze_rpki_uptake(study, index);
  out << "RPKI signing rate (never on DROP / removed / present): "
      << util::percent(uptake.never_total.signed_, uptake.never_total.total)
      << " / "
      << util::percent(uptake.removed_total.signed_,
                       uptake.removed_total.total)
      << " / "
      << util::percent(uptake.present_total.signed_,
                       uptake.present_total.total)
      << ".\n";

  // --- IRR ------------------------------------------------------------
  heading(out, "Effectiveness of the IRR");
  ++sections;
  IrrResult irr = analyze_irr(study, index);
  out << irr.prefixes_with_route_object << " prefixes ("
      << util::percent(irr.prefixes_with_route_object, irr.drop_prefix_count)
      << ") had route objects covering "
      << util::percent(static_cast<double>(irr.route_object_space.size()),
                       static_cast<double>(irr.drop_space.size()))
      << " of the DROP space. " << irr.hijacker_asn_in_route_object
      << " hijacked prefixes carried the hijacker's own ASN in the IRR ("
      << irr.distinct_hijacking_asns << " ASNs, top-3 ORG-IDs holding "
      << irr.top3_org_prefixes << ").\n";

  // --- RPKI ------------------------------------------------------------
  heading(out, "Effectiveness of RPKI");
  ++sections;
  CaseStudyResult cs = analyze_case_study(study, index);
  out << cs.signed_before_listing << " of " << cs.hijacked_prefixes
      << " hijacked prefixes were RPKI-signed before listing; "
      << cs.attacker_controlled_roas
      << " ROAs tracked the attacker's origin changes.\n";
  for (const RpkiValidHijack& h : cs.valid_hijacks) {
    out << "RPKI-VALID HIJACK: " << h.prefix.to_string() << " (ROA "
        << h.roa_asn.to_string() << "), unrouted since "
        << h.unrouted_since.to_string() << ", re-originated "
        << h.rehijacked_on.to_string() << "; " << h.siblings.size()
        << " sibling prefixes, " << h.siblings_on_drop << " on DROP.\n";
    if (options.include_case_timeline) {
      util::TextTable t({"prefix", "from", "to", "path", "RPKI", "DROP"});
      for (const TimelineRow& row : h.timeline) {
        t.add_row({row.prefix.to_string(), row.begin.to_string(),
                   row.end == net::DateRange::unbounded()
                       ? "..."
                       : row.end.to_string(),
                   row.path, row.rpki_valid ? "VALID" : "-",
                   row.on_drop ? row.drop_date.to_string() : "-"});
      }
      t.print(out);
    }
  }
  RoaStatusResult roa = analyze_roa_status(study);
  out << "Signed space " << util::fixed(roa.first().signed_slash8, 1)
      << " -> " << util::fixed(roa.last().signed_slash8, 1) << " /8-eq ("
      << util::fixed(roa.first().percent_roas_routed(), 1) << "% -> "
      << util::fixed(roa.last().percent_roas_routed(), 1)
      << "% routed); signed+unrouted "
      << util::fixed(roa.last().signed_unrouted_nonas0_slash8, 2)
      << " /8-eq; allocated+unrouted+unsigned "
      << util::fixed(roa.last().alloc_unrouted_no_roa_slash8, 2)
      << " /8-eq.\n";
  if (options.include_series) {
    out << "\ndate,signed,pct_routed,signed_unrouted,unsigned_unrouted\n";
    for (const RoaStatusSample& s : roa.series) {
      if (s.degraded) continue;  // counted in the data-quality section
      out << s.date.to_string() << ',' << util::fixed(s.signed_slash8, 2)
          << ',' << util::fixed(s.percent_roas_routed(), 2) << ','
          << util::fixed(s.signed_unrouted_nonas0_slash8, 2) << ','
          << util::fixed(s.alloc_unrouted_no_roa_slash8, 2) << '\n';
    }
  }

  // --- AS0 --------------------------------------------------------------
  heading(out, "AS0 policies");
  ++sections;
  As0Result as0 = analyze_as0(study, index);
  out << as0.unallocated_listings.size()
      << " unallocated prefixes appeared on DROP (" << as0.listed_after_policy
      << " after an RIR AS0 policy was live); "
      << as0.peers_apparently_filtering_as0
      << " peers filter with the AS0 TALs while each carries ~"
      << util::fixed(as0.mean_as0_rejectable, 0)
      << " routes those TALs would reject.\n";

  // --- Extensions ---------------------------------------------------------
  if (options.include_extensions) {
    heading(out, "Extensions");
    ++sections;
    DefenseMatrixResult def = analyze_defenses(study, index);
    out << "Defense matrix over " << def.total() << " hijacks: ROV blocks "
        << def.blocked_by_defense[static_cast<size_t>(Defense::kRov)]
        << ", +operator AS0 "
        << def.blocked_by_defense[static_cast<size_t>(
               Defense::kRovOperatorAs0)]
        << ", +RIR AS0 "
        << def.blocked_by_defense[static_cast<size_t>(Defense::kRovRirAs0)]
        << ", path-end "
        << def.blocked_by_defense[static_cast<size_t>(Defense::kPathEnd)]
        << ", BGPsec "
        << def.blocked_by_defense[static_cast<size_t>(Defense::kBgpsec)]
        << "; " << def.blocked_by_nothing << " blocked by nothing.\n";
    MaxLengthResult ml = analyze_maxlength(study, study.window_end);
    out << "maxLength ROAs: " << ml.roas_with_maxlength << " ("
        << util::percent(ml.roas_with_maxlength, ml.roas_total) << "), "
        << util::percent(ml.vulnerable, ml.roas_with_maxlength)
        << " vulnerable to forged-origin sub-prefix hijacks.\n";
    SerialHijackerResult sh = analyze_serial_hijackers(study, index);
    out << "Serial-hijacker profiling flags " << sh.flagged.size()
        << " origin ASes out of " << sh.origins_profiled << ".\n";
    AlarmResult al = analyze_alarms(study, index);
    out << "A PHAS-style monitor alarms on "
        << util::percent(al.alarm_coverage(), 1.0) << " of DROP hijacks; "
        << al.drop_hijacks_stealthy << " were stealthy.\n";
  }

  // --- Data quality -------------------------------------------------------
  // Present whenever the study carries an ingestion ledger, so degraded
  // input is always visible next to the numbers computed from it.
  if (study.quality) {
    heading(out, "Data quality");
    ++sections;
    study.quality->render(out);
    size_t total_samples = roa.series.size();
    out << "Degraded samples: roa_status " << roa.degraded_samples << "/"
        << total_samples << ", free pools " << as0.degraded_samples << "/"
        << as0.pool_series.size() << ".\n";
    if (study.quality->clean()) {
      out << "All substrates ingested clean.\n";
    }
  }
  return sections;
}

}  // namespace droplens::core
