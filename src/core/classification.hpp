// Fig 1: classification of DROP entries by prefix count and address space.
#pragma once

#include <array>

#include "core/drop_index.hpp"
#include "core/study.hpp"
#include "net/interval_set.hpp"

namespace droplens::core {

struct CategoryStats {
  drop::Category category;
  int exclusive_prefixes = 0;   // only this label
  int additional_prefixes = 0;  // this label plus others
  net::IntervalSet space;       // address space of all prefixes carrying it
  int incident_prefixes = 0;    // hijack prefixes from the AFRINIC incidents
  net::IntervalSet incident_space;

  int total_prefixes() const {
    return exclusive_prefixes + additional_prefixes;
  }
};

struct ClassificationResult {
  std::array<CategoryStats, 6> per_category;  // indexed by drop::Category
  int total_prefixes = 0;
  int with_record = 0;
  int with_asn_annotation = 0;           // §3.1: 190 of 526
  int hijacked_with_asn = 0;             // §3.1: 130
  int multi_label = 0;                   // prefixes with >1 category
  net::IntervalSet total_space;
  net::IntervalSet incident_space;       // §3.1: 48.8% of DROP space
  int incident_prefixes = 0;
  // Appendix A keyword statistics over available SBL records.
  int records_one_keyword = 0;
  int records_two_keywords = 0;
  int records_no_keyword = 0;
};

ClassificationResult analyze_classification(const Study& study,
                                            const DropIndex& index);

}  // namespace droplens::core
