#include "core/impact.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace droplens::core {

bgp::AsGraph build_graph_from_fleet(const bgp::CollectorFleet& fleet) {
  bgp::AsGraph graph;
  std::set<std::pair<uint32_t, uint32_t>> edges;
  std::unordered_set<uint32_t> has_provider;
  std::unordered_set<uint32_t> all;
  for (const net::Prefix& p : fleet.announced_prefixes()) {
    for (const bgp::Episode& e : fleet.episodes(p)) {
      const std::vector<net::Asn>& hops = e.path->hops();
      for (size_t i = 0; i < hops.size(); ++i) {
        all.insert(hops[i].value());
        if (i + 1 == hops.size()) continue;
        // Collector-adjacent side is the provider of the next hop.
        auto edge = std::make_pair(hops[i].value(), hops[i + 1].value());
        if (edge.first == edge.second) continue;  // prepending
        if (edges.insert(edge).second) {
          graph.add_provider_customer(net::Asn(edge.first),
                                      net::Asn(edge.second));
          has_provider.insert(edge.second);
        }
      }
    }
  }
  // Provider-less ASes are the top tier: mesh them so routes can cross.
  std::vector<uint32_t> top;
  for (uint32_t as : all) {
    if (!has_provider.contains(as)) top.push_back(as);
  }
  std::sort(top.begin(), top.end());
  for (size_t i = 0; i < top.size(); ++i) {
    for (size_t j = i + 1; j < top.size(); ++j) {
      graph.add_peering(net::Asn(top[i]), net::Asn(top[j]));
    }
  }
  return graph;
}

namespace {

/// Enforcer sets by "largest networks first": customer degree descending,
/// ASN ascending as the tiebreak (deterministic).
std::vector<net::Asn> enforcer_order(const bgp::AsGraph& graph) {
  std::vector<net::Asn> order = graph.ases();
  std::sort(order.begin(), order.end(), [&](net::Asn a, net::Asn b) {
    size_t da = graph.customers(a).size();
    size_t db = graph.customers(b).size();
    if (da != db) return da > db;
    return a < b;
  });
  return order;
}

struct Contest {
  net::Asn victim;
  net::Asn attacker;
};

}  // namespace

ImpactResult analyze_rov_adoption(const Study& study, const DropIndex& index,
                                  const std::vector<double>& adoption_levels) {
  ImpactResult result;
  bgp::AsGraph graph = build_graph_from_fleet(study.fleet);
  result.graph_ases = graph.as_count();

  // Collect contested hijacks: the hijack origination at listing plus the
  // prefix's most recent earlier origination (the victim).
  std::vector<Contest> contests;
  for (const DropEntry* e : index.non_incident()) {
    bool is_hijack = e->is(drop::Category::kHijacked) ||
                     e->is(drop::Category::kUnallocated);
    if (!is_hijack) continue;
    const bgp::Episode* hijack = nullptr;
    for (const bgp::Episode& ep : study.fleet.episodes(e->prefix)) {
      if (ep.range.begin <= e->listed &&
          (!hijack || ep.range.begin > hijack->range.begin)) {
        hijack = &ep;
      }
    }
    if (!hijack) continue;
    const bgp::Episode* victim = nullptr;
    for (const bgp::Episode& ep : study.fleet.episodes(e->prefix)) {
      if (ep.range.end != net::DateRange::unbounded() &&
          ep.range.end <= hijack->range.begin &&
          (!victim || ep.range.end > victim->range.end)) {
        victim = &ep;
      }
    }
    if (!victim) continue;  // abandoned space with no known victim adjacency
    net::Asn victim_origin = victim->origin();
    net::Asn attacker_origin = hijack->origin();
    if (victim_origin == attacker_origin) {
      // Forged-origin re-use: the "attacker" is indistinguishable at the
      // origination level; model it as the attacker announcing from its
      // upstream (the first hop) instead.
      attacker_origin = hijack->path->hops().front();
    }
    if (!graph.contains(victim_origin) || !graph.contains(attacker_origin)) {
      continue;
    }
    contests.push_back(Contest{victim_origin, attacker_origin});
  }
  result.hijacks_evaluated = contests.size();
  if (contests.empty()) return result;

  // The unsigned prefix passes ROV everywhere, so its capture does not
  // depend on adoption: propagate each contest once.
  double total = static_cast<double>(graph.as_count());
  double capture_unsigned = 0;
  for (const Contest& c : contests) {
    bgp::PropagationResult plain = bgp::propagate(
        graph, {{c.victim, false}, {c.attacker, false}}, {});
    capture_unsigned +=
        static_cast<double>(plain.believers(c.attacker)) / total;
  }
  capture_unsigned /= static_cast<double>(contests.size());

  std::vector<net::Asn> order = enforcer_order(graph);
  for (double adoption : adoption_levels) {
    std::unordered_set<net::Asn> enforcers;
    size_t n = static_cast<size_t>(adoption *
                                   static_cast<double>(order.size()));
    for (size_t i = 0; i < n && i < order.size(); ++i) {
      enforcers.insert(order[i]);
    }
    double sum_signed = 0;
    for (const Contest& c : contests) {
      // Signed prefix: the hijacked origination validates invalid.
      bgp::PropagationResult protected_world = bgp::propagate(
          graph, {{c.victim, false}, {c.attacker, true}}, enforcers);
      sum_signed += static_cast<double>(
                        protected_world.believers(c.attacker)) /
                    total;
    }
    result.points.push_back(AdoptionPoint{
        adoption, capture_unsigned,
        sum_signed / static_cast<double>(contests.size())});
  }
  return result;
}

}  // namespace droplens::core
