// Table 1 + §4.2: RPKI signing rates of unsigned prefixes, split by their
// relationship with DROP (never listed / listed and removed / still listed).
#pragma once

#include <array>

#include "core/drop_index.hpp"
#include "core/study.hpp"
#include "rir/rir.hpp"

namespace droplens::core {

struct SigningCell {
  int total = 0;    // prefixes without a ROA at the reference date
  int signed_ = 0;  // of those, signed by window end

  double rate() const {
    return total ? static_cast<double>(signed_) / total : 0.0;
  }
};

struct RpkiUptakeResult {
  // Rows: the five RIRs; columns: never on DROP / removed / present.
  std::array<SigningCell, 5> never_on_drop;
  std::array<SigningCell, 5> removed_from_drop;
  std::array<SigningCell, 5> present_on_drop;
  SigningCell never_total, removed_total, present_total;

  // §4.2: of prefixes removed from DROP and signed during the window, how
  // the ROA's ASN compares with the BGP origin at listing time.
  int removed_signed = 0;
  int removed_signed_same_asn = 0;
  int removed_signed_different_asn = 0;
  int removed_signed_unannounced = 0;

  // §6.1 context: hijack-labeled prefixes signed before they were listed.
  int hijacked_signed_before_listing = 0;
};

RpkiUptakeResult analyze_rpki_uptake(const Study& study,
                                     const DropIndex& index);

}  // namespace droplens::core
