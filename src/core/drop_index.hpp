// Enriched per-prefix view of the DROP list: classification, listing dates,
// and the AFRINIC-incident carve-out that §3.1 applies before every analysis.
#pragma once

#include <optional>
#include <vector>

#include "core/study.hpp"
#include "drop/category.hpp"
#include "drop/sbl.hpp"

namespace droplens::core {

struct DropEntry {
  net::Prefix prefix;
  net::Date listed;               // first listing
  bool removed = false;           // delisted before window end
  net::Date removed_on;
  bool has_record = false;
  drop::Classification cls;       // empty categories if no record
  drop::CategorySet categories;   // cls.categories, or {NR} if no record
  bool incident = false;          // one of the two AFRINIC incidents

  bool is(drop::Category c) const { return categories.has(c); }
};

/// One entry per unique prefix ever listed, in prefix order.
class DropIndex {
 public:
  static DropIndex build(const Study& study);

  const std::vector<DropEntry>& entries() const { return entries_; }

  /// Entries excluding the AFRINIC incidents — the population every §4–§6
  /// analysis runs on.
  std::vector<const DropEntry*> non_incident() const;

  size_t incident_count() const;

 private:
  std::vector<DropEntry> entries_;
};

}  // namespace droplens::core
