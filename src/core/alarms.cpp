#include "core/alarms.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace droplens::core {

std::string_view to_string(AlarmKind k) {
  switch (k) {
    case AlarmKind::kNewOrigin: return "new-origin";
    case AlarmKind::kMoas: return "moas";
    case AlarmKind::kNewSubPrefix: return "new-sub-prefix";
  }
  return "?";
}

AlarmResult analyze_alarms(const Study& study, const DropIndex& index) {
  AlarmResult r;

  // Gather every episode, date-ordered, so the monitor replays history.
  struct Event {
    net::Prefix prefix;
    bgp::Episode episode;
  };
  std::vector<Event> events;
  for (const net::Prefix& p : study.fleet.announced_prefixes()) {
    for (const bgp::Episode& e : study.fleet.episodes(p)) {
      events.push_back(Event{p, e});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.episode.range.begin < b.episode.range.begin;
  });

  // Monitor state: per prefix, the set of origins ever seen.
  std::unordered_map<net::Prefix, std::unordered_set<uint32_t>> seen_origins;
  // Monitored "covering" prefixes: everything announced before the window
  // is a baseline route whose more-specifics we watch.
  net::PrefixMap<char> baseline;

  std::unordered_set<net::Prefix> alarmed_prefixes;

  for (const Event& ev : events) {
    net::Date begin = ev.episode.range.begin;
    net::Asn origin = ev.episode.origin();
    auto& origins = seen_origins[ev.prefix];
    bool in_window = begin >= study.window_begin && begin < study.window_end;

    if (in_window) {
      // New-origin alarm.
      if (!origins.empty() && !origins.contains(origin.value())) {
        Alarm a;
        a.kind = AlarmKind::kNewOrigin;
        a.prefix = ev.prefix;
        a.monitored = ev.prefix;
        a.when = begin;
        a.new_origin = origin;
        a.on_drop = study.drop.first_listed(ev.prefix).has_value();
        if (a.on_drop) alarmed_prefixes.insert(ev.prefix);
        r.alarms.push_back(std::move(a));
      }
      // MOAS alarm: another origin is announcing right now.
      for (const bgp::Episode& other : study.fleet.episodes(ev.prefix)) {
        if (other.range.contains(begin) && other.origin() != origin &&
            other.range.begin < begin) {
          Alarm a;
          a.kind = AlarmKind::kMoas;
          a.prefix = ev.prefix;
          a.monitored = ev.prefix;
          a.when = begin;
          a.new_origin = origin;
          a.on_drop = study.drop.first_listed(ev.prefix).has_value();
          if (a.on_drop) alarmed_prefixes.insert(ev.prefix);
          r.alarms.push_back(std::move(a));
          break;
        }
      }
      // New-sub-prefix alarm: the announced prefix is a fresh more-specific
      // of a baseline route announced by someone else.
      if (origins.empty()) {
        bool alarmed = false;
        baseline.for_each_covering(
            ev.prefix, [&](const net::Prefix& mon, char) {
              if (alarmed || mon == ev.prefix) return;
              Alarm a;
              a.kind = AlarmKind::kNewSubPrefix;
              a.prefix = ev.prefix;
              a.monitored = mon;
              a.when = begin;
              a.new_origin = origin;
              a.on_drop = study.drop.first_listed(ev.prefix).has_value();
              if (a.on_drop) alarmed_prefixes.insert(ev.prefix);
              r.alarms.push_back(std::move(a));
              alarmed = true;
            });
      }
    } else if (begin < study.window_begin) {
      baseline.insert_or_assign(ev.prefix, 1);
    }
    origins.insert(origin.value());
  }

  // Coverage over the DROP hijack population.
  for (const DropEntry* e : index.non_incident()) {
    bool is_hijack = e->is(drop::Category::kHijacked) ||
                     e->is(drop::Category::kUnallocated);
    if (!is_hijack) continue;
    if (!study.fleet.first_announced(e->prefix)) continue;
    ++r.drop_hijacks_total;
    if (alarmed_prefixes.contains(e->prefix)) {
      ++r.drop_hijacks_alarmed;
    } else {
      // Stealthy iff the in-window announcement re-used an origin the
      // monitor had already seen for this prefix.
      ++r.drop_hijacks_stealthy;
    }
  }
  return r;
}

}  // namespace droplens::core
