#include "core/alarms.hpp"

#include <algorithm>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

namespace droplens::core {

std::string_view to_string(AlarmKind k) {
  switch (k) {
    case AlarmKind::kNewOrigin: return "new-origin";
    case AlarmKind::kMoas: return "moas";
    case AlarmKind::kNewSubPrefix: return "new-sub-prefix";
  }
  return "?";
}

AlarmResult analyze_alarms(const Study& study, const DropIndex& index) {
  AlarmResult r;

  // Gather every episode, date-ordered, so the monitor replays history.
  struct Event {
    net::Prefix prefix;
    bgp::Episode episode;
  };
  std::vector<Event> events;
  for (const net::Prefix& p : study.fleet.announced_prefixes()) {
    for (const bgp::Episode& e : study.fleet.episodes(p)) {
      events.push_back(Event{p, e});
    }
  }
  // Deterministic total order: date first, then (prefix, origin, end) as the
  // tie-break within a day. The streaming subsystem replays the same order
  // (stream::canonical_less), which is what makes online == batch exact.
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    auto key = [](const Event& e) {
      return std::tuple(e.episode.range.begin, e.prefix,
                        e.episode.origin().value(), e.episode.range.end);
    };
    return key(a) < key(b);
  });

  // Monitor state: per prefix, the set of origins ever seen.
  std::unordered_map<net::Prefix, std::unordered_set<uint32_t>> seen_origins;
  // Monitored "covering" prefixes: everything announced before the window
  // is a baseline route whose more-specifics we watch.
  net::PrefixMap<char> baseline;

  for (const Event& ev : events) {
    net::Date begin = ev.episode.range.begin;
    net::Asn origin = ev.episode.origin();
    auto& origins = seen_origins[ev.prefix];
    bool in_window = begin >= study.window_begin && begin < study.window_end;

    if (in_window) {
      // New-origin alarm.
      if (!origins.empty() && !origins.contains(origin.value())) {
        Alarm a;
        a.kind = AlarmKind::kNewOrigin;
        a.prefix = ev.prefix;
        a.monitored = ev.prefix;
        a.when = begin;
        a.new_origin = origin;
        a.on_drop = study.drop.first_listed(ev.prefix).has_value();
        r.alarms.push_back(std::move(a));
      }
      // MOAS alarm: another origin is announcing right now.
      for (const bgp::Episode& other : study.fleet.episodes(ev.prefix)) {
        if (other.range.contains(begin) && other.origin() != origin &&
            other.range.begin < begin) {
          Alarm a;
          a.kind = AlarmKind::kMoas;
          a.prefix = ev.prefix;
          a.monitored = ev.prefix;
          a.when = begin;
          a.new_origin = origin;
          a.on_drop = study.drop.first_listed(ev.prefix).has_value();
          r.alarms.push_back(std::move(a));
          break;
        }
      }
      // New-sub-prefix alarm: the announced prefix is a fresh more-specific
      // of a baseline route announced by someone else.
      if (origins.empty()) {
        bool alarmed = false;
        baseline.for_each_covering(
            ev.prefix, [&](const net::Prefix& mon, char) {
              if (alarmed || mon == ev.prefix) return;
              Alarm a;
              a.kind = AlarmKind::kNewSubPrefix;
              a.prefix = ev.prefix;
              a.monitored = mon;
              a.when = begin;
              a.new_origin = origin;
              a.on_drop = study.drop.first_listed(ev.prefix).has_value();
              r.alarms.push_back(std::move(a));
              alarmed = true;
            });
      }
    } else if (begin < study.window_begin) {
      baseline.insert_or_assign(ev.prefix, 1);
    }
    origins.insert(origin.value());
  }

  add_drop_coverage(r, study, index);
  return r;
}

void add_drop_coverage(AlarmResult& r, const Study& study,
                       const DropIndex& index) {
  std::unordered_set<net::Prefix> alarmed_prefixes;
  for (const Alarm& a : r.alarms) {
    if (a.on_drop) alarmed_prefixes.insert(a.prefix);
  }
  // Coverage over the DROP hijack population.
  for (const DropEntry* e : index.non_incident()) {
    bool is_hijack = e->is(drop::Category::kHijacked) ||
                     e->is(drop::Category::kUnallocated);
    if (!is_hijack) continue;
    if (!study.fleet.first_announced(e->prefix)) continue;
    ++r.drop_hijacks_total;
    if (alarmed_prefixes.contains(e->prefix)) {
      ++r.drop_hijacks_alarmed;
    } else {
      // Stealthy iff the in-window announcement re-used an origin the
      // monitor had already seen for this prefix.
      ++r.drop_hijacks_stealthy;
    }
  }
}

}  // namespace droplens::core
