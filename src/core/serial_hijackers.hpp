// Serial-hijacker profiling (baseline; Testart et al., IMC'19).
//
// The paper's related work profiles "serial hijackers" — ASes that
// repeatedly originate prefixes they do not hold. We implement the
// feature-based detector as a baseline: per origin AS, compute the
// behavioural features Testart et al. found discriminative (short-lived
// announcements, many distinct prefixes, a large fraction of announced
// space ending up blocklisted, intermittent presence) and flag the ASes
// whose profile matches. On the synthetic world this recovers the §5
// hijacking ASNs and the Fig 4 actors without using ground truth.
#pragma once

#include <vector>

#include "core/drop_index.hpp"
#include "core/study.hpp"
#include "net/asn.hpp"

namespace droplens::core {

struct OriginProfile {
  net::Asn asn;
  int prefixes_originated = 0;
  int episodes = 0;
  int short_lived_episodes = 0;   // shorter than 90 days
  int prefixes_on_drop = 0;
  double median_episode_days = 0;
  uint64_t address_span = 0;      // total distinct address space originated

  double short_lived_rate() const {
    return episodes ? static_cast<double>(short_lived_episodes) / episodes
                    : 0;
  }
  double drop_rate() const {
    return prefixes_originated
               ? static_cast<double>(prefixes_on_drop) / prefixes_originated
               : 0;
  }
  /// The classifier: several prefixes, mostly short-lived announcements,
  /// and a large share of them blocklisted.
  bool flagged_serial_hijacker() const {
    return prefixes_originated >= 3 && short_lived_rate() >= 0.5 &&
           drop_rate() >= 0.5;
  }
};

struct SerialHijackerResult {
  std::vector<OriginProfile> flagged;      // sorted by prefixes_originated
  int origins_profiled = 0;
  int origins_with_drop_prefix = 0;
};

/// Profile every origin AS observed during the study window.
SerialHijackerResult analyze_serial_hijackers(const Study& study,
                                              const DropIndex& index);

}  // namespace droplens::core
