#include "core/as0_analysis.hpp"

#include "rpki/as0_policy.hpp"

namespace droplens::core {

As0Result analyze_as0(const Study& study, const DropIndex& index) {
  As0Result r;

  // --- Fig 6: unallocated prefixes appearing on DROP ---------------------
  for (const DropEntry* e : index.non_incident()) {
    if (!study.registry.is_fully_unallocated(e->prefix, e->listed)) continue;
    auto rir = study.registry.rir_of(e->prefix);
    if (!rir) continue;
    UnallocatedListing l;
    l.prefix = e->prefix;
    l.listed = e->listed;
    l.rir = *rir;
    auto policy = rpki::as0_policy_date(*rir);
    l.after_rir_as0_policy = policy && e->listed >= *policy;
    if (l.after_rir_as0_policy) ++r.listed_after_policy;
    ++r.unallocated_by_rir[static_cast<size_t>(*rir)];
    r.unallocated_listings.push_back(l);
  }

  // --- Fig 7: free pools over time ----------------------------------------
  rpki::TalSet as0_tals;
  as0_tals.add(rpki::Tal::kApnicAs0);
  as0_tals.add(rpki::Tal::kLacnicAs0);
  auto sample = [&](net::Date d) {
    FreePoolSample s;
    s.date = d;
    net::IntervalSet as0_space = study.roas.signed_space(
        d, as0_tals, rpki::RoaArchive::Filter::kAs0Only);
    for (rir::Rir rir : rir::kAllRirs) {
      net::IntervalSet pool = study.registry.free_pool(rir, d);
      s.pool_slash8[static_cast<size_t>(rir)] = pool.slash8_equivalents();
      s.pool_as0_covered[static_cast<size_t>(rir)] =
          net::IntervalSet::set_intersection(pool, as0_space)
              .slash8_equivalents();
    }
    return s;
  };
  for (net::Date d = study.window_begin; d < study.window_end; d += 30) {
    r.pool_series.push_back(sample(d));
  }
  r.pool_series.push_back(sample(study.window_end));

  // --- §6.2.2: would any peer have filtered with the AS0 TALs? -----------
  net::Date end = study.window_end;
  std::vector<net::Prefix> rejectable;
  for (const net::Prefix& p : study.fleet.announced_prefixes_on(end)) {
    // An AS0-TAL ROA covering the prefix makes every announcement of it
    // invalid for a validator that has those TALs configured.
    bool covered_by_as0 = false;
    for (const rpki::Roa& roa : study.roas.covering(p, end, as0_tals)) {
      if (roa.is_as0()) covered_by_as0 = true;
    }
    if (covered_by_as0) rejectable.push_back(p);
  }
  size_t total = 0;
  for (const bgp::Peer& peer : study.fleet.peers()) {
    if (!peer.full_table) continue;
    size_t carried = 0;
    for (const net::Prefix& p : rejectable) {
      if (study.fleet.peer_observes(peer.id, p, end)) ++carried;
    }
    r.peer_as0_rejectable.push_back(carried);
    total += carried;
    if (carried == 0) ++r.peers_apparently_filtering_as0;
  }
  r.mean_as0_rejectable =
      r.peer_as0_rejectable.empty()
          ? 0
          : static_cast<double>(total) / r.peer_as0_rejectable.size();
  return r;
}

}  // namespace droplens::core
