#include "core/as0_analysis.hpp"

#include "core/engine.hpp"
#include "obs/trace.hpp"
#include "rpki/as0_policy.hpp"

namespace droplens::core {

As0Result analyze_as0(const Study& study, const DropIndex& index) {
  obs::Span span("core.as0_analysis");
  As0Result r;

  // --- Fig 6: unallocated prefixes appearing on DROP ---------------------
  for (const DropEntry* e : index.non_incident()) {
    if (!study.registry.is_fully_unallocated(e->prefix, e->listed)) continue;
    auto rir = study.registry.rir_of(e->prefix);
    if (!rir) continue;
    UnallocatedListing l;
    l.prefix = e->prefix;
    l.listed = e->listed;
    l.rir = *rir;
    auto policy = rpki::as0_policy_date(*rir);
    l.after_rir_as0_policy = policy && e->listed >= *policy;
    if (l.after_rir_as0_policy) ++r.listed_after_policy;
    ++r.unallocated_by_rir[static_cast<size_t>(*rir)];
    r.unallocated_listings.push_back(l);
  }

  // --- Fig 7: free pools over time ----------------------------------------
  rpki::TalSet as0_tals;
  as0_tals.add(rpki::Tal::kApnicAs0);
  as0_tals.add(rpki::Tal::kLacnicAs0);
  auto sample = [&](net::Date d) {
    FreePoolSample s;
    s.date = d;
    engine::SetPtr as0_space = engine::signed_space(
        study, d, as0_tals, rpki::RoaArchive::Filter::kAs0Only);
    if (!as0_space) {
      s.degraded = true;
      return s;
    }
    for (rir::Rir rir : rir::kAllRirs) {
      engine::SetPtr pool = engine::free_pool(study, rir, d);
      if (!pool) {
        s = FreePoolSample{};
        s.date = d;
        s.degraded = true;  // substrate missing this day: skip-and-count
        return s;
      }
      s.pool_slash8[static_cast<size_t>(rir)] = pool->slash8_equivalents();
      s.pool_as0_covered[static_cast<size_t>(rir)] =
          net::IntervalSet::set_intersection(*pool, *as0_space)
              .slash8_equivalents();
    }
    return s;
  };
  const std::vector<net::Date> dates = engine::sample_dates(study);
  r.pool_series.resize(dates.size());
  engine::parallel_for(study, dates.size(), [&](size_t i) {
    r.pool_series[i] = sample(dates[i]);
  });
  for (const FreePoolSample& s : r.pool_series) {
    if (s.degraded) ++r.degraded_samples;
  }

  // --- §6.2.2: would any peer have filtered with the AS0 TALs? -----------
  net::Date end = study.window_end;
  const std::vector<net::Prefix> announced =
      study.fleet.announced_prefixes_on(end);
  // An AS0-TAL ROA covering the prefix makes every announcement of it
  // invalid for a validator that has those TALs configured. Flag each
  // announced prefix in parallel, then keep prefix order for determinism.
  std::vector<uint8_t> rejectable_flag(announced.size(), 0);
  engine::parallel_for(study, announced.size(), [&](size_t i) {
    for (const rpki::Roa& roa : study.roas.covering(announced[i], end,
                                                    as0_tals)) {
      if (roa.is_as0()) {
        rejectable_flag[i] = 1;
        break;
      }
    }
  });
  std::vector<net::Prefix> rejectable;
  for (size_t i = 0; i < announced.size(); ++i) {
    if (rejectable_flag[i]) rejectable.push_back(announced[i]);
  }

  std::vector<const bgp::Peer*> full_table_peers;
  for (const bgp::Peer& peer : study.fleet.peers()) {
    if (peer.full_table) full_table_peers.push_back(&peer);
  }
  std::vector<size_t> carried_by_peer(full_table_peers.size(), 0);
  engine::parallel_for(study, full_table_peers.size(), [&](size_t i) {
    size_t carried = 0;
    for (const net::Prefix& p : rejectable) {
      if (study.fleet.peer_observes(full_table_peers[i]->id, p, end)) {
        ++carried;
      }
    }
    carried_by_peer[i] = carried;
  });
  size_t total = 0;
  for (size_t carried : carried_by_peer) {
    r.peer_as0_rejectable.push_back(carried);
    total += carried;
    if (carried == 0) ++r.peers_apparently_filtering_as0;
  }
  r.mean_as0_rejectable =
      r.peer_as0_rejectable.empty()
          ? 0
          : static_cast<double>(total) / r.peer_as0_rejectable.size();
  return r;
}

}  // namespace droplens::core
