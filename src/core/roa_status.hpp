// Fig 5 + §6.2.1: routing status of RPKI-signed address space over time,
// and who holds the signed-but-unrouted space.
#pragma once

#include <string>
#include <vector>

#include "core/study.hpp"
#include "net/interval_set.hpp"

namespace droplens::core {

struct RoaStatusSample {
  net::Date date;
  double signed_slash8 = 0;             // allocated ROAs (non-AS0 TALs)
  double signed_routed_slash8 = 0;
  double signed_unrouted_nonas0_slash8 = 0;
  double alloc_unrouted_no_roa_slash8 = 0;
  // True when a substrate needed by this sample date was unavailable (see
  // core/data_quality.hpp); the values above are then zero, not measured.
  bool degraded = false;

  double percent_roas_routed() const {
    return signed_slash8 > 0 ? 100.0 * signed_routed_slash8 / signed_slash8
                             : 0.0;
  }
};

struct HolderSpace {
  std::string holder;
  double slash8 = 0;
};

struct RoaStatusResult {
  std::vector<RoaStatusSample> series;  // monthly samples over the window
  size_t degraded_samples = 0;          // series entries skipped for missing data

  // End-of-window facts (computed on the latest non-degraded sample date).
  std::vector<HolderSpace> top_signed_unrouted_holders;  // Amazon et al.
  double top3_share = 0;                   // §6.2.1's 70.1%
  double arin_share_of_unrouted_unsigned = 0;  // §6.1's 60.8%

  /// First/last sample that was actually measured; falls back to the raw
  /// endpoints when every sample degraded.
  const RoaStatusSample& first() const {
    for (const RoaStatusSample& s : series) {
      if (!s.degraded) return s;
    }
    return series.front();
  }
  const RoaStatusSample& last() const {
    for (auto it = series.rbegin(); it != series.rend(); ++it) {
      if (!it->degraded) return *it;
    }
    return series.back();
  }
};

RoaStatusResult analyze_roa_status(const Study& study);

}  // namespace droplens::core
