#include "core/data_quality.hpp"

#include <algorithm>
#include <ostream>

#include "util/text_table.hpp"

namespace droplens::core {

std::string_view to_string(Feed f) {
  switch (f) {
    case Feed::kDropFeed: return "DROP feed";
    case Feed::kBgpUpdates: return "BGP updates";
    case Feed::kDelegations: return "RIR delegations";
    case Feed::kRoas: return "ROA archive";
    case Feed::kIrr: return "IRR dumps";
  }
  return "?";
}

std::string_view metric_label(Feed f) {
  switch (f) {
    case Feed::kDropFeed: return "drop";
    case Feed::kBgpUpdates: return "bgp";
    case Feed::kDelegations: return "delegations";
    case Feed::kRoas: return "roas";
    case Feed::kIrr: return "irr";
  }
  return "?";
}

void DataQuality::note_input(Feed f, const util::ParseReport& report) {
  aggregate_[idx(f)].merge(report);
  if (report.skipped() == 0) return;
  std::vector<util::ParseReport>& worst = worst_[idx(f)];
  worst.push_back(report);
  std::stable_sort(worst.begin(), worst.end(),
                   [](const util::ParseReport& a, const util::ParseReport& b) {
                     return a.skipped() > b.skipped();
                   });
  if (worst.size() > kWorstInputs) worst.resize(kWorstInputs);
}

void DataQuality::mark_day_unavailable(Feed f, net::Date d) {
  unavailable_[idx(f)].insert(d);
}

bool DataQuality::day_available(Feed f, net::Date d) const {
  return !unavailable_[idx(f)].contains(d);
}

const std::set<net::Date>& DataQuality::unavailable_days(Feed f) const {
  return unavailable_[idx(f)];
}

const util::ParseReport& DataQuality::report(Feed f) const {
  return aggregate_[idx(f)];
}

const std::vector<util::ParseReport>& DataQuality::worst_inputs(Feed f) const {
  return worst_[idx(f)];
}

size_t DataQuality::total_skipped() const {
  size_t n = 0;
  for (const util::ParseReport& r : aggregate_) n += r.skipped();
  return n;
}

size_t DataQuality::total_unavailable_days() const {
  size_t n = 0;
  for (const std::set<net::Date>& days : unavailable_) n += days.size();
  return n;
}

void DataQuality::render(std::ostream& out) const {
  util::TextTable table(
      {"substrate", "records", "skipped", "days unavailable"});
  for (Feed f : kAllFeeds) {
    const util::ParseReport& r = report(f);
    table.add_row({std::string(to_string(f)), std::to_string(r.parsed()),
                   std::to_string(r.skipped()),
                   std::to_string(unavailable_days(f).size())});
  }
  table.print(out);
  for (Feed f : kAllFeeds) {
    for (const util::ParseReport& r : worst_inputs(f)) {
      out << "worst input (" << to_string(f) << "): " << r.summary() << '\n';
    }
    const std::set<net::Date>& days = unavailable_days(f);
    if (!days.empty()) {
      out << "degraded days (" << to_string(f) << "):";
      size_t shown = 0;
      for (net::Date d : days) {
        if (shown++ == 8) {
          out << " ... +" << days.size() - 8 << " more";
          break;
        }
        out << ' ' << d.to_string();
      }
      out << '\n';
    }
  }
}

void DataQuality::export_metrics(obs::Registry& reg,
                                 size_t window_days) const {
  reg.gauge("droplens_feed_days_total", {},
            "Days in the study window each feed is expected to cover")
      .set(static_cast<int64_t>(window_days));
  for (Feed f : kAllFeeds) {
    obs::Labels labels{{"feed", std::string(metric_label(f))}};
    reg.gauge("droplens_feed_days_degraded", labels,
              "Days whose snapshot was unusable, per feed")
        .set(static_cast<int64_t>(unavailable_days(f).size()));
    reg.gauge("droplens_feed_records_parsed_total", labels,
              "Records ingested per feed (lenient or strict)")
        .set(static_cast<int64_t>(report(f).parsed()));
    reg.gauge("droplens_feed_records_skipped_total", labels,
              "Damaged records skipped per feed under lenient parsing")
        .set(static_cast<int64_t>(report(f).skipped()));
  }
}

}  // namespace droplens::core
