#include "core/maxlength.hpp"

namespace droplens::core {

bool maxlength_vulnerable(const Study& study, const rpki::Roa& roa,
                          net::Date d) {
  if (roa.max_length <= roa.prefix.length() || roa.is_as0()) return false;
  // The attacker forges roa.asn and announces a /maxLength sub-prefix. A
  // destination is protected only where the owner itself announces at the
  // maximum allowed specificity: any point of the prefix covered solely by
  // shorter owner announcements loses longest-prefix match to the forger.
  net::IntervalSet protected_space;
  for (const auto& [p, e] : study.fleet.episodes_covered_by(roa.prefix)) {
    if (p.length() == roa.max_length && e.range.contains(d) &&
        e.origin() == roa.asn) {
      protected_space.insert(p);
    }
  }
  return protected_space.size() < roa.prefix.size();
}

MaxLengthResult analyze_maxlength(const Study& study, net::Date d) {
  MaxLengthResult r;
  r.date = d;
  for (const rpki::Roa& roa : study.roas.live_roas(d)) {
    ++r.roas_total;
    if (roa.is_as0() || roa.max_length <= roa.prefix.length()) continue;
    ++r.roas_with_maxlength;
    if (maxlength_vulnerable(study, roa, d)) {
      ++r.vulnerable;
      r.vulnerable_space.insert(roa.prefix);
    }
  }
  return r;
}

}  // namespace droplens::core
