#include "core/classification.hpp"

namespace droplens::core {

ClassificationResult analyze_classification(const Study& study,
                                            const DropIndex& index) {
  (void)study;
  ClassificationResult r;
  for (size_t i = 0; i < drop::kAllCategories.size(); ++i) {
    r.per_category[i].category = drop::kAllCategories[i];
  }

  for (const DropEntry& e : index.entries()) {
    ++r.total_prefixes;
    r.total_space.insert(e.prefix);
    if (e.has_record) {
      ++r.with_record;
      if (e.cls.malicious_asn) {
        ++r.with_asn_annotation;
        if (e.is(drop::Category::kHijacked)) ++r.hijacked_with_asn;
      }
      size_t keywords = e.cls.matched_keywords.size();
      if (keywords == 0) {
        ++r.records_no_keyword;
      } else if (keywords == 1) {
        ++r.records_one_keyword;
      } else {
        ++r.records_two_keywords;
      }
    }
    if (e.categories.count() > 1) ++r.multi_label;
    if (e.incident) {
      ++r.incident_prefixes;
      r.incident_space.insert(e.prefix);
    }
    for (drop::Category c : drop::kAllCategories) {
      if (!e.is(c)) continue;
      CategoryStats& stats = r.per_category[static_cast<size_t>(c)];
      if (e.categories.exclusive(c)) {
        ++stats.exclusive_prefixes;
      } else {
        ++stats.additional_prefixes;
      }
      stats.space.insert(e.prefix);
      if (e.incident) {
        ++stats.incident_prefixes;
        stats.incident_space.insert(e.prefix);
      }
    }
  }
  return r;
}

}  // namespace droplens::core
