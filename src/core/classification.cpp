#include "core/classification.hpp"

#include <algorithm>
#include <vector>

#include "core/engine.hpp"
#include "obs/trace.hpp"

namespace droplens::core {

namespace {

// Tally one entry into `r`. Shared by the sequential path and the per-chunk
// partials of the parallel path.
void tally(ClassificationResult& r, const DropEntry& e) {
  ++r.total_prefixes;
  r.total_space.insert(e.prefix);
  if (e.has_record) {
    ++r.with_record;
    if (e.cls.malicious_asn) {
      ++r.with_asn_annotation;
      if (e.is(drop::Category::kHijacked)) ++r.hijacked_with_asn;
    }
    size_t keywords = e.cls.matched_keywords.size();
    if (keywords == 0) {
      ++r.records_no_keyword;
    } else if (keywords == 1) {
      ++r.records_one_keyword;
    } else {
      ++r.records_two_keywords;
    }
  }
  if (e.categories.count() > 1) ++r.multi_label;
  if (e.incident) {
    ++r.incident_prefixes;
    r.incident_space.insert(e.prefix);
  }
  for (drop::Category c : drop::kAllCategories) {
    if (!e.is(c)) continue;
    CategoryStats& stats = r.per_category[static_cast<size_t>(c)];
    if (e.categories.exclusive(c)) {
      ++stats.exclusive_prefixes;
    } else {
      ++stats.additional_prefixes;
    }
    stats.space.insert(e.prefix);
    if (e.incident) {
      ++stats.incident_prefixes;
      stats.incident_space.insert(e.prefix);
    }
  }
}

void merge_space(net::IntervalSet& into, const net::IntervalSet& from) {
  for (const net::IntervalSet::Interval& iv : from.intervals()) {
    into.insert(iv.begin, iv.end);
  }
}

// Fold `part` into `r`. All fields are either sums or interval-set unions,
// both order-insensitive, so merging chunk partials in chunk order yields
// the same result as the sequential tally.
void merge(ClassificationResult& r, const ClassificationResult& part) {
  r.total_prefixes += part.total_prefixes;
  r.with_record += part.with_record;
  r.with_asn_annotation += part.with_asn_annotation;
  r.hijacked_with_asn += part.hijacked_with_asn;
  r.multi_label += part.multi_label;
  r.incident_prefixes += part.incident_prefixes;
  r.records_one_keyword += part.records_one_keyword;
  r.records_two_keywords += part.records_two_keywords;
  r.records_no_keyword += part.records_no_keyword;
  merge_space(r.total_space, part.total_space);
  merge_space(r.incident_space, part.incident_space);
  for (size_t i = 0; i < r.per_category.size(); ++i) {
    CategoryStats& into = r.per_category[i];
    const CategoryStats& from = part.per_category[i];
    into.exclusive_prefixes += from.exclusive_prefixes;
    into.additional_prefixes += from.additional_prefixes;
    into.incident_prefixes += from.incident_prefixes;
    merge_space(into.space, from.space);
    merge_space(into.incident_space, from.incident_space);
  }
}

}  // namespace

ClassificationResult analyze_classification(const Study& study,
                                            const DropIndex& index) {
  obs::Span span("core.classification");
  ClassificationResult r;
  for (size_t i = 0; i < drop::kAllCategories.size(); ++i) {
    r.per_category[i].category = drop::kAllCategories[i];
  }

  const std::vector<DropEntry>& entries = index.entries();
  const size_t chunks =
      std::min<size_t>(entries.size(), study.pool ? 32 : 1);
  if (chunks <= 1) {
    for (const DropEntry& e : entries) tally(r, e);
    return r;
  }
  std::vector<ClassificationResult> parts(chunks);
  engine::parallel_for(study, chunks, [&](size_t c) {
    const size_t begin = entries.size() * c / chunks;
    const size_t end = entries.size() * (c + 1) / chunks;
    for (size_t i = begin; i < end; ++i) tally(parts[c], entries[i]);
  });
  for (const ClassificationResult& part : parts) merge(r, part);
  return r;
}

}  // namespace droplens::core
