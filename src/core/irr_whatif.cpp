#include "core/irr_whatif.hpp"

#include "core/drop_index.hpp"
#include "drop/sbl.hpp"

namespace droplens::core {

irr::AuthorizationCheck holder_authorization(const rir::Registry& registry) {
  return [&registry](const irr::RouteObject& obj) {
    const rir::Allocation* alloc =
        registry.allocation_on(obj.prefix, obj.created);
    return alloc != nullptr && alloc->holder == obj.org_id;
  };
}

IrrWhatIfResult analyze_irr_whatif(const Study& study) {
  IrrWhatIfResult r;
  irr::Database authenticated("AUTH-IRR",
                              holder_authorization(study.registry));
  drop::Classifier classifier;

  for (const irr::Registration& reg : study.irr.all_history()) {
    ++r.registrations_replayed;
    if (authenticated.register_object(reg.object)) {
      ++r.accepted;
      // Fraudulently *allocated* space sails through holder checks — the
      // AFRINIC-incident lesson: authorization is only as good as the
      // registry data behind it.
      if (reg.object.org_id.starts_with("ORG-INCIDENT")) {
        ++r.accepted_incident;
      }
      continue;
    }
    ++r.rejected;
    // Was the rejected object part of the §5 hijack tooling? Check the SBL
    // record of the prefix, as the paper would.
    if (const drop::SblRecord* rec = study.sbl.find_by_prefix(reg.object.prefix)) {
      drop::Classification c = classifier.classify(rec->text);
      if (c.categories.has(drop::Category::kHijacked) && c.malicious_asn &&
          *c.malicious_asn == reg.object.origin) {
        ++r.rejected_forged;
      }
    }
    r.rejected_objects.push_back(reg.object);
  }
  return r;
}

}  // namespace droplens::core
