#include "core/visibility.hpp"

#include <algorithm>

#include "core/engine.hpp"
#include "obs/trace.hpp"

namespace droplens::core {

namespace {

// Per-entry facts for Fig 2 left, computed independently per DROP entry so
// the probe loops (up to 38 announced_on() calls each) can fan out across
// the pool. Aggregated sequentially in entry order.
struct WithdrawalProbe {
  bool routed_before = false;
  int withdrawn_offset = -2;  // sentinel: never withdrew in the window
};

// Per-entry facts for Fig 2 right: visibility fraction plus each stats-row
// peer's observation bit, or `measured == false` if the prefix wasn't
// announced at probe time.
struct PeerProbe {
  bool measured = false;
  double visibility_fraction = 0;
  std::vector<uint8_t> peer_observes;
};

// Per-entry facts for the §4.1 deallocation checks.
struct DeallocProbe {
  bool allocated_at_listing = false;
  bool deallocated = false;
  bool removed_within_week = false;
};

}  // namespace

VisibilityResult analyze_visibility(const Study& study,
                                    const DropIndex& index) {
  obs::Span span("core.visibility");
  VisibilityResult r;
  const std::vector<const DropEntry*> entries = index.non_incident();

  // --- Fig 2 left: withdrawal relative to listing ------------------------
  // A prefix enters the population if it was BGP-observed the day before
  // listing; it counts as withdrawn at offset k if no announcement covers
  // listing + k.
  std::vector<WithdrawalProbe> probes(entries.size());
  engine::parallel_for(study, entries.size(), [&](size_t i) {
    const DropEntry* e = entries[i];
    WithdrawalProbe& p = probes[i];
    for (int k = 1; k <= 7 && !p.routed_before; ++k) {
      p.routed_before = study.fleet.announced_on(e->prefix, e->listed - k);
    }
    if (!p.routed_before) return;
    for (int k = -1; k <= 30; ++k) {
      if (!study.fleet.announced_on(e->prefix, e->listed + k)) {
        p.withdrawn_offset = k;
        break;
      }
    }
  });
  std::array<int, 32> withdrawn_at{};  // offsets -1..30 -> index 0..31
  for (size_t i = 0; i < entries.size(); ++i) {
    const DropEntry* e = entries[i];
    const WithdrawalProbe& p = probes[i];
    if (!p.routed_before) continue;
    ++r.routed_at_listing;
    for (drop::Category c : drop::kAllCategories) {
      if (e->is(c)) ++r.routed_by_category[static_cast<size_t>(c)];
    }
    if (p.withdrawn_offset >= -1) {
      ++withdrawn_at[static_cast<size_t>(p.withdrawn_offset + 1)];
      ++r.withdrawn_within_30d;
      for (drop::Category c : drop::kAllCategories) {
        if (e->is(c)) ++r.withdrawn_30d_by_category[static_cast<size_t>(c)];
      }
    }
  }
  int cumulative = 0;
  for (int k = -1; k <= 30; ++k) {
    cumulative += withdrawn_at[static_cast<size_t>(k + 1)];
    r.withdrawal_cdf.push_back(WithdrawalCdfPoint{
        k, r.routed_at_listing
               ? static_cast<double>(cumulative) / r.routed_at_listing
               : 0.0});
  }

  // --- Fig 2 right: fraction of peers observing each DROP prefix ---------
  size_t full_table = study.fleet.full_table_peer_count();
  std::vector<PeerFilterStat> stats;
  for (const bgp::Peer& p : study.fleet.peers()) {
    if (p.full_table) stats.push_back(PeerFilterStat{p.id, 0, 0, false});
  }
  std::vector<PeerProbe> peer_probes(entries.size());
  engine::parallel_for(study, entries.size(), [&](size_t i) {
    const DropEntry* e = entries[i];
    PeerProbe& p = peer_probes[i];
    net::Date probe = e->listed + 2;
    if (!study.fleet.announced_on(e->prefix, probe)) return;
    p.measured = true;
    size_t observing = study.fleet.observing_peers(e->prefix, probe);
    p.visibility_fraction =
        static_cast<double>(observing) / static_cast<double>(full_table);
    p.peer_observes.resize(stats.size());
    for (size_t s = 0; s < stats.size(); ++s) {
      p.peer_observes[s] =
          study.fleet.peer_observes(stats[s].peer, e->prefix, probe) ? 1 : 0;
    }
  });
  for (const PeerProbe& p : peer_probes) {
    if (!p.measured) continue;
    r.peer_visibility_fractions.push_back(p.visibility_fraction);
    for (size_t s = 0; s < stats.size(); ++s) {
      if (p.peer_observes[s]) {
        ++stats[s].drop_prefixes_carried;
      } else {
        ++stats[s].drop_prefixes_missing;
      }
    }
  }
  std::sort(r.peer_visibility_fractions.begin(),
            r.peer_visibility_fractions.end());
  for (PeerFilterStat& s : stats) {
    size_t total = s.drop_prefixes_carried + s.drop_prefixes_missing;
    s.appears_to_filter =
        total >= 10 && s.drop_prefixes_missing * 2 > total;
    if (s.appears_to_filter) ++r.filtering_peers;
  }
  r.peer_stats = std::move(stats);

  // --- §4.1: RIR deallocation after listing -------------------------------
  std::vector<DeallocProbe> dealloc(entries.size());
  engine::parallel_for(study, entries.size(), [&](size_t i) {
    const DropEntry* e = entries[i];
    DeallocProbe& p = dealloc[i];
    p.allocated_at_listing = study.registry.is_allocated(e->prefix, e->listed);
    bool allocated_at_end =
        study.registry.is_allocated(e->prefix, study.window_end);
    p.deallocated = p.allocated_at_listing && !allocated_at_end;
    if (e->removed && p.deallocated) {
      // When did the deallocation happen relative to the DROP removal?
      for (const rir::Allocation& a : study.registry.history(e->prefix)) {
        if (a.lifetime.end == net::DateRange::unbounded()) continue;
        net::Date dealloc_day = a.lifetime.end;
        if (dealloc_day <= e->removed_on && e->removed_on - dealloc_day <= 7) {
          p.removed_within_week = true;
          break;
        }
      }
    }
  });
  for (size_t i = 0; i < entries.size(); ++i) {
    const DropEntry* e = entries[i];
    const DeallocProbe& p = dealloc[i];
    if (e->is(drop::Category::kMaliciousHosting)) {
      if (p.allocated_at_listing) ++r.mh_allocated_at_listing;
      if (p.deallocated) ++r.mh_deallocated;
    }
    if (e->removed) {
      ++r.removed_prefixes;
      if (p.deallocated) {
        ++r.removed_deallocated;
        if (p.removed_within_week) ++r.removed_within_week_of_dealloc;
      }
    }
  }
  return r;
}

}  // namespace droplens::core
