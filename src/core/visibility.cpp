#include "core/visibility.hpp"

#include <algorithm>

namespace droplens::core {

VisibilityResult analyze_visibility(const Study& study,
                                    const DropIndex& index) {
  VisibilityResult r;
  const std::vector<const DropEntry*> entries = index.non_incident();

  // --- Fig 2 left: withdrawal relative to listing ------------------------
  // A prefix enters the population if it was BGP-observed the day before
  // listing; it counts as withdrawn at offset k if no announcement covers
  // listing + k.
  std::array<int, 32> withdrawn_at{};  // offsets -1..30 -> index 0..31
  for (const DropEntry* e : entries) {
    bool routed_before = false;
    for (int k = 1; k <= 7 && !routed_before; ++k) {
      routed_before = study.fleet.announced_on(e->prefix, e->listed - k);
    }
    if (!routed_before) continue;
    ++r.routed_at_listing;
    for (drop::Category c : drop::kAllCategories) {
      if (e->is(c)) ++r.routed_by_category[static_cast<size_t>(c)];
    }
    int withdrawn_offset = -2;  // sentinel: never withdrew in the window
    for (int k = -1; k <= 30; ++k) {
      if (!study.fleet.announced_on(e->prefix, e->listed + k)) {
        withdrawn_offset = k;
        break;
      }
    }
    if (withdrawn_offset >= -1) {
      ++withdrawn_at[static_cast<size_t>(withdrawn_offset + 1)];
      ++r.withdrawn_within_30d;
      for (drop::Category c : drop::kAllCategories) {
        if (e->is(c)) ++r.withdrawn_30d_by_category[static_cast<size_t>(c)];
      }
    }
  }
  int cumulative = 0;
  for (int k = -1; k <= 30; ++k) {
    cumulative += withdrawn_at[static_cast<size_t>(k + 1)];
    r.withdrawal_cdf.push_back(WithdrawalCdfPoint{
        k, r.routed_at_listing
               ? static_cast<double>(cumulative) / r.routed_at_listing
               : 0.0});
  }

  // --- Fig 2 right: fraction of peers observing each DROP prefix ---------
  size_t full_table = study.fleet.full_table_peer_count();
  std::vector<PeerFilterStat> stats;
  for (const bgp::Peer& p : study.fleet.peers()) {
    if (p.full_table) stats.push_back(PeerFilterStat{p.id, 0, 0, false});
  }
  for (const DropEntry* e : entries) {
    net::Date probe = e->listed + 2;
    if (!study.fleet.announced_on(e->prefix, probe)) continue;
    size_t observing = study.fleet.observing_peers(e->prefix, probe);
    r.peer_visibility_fractions.push_back(
        static_cast<double>(observing) / static_cast<double>(full_table));
    for (PeerFilterStat& s : stats) {
      if (study.fleet.peer_observes(s.peer, e->prefix, probe)) {
        ++s.drop_prefixes_carried;
      } else {
        ++s.drop_prefixes_missing;
      }
    }
  }
  std::sort(r.peer_visibility_fractions.begin(),
            r.peer_visibility_fractions.end());
  for (PeerFilterStat& s : stats) {
    size_t total = s.drop_prefixes_carried + s.drop_prefixes_missing;
    s.appears_to_filter =
        total >= 10 && s.drop_prefixes_missing * 2 > total;
    if (s.appears_to_filter) ++r.filtering_peers;
  }
  r.peer_stats = std::move(stats);

  // --- §4.1: RIR deallocation after listing -------------------------------
  for (const DropEntry* e : entries) {
    bool allocated_at_listing =
        study.registry.is_allocated(e->prefix, e->listed);
    bool allocated_at_end =
        study.registry.is_allocated(e->prefix, study.window_end);
    bool deallocated = allocated_at_listing && !allocated_at_end;
    if (e->is(drop::Category::kMaliciousHosting)) {
      if (allocated_at_listing) ++r.mh_allocated_at_listing;
      if (deallocated) ++r.mh_deallocated;
    }
    if (e->removed) {
      ++r.removed_prefixes;
      if (deallocated) {
        ++r.removed_deallocated;
        // When did the deallocation happen relative to the DROP removal?
        for (const rir::Allocation& a : study.registry.history(e->prefix)) {
          if (a.lifetime.end == net::DateRange::unbounded()) continue;
          net::Date dealloc = a.lifetime.end;
          if (dealloc <= e->removed_on && e->removed_on - dealloc <= 7) {
            ++r.removed_within_week_of_dealloc;
            break;
          }
        }
      }
    }
  }
  return r;
}

}  // namespace droplens::core
