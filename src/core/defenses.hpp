// Defense-comparison matrix (extension).
//
// §1 of the paper lists four classes of defense against address abuse:
// blocklists, hijack detection, origin validation (IRR/RPKI), and path
// authentication (BGPsec / path-end validation). This analysis replays
// every hijack event on DROP and asks which defenses would have stopped it:
//
//   ROV          route origin validation against the production TALs, as
//                actually deployed on the hijack date
//   ROV+opAS0    counterfactual: owners of signed-but-unrouted space also
//                publish AS0 ROAs (§6.2.1's recommendation)
//   ROV+rirAS0   counterfactual: RIR AS0 TALs cover unallocated space and
//                validators enforce them (§6.2.2's recommendation)
//   path-end     the legitimate origin signs its permitted neighbor ASes
//                (Cohen et al., SIGCOMM'16); catches forged-origin paths
//                with the wrong adjacency
//   BGPsec       full path signing (RFC 8205): no AS can be impersonated,
//                so any announcement with a forged origin fails
//
// The matrix reproduces the paper's bottom line: for abandoned, unsigned,
// unrouted space, only AS0 policies help on any near-term horizon.
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "core/drop_index.hpp"
#include "core/study.hpp"

namespace droplens::core {

enum class HijackKind : uint8_t {
  kOriginSquat,    // attacker originates abandoned space with its own ASN
  kForgedOrigin,   // attacker re-uses the legitimate/historic origin ASN
  kUnallocated,    // attacker squats RIR free-pool space
};
inline constexpr std::array<HijackKind, 3> kAllHijackKinds = {
    HijackKind::kOriginSquat, HijackKind::kForgedOrigin,
    HijackKind::kUnallocated};

std::string_view to_string(HijackKind k);

enum class Defense : uint8_t {
  kRov,
  kRovOperatorAs0,
  kRovRirAs0,
  kPathEnd,
  kBgpsec,
};
inline constexpr std::array<Defense, 5> kAllDefenses = {
    Defense::kRov, Defense::kRovOperatorAs0, Defense::kRovRirAs0,
    Defense::kPathEnd, Defense::kBgpsec};

std::string_view to_string(Defense d);

struct HijackEvent {
  net::Prefix prefix;
  net::Date begin;          // start of the hijack announcement
  net::Asn origin;
  HijackKind kind = HijackKind::kOriginSquat;
  std::array<bool, 5> blocked{};  // indexed by Defense
  bool forged_origin = false;     // origin ASN is not the attacker's own
};

struct DefenseMatrixResult {
  std::vector<HijackEvent> events;
  std::array<int, 5> blocked_by_defense{};
  std::array<std::array<int, 5>, 3> blocked_by_kind{};  // kind x defense
  std::array<int, 3> events_by_kind{};
  int unstoppable_without_as0 = 0;  // only the AS0 columns catch it
  int blocked_by_nothing = 0;       // no modeled defense catches it (the
                                    // abandoned-unsigned-space problem)

  int total() const { return static_cast<int>(events.size()); }
};

DefenseMatrixResult analyze_defenses(const Study& study,
                                     const DropIndex& index);

}  // namespace droplens::core
