// PHAS-style hijack alarms (extension; §1's "route hijack detection" class).
//
// Monitors such as PHAS (Lad et al.) alert when a monitored prefix gains a
// new origin AS (MOAS), or when a new more-specific of it appears. Replaying
// the study window through such a monitor shows which DROP hijacks would
// have tripped an alarm — and which were *stealthy*: re-originations with
// the historic origin ASN raise no MOAS alarm at all, Vervier et al.'s
// observation that the Fig 4 hijacker exploited.
#pragma once

#include <string_view>
#include <vector>

#include "core/drop_index.hpp"
#include "core/study.hpp"

namespace droplens::core {

enum class AlarmKind : uint8_t {
  kNewOrigin,      // prefix originated by an ASN never seen originating it
  kMoas,           // two origins announce the prefix simultaneously
  kNewSubPrefix,   // a new more-specific of a monitored prefix appears
};

std::string_view to_string(AlarmKind k);

struct Alarm {
  AlarmKind kind = AlarmKind::kNewOrigin;
  net::Prefix prefix;        // the announced prefix
  net::Prefix monitored;     // the covering prefix being watched (for
                             // kNewSubPrefix; equals `prefix` otherwise)
  net::Date when;
  net::Asn new_origin;
  bool on_drop = false;      // the announced prefix was later blocklisted
};

struct AlarmResult {
  std::vector<Alarm> alarms;
  int drop_hijacks_total = 0;      // hijack/unallocated entries announced
  int drop_hijacks_alarmed = 0;    // ... that raised any alarm
  // No alarm: the attacker announced previously-unannounced space (nothing
  // was monitoring it) or re-used the prefix's historic origin ASN.
  int drop_hijacks_stealthy = 0;

  double alarm_coverage() const {
    return drop_hijacks_total
               ? static_cast<double>(drop_hijacks_alarmed) /
                     drop_hijacks_total
               : 0;
  }
};

/// Replay every origination episode in date order through the monitor.
/// Pre-window episodes seed the baseline (known origins) silently; alarms
/// are only raised inside the study window.
///
/// Episodes replay in a deterministic total order — (begin, prefix, origin,
/// end) — which the streaming subsystem's canonical event order matches, so
/// the online monitor (stream::AlarmMonitor) reproduces this function's
/// alarm sequence byte for byte.
AlarmResult analyze_alarms(const Study& study, const DropIndex& index);

/// Fold the DROP-hijack coverage counters into `r`, deriving the set of
/// alarmed prefixes from r.alarms (an alarm with on_drop set marks its
/// prefix as caught). Shared by the batch replay above and the online
/// monitor's result() so the two paths can never drift.
void add_drop_coverage(AlarmResult& r, const Study& study,
                       const DropIndex& index);

}  // namespace droplens::core
