// IRR authorization what-if (extension; §2.2 / §5).
//
// RADb accepts route objects with no authorization at all — §5 shows
// attackers exploiting exactly that. This what-if replays every
// registration ever made against an *authenticated* IRR whose rule is the
// one RPKI enforces administratively: the registering ORG must be the
// registry-recorded holder of the prefix at registration time. The result
// quantifies how much of the §5 abuse an IRRd-with-RPKI-auth deployment
// would have prevented — and what it would not have (the AFRINIC incidents
// were fraudulently *allocated*, so holder checks pass).
#pragma once

#include <vector>

#include "core/study.hpp"
#include "irr/database.hpp"

namespace droplens::core {

struct IrrWhatIfResult {
  int registrations_replayed = 0;
  int accepted = 0;
  int rejected = 0;
  int rejected_forged = 0;     // rejected objects on hijack-labeled prefixes
  int accepted_incident = 0;   // fraud-allocated space that still passes
  std::vector<irr::RouteObject> rejected_objects;

  double rejection_rate() const {
    return registrations_replayed
               ? static_cast<double>(rejected) / registrations_replayed
               : 0;
  }
};

/// Build the holder-verification hook: accept a route object only if its
/// `org` matches the holder of a live allocation covering the prefix.
irr::AuthorizationCheck holder_authorization(const rir::Registry& registry);

/// Replay the study's IRR history through an authenticated database.
IrrWhatIfResult analyze_irr_whatif(const Study& study);

}  // namespace droplens::core
