// Fig 4 + §6.1: detect RPKI-valid hijacks among DROP prefixes and
// reconstruct the case-study timeline, including sibling prefixes that share
// the hijacker's origin/transit pattern.
#pragma once

#include <string>
#include <vector>

#include "core/drop_index.hpp"
#include "core/study.hpp"

namespace droplens::core {

struct TimelineRow {
  net::Prefix prefix;
  net::Date begin;
  net::Date end;               // DateRange::unbounded() if still announced
  std::string path;            // "50509 34665 263692"
  bool rpki_valid = false;     // validity of this episode at its start
  bool on_drop = false;
  net::Date drop_date;
};

struct RpkiValidHijack {
  net::Prefix prefix;          // the signed, hijacked prefix
  net::Asn roa_asn;            // the ROA's (forged-origin) ASN
  net::Date unrouted_since;    // owner withdrew here
  net::Date rehijacked_on;     // hijacker re-originated here
  std::vector<net::Prefix> siblings;  // same origin+transit pattern
  int siblings_on_drop = 0;
  std::vector<TimelineRow> timeline;  // Fig 4's rows
};

struct CaseStudyResult {
  int hijacked_prefixes = 0;                 // HJ-labeled, non-incident
  int signed_before_listing = 0;             // §6.1: 3
  // Of those, ones where the ROA ASN tracked the changing BGP origin —
  // i.e. the attacker appears to control the ROA (§6.1: 2).
  int attacker_controlled_roas = 0;
  std::vector<RpkiValidHijack> valid_hijacks;  // the 132.255.0.0/22 pattern
};

CaseStudyResult analyze_case_study(const Study& study, const DropIndex& index);

}  // namespace droplens::core
