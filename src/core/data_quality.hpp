// Data-quality accounting for degraded archive ingestion.
//
// Lenient parsing (util::ParsePolicy::kLenient) keeps a multi-year run alive
// on dirty archives, but dropped records and unusable days must never vanish
// silently: every analysis result is only as good as the input that survived.
// DataQuality is the ledger — per-substrate ParseReports aggregated across
// input files, the set of days whose snapshot failed to load entirely, and a
// renderer for the report's "Data quality" section. A Study carries it as an
// optional pointer; analyses consult it (via core/engine.hpp) to skip-and-
// count unavailable days instead of computing on phantom data.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <set>
#include <string_view>
#include <vector>

#include "net/date.hpp"
#include "obs/metrics.hpp"
#include "util/parse_report.hpp"

namespace droplens::core {

/// The five archive substrates the pipeline ingests (§3 of the paper).
enum class Feed : uint8_t {
  kDropFeed,     // Firehol DROP snapshots
  kBgpUpdates,   // RouteViews MRT (our MRTL)
  kDelegations,  // RIR delegation files
  kRoas,         // RIPE roas.csv
  kIrr,          // RADb RPSL dumps
};

constexpr Feed kAllFeeds[] = {Feed::kDropFeed, Feed::kBgpUpdates,
                              Feed::kDelegations, Feed::kRoas, Feed::kIrr};
constexpr size_t kFeedCount = 5;

std::string_view to_string(Feed f);

/// Short machine-readable slug used as the `feed` metric label
/// ("drop", "bgp", "delegations", "roas", "irr").
std::string_view metric_label(Feed f);

class DataQuality {
 public:
  /// Fold one input file's report into the substrate's aggregate, and track
  /// it among the substrate's worst inputs when it skipped records.
  void note_input(Feed f, const util::ParseReport& report);

  /// Mark a whole day's snapshot as unusable (file missing from the archive,
  /// or its header was unrecoverable).
  void mark_day_unavailable(Feed f, net::Date d);

  bool day_available(Feed f, net::Date d) const;
  const std::set<net::Date>& unavailable_days(Feed f) const;
  const util::ParseReport& report(Feed f) const;
  const std::vector<util::ParseReport>& worst_inputs(Feed f) const;

  size_t total_skipped() const;
  size_t total_unavailable_days() const;
  bool clean() const {
    return total_skipped() == 0 && total_unavailable_days() == 0;
  }

  /// Render the report's "Data quality" section body: per-substrate record
  /// and degraded-day counts, then the worst inputs.
  void render(std::ostream& out) const;

  /// Publish this ledger as gauges in `reg`, so a running daemon exposes
  /// the same facts as the report's "Data quality" section:
  ///   droplens_feed_days_total                   study-window days observed
  ///   droplens_feed_days_degraded{feed=...}      days marked unavailable
  ///   droplens_feed_records_parsed_total{feed=}  records ingested
  ///   droplens_feed_records_skipped_total{feed=} records dropped as damaged
  /// Re-exporting refreshes the values (gauges are set, not added).
  void export_metrics(obs::Registry& reg, size_t window_days) const;

 private:
  static constexpr size_t kWorstInputs = 3;
  static size_t idx(Feed f) { return static_cast<size_t>(f); }

  std::array<util::ParseReport, kFeedCount> aggregate_;
  std::array<std::vector<util::ParseReport>, kFeedCount> worst_;
  std::array<std::set<net::Date>, kFeedCount> unavailable_;
};

}  // namespace droplens::core
