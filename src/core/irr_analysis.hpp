// §5 + Fig 3: how operators and attackers used the IRR for DROP prefixes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/drop_index.hpp"
#include "core/study.hpp"
#include "net/asn.hpp"
#include "net/interval_set.hpp"

namespace droplens::core {

struct ForgedIrrCase {
  net::Prefix prefix;
  net::Asn hijacking_asn;     // the ASN the SBL record named
  std::string org_id;         // ORG-ID of the forged route object
  net::Date irr_created;
  int days_irr_to_bgp = 0;    // negative if BGP predates the record
  int days_irr_to_drop = 0;
  bool preexisting_entry = false;  // an older owner object existed
};

struct IrrResult {
  // Route-object presence in the 7-day window before listing (all DROP
  // prefixes, incidents included — the paper's 226 / 31.7% / 68.8%).
  int prefixes_with_route_object = 0;
  int drop_prefix_count = 0;
  net::IntervalSet route_object_space;
  net::IntervalSet drop_space;
  int created_within_month_before = 0;   // 32% of those with objects
  int removed_within_month_after = 0;    // 43%

  // The hijacker-ASN matching (§5's 130 / 57 / 69).
  int hijacked_with_asn = 0;
  int hijacker_asn_in_route_object = 0;      // 57
  int no_object_or_different_asn = 0;        // 69
  std::vector<ForgedIrrCase> forged_cases;
  int distinct_hijacking_asns = 0;           // 13
  std::map<std::string, int> forged_org_histogram;  // ORG-ID -> prefixes
  int top3_org_prefixes = 0;                 // 49
  int late_records = 0;                      // 2: record >1yr after BGP
  int preexisting_entries = 0;               // 5
  // The serial ORG's common transit AS (AS50509 in the paper), if one ORG's
  // announcements consistently share a transit hop.
  std::optional<net::Asn> serial_common_transit;
  std::string serial_org;

  int unallocated_with_route_object = 0;     // 1
};

IrrResult analyze_irr(const Study& study, const DropIndex& index);

}  // namespace droplens::core
