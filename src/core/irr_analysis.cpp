#include "core/irr_analysis.hpp"

#include <algorithm>
#include <set>

#include "core/engine.hpp"
#include "obs/trace.hpp"

namespace droplens::core {

namespace {

// Per-entry facts, computed independently (IRR history walks dominate) and
// merged sequentially in entry order so forged_cases keeps its order.
struct IrrProbe {
  bool has_route_object = false;
  bool created_recently = false;
  bool removed_after = false;
  bool hijacked_with_asn = false;
  bool no_object_or_different_asn = false;
  std::optional<ForgedIrrCase> forged;
};

IrrProbe probe_entry(const Study& study, const DropEntry& e) {
  IrrProbe p;

  // Route object (exact or more specific) live at some point in the 7-day
  // window before listing.
  std::vector<irr::Registration> regs;
  for (int k = 0; k <= 7 && regs.empty(); ++k) {
    regs = study.irr.exact_or_more_specific(e.prefix, e.listed - k);
  }
  if (!regs.empty()) {
    p.has_route_object = true;
    for (const irr::Registration& reg : regs) {
      if (e.listed - reg.lifetime.begin <= 31 &&
          reg.lifetime.begin <= e.listed) {
        p.created_recently = true;
      }
    }
    // Removed within a month after listing? Check the full history.
    for (const irr::Registration& reg : study.irr.history(e.prefix)) {
      if (reg.lifetime.end != net::DateRange::unbounded() &&
          reg.lifetime.end >= e.listed &&
          reg.lifetime.end - e.listed <= 31) {
        p.removed_after = true;
      }
    }
  }

  // Hijacker-ASN matching (excluding the incidents, per §3.1).
  if (e.incident) return p;
  if (!e.is(drop::Category::kHijacked) || !e.cls.malicious_asn) return p;
  p.hijacked_with_asn = true;
  net::Asn hijacker = *e.cls.malicious_asn;
  std::vector<irr::Registration> history = study.irr.history(e.prefix);
  const irr::Registration* forged = nullptr;
  const irr::Registration* older = nullptr;
  for (const irr::Registration& reg : history) {
    if (reg.object.origin == hijacker) forged = &reg;
  }
  for (const irr::Registration& reg : history) {
    if (forged && reg.object.origin != hijacker &&
        reg.lifetime.begin < forged->lifetime.begin) {
      older = &reg;
    }
  }
  if (!forged) {
    p.no_object_or_different_asn = true;
    return p;
  }
  ForgedIrrCase c;
  c.prefix = e.prefix;
  c.hijacking_asn = hijacker;
  c.org_id = forged->object.org_id;
  c.irr_created = forged->lifetime.begin;
  c.preexisting_entry = older != nullptr;
  auto first_bgp = study.fleet.first_announced(e.prefix);
  // "First announced" for the hijack: the first episode whose origin is
  // the hijacking ASN (old owner episodes don't count).
  std::optional<net::Date> hijack_bgp;
  for (const bgp::Episode& ep : study.fleet.episodes(e.prefix)) {
    if (ep.origin() == hijacker &&
        (!hijack_bgp || ep.range.begin < *hijack_bgp)) {
      hijack_bgp = ep.range.begin;
    }
  }
  if (!hijack_bgp) hijack_bgp = first_bgp;
  c.days_irr_to_bgp = hijack_bgp ? *hijack_bgp - c.irr_created : 0;
  c.days_irr_to_drop = e.listed - c.irr_created;
  p.forged = std::move(c);
  return p;
}

}  // namespace

IrrResult analyze_irr(const Study& study, const DropIndex& index) {
  obs::Span span("core.irr_analysis");
  IrrResult r;

  const std::vector<DropEntry>& entries = index.entries();
  std::vector<IrrProbe> probes(entries.size());
  engine::parallel_for(study, entries.size(), [&](size_t i) {
    probes[i] = probe_entry(study, entries[i]);
  });
  for (size_t i = 0; i < entries.size(); ++i) {
    const DropEntry& e = entries[i];
    IrrProbe& p = probes[i];
    ++r.drop_prefix_count;
    r.drop_space.insert(e.prefix);
    if (p.has_route_object) {
      ++r.prefixes_with_route_object;
      r.route_object_space.insert(e.prefix);
      if (p.created_recently) ++r.created_within_month_before;
      if (p.removed_after) ++r.removed_within_month_after;
    }
    if (p.hijacked_with_asn) ++r.hijacked_with_asn;
    if (p.no_object_or_different_asn) ++r.no_object_or_different_asn;
    if (p.forged) {
      ++r.hijacker_asn_in_route_object;
      if (p.forged->preexisting_entry) ++r.preexisting_entries;
      if (p.forged->days_irr_to_bgp < -365) ++r.late_records;
      ++r.forged_org_histogram[p.forged->org_id];
      r.forged_cases.push_back(std::move(*p.forged));
    }
  }

  // Distinct hijacking ASNs and ORG concentration.
  {
    std::set<uint32_t> asns;
    for (const ForgedIrrCase& c : r.forged_cases) {
      asns.insert(c.hijacking_asn.value());
    }
    r.distinct_hijacking_asns = static_cast<int>(asns.size());

    std::vector<std::pair<std::string, int>> orgs(
        r.forged_org_histogram.begin(), r.forged_org_histogram.end());
    std::sort(orgs.begin(), orgs.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    for (size_t i = 0; i < orgs.size() && i < 3; ++i) {
      r.top3_org_prefixes += orgs[i].second;
    }
    // Does one ORG's set of hijacks share a common transit AS?
    for (const auto& [org, count] : orgs) {
      if (count < 5) continue;
      std::map<uint32_t, int> transit_votes;
      int episodes_seen = 0;
      for (const ForgedIrrCase& c : r.forged_cases) {
        if (c.org_id != org) continue;
        for (const bgp::Episode& ep : study.fleet.episodes(c.prefix)) {
          if (ep.origin() != c.hijacking_asn) continue;
          ++episodes_seen;
          for (net::Asn hop : ep.path->hops()) {
            if (hop != c.hijacking_asn) ++transit_votes[hop.value()];
          }
        }
      }
      for (const auto& [asn, votes] : transit_votes) {
        if (votes == episodes_seen && episodes_seen >= 5) {
          r.serial_common_transit = net::Asn(asn);
          r.serial_org = org;
        }
      }
      if (r.serial_common_transit) break;
    }
  }

  // §5's closing observation: a route object registered for a prefix that
  // was unallocated at registration time. Chunked parallel count — partial
  // sums commute.
  const std::vector<irr::Registration> all = study.irr.all_history();
  const size_t chunks = std::min<size_t>(all.size(), study.pool ? 32 : 1);
  std::vector<int> unallocated_counts(chunks, 0);
  engine::parallel_for(study, chunks, [&](size_t c) {
    const size_t begin = all.size() * c / chunks;
    const size_t end = all.size() * (c + 1) / chunks;
    for (size_t i = begin; i < end; ++i) {
      if (study.registry.is_fully_unallocated(all[i].object.prefix,
                                              all[i].lifetime.begin)) {
        ++unallocated_counts[c];
      }
    }
  });
  for (int n : unallocated_counts) r.unallocated_with_route_object += n;
  return r;
}

}  // namespace droplens::core
