// maxLength vulnerability analysis (extension; §2.3 background).
//
// Gilad, Sagga & Goldberg (CoNEXT'17) showed that a ROA whose maxLength
// exceeds its prefix length is vulnerable to forged-origin *sub-prefix*
// hijacks whenever the owner does not announce every covered more-specific:
// the attacker forges the ROA's ASN, announces an unannounced sub-prefix
// (still RPKI-valid), and wins longest-prefix match everywhere. They
// measured 84% of maxLength ROAs vulnerable; the current IETF BCP draft
// consequently recommends avoiding maxLength. This analysis quantifies that
// attack surface in our world — the sub-prefix sibling of the paper's
// unrouted-space findings.
#pragma once

#include "core/study.hpp"
#include "net/interval_set.hpp"

namespace droplens::core {

struct MaxLengthResult {
  net::Date date;
  int roas_total = 0;
  int roas_with_maxlength = 0;
  int vulnerable = 0;  // some /maxLength sub-prefix is not owner-announced
  // Space an attacker could attract with forged-origin sub-prefix
  // announcements that ROV validates.
  net::IntervalSet vulnerable_space;

  double maxlength_share() const {
    return roas_total ? static_cast<double>(roas_with_maxlength) / roas_total
                      : 0;
  }
  double vulnerable_rate() const {
    return roas_with_maxlength
               ? static_cast<double>(vulnerable) / roas_with_maxlength
               : 0;
  }
};

/// Evaluate every ROA live on `d` under the production TALs.
MaxLengthResult analyze_maxlength(const Study& study, net::Date d);

/// Is this single ROA vulnerable on day `d`? (Exposed for targeted checks:
/// vulnerable iff maxLength > prefix length and the owner's announcements
/// at exactly maxLength do not cover the whole prefix.)
bool maxlength_vulnerable(const Study& study, const rpki::Roa& roa,
                          net::Date d);

}  // namespace droplens::core
