// Hijack impact and the ROV-adoption what-if (extension).
//
// The defense matrix says which mechanism *would reject* a hijacked route;
// this analysis asks how much of the Internet the hijack *captures* when the
// route is contested, by propagating victim and attacker originations
// through an AS graph derived from the observed AS paths (Gao–Rexford
// semantics, bgp/topology.hpp). Sweeping the fraction of ASes that enforce
// ROV quantifies the paper's implicit argument: ROV adoption only protects
// space that is actually signed — for the unsigned majority of DROP
// prefixes, adoption changes nothing.
#pragma once

#include <vector>

#include "bgp/topology.hpp"
#include "core/drop_index.hpp"
#include "core/study.hpp"

namespace droplens::core {

/// Derive an AS graph from every episode the collectors saw: consecutive
/// AS-path hops become provider->customer edges (collector side is the
/// provider); ASes that never appear as customers form the full-mesh top
/// tier.
bgp::AsGraph build_graph_from_fleet(const bgp::CollectorFleet& fleet);

struct AdoptionPoint {
  double adoption = 0;             // fraction of ASes enforcing ROV
  double capture_unsigned = 0;     // mean attacker capture, prefix unsigned
  double capture_signed = 0;       // mean capture if the prefix had a ROA
                                   // (attacker route ROV-invalid)
};

struct ImpactResult {
  std::vector<AdoptionPoint> points;
  size_t hijacks_evaluated = 0;    // contested hijacks with a known victim
  size_t graph_ases = 0;
};

/// Replay every DROP hijack whose victim adjacency is known (the prefix had
/// a pre-hijack origination) as a contest between victim and attacker, at
/// each ROV adoption level. Enforcers are picked by customer-cone degree,
/// largest first — "big networks deploy first".
ImpactResult analyze_rov_adoption(const Study& study, const DropIndex& index,
                                  const std::vector<double>& adoption_levels);

}  // namespace droplens::core
