// Fig 2 + §4.1: what blocklisting correlates with in BGP and in the
// registries — route withdrawal, peer-level filtering, RIR deallocation.
#pragma once

#include <array>
#include <vector>

#include "bgp/fleet.hpp"
#include "core/drop_index.hpp"
#include "core/study.hpp"

namespace droplens::core {

struct WithdrawalCdfPoint {
  int day_offset;        // days relative to listing, -1 .. +30
  double fraction;       // fraction of routed-at-listing prefixes withdrawn
};

struct PeerFilterStat {
  bgp::PeerId peer;
  size_t drop_prefixes_carried;  // of the listed-and-announced population
  size_t drop_prefixes_missing;
  bool appears_to_filter;        // misses the vast majority of them
};

struct VisibilityResult {
  // Fig 2 left.
  std::vector<WithdrawalCdfPoint> withdrawal_cdf;
  int routed_at_listing = 0;
  int withdrawn_within_30d = 0;
  std::array<int, 6> routed_by_category{};          // denominator per label
  std::array<int, 6> withdrawn_30d_by_category{};   // numerator per label

  // Fig 2 right.
  std::vector<double> peer_visibility_fractions;  // one per measured prefix
  std::vector<PeerFilterStat> peer_stats;
  int filtering_peers = 0;

  // §4.1 deallocation findings.
  int mh_allocated_at_listing = 0;
  int mh_deallocated = 0;
  int removed_prefixes = 0;
  int removed_deallocated = 0;
  int removed_within_week_of_dealloc = 0;

  double withdrawn_30d_rate() const {
    return routed_at_listing ? static_cast<double>(withdrawn_within_30d) /
                                   routed_at_listing
                             : 0.0;
  }
};

VisibilityResult analyze_visibility(const Study& study,
                                    const DropIndex& index);

}  // namespace droplens::core
