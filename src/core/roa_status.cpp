#include "core/roa_status.hpp"

#include <algorithm>
#include <map>

#include "core/engine.hpp"
#include "obs/trace.hpp"

namespace droplens::core {

namespace {

RoaStatusSample sample_day(const Study& study, net::Date d) {
  using net::IntervalSet;
  RoaStatusSample s;
  s.date = d;
  engine::SetPtr signed_all =
      engine::signed_space(study, d, rpki::TalSet::defaults());
  engine::SetPtr signed_nonas0 = engine::signed_space(
      study, d, rpki::TalSet::defaults(), rpki::RoaArchive::Filter::kNonAs0Only);
  engine::SetPtr routed = engine::routed_space(study, d);
  engine::SetPtr allocated = engine::allocated_space(study, d);
  if (!signed_all || !signed_nonas0 || !routed || !allocated) {
    s.degraded = true;  // a substrate could not serve this day: skip-and-count
    return s;
  }

  IntervalSet signed_routed =
      IntervalSet::set_intersection(*signed_all, *routed);
  IntervalSet signed_unrouted_nonas0 =
      IntervalSet::set_difference(*signed_nonas0, *routed);
  IntervalSet unrouted_no_roa = IntervalSet::set_difference(
      IntervalSet::set_difference(*allocated, *routed), *signed_all);

  s.signed_slash8 = signed_all->slash8_equivalents();
  s.signed_routed_slash8 = signed_routed.slash8_equivalents();
  s.signed_unrouted_nonas0_slash8 =
      signed_unrouted_nonas0.slash8_equivalents();
  s.alloc_unrouted_no_roa_slash8 = unrouted_no_roa.slash8_equivalents();
  return s;
}

}  // namespace

RoaStatusResult analyze_roa_status(const Study& study) {
  obs::Span span("core.roa_status");
  RoaStatusResult r;
  const std::vector<net::Date> dates = engine::sample_dates(study);
  r.series.resize(dates.size());
  engine::parallel_for(study, dates.size(), [&](size_t i) {
    r.series[i] = sample_day(study, dates[i]);
  });
  for (const RoaStatusSample& s : r.series) {
    if (s.degraded) ++r.degraded_samples;
  }

  // Who holds the signed-but-unrouted space at the end of the window? When
  // the window's final day is itself degraded, fall back to the latest
  // sample date whose substrates all loaded; with none, the end-of-window
  // facts stay at their zero defaults.
  std::optional<net::Date> end_opt = engine::last_available_date(
      study, {Feed::kRoas, Feed::kBgpUpdates, Feed::kDelegations});
  if (!end_opt) return r;
  net::Date end = *end_opt;
  engine::SetPtr signed_nonas0 = engine::signed_space(
      study, end, rpki::TalSet::defaults(),
      rpki::RoaArchive::Filter::kNonAs0Only);
  net::IntervalSet unrouted_signed = net::IntervalSet::set_difference(
      *signed_nonas0, *engine::routed_space(study, end));
  std::map<std::string, uint64_t> by_holder;
  for (const rir::Allocation& a : study.registry.live_allocations(end)) {
    if (!unrouted_signed.intersects(a.prefix)) continue;
    net::IntervalSet piece;
    piece.insert(a.prefix);
    by_holder[a.holder] += net::IntervalSet::set_intersection(
        piece, unrouted_signed).size();
  }
  std::vector<HolderSpace> holders;
  for (const auto& [holder, size] : by_holder) {
    holders.push_back(HolderSpace{
        holder, static_cast<double>(size) / (uint64_t{1} << 24)});
  }
  std::sort(holders.begin(), holders.end(),
            [](const HolderSpace& a, const HolderSpace& b) {
              return a.slash8 > b.slash8;
            });
  double top3 = 0;
  for (size_t i = 0; i < holders.size() && i < 3; ++i) top3 += holders[i].slash8;
  double total_unrouted_signed = unrouted_signed.slash8_equivalents();
  r.top3_share = total_unrouted_signed > 0 ? top3 / total_unrouted_signed : 0;
  if (holders.size() > 8) holders.resize(8);
  r.top_signed_unrouted_holders = std::move(holders);

  // ARIN's share of the allocated-unrouted-unsigned space.
  engine::SetPtr signed_all =
      engine::signed_space(study, end, rpki::TalSet::defaults());
  net::IntervalSet unrouted_no_roa = net::IntervalSet::set_difference(
      net::IntervalSet::set_difference(*engine::allocated_space(study, end),
                                       *engine::routed_space(study, end)),
      *signed_all);
  net::IntervalSet arin_part = net::IntervalSet::set_intersection(
      unrouted_no_roa, study.registry.administered(rir::Rir::kArin));
  r.arin_share_of_unrouted_unsigned =
      unrouted_no_roa.size() > 0
          ? static_cast<double>(arin_part.size()) / unrouted_no_roa.size()
          : 0;
  return r;
}

}  // namespace droplens::core
