#include "core/serial_hijackers.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/drop_index.hpp"

namespace droplens::core {

SerialHijackerResult analyze_serial_hijackers(const Study& study,
                                              const DropIndex& index) {
  struct Accum {
    std::unordered_set<net::Prefix> prefixes;
    std::vector<int32_t> durations;
    int short_lived = 0;
    int on_drop = 0;
    uint64_t span = 0;
  };
  std::unordered_map<net::Asn, Accum> by_origin;

  std::unordered_set<net::Prefix> drop_prefixes;
  for (const DropEntry& e : index.entries()) drop_prefixes.insert(e.prefix);

  // One pass over every episode the collectors saw during the window.
  for (const net::Prefix& p : study.fleet.announced_prefixes()) {
    for (const bgp::Episode& e : study.fleet.episodes(p)) {
      // Only behaviour observable inside the study window counts.
      net::Date begin = std::max(e.range.begin, study.window_begin);
      net::Date end = e.range.end == net::DateRange::unbounded()
                          ? study.window_end
                          : std::min(e.range.end, study.window_end);
      if (begin >= end) continue;
      Accum& acc = by_origin[e.origin()];
      if (acc.prefixes.insert(p).second) {
        acc.span += p.size();
        if (drop_prefixes.contains(p)) ++acc.on_drop;
      }
      int32_t days = end - begin;
      acc.durations.push_back(days);
      // An episode is short-lived if the announcement was actually
      // withdrawn (window truncation does not count) after at most ~400
      // days — hijackers pull their routes once they stop being useful;
      // legitimate operators keep announcing.
      if (e.range.end != net::DateRange::unbounded() &&
          e.range.end <= study.window_end &&
          e.range.end - e.range.begin < 400) {
        ++acc.short_lived;
      }
    }
  }

  SerialHijackerResult r;
  for (auto& [asn, acc] : by_origin) {
    ++r.origins_profiled;
    if (acc.on_drop > 0) ++r.origins_with_drop_prefix;
    OriginProfile profile;
    profile.asn = asn;
    profile.prefixes_originated = static_cast<int>(acc.prefixes.size());
    profile.episodes = static_cast<int>(acc.durations.size());
    profile.short_lived_episodes = acc.short_lived;
    profile.prefixes_on_drop = acc.on_drop;
    profile.address_span = acc.span;
    if (!acc.durations.empty()) {
      std::nth_element(acc.durations.begin(),
                       acc.durations.begin() + acc.durations.size() / 2,
                       acc.durations.end());
      profile.median_episode_days =
          acc.durations[acc.durations.size() / 2];
    }
    if (profile.flagged_serial_hijacker()) {
      r.flagged.push_back(std::move(profile));
    }
  }
  std::sort(r.flagged.begin(), r.flagged.end(),
            [](const OriginProfile& a, const OriginProfile& b) {
              return a.prefixes_originated > b.prefixes_originated;
            });
  return r;
}

}  // namespace droplens::core
