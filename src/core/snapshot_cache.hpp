// Shared daily-snapshot cache for the analysis engine.
//
// Every longitudinal analysis intersects the same four interval sets per
// sampled date: routed space (BGP fleet), signed space (ROA archive, per
// TAL-set and AS0 filter), allocated space / free pools (registry), and the
// DROP active set. Computing each of those walks a full substrate — the
// hottest work in a report run — and before this cache each analysis redid
// it per date. The cache memoizes one immutable IntervalSet per
// (substrate, date, variant) key behind a sharded mutex-guarded map, so N
// analyses and N threads share one computation per day.
//
// Thread safety: get-or-compute under a per-shard mutex. Snapshots are
// returned as shared_ptr<const IntervalSet>; once published they are never
// mutated, so readers need no further synchronization. A racing miss on the
// same key computes at most once per shard lock — the value is pure, so
// whichever insert wins is byte-identical.
//
// Degradation: a substrate computation that throws does not abort the run —
// the failure is cached as a null snapshot (so the day computes-and-fails at
// most once) and counted in stats().failures. Callers receive nullptr, the
// engine's "this day is unavailable" signal (see core/engine.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "bgp/fleet.hpp"
#include "drop/drop_list.hpp"
#include "irr/database.hpp"
#include "net/date.hpp"
#include "net/interval_set.hpp"
#include "obs/metrics.hpp"
#include "rir/registry.hpp"
#include "rpki/archive.hpp"

namespace droplens::core {

class SnapshotCache {
 public:
  using SetPtr = std::shared_ptr<const net::IntervalSet>;

  /// `irr` is optional (older call sites don't pass it); without it
  /// irr_space() reports "no substrate" via has_irr() and must not be used.
  SnapshotCache(const rir::Registry& registry, const bgp::CollectorFleet& fleet,
                const rpki::RoaArchive& roas, const drop::DropList& drop,
                const irr::Database* irr = nullptr);

  SnapshotCache(const SnapshotCache&) = delete;
  SnapshotCache& operator=(const SnapshotCache&) = delete;

  /// Address space covered by BGP announcements on `d`.
  SetPtr routed_space(net::Date d) const;

  /// Space allocated by all RIRs as of `d`.
  SetPtr allocated_space(net::Date d) const;

  /// Space covered by live ROAs on `d` under `tals`, per AS0 filter.
  SetPtr signed_space(net::Date d, rpki::TalSet tals,
                      rpki::RoaArchive::Filter filter =
                          rpki::RoaArchive::Filter::kAll) const;

  /// `rir`'s administered-but-unallocated space on `d` (Fig 7 pools).
  SetPtr free_pool(rir::Rir rir, net::Date d) const;

  /// Space actively DROP-listed on `d`.
  SetPtr drop_space(net::Date d) const;

  /// Space covered by route objects live in the IRR on `d`. Only valid when
  /// the cache was built with an IRR database (has_irr()).
  SetPtr irr_space(net::Date d) const;
  bool has_irr() const { return irr_ != nullptr; }

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t failures = 0;      // computations that threw; cached as null days
    size_t failure_hits = 0;  // hits that returned a memoized failure (null)
  };
  /// Aggregate hit/miss counters across shards (diagnostics only; not part
  /// of the determinism contract).
  Stats stats() const;

 private:
  enum class Substrate : uint8_t {
    kRouted,
    kAllocated,
    kSigned,
    kFreePool,
    kDrop,
    kIrr,
  };

  // (substrate, date, variant) packed into one key: date in the low 32 bits,
  // variant (TAL bitmask + filter, or RIR index) above it, substrate on top.
  static uint64_t make_key(Substrate s, net::Date d, uint32_t variant) {
    return (uint64_t{static_cast<uint8_t>(s)} << 56) |
           (uint64_t{variant} << 32) |
           static_cast<uint32_t>(d.days());
  }

  template <typename Compute>
  SetPtr get_or_compute(uint64_t key, Compute&& compute) const;

  static constexpr size_t kShardCount = 16;
  struct Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, SetPtr> map;
    size_t hits = 0;
    size_t misses = 0;
    size_t failures = 0;
    size_t failure_hits = 0;
    // Registry mirrors of the counters above, bound per shard at
    // construction (no-op handles when no registry is installed).
    obs::Counter hits_metric;
    obs::Counter misses_metric;
    obs::Counter failure_memo_metric;
  };

  const rir::Registry& registry_;
  const bgp::CollectorFleet& fleet_;
  const rpki::RoaArchive& roas_;
  const drop::DropList& drop_;
  const irr::Database* irr_;
  mutable std::array<Shard, kShardCount> shards_;
};

}  // namespace droplens::core
