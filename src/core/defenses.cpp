#include "core/defenses.hpp"

#include <algorithm>

namespace droplens::core {

std::string_view to_string(HijackKind k) {
  switch (k) {
    case HijackKind::kOriginSquat: return "origin-squat";
    case HijackKind::kForgedOrigin: return "forged-origin";
    case HijackKind::kUnallocated: return "unallocated";
  }
  return "?";
}

std::string_view to_string(Defense d) {
  switch (d) {
    case Defense::kRov: return "ROV";
    case Defense::kRovOperatorAs0: return "ROV+opAS0";
    case Defense::kRovRirAs0: return "ROV+rirAS0";
    case Defense::kPathEnd: return "path-end";
    case Defense::kBgpsec: return "BGPsec";
  }
  return "?";
}

namespace {

void set_blocked(HijackEvent& e, Defense d) {
  e.blocked[static_cast<size_t>(d)] = true;
}

}  // namespace

DefenseMatrixResult analyze_defenses(const Study& study,
                                     const DropIndex& index) {
  DefenseMatrixResult r;

  for (const DropEntry* entry : index.non_incident()) {
    bool is_hijack = entry->is(drop::Category::kHijacked) ||
                     entry->is(drop::Category::kUnallocated);
    if (!is_hijack) continue;

    // The hijack announcement: the episode active at (or starting closest
    // before) the listing date.
    const bgp::Episode* hijack = nullptr;
    for (const bgp::Episode& e : study.fleet.episodes(entry->prefix)) {
      if (e.range.begin <= entry->listed &&
          (!hijack || e.range.begin > hijack->range.begin)) {
        hijack = &e;
      }
    }
    if (!hijack) continue;  // never announced — nothing for BGP defenses

    HijackEvent ev;
    ev.prefix = entry->prefix;
    ev.begin = hijack->range.begin;
    ev.origin = hijack->origin();

    // --- Classify -------------------------------------------------------
    bool unallocated =
        study.registry.is_fully_unallocated(entry->prefix, entry->listed);
    // "Forged origin": the same origin announced this prefix in a clearly
    // separate earlier life (abandoned, then resurrected via a different
    // upstream), or the origin matches a covering ROA the attacker did not
    // create (the 132.255.0.0/22 pattern).
    const bgp::Episode* historic = nullptr;
    for (const bgp::Episode& e : study.fleet.episodes(entry->prefix)) {
      if (e.range.end != net::DateRange::unbounded() &&
          e.range.end + 180 < hijack->range.begin &&
          (!historic || e.range.end > historic->range.end)) {
        historic = &e;
      }
    }
    bool origin_matches_roa = false;
    for (const rpki::Roa& roa :
         study.roas.covering(entry->prefix, hijack->range.begin)) {
      if (roa.asn == ev.origin) origin_matches_roa = true;
    }
    bool same_origin_resurrected =
        historic && historic->origin() == ev.origin &&
        historic->path->hops().front() != hijack->path->hops().front();
    ev.forged_origin = origin_matches_roa || same_origin_resurrected;
    ev.kind = unallocated ? HijackKind::kUnallocated
              : ev.forged_origin ? HijackKind::kForgedOrigin
                                 : HijackKind::kOriginSquat;

    // --- Defense verdicts ------------------------------------------------
    net::Date when = hijack->range.begin;
    // ROV as deployed.
    bool rov_blocks = study.roas.validate_route(entry->prefix, ev.origin,
                                                when) ==
                      rpki::Validity::kInvalid;
    if (rov_blocks) set_blocked(ev, Defense::kRov);

    // ROV + operator AS0: additionally blocked if the prefix was signed and
    // the covered space had been unrouted for the 90 days before the hijack
    // — a diligent owner following §6.2.1 would have had AS0 there.
    bool signed_then = study.roas.signed_on(entry->prefix, when);
    bool unrouted_before = !study.fleet.routed_on(entry->prefix, when - 30) &&
                           !study.fleet.routed_on(entry->prefix, when - 90);
    if (rov_blocks || (signed_then && unrouted_before)) {
      set_blocked(ev, Defense::kRovOperatorAs0);
    }

    // ROV + enforced RIR AS0: unallocated space is always covered.
    if (rov_blocks || unallocated) set_blocked(ev, Defense::kRovRirAs0);

    // Path-end validation: only the legitimate origin can publish the
    // neighbor list, so it protects prefixes whose (historic) owner
    // participates; the hijack is caught when its adjacency to the origin
    // differs from every adjacency the owner ever used.
    if (ev.forged_origin) {
      std::vector<uint32_t> legit_adjacencies;
      for (const bgp::Episode& e : study.fleet.episodes(entry->prefix)) {
        if (&e == hijack || e.origin() != ev.origin) continue;
        if (e.range.begin >= hijack->range.begin) continue;
        const auto& hops = e.path->hops();
        if (hops.size() >= 2) {
          legit_adjacencies.push_back(hops[hops.size() - 2].value());
        }
      }
      const auto& hops = hijack->path->hops();
      uint32_t hijack_adjacent =
          hops.size() >= 2 ? hops[hops.size() - 2].value() : 0;
      bool adjacency_known = !legit_adjacencies.empty();
      bool adjacency_matches =
          std::find(legit_adjacencies.begin(), legit_adjacencies.end(),
                    hijack_adjacent) != legit_adjacencies.end();
      if (adjacency_known && !adjacency_matches) {
        set_blocked(ev, Defense::kPathEnd);
      }
    }
    if (rov_blocks) set_blocked(ev, Defense::kPathEnd);

    // BGPsec (+ROV): a forged origin cannot produce valid path signatures;
    // an attacker announcing with its own AS is caught only where ROV is.
    if (rov_blocks || ev.forged_origin) set_blocked(ev, Defense::kBgpsec);

    // Bookkeeping.
    size_t kind = static_cast<size_t>(ev.kind);
    ++r.events_by_kind[kind];
    bool any_non_as0 = ev.blocked[static_cast<size_t>(Defense::kRov)] ||
                       ev.blocked[static_cast<size_t>(Defense::kPathEnd)] ||
                       ev.blocked[static_cast<size_t>(Defense::kBgpsec)];
    bool any_as0 =
        ev.blocked[static_cast<size_t>(Defense::kRovOperatorAs0)] ||
        ev.blocked[static_cast<size_t>(Defense::kRovRirAs0)];
    if (!any_non_as0 && any_as0) ++r.unstoppable_without_as0;
    if (!any_non_as0 && !any_as0) ++r.blocked_by_nothing;
    for (Defense d : kAllDefenses) {
      if (ev.blocked[static_cast<size_t>(d)]) {
        ++r.blocked_by_defense[static_cast<size_t>(d)];
        ++r.blocked_by_kind[kind][static_cast<size_t>(d)];
      }
    }
    r.events.push_back(std::move(ev));
  }
  return r;
}

}  // namespace droplens::core
