#include "core/snapshot_cache.hpp"

#include <exception>
#include <utility>

#include "rpki/tal.hpp"

namespace droplens::core {

namespace {

// TalSet keeps its bitmask private; recover it bit-by-bit for key packing.
uint32_t tal_bits(rpki::TalSet tals) {
  uint32_t bits = 0;
  for (rpki::Tal t : rpki::kAllTals) {
    if (tals.has(t)) bits |= uint32_t{1} << static_cast<int>(t);
  }
  return bits;
}

}  // namespace

SnapshotCache::SnapshotCache(const rir::Registry& registry,
                             const bgp::CollectorFleet& fleet,
                             const rpki::RoaArchive& roas,
                             const drop::DropList& drop,
                             const irr::Database* irr)
    : registry_(registry), fleet_(fleet), roas_(roas), drop_(drop), irr_(irr) {
  for (size_t i = 0; i < kShardCount; ++i) {
    obs::Labels labels{{"shard", std::to_string(i)}};
    shards_[i].hits_metric =
        obs::counter("droplens_cache_hits_total", labels,
                     "SnapshotCache lookups served from the memo");
    shards_[i].misses_metric =
        obs::counter("droplens_cache_misses_total", labels,
                     "SnapshotCache lookups that computed a substrate");
    shards_[i].failure_memo_metric = obs::counter(
        "droplens_cache_failure_memo_hits_total", labels,
        "SnapshotCache hits on a memoized per-day substrate failure");
  }
}

template <typename Compute>
SnapshotCache::SetPtr SnapshotCache::get_or_compute(uint64_t key,
                                                    Compute&& compute) const {
  Shard& shard = shards_[key % kShardCount];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    ++shard.hits;
    shard.hits_metric.inc();
    if (!it->second) {
      ++shard.failure_hits;
      shard.failure_memo_metric.inc();
    }
    return it->second;
  }
  ++shard.misses;
  shard.misses_metric.inc();
  SetPtr value;
  try {
    value = std::make_shared<const net::IntervalSet>(compute());
  } catch (const std::exception&) {
    // A substrate that cannot produce this day must not abort the whole
    // run: cache the failure as a null snapshot (computed at most once) and
    // let callers degrade per-day instead.
    ++shard.failures;
  }
  shard.map.emplace(key, value);
  return value;
}

SnapshotCache::SetPtr SnapshotCache::routed_space(net::Date d) const {
  return get_or_compute(make_key(Substrate::kRouted, d, 0),
                        [&] { return fleet_.routed_space(d); });
}

SnapshotCache::SetPtr SnapshotCache::allocated_space(net::Date d) const {
  return get_or_compute(make_key(Substrate::kAllocated, d, 0),
                        [&] { return registry_.allocated_space(d); });
}

SnapshotCache::SetPtr SnapshotCache::signed_space(
    net::Date d, rpki::TalSet tals, rpki::RoaArchive::Filter filter) const {
  uint32_t variant =
      (tal_bits(tals) << 8) | static_cast<uint8_t>(filter);
  return get_or_compute(make_key(Substrate::kSigned, d, variant),
                        [&] { return roas_.signed_space(d, tals, filter); });
}

SnapshotCache::SetPtr SnapshotCache::free_pool(rir::Rir rir,
                                               net::Date d) const {
  return get_or_compute(
      make_key(Substrate::kFreePool, d, static_cast<uint8_t>(rir)),
      [&] { return registry_.free_pool(rir, d); });
}

SnapshotCache::SetPtr SnapshotCache::drop_space(net::Date d) const {
  return get_or_compute(make_key(Substrate::kDrop, d, 0), [&] {
    net::IntervalSet active;
    for (const net::Prefix& p : drop_.snapshot(d)) active.insert(p);
    return active;
  });
}

SnapshotCache::SetPtr SnapshotCache::irr_space(net::Date d) const {
  return get_or_compute(make_key(Substrate::kIrr, d, 0), [&] {
    net::IntervalSet covered;
    for (const irr::Registration& reg : irr_->all_history()) {
      if (reg.live_on(d)) covered.insert(reg.object.prefix);
    }
    return covered;
  });
}

SnapshotCache::Stats SnapshotCache::stats() const {
  Stats total;
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total.hits += s.hits;
    total.misses += s.misses;
    total.failures += s.failures;
    total.failure_hits += s.failure_hits;
  }
  return total;
}

}  // namespace droplens::core
