// The study context: references to the five data sets plus the measurement
// window. Analyses take a Study and nothing else — exactly the inputs the
// paper had (§3).
#pragma once

#include "bgp/fleet.hpp"
#include "drop/drop_list.hpp"
#include "drop/sbl.hpp"
#include "irr/database.hpp"
#include "net/date.hpp"
#include "rir/registry.hpp"
#include "rpki/archive.hpp"

namespace droplens::util {
class ThreadPool;
}  // namespace droplens::util

namespace droplens::core {

class DataQuality;
class SnapshotCache;

struct Study {
  const rir::Registry& registry;
  const bgp::CollectorFleet& fleet;
  const irr::Database& irr;
  const rpki::RoaArchive& roas;
  const drop::DropList& drop;
  const drop::SblDatabase& sbl;
  net::Date window_begin;
  net::Date window_end;

  // Optional engine hooks (see core/engine.hpp). `snapshots` shares the
  // expensive per-day IntervalSet computations across analyses; `pool` fans
  // per-date and per-entry work across threads. Both null — the default for
  // existing aggregate initializers — runs the original sequential path.
  SnapshotCache* snapshots = nullptr;
  util::ThreadPool* pool = nullptr;

  // Optional ingestion ledger (see core/data_quality.hpp). When set, per-day
  // sampling loops skip days it marks unavailable (counting each skip) and
  // the report gains a "Data quality" section. Null — the default — means
  // every day is trusted, exactly the pre-fault-tolerance behavior.
  const DataQuality* quality = nullptr;
};

}  // namespace droplens::core
