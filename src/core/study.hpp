// The study context: references to the five data sets plus the measurement
// window. Analyses take a Study and nothing else — exactly the inputs the
// paper had (§3).
#pragma once

#include "bgp/fleet.hpp"
#include "drop/drop_list.hpp"
#include "drop/sbl.hpp"
#include "irr/database.hpp"
#include "net/date.hpp"
#include "rir/registry.hpp"
#include "rpki/archive.hpp"

namespace droplens::core {

struct Study {
  const rir::Registry& registry;
  const bgp::CollectorFleet& fleet;
  const irr::Database& irr;
  const rpki::RoaArchive& roas;
  const drop::DropList& drop;
  const drop::SblDatabase& sbl;
  net::Date window_begin;
  net::Date window_end;
};

}  // namespace droplens::core
