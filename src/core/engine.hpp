// Engine facade used inside the analyses.
//
// Analyses call these helpers instead of hitting the substrates directly;
// each helper routes through the Study's SnapshotCache / ThreadPool when
// present and falls back to the original direct computation when not, so a
// plain `Study{...}` with no engine attached behaves exactly as before.
//
// Determinism contract: engine::parallel_for(study, n, fn) must only be
// used with an fn that writes its result to slot i of a pre-sized buffer
// (or an otherwise index-addressed location). Aggregation over the buffer
// then happens sequentially in index order, which makes the output
// byte-identical for every thread count.
#pragma once

#include <memory>
#include <vector>

#include "core/snapshot_cache.hpp"
#include "core/study.hpp"
#include "util/thread_pool.hpp"

namespace droplens::core::engine {

using SetPtr = SnapshotCache::SetPtr;

inline SetPtr routed_space(const Study& s, net::Date d) {
  if (s.snapshots) return s.snapshots->routed_space(d);
  return std::make_shared<const net::IntervalSet>(s.fleet.routed_space(d));
}

inline SetPtr allocated_space(const Study& s, net::Date d) {
  if (s.snapshots) return s.snapshots->allocated_space(d);
  return std::make_shared<const net::IntervalSet>(
      s.registry.allocated_space(d));
}

inline SetPtr signed_space(const Study& s, net::Date d, rpki::TalSet tals,
                           rpki::RoaArchive::Filter filter =
                               rpki::RoaArchive::Filter::kAll) {
  if (s.snapshots) return s.snapshots->signed_space(d, tals, filter);
  return std::make_shared<const net::IntervalSet>(
      s.roas.signed_space(d, tals, filter));
}

inline SetPtr free_pool(const Study& s, rir::Rir rir, net::Date d) {
  if (s.snapshots) return s.snapshots->free_pool(rir, d);
  return std::make_shared<const net::IntervalSet>(s.registry.free_pool(rir, d));
}

inline SetPtr drop_space(const Study& s, net::Date d) {
  if (s.snapshots) return s.snapshots->drop_space(d);
  net::IntervalSet active;
  for (const net::Prefix& p : s.drop.snapshot(d)) active.insert(p);
  return std::make_shared<const net::IntervalSet>(std::move(active));
}

/// fn(i) for i in [0, n): across the Study's pool when one is attached,
/// inline otherwise.
template <typename Fn>
void parallel_for(const Study& s, size_t n, Fn&& fn) {
  if (s.pool) {
    s.pool->parallel_for(n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

/// The monthly sampling grid every longitudinal analysis uses: every 30
/// days from window_begin, plus window_end itself as the final sample.
inline std::vector<net::Date> sample_dates(const Study& s) {
  std::vector<net::Date> dates;
  for (net::Date d = s.window_begin; d < s.window_end; d += 30) {
    dates.push_back(d);
  }
  dates.push_back(s.window_end);
  return dates;
}

}  // namespace droplens::core::engine
