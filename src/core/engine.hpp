// Engine facade used inside the analyses.
//
// Analyses call these helpers instead of hitting the substrates directly;
// each helper routes through the Study's SnapshotCache / ThreadPool when
// present and falls back to the original direct computation when not, so a
// plain `Study{...}` with no engine attached behaves exactly as before.
//
// Determinism contract: engine::parallel_for(study, n, fn) must only be
// used with an fn that writes its result to slot i of a pre-sized buffer
// (or an otherwise index-addressed location). Aggregation over the buffer
// then happens sequentially in index order, which makes the output
// byte-identical for every thread count.
#pragma once

#include <initializer_list>
#include <memory>
#include <optional>
#include <vector>

#include "core/data_quality.hpp"
#include "core/snapshot_cache.hpp"
#include "core/study.hpp"
#include "util/thread_pool.hpp"

namespace droplens::core::engine {

using SetPtr = SnapshotCache::SetPtr;

/// True when the Study's ingestion ledger (if any) trusts day `d` of feed
/// `f`. With no ledger attached every day is available.
inline bool day_available(const Study& s, Feed f, net::Date d) {
  return !s.quality || s.quality->day_available(f, d);
}

/// True when every feed in `feeds` is available on `d` — the gate a per-day
/// sample must pass before computing on that day's substrates.
inline bool day_available(const Study& s, std::initializer_list<Feed> feeds,
                          net::Date d) {
  for (Feed f : feeds) {
    if (!day_available(s, f, d)) return false;
  }
  return true;
}

// Each space helper returns nullptr for a day its substrate cannot serve —
// either the ingestion ledger marked the day unavailable, or the underlying
// computation failed (see SnapshotCache). Callers in per-day sampling loops
// must treat nullptr as "skip and count this day", not dereference it.

inline SetPtr routed_space(const Study& s, net::Date d) {
  if (!day_available(s, Feed::kBgpUpdates, d)) return nullptr;
  if (s.snapshots) return s.snapshots->routed_space(d);
  return std::make_shared<const net::IntervalSet>(s.fleet.routed_space(d));
}

inline SetPtr allocated_space(const Study& s, net::Date d) {
  if (!day_available(s, Feed::kDelegations, d)) return nullptr;
  if (s.snapshots) return s.snapshots->allocated_space(d);
  return std::make_shared<const net::IntervalSet>(
      s.registry.allocated_space(d));
}

inline SetPtr signed_space(const Study& s, net::Date d, rpki::TalSet tals,
                           rpki::RoaArchive::Filter filter =
                               rpki::RoaArchive::Filter::kAll) {
  if (!day_available(s, Feed::kRoas, d)) return nullptr;
  if (s.snapshots) return s.snapshots->signed_space(d, tals, filter);
  return std::make_shared<const net::IntervalSet>(
      s.roas.signed_space(d, tals, filter));
}

inline SetPtr free_pool(const Study& s, rir::Rir rir, net::Date d) {
  if (!day_available(s, Feed::kDelegations, d)) return nullptr;
  if (s.snapshots) return s.snapshots->free_pool(rir, d);
  return std::make_shared<const net::IntervalSet>(s.registry.free_pool(rir, d));
}

inline SetPtr irr_space(const Study& s, net::Date d) {
  if (!day_available(s, Feed::kIrr, d)) return nullptr;
  if (s.snapshots && s.snapshots->has_irr()) return s.snapshots->irr_space(d);
  net::IntervalSet covered;
  for (const irr::Registration& reg : s.irr.all_history()) {
    if (reg.live_on(d)) covered.insert(reg.object.prefix);
  }
  return std::make_shared<const net::IntervalSet>(std::move(covered));
}

inline SetPtr drop_space(const Study& s, net::Date d) {
  if (!day_available(s, Feed::kDropFeed, d)) return nullptr;
  if (s.snapshots) return s.snapshots->drop_space(d);
  net::IntervalSet active;
  for (const net::Prefix& p : s.drop.snapshot(d)) active.insert(p);
  return std::make_shared<const net::IntervalSet>(std::move(active));
}

/// fn(i) for i in [0, n): across the Study's pool when one is attached,
/// inline otherwise.
template <typename Fn>
void parallel_for(const Study& s, size_t n, Fn&& fn) {
  if (s.pool) {
    s.pool->parallel_for(n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

/// The monthly sampling grid every longitudinal analysis uses: every 30
/// days from window_begin, plus window_end itself as the final sample.
inline std::vector<net::Date> sample_dates(const Study& s) {
  std::vector<net::Date> dates;
  for (net::Date d = s.window_begin; d < s.window_end; d += 30) {
    dates.push_back(d);
  }
  dates.push_back(s.window_end);
  return dates;
}

/// The latest sample-grid date on which every feed in `feeds` is available —
/// the graceful stand-in for window_end in end-of-window facts when the last
/// day's archives were unusable. Empty when no grid date qualifies.
inline std::optional<net::Date> last_available_date(
    const Study& s, std::initializer_list<Feed> feeds) {
  const std::vector<net::Date> dates = sample_dates(s);
  for (auto it = dates.rbegin(); it != dates.rend(); ++it) {
    if (day_available(s, feeds, *it)) return *it;
  }
  return std::nullopt;
}

}  // namespace droplens::core::engine
