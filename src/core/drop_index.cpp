#include "core/drop_index.hpp"

#include <map>
#include <string>

namespace droplens::core {

namespace {

// Incident detection (§3.1): the two AFRINIC incidents are hijack-labeled
// prefix clusters that share an IRR ORG-ID, sit in AFRINIC space, and cover
// an outsized amount of address space. Thresholds are relative to the whole
// DROP population so they separate the incidents from the serial-hijacker
// ORG clusters of §5 (many prefixes, little space) at any scenario scale.
constexpr double kIncidentSpaceShare = 0.10;   // >= 10% of DROP space
constexpr double kIncidentPrefixShare = 0.025; // >= 2.5% of DROP prefixes

}  // namespace

DropIndex DropIndex::build(const Study& study) {
  DropIndex index;
  drop::Classifier classifier;

  for (const net::Prefix& p : study.drop.all_prefixes()) {
    const std::vector<drop::Listing> stints = study.drop.listings_of(p);
    DropEntry e;
    e.prefix = p;
    e.listed = stints.front().listed.begin;
    const drop::Listing& last = stints.back();
    if (last.listed.end != net::DateRange::unbounded() &&
        last.listed.end <= study.window_end) {
      e.removed = true;
      e.removed_on = last.listed.end;
    }
    if (const drop::SblRecord* rec = study.sbl.find_by_prefix(p)) {
      e.has_record = true;
      e.cls = classifier.classify(rec->text);
      e.categories = e.cls.categories;
    } else {
      e.categories.add(drop::Category::kNoRecord);
    }
    index.entries_.push_back(std::move(e));
  }

  // Cluster hijack-labeled entries by the ORG-ID of their route objects.
  struct Cluster {
    std::vector<size_t> members;
    uint64_t space = 0;
    bool afrinic = true;
  };
  std::map<std::string, Cluster> clusters;
  for (size_t i = 0; i < index.entries_.size(); ++i) {
    const DropEntry& e = index.entries_[i];
    if (!e.is(drop::Category::kHijacked)) continue;
    for (const irr::Registration& reg :
         study.irr.exact_or_more_specific(e.prefix, e.listed)) {
      const std::string& org = reg.object.org_id;
      if (org.empty()) continue;
      Cluster& c = clusters[org];
      c.members.push_back(i);
      c.space += e.prefix.size();
      if (study.registry.rir_of(e.prefix) != rir::Rir::kAfrinic) {
        c.afrinic = false;
      }
      break;  // one route object is enough to attribute the ORG
    }
  }
  uint64_t total_space = 0;
  for (const DropEntry& e : index.entries_) total_space += e.prefix.size();
  double min_space = kIncidentSpaceShare * static_cast<double>(total_space);
  double min_prefixes =
      kIncidentPrefixShare * static_cast<double>(index.entries_.size());
  for (const auto& [org, c] : clusters) {
    if (c.afrinic &&
        static_cast<double>(c.members.size()) >= min_prefixes &&
        static_cast<double>(c.space) >= min_space) {
      for (size_t i : c.members) index.entries_[i].incident = true;
    }
  }
  return index;
}

std::vector<const DropEntry*> DropIndex::non_incident() const {
  std::vector<const DropEntry*> out;
  out.reserve(entries_.size());
  for (const DropEntry& e : entries_) {
    if (!e.incident) out.push_back(&e);
  }
  return out;
}

size_t DropIndex::incident_count() const {
  size_t n = 0;
  for (const DropEntry& e : entries_) n += e.incident;
  return n;
}

}  // namespace droplens::core
