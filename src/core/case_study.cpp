#include "core/case_study.hpp"

#include <algorithm>
#include <set>

namespace droplens::core {

namespace {

/// The hijack transit of an episode: its first hop (the AS adjacent to the
/// collector peers), used to group announcements by upstream.
net::Asn first_hop(const bgp::Episode& e) { return e.path->hops().front(); }

/// Other prefixes originated with the hijack's ASN through the same
/// upstream — Fig 4's sibling rows.
void find_siblings(const Study& study, RpkiValidHijack& hijack,
                   net::Asn upstream, const net::Prefix& self) {
  for (const net::Prefix& p : study.fleet.announced_prefixes()) {
    if (p == self || self.contains(p)) continue;
    for (const bgp::Episode& ep : study.fleet.episodes(p)) {
      if (ep.origin() == hijack.roa_asn && ep.path->contains(upstream)) {
        hijack.siblings.push_back(p);
        if (study.drop.first_listed(p)) ++hijack.siblings_on_drop;
        break;
      }
    }
  }
}

}  // namespace

CaseStudyResult analyze_case_study(const Study& study,
                                   const DropIndex& index) {
  CaseStudyResult r;

  for (const DropEntry* e : index.non_incident()) {
    if (!e->is(drop::Category::kHijacked)) continue;
    ++r.hijacked_prefixes;
    if (!study.roas.signed_on(e->prefix, e->listed)) continue;
    ++r.signed_before_listing;

    // Did the ROA's ASN track the BGP origin over the two years before the
    // listing? That pattern means the hijacker controls the ROA itself.
    std::vector<rpki::RoaRecord> records =
        study.roas.records_covering(e->prefix);
    std::set<uint32_t> recent_roa_asns;
    int tracked = 0;
    for (const rpki::RoaRecord& rec : records) {
      if (rec.lifetime.begin < e->listed - 730 ||
          rec.lifetime.begin > e->listed) {
        continue;
      }
      recent_roa_asns.insert(rec.roa.asn.value());
      std::vector<net::Asn> origins =
          study.fleet.origins_on(e->prefix, rec.lifetime.begin + 1);
      if (std::find(origins.begin(), origins.end(), rec.roa.asn) !=
          origins.end()) {
        ++tracked;
      }
    }
    if (recent_roa_asns.size() >= 2 && tracked >= 2) {
      ++r.attacker_controlled_roas;
      continue;
    }

    // Otherwise: look for the 132.255.0.0/22 pattern — a long-stable ROA, an
    // unrouted gap, then a re-origination with the ROA's ASN through a new
    // upstream, RPKI-valid the whole time.
    std::vector<bgp::Episode> eps = study.fleet.episodes(e->prefix);
    std::sort(eps.begin(), eps.end(),
              [](const bgp::Episode& a, const bgp::Episode& b) {
                return a.range.begin < b.range.begin;
              });
    for (size_t i = 0; i + 1 < eps.size(); ++i) {
      const bgp::Episode& before = eps[i];
      const bgp::Episode& after = eps[i + 1];
      if (before.range.end == net::DateRange::unbounded()) continue;
      if (after.range.begin - before.range.end < 30) continue;  // real gap?
      if (before.origin() != after.origin()) continue;
      if (first_hop(before) == first_hop(after)) continue;
      if (study.roas.validate_route(e->prefix, after.origin(),
                                    after.range.begin) !=
          rpki::Validity::kValid) {
        continue;
      }
      RpkiValidHijack hijack;
      hijack.prefix = e->prefix;
      hijack.roa_asn = after.origin();
      hijack.unrouted_since = before.range.end;
      hijack.rehijacked_on = after.range.begin;

      // Siblings: other prefixes originated with the same ASN through the
      // same (hijack-era) upstream.
      net::Asn upstream = first_hop(after);
      find_siblings(study, hijack, upstream, e->prefix);

      // Timeline (Fig 4): the prefix, its more-specifics, and siblings.
      auto add_rows = [&](const net::Prefix& p) {
        for (const auto& [pp, ep] : study.fleet.episodes_covered_by(p)) {
          TimelineRow row;
          row.prefix = pp;
          row.begin = ep.range.begin;
          row.end = ep.range.end;
          row.path = ep.path->to_string();
          row.rpki_valid =
              study.roas.validate_route(pp, ep.origin(), ep.range.begin) ==
              rpki::Validity::kValid;
          if (auto first = study.drop.first_listed(pp)) {
            row.on_drop = true;
            row.drop_date = *first;
          }
          hijack.timeline.push_back(std::move(row));
        }
      };
      add_rows(e->prefix);
      for (const net::Prefix& s : hijack.siblings) add_rows(s);
      std::sort(hijack.timeline.begin(), hijack.timeline.end(),
                [](const TimelineRow& a, const TimelineRow& b) {
                  return a.prefix < b.prefix ||
                         (a.prefix == b.prefix && a.begin < b.begin);
                });
      r.valid_hijacks.push_back(std::move(hijack));
      break;
    }
  }
  return r;
}

}  // namespace droplens::core
