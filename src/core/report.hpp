// One-call study report: runs every analysis and renders the results as a
// structured text document — the whole paper, regenerated.
#pragma once

#include <iosfwd>

#include "core/study.hpp"

namespace droplens::core {

struct ReportOptions {
  bool include_extensions = true;   // defense matrix, maxLength, profiling
  bool include_case_timeline = true;
  bool include_series = false;      // monthly CSV series (Fig 5/7)
  // Analysis-engine worker threads. 0 resolves via DROPLENS_THREADS (env)
  // or hardware_concurrency; 1 forces the sequential path. Ignored when the
  // Study already carries a pool. Output is byte-identical either way.
  unsigned threads = 0;
};

/// Run the full DROP-lens pipeline on `study` and write the report to
/// `out`. Returns the number of sections rendered.
int write_report(std::ostream& out, const Study& study,
                 const ReportOptions& options = {});

}  // namespace droplens::core
