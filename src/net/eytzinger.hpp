// Branch-free, cache-line-aware search index over a sorted key array.
//
// The substrates (IntervalSet, SegmentMap) answer every query with an
// upper_bound over a flat sorted array. At paper scale (~1K segments) the
// array fits in L1/L2 and std::upper_bound is fine; at full-table scale
// (1M+ segments, ~24 MB of segments) every probe of a classic binary search
// is a cache miss on a *serially dependent* address — the search is latency-
// bound, ~30 misses deep, and one core tops out near a few million
// lookups/s.
//
// EytzingerIndex rearranges only the *keys* into the Eytzinger (BFS /
// implicit-heap) order: node k's children are 2k and 2k+1, so the top of
// the tree — the levels every query touches — packs into a handful of
// contiguous cache lines, and the address of the next probe is computable
// from the comparison bit alone (no data-dependent branch). A parallel
// `rank` array maps each tree slot back to the element's position in the
// canonical sorted array, so the index is a pure *permutation overlay*:
// the canonical arrays (and the `.dls` mmap format serialized from them)
// stay byte-identical, and the index is rebuilt from them at load time.
//
// The batched form descends a stripe of queries in lockstep and software-
// prefetches each lane's great-great-grandchildren cache line, converting
// the dependent-miss chain into ~W independent misses in flight per level
// (memory-level parallelism) — the difference between ~5M and >100M
// lookups/s per core at full-table scale.
//
// The tree is padded to a full complete tree (cap = bit_ceil(n + 1)) with
// +inf sentinel keys whose rank is n, so every descent runs exactly
// log2(cap) iterations with no bounds check and resolves pads to "past the
// end" for free.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace droplens::net {

class EytzingerIndex {
 public:
  EytzingerIndex() = default;

  /// Build over `n` keys where `key_at(i)` is the i-th key in ascending
  /// sorted order (duplicates allowed). O(n). Keys are copied into the
  /// index; the source may be a strided field (e.g. Segment::begin).
  /// Degenerate guard: n must leave room for the `rank == n` sentinel in a
  /// uint32_t — otherwise the index stays unbuilt and callers fall back to
  /// the reference search.
  template <typename KeyAt>
  void build(size_t n, KeyAt&& key_at) {
    clear();
    if (n >= UINT32_MAX) return;
    n_ = n;
    cap_ = std::bit_ceil(n + 1);
    levels_ = static_cast<uint32_t>(std::countr_zero(cap_));
    keys_.resize(cap_, kSentinel);
    rank_.resize(cap_, static_cast<uint32_t>(n));
    size_t next = 0;
    fill(1, next, key_at);
    assert(next == n_);
  }

  void clear() {
    keys_.clear();
    rank_.clear();
    n_ = 0;
    cap_ = 0;
    levels_ = 0;
  }

  bool built() const { return cap_ != 0; }
  size_t size() const { return n_; }

  /// Rank of the first sorted element whose key is > x (== n if none):
  /// exactly `std::upper_bound(keys, keys + n, x) - keys`.
  uint32_t upper_bound(uint64_t x) const {
    assert(built());
    size_t k = 1;
    for (uint32_t lvl = 0; lvl < levels_; ++lvl) {
      k = 2 * k + static_cast<size_t>(keys_[k] <= x);
    }
    k >>= std::countr_one(k) + 1;
    return k == 0 ? static_cast<uint32_t>(n_) : rank_[k];
  }

  /// Batched upper_bound: out[i] = upper_bound(xs[i]). Descends a stripe of
  /// kLanes queries in lockstep, prefetching each lane's subtree four
  /// levels ahead (16 nodes = two cache lines of keys), so the misses of a
  /// whole stripe are in flight concurrently instead of serialized.
  void upper_bound_batch(std::span<const uint64_t> xs, uint32_t* out) const {
    assert(built());
    static constexpr size_t kLanes = 16;
    static constexpr uint32_t kAhead = 4;  // prefetch depth, log2(16)
    size_t i = 0;
    for (; i + kLanes <= xs.size(); i += kLanes) {
      size_t k[kLanes];
      for (size_t j = 0; j < kLanes; ++j) k[j] = 1;
      for (uint32_t lvl = 0; lvl < levels_; ++lvl) {
        for (size_t j = 0; j < kLanes; ++j) {
          k[j] = 2 * k[j] + static_cast<size_t>(keys_[k[j]] <= xs[i + j]);
        }
        // After this level k < 2^(lvl+2), so k<<kAhead stays within cap_
        // exactly when lvl + kAhead + 1 < levels_ — hoisted, branch-free
        // inner loop.
        if (lvl + kAhead + 1 < levels_) {
          const uint64_t* base = keys_.data();
          for (size_t j = 0; j < kLanes; ++j) {
            __builtin_prefetch(base + (k[j] << kAhead));
            __builtin_prefetch(base + (k[j] << kAhead) + 8);
          }
        }
      }
      for (size_t j = 0; j < kLanes; ++j) {
        size_t r = k[j] >> (std::countr_one(k[j]) + 1);
        out[i + j] = r == 0 ? static_cast<uint32_t>(n_) : rank_[r];
      }
    }
    for (; i < xs.size(); ++i) out[i] = upper_bound(xs[i]);
  }

 private:
  static constexpr uint64_t kSentinel = ~uint64_t{0};

  // In-order walk of the complete tree assigns sorted positions to slots;
  // positions past n stay at the sentinel defaults (they sort after every
  // real key, which is bounded by 2^32 < kSentinel).
  template <typename KeyAt>
  void fill(size_t k, size_t& next, KeyAt& key_at) {
    if (k >= cap_) return;
    fill(2 * k, next, key_at);
    if (next < n_) {
      keys_[k] = key_at(next);
      rank_[k] = static_cast<uint32_t>(next);
      ++next;
    }
    fill(2 * k + 1, next, key_at);
  }

  std::vector<uint64_t> keys_;  // Eytzinger order; slot 0 unused
  std::vector<uint32_t> rank_;  // slot -> index in the sorted array
  size_t n_ = 0;
  size_t cap_ = 0;       // bit_ceil(n + 1); 0 = not built
  uint32_t levels_ = 0;  // log2(cap_)
};

}  // namespace droplens::net
