#include "net/prefix.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace droplens::net {

namespace {

constexpr uint32_t mask_for(int length) {
  return length == 0 ? 0 : ~uint32_t{0} << (32 - length);
}

}  // namespace

Prefix::Prefix(Ipv4 network, int length) : network_(network), length_(length) {
  if (length < 0 || length > 32) {
    throw InvariantError("prefix length out of range: " +
                         std::to_string(length));
  }
  if ((network.value() & ~mask_for(length)) != 0) {
    throw InvariantError("prefix has host bits set: " + network.to_string() +
                         "/" + std::to_string(length));
  }
}

Prefix Prefix::parse(std::string_view text) {
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    throw ParseError("prefix missing '/': '" + std::string(text) + "'");
  }
  Ipv4 addr = Ipv4::parse(text.substr(0, slash));
  unsigned long len = util::parse_u64(text.substr(slash + 1));
  if (len > 32) {
    throw ParseError("prefix length out of range: '" + std::string(text) + "'");
  }
  return Prefix(addr, static_cast<int>(len));
}

Prefix Prefix::containing(Ipv4 addr, int length) {
  if (length < 0 || length > 32) {
    throw InvariantError("prefix length out of range: " +
                         std::to_string(length));
  }
  return Prefix(Ipv4(addr.value() & mask_for(length)), length);
}

bool Prefix::contains(const Prefix& other) const {
  if (other.length_ < length_) return false;
  return (other.network_.value() & mask_for(length_)) == network_.value();
}

bool Prefix::contains(Ipv4 addr) const {
  return (addr.value() & mask_for(length_)) == network_.value();
}

Prefix Prefix::parent() const {
  if (length_ == 0) throw InvariantError("/0 has no parent");
  return containing(network_, length_ - 1);
}

Prefix Prefix::child(int bit) const {
  if (length_ == 32) throw InvariantError("/32 has no children");
  uint32_t net = network_.value();
  if (bit) net |= uint32_t{1} << (31 - length_);
  return Prefix(Ipv4(net), length_ + 1);
}

std::string Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

}  // namespace droplens::net
