// Flattened interval→value map over the IPv4 address space.
//
// The query service compiles per-day state into structures a lookup can
// binary-search without chasing pointers. IntervalSet already covers the
// boolean fields (routed? signed?); SegmentMap covers the valued ones
// (which DROP categories, which ROV status): paint (range, value) pairs —
// later paints either overwrite (most-specific-wins, the router longest-
// match semantic) or merge (label union) — then finalize() into one sorted
// vector of disjoint segments. Lookup is a single upper_bound.
//
// Like IntervalSet, a map either owns its segment array or is a non-owning
// view over externally owned storage — the zero-copy form the snapshot
// loader builds over mmapped segment arrays. Views are immutable: they are
// born finalized, and painting into one is a programming error (asserted in
// debug builds).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "net/eytzinger.hpp"
#include "net/prefix.hpp"

namespace droplens::net {

template <typename T>
class SegmentMap {
 public:
  struct Segment {
    uint64_t begin;
    uint64_t end;  // half-open
    T value;

    friend bool operator==(const Segment&, const Segment&) = default;
  };

  SegmentMap() = default;

  /// Non-owning view over an already-canonical segment array (see
  /// is_canonical). The storage must outlive the view and every copy of it.
  /// Canonicality is asserted in debug builds only — loaders of untrusted
  /// bytes must call is_canonical() themselves and reject violations.
  static SegmentMap view(std::span<const Segment> segments) {
    assert(is_canonical(segments));
    SegmentMap m;
    m.ext_data_ = segments.data();
    m.ext_size_ = segments.size();
    // Views are born finalized — build the acceleration index up front, so
    // a snapshot loaded from mmapped bytes regains the fast path (the
    // on-disk format carries only the canonical segment array).
    m.build_index();
    return m;
  }

  /// True when `segments` satisfies the finalized-form invariant: sorted by
  /// begin, non-empty, non-overlapping, ends within the IPv4 space bound
  /// 2^32. (Maximal coalescing is not required — lookups don't depend on
  /// it.)
  static bool is_canonical(std::span<const Segment> segments) {
    constexpr uint64_t kSpaceEnd = uint64_t{1} << 32;
    uint64_t prev_end = 0;
    for (const Segment& s : segments) {
      if (s.begin >= s.end || s.end > kSpaceEnd || s.begin < prev_end) {
        return false;
      }
      prev_end = s.end;
    }
    return true;
  }

  bool is_view() const { return ext_data_ != nullptr; }

  /// Paint [begin, end) := value, replacing whatever was there — painting
  /// prefixes from least to most specific yields longest-match semantics.
  void assign(uint64_t begin, uint64_t end, const T& value) {
    apply(begin, end, [&](const std::optional<T>&) { return value; });
  }
  void assign(const Prefix& p, const T& value) {
    assign(p.first(), p.end(), value);
  }

  /// Paint [begin, end) := merge(existing, value), where `existing` is empty
  /// for so-far-unpainted space. Used to OR category bits of overlapping
  /// DROP listings.
  template <typename Merge>
  void merge(uint64_t begin, uint64_t end, const T& value, Merge&& m) {
    apply(begin, end, [&](const std::optional<T>& existing) {
      return m(existing, value);
    });
  }
  template <typename Merge>
  void merge(const Prefix& p, const T& value, Merge&& m) {
    merge(p.first(), p.end(), value, std::forward<Merge>(m));
  }

  /// Flatten the paint into the immutable sorted-segment form. Adjacent
  /// segments with equal values coalesce. Call exactly once, after the last
  /// paint; lookups before finalize() see an empty map.
  void finalize() {
    assert(!is_view());
    if (is_view()) return;
    segments_.clear();
    for (const auto& [begin, piece] : paint_) {
      if (!piece.value) continue;
      if (!segments_.empty() && segments_.back().end == begin &&
          segments_.back().value == *piece.value) {
        segments_.back().end = piece.end;
      } else {
        segments_.push_back({begin, piece.end, *piece.value});
      }
    }
    paint_.clear();
    eytz_.clear();
    build_index();
  }

  /// Build the Eytzinger acceleration index (net/eytzinger.hpp) over the
  /// finalized segment array. A permutation overlay only: segments() and
  /// everything serialized from it are unchanged. finalize() and view()
  /// call this automatically; idempotent.
  void build_index() {
    std::span<const Segment> segs = segments();
    if (eytz_.built() && eytz_.size() == segs.size()) return;
    eytz_.build(segs.size(), [segs](size_t i) { return segs[i].begin; });
  }
  bool has_fast_index() const { return eytz_.built(); }

  /// The segment value at address `addr`, or nullptr for unpainted space.
  const T* lookup(uint64_t addr) const {
    if (!eytz_.built()) return lookup_reference(addr);
    std::span<const Segment> segs = segments();
    uint32_t r = eytz_.upper_bound(addr);
    if (r == 0) return nullptr;
    const Segment& s = segs[r - 1];
    return addr < s.end ? &s.value : nullptr;
  }

  /// The plain std::upper_bound lookup, bypassing the index — the oracle
  /// the differential tests cross-check every indexed answer against.
  const T* lookup_reference(uint64_t addr) const {
    std::span<const Segment> segs = segments();
    auto it = std::upper_bound(
        segs.begin(), segs.end(), addr,
        [](uint64_t a, const Segment& s) { return a < s.begin; });
    if (it == segs.begin()) return nullptr;
    --it;
    return addr < it->end ? &it->value : nullptr;
  }

  /// Batched lookup: out[i] = lookup(addrs[i]). With the index built, a
  /// stripe of queries descends in lockstep with software prefetch (see
  /// eytzinger.hpp); without it, the reference loop. `out` must have
  /// addrs.size() slots.
  void lookup_batch(std::span<const uint64_t> addrs, const T** out) const {
    std::span<const Segment> segs = segments();
    if (!eytz_.built()) {
      for (size_t i = 0; i < addrs.size(); ++i) {
        out[i] = lookup_reference(addrs[i]);
      }
      return;
    }
    constexpr size_t kChunk = 512;
    uint32_t ranks[kChunk];
    for (size_t base = 0; base < addrs.size(); base += kChunk) {
      const size_t len = std::min(kChunk, addrs.size() - base);
      eytz_.upper_bound_batch(addrs.subspan(base, len), ranks);
      for (size_t j = 0; j < len; ++j) {
        uint32_t r = ranks[j];
        out[base + j] = (r != 0 && addrs[base + j] < segs[r - 1].end)
                            ? &segs[r - 1].value
                            : nullptr;
      }
    }
  }

  /// The value at a prefix's network address — the longest-match answer
  /// when paints went least-specific-first.
  const T* lookup(const Prefix& p) const { return lookup(p.first()); }

  bool empty() const { return segments().empty(); }
  size_t segment_count() const { return segments().size(); }
  std::span<const Segment> segments() const {
    return ext_data_ ? std::span<const Segment>(ext_data_, ext_size_)
                     : std::span<const Segment>(segments_);
  }

 private:
  struct Piece {
    uint64_t end;
    std::optional<T> value;  // empty = unpainted gap
  };

  // Piecewise-constant paint keyed by segment begin; pieces are disjoint,
  // sorted, and contiguous only where painted (gaps are simply absent keys
  // except where a paint was split around them — those carry empty values).
  template <typename Fn>
  void apply(uint64_t begin, uint64_t end, Fn&& fn) {
    assert(!is_view());
    if (begin >= end) return;
    // Split the piece strictly straddling `begin`, if any (a piece starting
    // exactly at `begin` needs no split — and must not be, or its key would
    // collide with the head we would insert).
    auto it = paint_.upper_bound(begin);
    if (it != paint_.begin()) {
      auto prev = std::prev(it);
      if (prev->first < begin && prev->second.end > begin) {
        Piece tail = prev->second;
        prev->second.end = begin;
        it = paint_.emplace_hint(it, begin, tail);
      }
    }
    // Walk pieces inside [begin, end), transforming each and filling gaps.
    uint64_t cursor = begin;
    it = paint_.lower_bound(begin);
    while (cursor < end) {
      if (it == paint_.end() || it->first >= end) {
        // Trailing gap [cursor, end).
        std::optional<T> v = fn(std::optional<T>{});
        if (v) paint_.emplace_hint(it, cursor, Piece{end, std::move(v)});
        break;
      }
      if (it->first > cursor) {
        // Gap before the next piece.
        std::optional<T> v = fn(std::optional<T>{});
        if (v) {
          it = paint_.emplace_hint(it, cursor, Piece{it->first, std::move(v)});
          ++it;
        }
        cursor = it->first;
        continue;
      }
      // A piece starting at cursor; split its overhang past `end` first.
      if (it->second.end > end) {
        paint_.emplace(end, Piece{it->second.end, it->second.value});
        it->second.end = end;
      }
      it->second.value = fn(it->second.value);
      cursor = it->second.end;
      ++it;
    }
  }

  std::map<uint64_t, Piece> paint_;
  std::vector<Segment> segments_;
  // View mode: when set, segments_ is empty and lookups read this array.
  const Segment* ext_data_ = nullptr;
  size_t ext_size_ = 0;
  // Optional acceleration overlay; ranks index into segments(). Copies
  // carry it (ranks stay valid for equal content).
  EytzingerIndex eytz_;
};

}  // namespace droplens::net
