// Minimal CIDR cover: decompose address ranges into the fewest prefixes.
//
// Used by the AS0 policy engine (an RIR signs its *free pool* — an arbitrary
// union of ranges — as AS0 ROAs, which must be CIDR blocks) and by the
// delegation-file writer (RIR stats use start+count ranges).
#pragma once

#include <vector>

#include "net/interval_set.hpp"
#include "net/prefix.hpp"

namespace droplens::net {

/// The unique minimal set of prefixes exactly covering [begin, end).
/// Requires begin <= end <= 2^32.
std::vector<Prefix> cidr_cover(uint64_t begin, uint64_t end);

/// Minimal prefix cover of a whole interval set, in address order.
std::vector<Prefix> cidr_cover(const IntervalSet& set);

}  // namespace droplens::net
