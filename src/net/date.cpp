#include "net/date.hpp"

#include <cstdio>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace droplens::net {

namespace {

// Howard Hinnant's days_from_civil / civil_from_days algorithms.
constexpr int32_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);          // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;         // [0, 146096]
  return era * 146097 + static_cast<int32_t>(doe) - 719468;
}

constexpr bool is_leap(int y) {
  return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0);
}

constexpr int days_in_month(int y, int m) {
  constexpr int lengths[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  return m == 2 && is_leap(y) ? 29 : lengths[m - 1];
}

}  // namespace

Date Date::from_ymd(int year, int month, int day) {
  if (month < 1 || month > 12 || day < 1 || day > days_in_month(year, month)) {
    throw InvariantError("invalid civil date");
  }
  return Date(days_from_civil(year, month, day));
}

Date Date::parse(std::string_view text) {
  int y = 0, m = 0, d = 0;
  if (text.size() == 10 && text[4] == '-' && text[7] == '-') {
    y = static_cast<int>(util::parse_u64(text.substr(0, 4)));
    m = static_cast<int>(util::parse_u64(text.substr(5, 2)));
    d = static_cast<int>(util::parse_u64(text.substr(8, 2)));
  } else if (text.size() == 8) {
    y = static_cast<int>(util::parse_u64(text.substr(0, 4)));
    m = static_cast<int>(util::parse_u64(text.substr(4, 2)));
    d = static_cast<int>(util::parse_u64(text.substr(6, 2)));
  } else {
    throw ParseError("bad date: '" + std::string(text) + "'");
  }
  try {
    return from_ymd(y, m, d);
  } catch (const InvariantError&) {
    throw ParseError("bad date: '" + std::string(text) + "'");
  }
}

Date::Ymd Date::ymd() const {
  // civil_from_days
  int32_t z = days_ + 719468;
  const int32_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  return Ymd{y + (m <= 2), static_cast<int>(m), static_cast<int>(d)};
}

std::string Date::to_string() const {
  Ymd c = ymd();
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

}  // namespace droplens::net
