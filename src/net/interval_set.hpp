// Disjoint half-open interval set over the IPv4 address space.
//
// The paper repeatedly accounts address space in "/8 equivalents" (Fig 1,
// Fig 5, Fig 7): unions of prefixes with overlap collapsed. IntervalSet is
// that accounting primitive. Bounds are uint64 so the end of 255/8 (2^32)
// is representable.
//
// A set either owns its interval array (the default: every mutation path)
// or is a non-owning view over externally owned storage — the zero-copy
// form the snapshot loader builds over mmapped segment arrays. Views answer
// every query identically; a mutating call first detaches into an owned
// copy, so the external storage is never written.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/eytzinger.hpp"
#include "net/prefix.hpp"

namespace droplens::net {

class IntervalSet {
 public:
  struct Interval {
    uint64_t begin;
    uint64_t end;  // half-open

    uint64_t size() const { return end - begin; }
    friend auto operator<=>(const Interval&, const Interval&) = default;
  };

  IntervalSet() = default;

  /// Non-owning view over an already-canonical interval array (see
  /// is_canonical). The storage must outlive the view and every copy of it.
  /// Canonicality is asserted in debug builds only — loaders of untrusted
  /// bytes must call is_canonical() themselves and reject violations.
  static IntervalSet view(std::span<const Interval> intervals);

  /// True when `intervals` satisfies the class invariant: sorted by begin,
  /// non-empty, non-overlapping, non-adjacent, ends within the IPv4 space
  /// bound 2^32.
  static bool is_canonical(std::span<const Interval> intervals);

  /// Build a set from intervals already sorted by begin (overlap and
  /// adjacency allowed — one coalescing sweep canonicalizes). O(n), versus
  /// the O(n²) of n insert() calls; the streaming compactor unions hundreds
  /// of thousands of prefixes per snapshot through this. Empty intervals
  /// are skipped; precondition (sortedness) is asserted in debug builds.
  static IntervalSet from_sorted(std::span<const Interval> intervals);

  bool is_view() const { return ext_data_ != nullptr; }

  /// Insert; overlapping/adjacent intervals coalesce. Empty ranges ignored.
  void insert(uint64_t begin, uint64_t end);
  void insert(const Prefix& p) { insert(p.first(), p.end()); }

  /// Remove [begin, end) from the set.
  void erase(uint64_t begin, uint64_t end);
  void erase(const Prefix& p) { erase(p.first(), p.end()); }

  bool contains(Ipv4 addr) const;

  /// True if every address of `p` is in the set.
  bool covers(const Prefix& p) const;

  /// True if any address of `p` is in the set.
  bool intersects(const Prefix& p) const;

  /// Build the Eytzinger acceleration index (net/eytzinger.hpp) over the
  /// current interval array. A permutation overlay only: intervals() and
  /// everything serialized from it are unchanged. view() and from_sorted()
  /// build it automatically; sets grown by insert()/erase() call this once
  /// after the last mutation (any mutation discards the index). Idempotent.
  void build_index();
  bool has_fast_index() const { return eytz_.built(); }

  // Reference twins: the plain std::upper_bound/lower_bound searches,
  // bypassing the index. The differential tests cross-check every indexed
  // and batched answer against these.
  bool contains_reference(Ipv4 addr) const;
  bool covers_reference(const Prefix& p) const;
  bool intersects_reference(const Prefix& p) const;

  /// Batched queries: out[i] = contains/intersects of the i-th input
  /// (0/1). With the index built, a stripe of queries descends in lockstep
  /// with software prefetch (see eytzinger.hpp); without it, this is the
  /// reference loop. `out` must have the input's length.
  void contains_batch(std::span<const uint64_t> addrs, uint8_t* out) const;
  void intersects_batch(std::span<const Prefix> prefixes, uint8_t* out) const;

  /// Total number of addresses.
  uint64_t size() const;

  /// size() / 2^24 — the paper's "/8 equivalents" unit.
  double slash8_equivalents() const {
    return static_cast<double>(size()) /
           static_cast<double>(uint64_t{1} << 24);
  }

  bool empty() const { return intervals().empty(); }
  size_t interval_count() const { return intervals().size(); }
  std::span<const Interval> intervals() const {
    return ext_data_ ? std::span<const Interval>(ext_data_, ext_size_)
                     : std::span<const Interval>(intervals_);
  }

  /// Set algebra; results are canonical (disjoint, sorted, coalesced).
  static IntervalSet set_union(const IntervalSet& a, const IntervalSet& b);
  static IntervalSet set_intersection(const IntervalSet& a,
                                      const IntervalSet& b);
  static IntervalSet set_difference(const IntervalSet& a,
                                    const IntervalSet& b);

  /// Content equality; an owned set and a view over the same intervals
  /// compare equal.
  friend bool operator==(const IntervalSet& a, const IntervalSet& b);

 private:
  /// Copy a view's external storage into intervals_ before mutating.
  void detach();

  // Invariant: sorted by begin, non-empty, non-overlapping, non-adjacent.
  std::vector<Interval> intervals_;
  // View mode: when set, intervals_ is empty and queries read this array.
  const Interval* ext_data_ = nullptr;
  size_t ext_size_ = 0;
  // Optional acceleration overlay; ranks index into intervals(). Mutations
  // clear it, copies carry it (ranks stay valid for equal content).
  EytzingerIndex eytz_;
};

}  // namespace droplens::net
