// Disjoint half-open interval set over the IPv4 address space.
//
// The paper repeatedly accounts address space in "/8 equivalents" (Fig 1,
// Fig 5, Fig 7): unions of prefixes with overlap collapsed. IntervalSet is
// that accounting primitive. Bounds are uint64 so the end of 255/8 (2^32)
// is representable.
#pragma once

#include <cstdint>
#include <vector>

#include "net/prefix.hpp"

namespace droplens::net {

class IntervalSet {
 public:
  struct Interval {
    uint64_t begin;
    uint64_t end;  // half-open

    uint64_t size() const { return end - begin; }
    friend auto operator<=>(const Interval&, const Interval&) = default;
  };

  IntervalSet() = default;

  /// Insert; overlapping/adjacent intervals coalesce. Empty ranges ignored.
  void insert(uint64_t begin, uint64_t end);
  void insert(const Prefix& p) { insert(p.first(), p.end()); }

  /// Remove [begin, end) from the set.
  void erase(uint64_t begin, uint64_t end);
  void erase(const Prefix& p) { erase(p.first(), p.end()); }

  bool contains(Ipv4 addr) const;

  /// True if every address of `p` is in the set.
  bool covers(const Prefix& p) const;

  /// True if any address of `p` is in the set.
  bool intersects(const Prefix& p) const;

  /// Total number of addresses.
  uint64_t size() const;

  /// size() / 2^24 — the paper's "/8 equivalents" unit.
  double slash8_equivalents() const {
    return static_cast<double>(size()) /
           static_cast<double>(uint64_t{1} << 24);
  }

  bool empty() const { return intervals_.empty(); }
  size_t interval_count() const { return intervals_.size(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Set algebra; results are canonical (disjoint, sorted, coalesced).
  static IntervalSet set_union(const IntervalSet& a, const IntervalSet& b);
  static IntervalSet set_intersection(const IntervalSet& a,
                                      const IntervalSet& b);
  static IntervalSet set_difference(const IntervalSet& a,
                                    const IntervalSet& b);

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  // Invariant: sorted by begin, non-empty, non-overlapping, non-adjacent.
  std::vector<Interval> intervals_;
};

}  // namespace droplens::net
