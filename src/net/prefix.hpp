// IPv4 prefix (CIDR block) value type.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "net/ipv4.hpp"

namespace droplens::net {

/// An IPv4 CIDR prefix. The network address is always canonical (host bits
/// zero); constructing with stray host bits throws InvariantError.
class Prefix {
 public:
  /// Default: 0.0.0.0/0.
  constexpr Prefix() = default;

  /// Throws InvariantError if `length` > 32 or `network` has host bits set.
  Prefix(Ipv4 network, int length);

  /// Parse "a.b.c.d/len"; throws ParseError.
  static Prefix parse(std::string_view text);

  /// The prefix containing `addr` at length `length` (host bits masked off).
  static Prefix containing(Ipv4 addr, int length);

  Ipv4 network() const { return network_; }
  int length() const { return length_; }

  /// First address after the block; 2^32 for blocks ending at the top.
  uint64_t first() const { return network_.value(); }
  uint64_t end() const { return first() + size(); }

  /// Number of addresses covered (2^(32-length)).
  uint64_t size() const { return uint64_t{1} << (32 - length_); }

  /// Address space expressed in /8 equivalents (size / 2^24).
  double slash8_equivalents() const {
    return static_cast<double>(size()) / static_cast<double>(uint64_t{1} << 24);
  }

  /// True if this prefix covers `other` (equal or less-specific).
  bool contains(const Prefix& other) const;
  bool contains(Ipv4 addr) const;

  /// The immediate parent (one bit shorter); throws InvariantError on /0.
  Prefix parent() const;

  /// The two immediate children; throws InvariantError on /32.
  Prefix child(int bit) const;

  /// Value of the bit at position `pos` (0 = most significant) — used by the
  /// radix trie. Requires pos < 32.
  int bit(int pos) const { return (network_.value() >> (31 - pos)) & 1; }

  std::string to_string() const;

  friend auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  Ipv4 network_;
  int length_ = 0;
};

}  // namespace droplens::net

template <>
struct std::hash<droplens::net::Prefix> {
  size_t operator()(const droplens::net::Prefix& p) const noexcept {
    uint64_t key = (uint64_t{p.network().value()} << 6) | uint64_t(p.length());
    // splitmix64 finalizer
    key += 0x9e3779b97f4a7c15ULL;
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(key ^ (key >> 31));
  }
};
