// Calendar date as days since 1970-01-01 (proleptic Gregorian). The study
// window is June 2019 – March 2022, so a day-granularity clock is exactly
// what the paper's data sets use (daily DROP/IRR/ROA/RIR-stats snapshots).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace droplens::net {

class Date {
 public:
  constexpr Date() = default;
  constexpr explicit Date(int32_t days_since_epoch) : days_(days_since_epoch) {}

  /// From a civil date; throws InvariantError on out-of-range month/day.
  static Date from_ymd(int year, int month, int day);

  /// Parse "YYYY-MM-DD" (also accepts "YYYYMMDD", the RIR-stats form).
  static Date parse(std::string_view text);

  constexpr int32_t days() const { return days_; }

  /// Civil components.
  struct Ymd {
    int year;
    int month;
    int day;
  };
  Ymd ymd() const;

  std::string to_string() const;  // "YYYY-MM-DD"

  constexpr Date operator+(int32_t d) const { return Date(days_ + d); }
  constexpr Date operator-(int32_t d) const { return Date(days_ - d); }
  constexpr int32_t operator-(Date other) const { return days_ - other.days_; }
  Date& operator+=(int32_t d) { days_ += d; return *this; }
  Date& operator++() { ++days_; return *this; }

  friend constexpr auto operator<=>(Date, Date) = default;

 private:
  int32_t days_ = 0;
};

/// Half-open date interval [begin, end). `end == Date::max()` means "still
/// open" in the history stores.
struct DateRange {
  Date begin;
  Date end;

  static constexpr Date unbounded() { return Date(INT32_MAX); }

  bool contains(Date d) const { return begin <= d && d < end; }
  int32_t length() const { return end - begin; }

  friend constexpr auto operator<=>(const DateRange&, const DateRange&) = default;
};

}  // namespace droplens::net

template <>
struct std::hash<droplens::net::Date> {
  size_t operator()(droplens::net::Date d) const noexcept {
    return std::hash<int32_t>()(d.days());
  }
};
