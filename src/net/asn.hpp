// Autonomous System Number strong type.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace droplens::net {

/// An AS number. AS0 (`Asn::kAs0`) is reserved: in a ROA it asserts that the
/// covered prefix must not be routed (RFC 6483 / RFC 7607).
class Asn {
 public:
  constexpr Asn() = default;
  constexpr explicit Asn(uint32_t value) : value_(value) {}

  static constexpr uint32_t kAs0Value = 0;
  static constexpr Asn as0() { return Asn(kAs0Value); }

  constexpr uint32_t value() const { return value_; }
  constexpr bool is_as0() const { return value_ == kAs0Value; }

  /// "AS65536" style rendering.
  std::string to_string() const { return "AS" + std::to_string(value_); }

  friend constexpr auto operator<=>(Asn, Asn) = default;

 private:
  uint32_t value_ = 0;
};

}  // namespace droplens::net

template <>
struct std::hash<droplens::net::Asn> {
  size_t operator()(droplens::net::Asn a) const noexcept {
    return std::hash<uint32_t>()(a.value());
  }
};
