#include "net/cidr_cover.hpp"

#include <bit>

#include "util/error.hpp"

namespace droplens::net {

std::vector<Prefix> cidr_cover(uint64_t begin, uint64_t end) {
  if (begin > end || end > (uint64_t{1} << 32)) {
    throw InvariantError("cidr_cover: bad range");
  }
  std::vector<Prefix> out;
  while (begin < end) {
    // Largest power-of-two block that starts at `begin` (alignment limit)
    // and fits in the remaining range (size limit).
    int align_zeros =
        begin == 0 ? 32 : std::countr_zero(static_cast<uint32_t>(begin));
    uint64_t remaining = end - begin;
    int size_bits = 63 - std::countl_zero(remaining);  // floor(log2)
    int block_bits = std::min(align_zeros, std::min(size_bits, 32));
    int length = 32 - block_bits;
    out.push_back(Prefix(Ipv4(static_cast<uint32_t>(begin)), length));
    begin += uint64_t{1} << block_bits;
  }
  return out;
}

std::vector<Prefix> cidr_cover(const IntervalSet& set) {
  std::vector<Prefix> out;
  for (const IntervalSet::Interval& iv : set.intervals()) {
    std::vector<Prefix> part = cidr_cover(iv.begin, iv.end);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

}  // namespace droplens::net
