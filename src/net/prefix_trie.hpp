// Binary radix trie keyed by IPv4 prefix.
//
// This is the lookup structure behind route-origin validation (find all ROAs
// covering an announced prefix), IRR queries (exact-or-more-specific route
// objects, §5), and allocation lookups. Three traversals matter:
//   - exact:    value stored at precisely this prefix
//   - covering: entries on the path from the root to the prefix (all
//               less-specific-or-equal keys that contain it)
//   - covered:  entries in the subtree under the prefix (all
//               more-specific-or-equal keys it contains)
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "net/prefix.hpp"

namespace droplens::net {

template <typename T>
class PrefixMap {
 public:
  PrefixMap() = default;

  PrefixMap(const PrefixMap&) = delete;
  PrefixMap& operator=(const PrefixMap&) = delete;

  // Moves must leave the source truly empty: the defaulted ops would steal
  // root_'s children but leave size_ behind, so size()/empty() would lie.
  PrefixMap(PrefixMap&& other) noexcept
      : root_(std::move(other.root_)), size_(std::exchange(other.size_, 0)) {}
  PrefixMap& operator=(PrefixMap&& other) noexcept {
    if (this != &other) {
      root_ = std::move(other.root_);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  /// Insert or overwrite the value at `key`. Returns a reference to it.
  T& insert_or_assign(const Prefix& key, T value) {
    Node* n = descend_create(key);
    if (!n->value) {
      n->value = std::make_unique<T>(std::move(value));
      ++size_;
    } else {
      *n->value = std::move(value);
    }
    return *n->value;
  }

  /// Value at `key`, default-constructing it if absent.
  T& operator[](const Prefix& key) {
    Node* n = descend_create(key);
    if (!n->value) {
      n->value = std::make_unique<T>();
      ++size_;
    }
    return *n->value;
  }

  /// Exact-match lookup; nullptr if no value stored at `key`.
  const T* find(const Prefix& key) const {
    const Node* n = &root_;
    for (int pos = 0; pos < key.length(); ++pos) {
      n = n->child[key.bit(pos)].get();
      if (!n) return nullptr;
    }
    return n->value.get();
  }
  T* find(const Prefix& key) {
    return const_cast<T*>(std::as_const(*this).find(key));
  }

  /// Remove the value at `key`. Returns true if a value was removed.
  /// Interior nodes left childless and value-less are pruned on the unwind,
  /// so long add/erase churn (BGP fleets, IRR snapshot replays) cannot grow
  /// the trie without bound.
  bool erase(const Prefix& key) {
    Node* path[33];  // parents of each trie level; IPv4 keys are <= /32
    int bits[33];
    Node* n = &root_;
    const int len = key.length();
    for (int pos = 0; pos < len; ++pos) {
      path[pos] = n;
      bits[pos] = key.bit(pos);
      n = n->child[bits[pos]].get();
      if (!n) return false;
    }
    if (!n->value) return false;
    n->value.reset();
    --size_;
    for (int pos = len - 1; pos >= 0; --pos) {
      Node* child = path[pos]->child[bits[pos]].get();
      if (child->value || child->child[0] || child->child[1]) break;
      path[pos]->child[bits[pos]].reset();
    }
    return true;
  }

  /// Visit every (prefix, value) whose prefix contains `key` (path walk),
  /// from least specific to most specific, including `key` itself.
  template <typename Fn>
  void for_each_covering(const Prefix& key, Fn&& fn) const {
    const Node* n = &root_;
    Prefix at;  // 0.0.0.0/0
    if (n->value) fn(at, *n->value);
    for (int pos = 0; pos < key.length(); ++pos) {
      int b = key.bit(pos);
      n = n->child[b].get();
      if (!n) return;
      at = at.child(b);
      if (n->value) fn(at, *n->value);
    }
  }

  /// Visit every (prefix, value) whose prefix is contained in `key`
  /// (subtree walk), including `key` itself, in prefix order.
  template <typename Fn>
  void for_each_covered(const Prefix& key, Fn&& fn) const {
    const Node* n = &root_;
    Prefix at;
    for (int pos = 0; pos < key.length(); ++pos) {
      int b = key.bit(pos);
      n = n->child[b].get();
      if (!n) return;
      at = at.child(b);
    }
    walk(n, at, fn);
  }

  /// Visit every stored (prefix, value).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk(&root_, Prefix(), fn);
  }

  /// The most specific entry containing `key`, or nullptr — longest-prefix
  /// match as a router's FIB would do it. Descends once, remembers only the
  /// deepest value, and writes `matched` a single time at the end.
  const T* longest_match(const Prefix& key, Prefix* matched = nullptr) const {
    const Node* n = &root_;
    const T* best = n->value.get();
    int best_depth = 0;
    int pos = 0;
    for (; pos < key.length(); ++pos) {
      n = n->child[key.bit(pos)].get();
      if (!n) break;
      if (n->value) {
        best = n->value.get();
        best_depth = pos + 1;
      }
    }
    if (best && matched) {
      *matched = Prefix::containing(key.network(), best_depth);
    }
    return best;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of allocated trie nodes, the root included — an observable for
  /// the erase-path pruning guarantee (and a memory proxy in tests).
  size_t node_count() const { return count_nodes(&root_); }

 private:
  struct Node {
    std::unique_ptr<T> value;
    std::unique_ptr<Node> child[2];
  };

  Node* descend_create(const Prefix& key) {
    Node* n = &root_;
    for (int pos = 0; pos < key.length(); ++pos) {
      auto& c = n->child[key.bit(pos)];
      if (!c) c = std::make_unique<Node>();
      n = c.get();
    }
    return n;
  }

  static size_t count_nodes(const Node* n) {
    size_t total = 1;
    for (int b = 0; b < 2; ++b) {
      if (n->child[b]) total += count_nodes(n->child[b].get());
    }
    return total;
  }

  template <typename Fn>
  static void walk(const Node* n, Prefix at, Fn& fn) {
    if (n->value) fn(at, *n->value);
    if (at.length() == 32) return;
    for (int b = 0; b < 2; ++b) {
      if (n->child[b]) walk(n->child[b].get(), at.child(b), fn);
    }
  }

  Node root_;
  size_t size_ = 0;
};

}  // namespace droplens::net
