#include "net/ipv4.hpp"

#include <charconv>

#include "util/error.hpp"

namespace droplens::net {

Ipv4 Ipv4::parse(std::string_view text) {
  uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (p == end || *p != '.') {
        throw ParseError("bad IPv4 address: '" + std::string(text) + "'");
      }
      ++p;
    }
    unsigned v = 0;
    auto [next, ec] = std::from_chars(p, end, v);
    if (ec != std::errc() || next == p || v > 255) {
      throw ParseError("bad IPv4 address: '" + std::string(text) + "'");
    }
    value = (value << 8) | v;
    p = next;
  }
  if (p != end) {
    throw ParseError("bad IPv4 address: '" + std::string(text) + "'");
  }
  return Ipv4(value);
}

std::string Ipv4::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (!out.empty()) out += '.';
    out += std::to_string((value_ >> shift) & 0xff);
  }
  return out;
}

}  // namespace droplens::net
