// IPv4 address value type.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace droplens::net {

/// An IPv4 address as a host-order 32-bit value. Plain value type: copyable,
/// totally ordered, hashable via value().
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(uint32_t value) : value_(value) {}

  /// Parse dotted-quad ("192.0.2.1"); throws ParseError on malformed input.
  static Ipv4 parse(std::string_view text);

  constexpr uint32_t value() const { return value_; }

  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4, Ipv4) = default;

 private:
  uint32_t value_ = 0;
};

}  // namespace droplens::net
