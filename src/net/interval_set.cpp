#include "net/interval_set.hpp"

#include <algorithm>

namespace droplens::net {

void IntervalSet::insert(uint64_t begin, uint64_t end) {
  if (begin >= end) return;
  // Find the first interval whose end >= begin (candidate for merging).
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), begin,
      [](const Interval& iv, uint64_t b) { return iv.end < b; });
  // Find one past the last interval whose begin <= end.
  auto last = std::upper_bound(
      first, intervals_.end(), end,
      [](uint64_t e, const Interval& iv) { return e < iv.begin; });
  if (first != last) {
    begin = std::min(begin, first->begin);
    end = std::max(end, std::prev(last)->end);
  }
  auto it = intervals_.erase(first, last);
  intervals_.insert(it, Interval{begin, end});
}

void IntervalSet::erase(uint64_t begin, uint64_t end) {
  if (begin >= end) return;
  std::vector<Interval> out;
  out.reserve(intervals_.size() + 1);
  for (const Interval& iv : intervals_) {
    if (iv.end <= begin || iv.begin >= end) {
      out.push_back(iv);
      continue;
    }
    if (iv.begin < begin) out.push_back(Interval{iv.begin, begin});
    if (iv.end > end) out.push_back(Interval{end, iv.end});
  }
  intervals_ = std::move(out);
}

bool IntervalSet::contains(Ipv4 addr) const {
  uint64_t a = addr.value();
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), a,
      [](uint64_t v, const Interval& iv) { return v < iv.begin; });
  if (it == intervals_.begin()) return false;
  --it;
  return a < it->end;
}

bool IntervalSet::covers(const Prefix& p) const {
  uint64_t b = p.first(), e = p.end();
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), b,
      [](uint64_t v, const Interval& iv) { return v < iv.begin; });
  if (it == intervals_.begin()) return false;
  --it;
  return b >= it->begin && e <= it->end;
}

bool IntervalSet::intersects(const Prefix& p) const {
  uint64_t b = p.first(), e = p.end();
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), b,
      [](const Interval& iv, uint64_t v) { return iv.end <= v; });
  return it != intervals_.end() && it->begin < e;
}

uint64_t IntervalSet::size() const {
  uint64_t total = 0;
  for (const Interval& iv : intervals_) total += iv.size();
  return total;
}

IntervalSet IntervalSet::set_union(const IntervalSet& a, const IntervalSet& b) {
  IntervalSet out = a;
  for (const Interval& iv : b.intervals_) out.insert(iv.begin, iv.end);
  return out;
}

IntervalSet IntervalSet::set_intersection(const IntervalSet& a,
                                          const IntervalSet& b) {
  IntervalSet out;
  auto ia = a.intervals_.begin();
  auto ib = b.intervals_.begin();
  while (ia != a.intervals_.end() && ib != b.intervals_.end()) {
    uint64_t lo = std::max(ia->begin, ib->begin);
    uint64_t hi = std::min(ia->end, ib->end);
    if (lo < hi) out.intervals_.push_back(Interval{lo, hi});
    if (ia->end < ib->end) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return out;
}

IntervalSet IntervalSet::set_difference(const IntervalSet& a,
                                        const IntervalSet& b) {
  IntervalSet out = a;
  for (const Interval& iv : b.intervals_) out.erase(iv.begin, iv.end);
  return out;
}

}  // namespace droplens::net
