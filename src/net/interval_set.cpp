#include "net/interval_set.hpp"

#include <algorithm>
#include <cassert>

namespace droplens::net {

IntervalSet IntervalSet::view(std::span<const Interval> intervals) {
  assert(is_canonical(intervals));
  IntervalSet set;
  set.ext_data_ = intervals.data();
  set.ext_size_ = intervals.size();
  // Views are born immutable — build the acceleration index up front. This
  // is how a snapshot loaded from mmapped bytes regains the fast path: the
  // on-disk format carries only the canonical arrays.
  set.build_index();
  return set;
}

bool IntervalSet::is_canonical(std::span<const Interval> intervals) {
  constexpr uint64_t kSpaceEnd = uint64_t{1} << 32;
  for (size_t i = 0; i < intervals.size(); ++i) {
    const Interval& iv = intervals[i];
    if (iv.begin >= iv.end || iv.end > kSpaceEnd) return false;
    // Non-adjacent: a canonical set coalesces touching intervals.
    if (i > 0 && iv.begin <= intervals[i - 1].end) return false;
  }
  return true;
}

IntervalSet IntervalSet::from_sorted(std::span<const Interval> intervals) {
  IntervalSet set;
  set.intervals_.reserve(intervals.size());
  for (const Interval& iv : intervals) {
    if (iv.begin >= iv.end) continue;
    assert(set.intervals_.empty() || iv.begin >= set.intervals_.back().begin);
    if (!set.intervals_.empty() && iv.begin <= set.intervals_.back().end) {
      if (iv.end > set.intervals_.back().end) {
        set.intervals_.back().end = iv.end;
      }
    } else {
      set.intervals_.push_back(iv);
    }
  }
  set.build_index();
  return set;
}

void IntervalSet::build_index() {
  std::span<const Interval> ivs = intervals();
  if (eytz_.built() && eytz_.size() == ivs.size()) return;
  eytz_.build(ivs.size(), [ivs](size_t i) { return ivs[i].begin; });
}

void IntervalSet::detach() {
  if (!ext_data_) return;
  intervals_.assign(ext_data_, ext_data_ + ext_size_);
  ext_data_ = nullptr;
  ext_size_ = 0;
}

void IntervalSet::insert(uint64_t begin, uint64_t end) {
  if (begin >= end) return;
  detach();
  eytz_.clear();
  // Find the first interval whose end >= begin (candidate for merging).
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), begin,
      [](const Interval& iv, uint64_t b) { return iv.end < b; });
  // Find one past the last interval whose begin <= end.
  auto last = std::upper_bound(
      first, intervals_.end(), end,
      [](uint64_t e, const Interval& iv) { return e < iv.begin; });
  if (first != last) {
    begin = std::min(begin, first->begin);
    end = std::max(end, std::prev(last)->end);
  }
  auto it = intervals_.erase(first, last);
  intervals_.insert(it, Interval{begin, end});
}

void IntervalSet::erase(uint64_t begin, uint64_t end) {
  if (begin >= end) return;
  detach();
  eytz_.clear();
  std::vector<Interval> out;
  out.reserve(intervals_.size() + 1);
  for (const Interval& iv : intervals_) {
    if (iv.end <= begin || iv.begin >= end) {
      out.push_back(iv);
      continue;
    }
    if (iv.begin < begin) out.push_back(Interval{iv.begin, begin});
    if (iv.end > end) out.push_back(Interval{end, iv.end});
  }
  intervals_ = std::move(out);
}

bool IntervalSet::contains(Ipv4 addr) const {
  if (!eytz_.built()) return contains_reference(addr);
  std::span<const Interval> ivs = intervals();
  uint64_t a = addr.value();
  uint32_t r = eytz_.upper_bound(a);
  return r != 0 && a < ivs[r - 1].end;
}

bool IntervalSet::covers(const Prefix& p) const {
  if (!eytz_.built()) return covers_reference(p);
  std::span<const Interval> ivs = intervals();
  uint64_t b = p.first(), e = p.end();
  // upper_bound by begin: interval r-1 (if any) is the last with begin <= b.
  uint32_t r = eytz_.upper_bound(b);
  return r != 0 && b >= ivs[r - 1].begin && e <= ivs[r - 1].end;
}

bool IntervalSet::intersects(const Prefix& p) const {
  if (!eytz_.built()) return intersects_reference(p);
  std::span<const Interval> ivs = intervals();
  uint64_t b = p.first(), e = p.end();
  // [b, e) overlaps either the last interval beginning at or before b, or
  // the first interval beginning after b — disjointness rules out others.
  uint32_t r = eytz_.upper_bound(b);
  if (r != 0 && b < ivs[r - 1].end) return true;
  return r < ivs.size() && ivs[r].begin < e;
}

bool IntervalSet::contains_reference(Ipv4 addr) const {
  std::span<const Interval> ivs = intervals();
  uint64_t a = addr.value();
  auto it = std::upper_bound(
      ivs.begin(), ivs.end(), a,
      [](uint64_t v, const Interval& iv) { return v < iv.begin; });
  if (it == ivs.begin()) return false;
  --it;
  return a < it->end;
}

bool IntervalSet::covers_reference(const Prefix& p) const {
  std::span<const Interval> ivs = intervals();
  uint64_t b = p.first(), e = p.end();
  auto it = std::upper_bound(
      ivs.begin(), ivs.end(), b,
      [](uint64_t v, const Interval& iv) { return v < iv.begin; });
  if (it == ivs.begin()) return false;
  --it;
  return b >= it->begin && e <= it->end;
}

bool IntervalSet::intersects_reference(const Prefix& p) const {
  std::span<const Interval> ivs = intervals();
  uint64_t b = p.first(), e = p.end();
  auto it = std::lower_bound(
      ivs.begin(), ivs.end(), b,
      [](const Interval& iv, uint64_t v) { return iv.end <= v; });
  return it != ivs.end() && it->begin < e;
}

void IntervalSet::contains_batch(std::span<const uint64_t> addrs,
                                 uint8_t* out) const {
  std::span<const Interval> ivs = intervals();
  if (!eytz_.built()) {
    for (size_t i = 0; i < addrs.size(); ++i) {
      out[i] = contains_reference(Ipv4(static_cast<uint32_t>(addrs[i]))) ? 1
                                                                         : 0;
    }
    return;
  }
  constexpr size_t kChunk = 512;
  uint32_t ranks[kChunk];
  for (size_t base = 0; base < addrs.size(); base += kChunk) {
    const size_t len = std::min(kChunk, addrs.size() - base);
    eytz_.upper_bound_batch(addrs.subspan(base, len), ranks);
    for (size_t j = 0; j < len; ++j) {
      uint32_t r = ranks[j];
      out[base + j] =
          static_cast<uint8_t>(r != 0 && addrs[base + j] < ivs[r - 1].end);
    }
  }
}

void IntervalSet::intersects_batch(std::span<const Prefix> prefixes,
                                   uint8_t* out) const {
  std::span<const Interval> ivs = intervals();
  if (!eytz_.built()) {
    for (size_t i = 0; i < prefixes.size(); ++i) {
      out[i] = intersects_reference(prefixes[i]) ? 1 : 0;
    }
    return;
  }
  constexpr size_t kChunk = 512;
  uint64_t keys[kChunk];
  uint32_t ranks[kChunk];
  for (size_t base = 0; base < prefixes.size(); base += kChunk) {
    const size_t len = std::min(kChunk, prefixes.size() - base);
    for (size_t j = 0; j < len; ++j) keys[j] = prefixes[base + j].first();
    eytz_.upper_bound_batch(std::span<const uint64_t>(keys, len), ranks);
    for (size_t j = 0; j < len; ++j) {
      uint32_t r = ranks[j];
      const uint64_t b = keys[j];
      const uint64_t e = prefixes[base + j].end();
      out[base + j] =
          static_cast<uint8_t>((r != 0 && b < ivs[r - 1].end) ||
                               (r < ivs.size() && ivs[r].begin < e));
    }
  }
}

uint64_t IntervalSet::size() const {
  uint64_t total = 0;
  for (const Interval& iv : intervals()) total += iv.size();
  return total;
}

bool operator==(const IntervalSet& a, const IntervalSet& b) {
  std::span<const IntervalSet::Interval> x = a.intervals();
  std::span<const IntervalSet::Interval> y = b.intervals();
  return std::equal(x.begin(), x.end(), y.begin(), y.end());
}

IntervalSet IntervalSet::set_union(const IntervalSet& a, const IntervalSet& b) {
  IntervalSet out = a;
  for (const Interval& iv : b.intervals()) out.insert(iv.begin, iv.end);
  return out;
}

IntervalSet IntervalSet::set_intersection(const IntervalSet& a,
                                          const IntervalSet& b) {
  IntervalSet out;
  std::span<const Interval> as = a.intervals();
  std::span<const Interval> bs = b.intervals();
  auto ia = as.begin();
  auto ib = bs.begin();
  while (ia != as.end() && ib != bs.end()) {
    uint64_t lo = std::max(ia->begin, ib->begin);
    uint64_t hi = std::min(ia->end, ib->end);
    if (lo < hi) out.intervals_.push_back(Interval{lo, hi});
    if (ia->end < ib->end) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return out;
}

IntervalSet IntervalSet::set_difference(const IntervalSet& a,
                                        const IntervalSet& b) {
  IntervalSet out = a;
  for (const Interval& iv : b.intervals()) out.erase(iv.begin, iv.end);
  return out;
}

}  // namespace droplens::net
