// Typed events for the streaming pipeline.
//
// Everything the batch pipeline reads as five daily feeds arrives, in the
// real world, as *events*: a BGP announcement or withdrawal, a ROA published
// or revoked, a prefix listed on or delisted from DROP, an IRR route object
// created or removed, a delegation made or returned. stream::Event is that
// common currency — compact enough to log and replay by the million, typed
// enough that an applier can reconstruct exactly the state the batch
// compiler would have computed for any day.
//
// Wire form (little-endian, like svc/protocol.hpp): one fixed 16-byte record
//
//   type:u8 plen:u8 aux:u8 aux2:u8 date:u32 network:u32 value:u32
//
// Field use by type:
//   kBgpAnnounce/kBgpWithdraw       value = origin ASN
//   kRoaAdd/kRoaRemove              value = ROA ASN, aux = maxLength,
//                                   aux2 = rpki::Tal index
//   kDropAdd/kDropRemove            aux = drop::Category bits, aux2 = incident
//   kIrrAdd/kIrrRemove              value = route-object origin ASN
//   kDelegationAdd/kDelegationRemove  aux2 = rir::Rir index
//   kRovSet/kRovClear               value = svc::RovStatus (flat-diff only)
//   kRirSet/kRirClear               value = rir::Rir index (flat-diff only)
//
// The kRovSet/kRirSet family exists for `snapshot_tool diff`, which lowers
// two compiled snapshots into the event sequence transforming one into the
// other: ROV status and administering RIR are *derived* maps with no
// originating feed event, so a flat diff asserts their values directly.
// The live Applier computes them instead and rejects these types.
//
// Sequence numbers are NOT part of the record: the EventLog assigns them,
// and delta frames carry one starting sequence for a run of consecutive
// events (RTR-style serial semantics, but 64-bit so wraparound is theory).
//
// Decoding is strictly bounds-checked: unknown types, impossible prefix
// lengths, non-canonical networks, and out-of-range enum values all throw
// ParseError — a hostile byte stream can never construct an invalid Event.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/date.hpp"
#include "net/prefix.hpp"

namespace droplens::stream {

enum class EventType : uint8_t {
  kBgpAnnounce = 1,
  kBgpWithdraw = 2,
  kRoaAdd = 3,
  kRoaRemove = 4,
  kDropAdd = 5,
  kDropRemove = 6,
  kIrrAdd = 7,
  kIrrRemove = 8,
  kDelegationAdd = 9,
  kDelegationRemove = 10,
  // Flat-diff assertions (snapshot_tool diff); see header comment.
  kRovSet = 11,
  kRovClear = 12,
  kRirSet = 13,
  kRirClear = 14,
};

std::string_view to_string(EventType t);

/// True for the withdraw/remove/clear half of each pair. A day's canonical
/// order processes removals first, so state-after-batch equals state *on*
/// that day (lifetimes are half-open [begin, end)).
bool is_removal(EventType t);

inline constexpr size_t kEventRecordSize = 16;

struct Event {
  /// Log sequence number; assigned by EventLog::append, 0 until then.
  uint64_t seq = 0;
  EventType type = EventType::kBgpAnnounce;
  net::Date date;
  net::Prefix prefix;
  uint32_t value = 0;
  uint8_t aux = 0;
  uint8_t aux2 = 0;

  friend bool operator==(const Event&, const Event&) = default;

  std::string to_string() const;
};

/// Canonical order of a day's batch: removals before additions, then type,
/// prefix, value, aux — a total order (up to identical events), so a replay
/// is deterministic and the online alarm monitor sees announcements in
/// exactly the order the batch replay (core::analyze_alarms) sorts them.
bool canonical_less(const Event& a, const Event& b);

/// Append the 16-byte wire record of `e` to `out` (seq not included).
void encode_event(std::string& out, const Event& e);

/// Decode `count` consecutive records from `bytes`. Throws ParseError on
/// short input, unknown type, or an invalid prefix. Sequence numbers are
/// filled in from `first_seq` upward.
std::vector<Event> decode_events(std::string_view bytes, size_t count,
                                 uint64_t first_seq);

/// Decode exactly one record at the head of `bytes`.
Event decode_event(std::string_view bytes);

}  // namespace droplens::stream
