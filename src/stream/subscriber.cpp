#include "stream/subscriber.hpp"

#include <stdexcept>

namespace droplens::stream {

Delta Subscriber::poll(uint32_t max_events) {
  SubscribeRequest request;
  request.from_seq = next_;
  request.max_events = max_events;
  Delta delta = decode_delta(client_.subscribe_raw(encode_subscribe(request)));
  if (delta.reset) {
    ++resets_;
    next_ = delta.head;
    return delta;
  }
  if (delta.from != next_) {
    throw std::runtime_error("stream subscriber: non-consecutive delta");
  }
  if (delta.from + delta.events.size() > delta.head) {
    throw std::runtime_error("stream subscriber: delta runs past head");
  }
  next_ = delta.from + delta.events.size();
  return delta;
}

}  // namespace droplens::stream
