// The PHAS-style alarm engine, running online.
//
// core::analyze_alarms replays every origination episode in one offline
// pass, with the whole history in hand. AlarmMonitor implements the same
// three rules — new-origin, MOAS, new-sub-prefix — as an incremental
// machine fed one event at a time, so alarms fire the moment the triggering
// announcement is applied rather than at the end of a nightly batch.
//
// Equivalence contract (pinned by tests/test_stream.cpp and the
// bench_ext_alarms --crosscheck mode): fed the canonical event stream of a
// World (sim::EventReplayer), the monitor's alarm sequence is byte-identical
// to core::analyze_alarms' — same alarms, same order. The pieces that make
// that hold:
//
//  - The batch replay sorts episodes by (begin, prefix, origin, end); the
//    canonical event order (stream::canonical_less) sorts a day's
//    announcements by (prefix, origin), which is the same order restricted
//    to one day (episodes differing only in `end` are interchangeable —
//    `end` is invisible to every rule at announce time).
//  - A day's withdrawals are processed before its announcements, so "other
//    episode active right now" means exactly range.contains(begin): an
//    episode ending on day d is gone before day d's announcements arrive.
//  - The MOAS rule requires the other episode to have begun strictly
//    earlier, which the active-entry begin dates preserve.
//
// The monitor only reacts to BGP events; everything else passes through
// untouched (the Applier owns that state).
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/alarms.hpp"
#include "net/prefix_trie.hpp"
#include "stream/event.hpp"

namespace droplens::drop {
class DropList;
}  // namespace droplens::drop

namespace droplens::stream {

class AlarmMonitor {
 public:
  struct Config {
    net::Date window_begin;
    net::Date window_end;
    /// Labels alarms with the paper's "later blocklisted" bit
    /// (core::Alarm::on_drop). Null leaves the bit false — the monitor
    /// itself needs no future knowledge, but result parity with the batch
    /// replay does.
    const drop::DropList* drop = nullptr;
  };

  explicit AlarmMonitor(Config config) : config_(config) {}

  /// Process one event. BGP announcements may append up to three alarms to
  /// alarms(); returns how many were appended. All other types return 0.
  size_t on_event(const Event& e);

  /// Every alarm raised so far, in firing order.
  const std::vector<core::Alarm>& alarms() const { return alarms_; }

  /// The batch-result shape: alarms plus the DROP-coverage counters
  /// (computed from `study`/`index` exactly as core::analyze_alarms does).
  core::AlarmResult result(const core::Study& study,
                           const core::DropIndex& index) const;

 private:
  struct ActiveRoute {
    net::Date begin;
    uint32_t origin;
  };

  Config config_;
  /// Episodes announced and not yet withdrawn, with their begin dates.
  std::unordered_map<net::Prefix, std::vector<ActiveRoute>> active_;
  /// Every origin ever seen per prefix (the new-origin rule's memory).
  std::unordered_map<net::Prefix, std::unordered_set<uint32_t>> seen_origins_;
  /// Prefixes announced before the window: the monitored baseline whose
  /// more-specifics the new-sub-prefix rule watches.
  net::PrefixMap<char> baseline_;
  std::vector<core::Alarm> alarms_;
};

}  // namespace droplens::stream
