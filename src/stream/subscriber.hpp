// Typed client of the live-follow ops.
//
// Wraps svc::Client::subscribe_raw with the stream codecs and the serial
// bookkeeping: poll() asks for everything from the last-seen sequence,
// verifies the answer is the exact consecutive run it asked for, and
// advances. A reset answer (history trimmed past us) rewinds next() to the
// server's head — the caller re-baselines from a snapshot (query the
// current date) and keeps polling; the RTR cache-reset dance with 64-bit
// serials. A server that answers out of contract (wrong starting sequence)
// throws rather than silently skipping events.
#pragma once

#include <cstdint>

#include "stream/wire.hpp"
#include "svc/client.hpp"

namespace droplens::stream {

class Subscriber {
 public:
  /// Follows from sequence `from` (0 = the beginning of retained history;
  /// the first poll resets if compaction already trimmed it).
  explicit Subscriber(svc::Client& client, uint64_t from = 0)
      : client_(client), next_(from) {}

  /// One subscribe round-trip. The returned delta either carries the next
  /// consecutive events (next() advances past them) or reset == true
  /// (next() is now the server head; re-baseline before trusting state).
  /// Throws std::runtime_error on transport errors, server error frames,
  /// or a contract-violating response.
  Delta poll(uint32_t max_events = kMaxDeltaEvents);

  /// The next sequence number poll() will ask for.
  uint64_t next() const { return next_; }

  uint64_t resets() const { return resets_; }

 private:
  svc::Client& client_;
  uint64_t next_;
  uint64_t resets_ = 0;
};

}  // namespace droplens::stream
