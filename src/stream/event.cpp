#include "stream/event.hpp"

#include <tuple>

#include "util/error.hpp"

namespace droplens::stream {

namespace {

void put_u8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void put_u32(std::string& out, uint32_t v) {
  put_u8(out, static_cast<uint8_t>(v));
  put_u8(out, static_cast<uint8_t>(v >> 8));
  put_u8(out, static_cast<uint8_t>(v >> 16));
  put_u8(out, static_cast<uint8_t>(v >> 24));
}
uint8_t get_u8(std::string_view bytes, size_t at) {
  return static_cast<uint8_t>(bytes[at]);
}
uint32_t get_u32(std::string_view bytes, size_t at) {
  return static_cast<uint32_t>(get_u8(bytes, at)) |
         (static_cast<uint32_t>(get_u8(bytes, at + 1)) << 8) |
         (static_cast<uint32_t>(get_u8(bytes, at + 2)) << 16) |
         (static_cast<uint32_t>(get_u8(bytes, at + 3)) << 24);
}

constexpr uint8_t kMinType = static_cast<uint8_t>(EventType::kBgpAnnounce);
constexpr uint8_t kMaxType = static_cast<uint8_t>(EventType::kRirClear);

}  // namespace

std::string_view to_string(EventType t) {
  switch (t) {
    case EventType::kBgpAnnounce: return "bgp-announce";
    case EventType::kBgpWithdraw: return "bgp-withdraw";
    case EventType::kRoaAdd: return "roa-add";
    case EventType::kRoaRemove: return "roa-remove";
    case EventType::kDropAdd: return "drop-add";
    case EventType::kDropRemove: return "drop-remove";
    case EventType::kIrrAdd: return "irr-add";
    case EventType::kIrrRemove: return "irr-remove";
    case EventType::kDelegationAdd: return "delegation-add";
    case EventType::kDelegationRemove: return "delegation-remove";
    case EventType::kRovSet: return "rov-set";
    case EventType::kRovClear: return "rov-clear";
    case EventType::kRirSet: return "rir-set";
    case EventType::kRirClear: return "rir-clear";
  }
  return "?";
}

bool is_removal(EventType t) {
  switch (t) {
    case EventType::kBgpWithdraw:
    case EventType::kRoaRemove:
    case EventType::kDropRemove:
    case EventType::kIrrRemove:
    case EventType::kDelegationRemove:
    case EventType::kRovClear:
    case EventType::kRirClear:
      return true;
    default:
      return false;
  }
}

std::string Event::to_string() const {
  std::string out(stream::to_string(type));
  out += ' ';
  out += prefix.to_string();
  out += " @" + date.to_string();
  switch (type) {
    case EventType::kBgpAnnounce:
    case EventType::kBgpWithdraw:
    case EventType::kIrrAdd:
    case EventType::kIrrRemove:
      out += " AS" + std::to_string(value);
      break;
    case EventType::kRoaAdd:
    case EventType::kRoaRemove:
      out += " AS" + std::to_string(value) +
             " maxlen=" + std::to_string(aux) + " tal=" + std::to_string(aux2);
      break;
    case EventType::kDropAdd:
    case EventType::kDropRemove:
      out += " categories=0x";
      for (int shift = 4; shift >= 0; shift -= 4) {
        out += "0123456789abcdef"[(aux >> shift) & 0xf];
      }
      if (aux2) out += " incident";
      break;
    case EventType::kDelegationAdd:
    case EventType::kDelegationRemove:
      out += " rir=" + std::to_string(aux2);
      break;
    case EventType::kRovSet:
    case EventType::kRovClear:
      out += " rov=" + std::to_string(value);
      break;
    case EventType::kRirSet:
    case EventType::kRirClear:
      out += " rir=" + std::to_string(value);
      break;
  }
  return out;
}

bool canonical_less(const Event& a, const Event& b) {
  auto key = [](const Event& e) {
    return std::tuple(e.date.days(), is_removal(e.type) ? 0 : 1,
                      static_cast<uint8_t>(e.type), e.prefix, e.value, e.aux,
                      e.aux2);
  };
  return key(a) < key(b);
}

void encode_event(std::string& out, const Event& e) {
  put_u8(out, static_cast<uint8_t>(e.type));
  put_u8(out, static_cast<uint8_t>(e.prefix.length()));
  put_u8(out, e.aux);
  put_u8(out, e.aux2);
  put_u32(out, static_cast<uint32_t>(e.date.days()));
  put_u32(out, e.prefix.network().value());
  put_u32(out, e.value);
}

std::vector<Event> decode_events(std::string_view bytes, size_t count,
                                 uint64_t first_seq) {
  if (bytes.size() < count * kEventRecordSize) {
    throw ParseError("stream: truncated event records");
  }
  std::vector<Event> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(decode_event(bytes.substr(i * kEventRecordSize)));
    out.back().seq = first_seq + i;
  }
  return out;
}

Event decode_event(std::string_view bytes) {
  if (bytes.size() < kEventRecordSize) {
    throw ParseError("stream: truncated event record");
  }
  uint8_t type = get_u8(bytes, 0);
  if (type < kMinType || type > kMaxType) {
    throw ParseError("stream: unknown event type " + std::to_string(type));
  }
  uint8_t plen = get_u8(bytes, 1);
  if (plen > 32) throw ParseError("stream: bad prefix length");
  Event e;
  e.type = static_cast<EventType>(type);
  e.aux = get_u8(bytes, 2);
  e.aux2 = get_u8(bytes, 3);
  e.date = net::Date(static_cast<int32_t>(get_u32(bytes, 4)));
  try {
    e.prefix = net::Prefix(net::Ipv4(get_u32(bytes, 8)), plen);
  } catch (const InvariantError& err) {
    throw ParseError(std::string("stream: ") + err.what());
  }
  e.value = get_u32(bytes, 12);
  if ((e.type == EventType::kRoaAdd || e.type == EventType::kRoaRemove) &&
      (e.aux < plen || e.aux > 32)) {
    throw ParseError("stream: bad ROA maxLength");
  }
  return e;
}

}  // namespace droplens::stream
