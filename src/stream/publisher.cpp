#include "stream/publisher.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"

namespace droplens::stream {

namespace {

uint64_t steady_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Publisher::Publisher(AlarmMonitor::Config alarm_config)
    : monitor_(alarm_config) {
  last_ingest_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  ingested_ = obs::counter("droplens_stream_events_ingested_total", {},
                           "Events offered to the publisher");
  applied_ = obs::counter("droplens_stream_events_applied_total", {},
                          "Events that mutated live state");
  rejected_ = obs::counter("droplens_stream_events_rejected_total", {},
                           "Events the applier rejected");
  alarms_new_origin_ =
      obs::counter("droplens_stream_alarms_total", {{"kind", "new-origin"}},
                   "Online alarms raised, by kind");
  alarms_moas_ = obs::counter("droplens_stream_alarms_total",
                              {{"kind", "moas"}}, "Online alarms raised, by kind");
  alarms_sub_prefix_ =
      obs::counter("droplens_stream_alarms_total", {{"kind", "new-sub-prefix"}},
                   "Online alarms raised, by kind");
  compactions_ = obs::counter("droplens_stream_compactions_total", {},
                              "Live-state compactions into snapshots");
  deltas_ = obs::counter("droplens_stream_deltas_total", {},
                         "Delta responses served");
  resets_ = obs::counter("droplens_stream_resets_total", {},
                         "Subscriber resets (history trimmed past them)");
  head_seq_ = obs::gauge("droplens_stream_head_seq", {},
                         "Next event sequence number");
  ingest_lag_ = obs::gauge(
      "droplens_stream_ingest_lag_seconds", {},
      "Seconds since the last event was ingested (feed liveness)");
  alarm_latency_ = obs::histogram(
      "droplens_stream_ingest_alarm_latency_ns",
      obs::Registry::log2_bounds(39), {},
      "Ingest-to-alarm latency in nanoseconds (log2 buckets)");
}

void Publisher::seed_rir(const rir::Registry& registry) {
  applier_.seed_rir(registry);
}

double Publisher::ingest_lag_seconds() const {
  const uint64_t last = last_ingest_ns_.load(std::memory_order_relaxed);
  const uint64_t now = steady_now_ns();
  return now > last ? static_cast<double>(now - last) * 1e-9 : 0.0;
}

uint64_t Publisher::ingest(const Event& e) {
  const auto start = std::chrono::steady_clock::now();
  obs::SpanContext trace = ingest_trace_.begin();
  ingested_.inc();
  // The sequence the log WILL assign — safe to read ahead because ingest is
  // the only appender.
  const uint64_t seq = log_.head();

  trace.stage("apply");
  if (applier_.apply(e)) {
    applied_.inc();
  } else {
    rejected_.inc();
  }

  trace.stage("alarm");
  const size_t before = monitor_.alarms().size();
  const size_t raised = monitor_.on_event(e);
  if (raised > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = before; i < before + raised; ++i) {
      const core::Alarm& a = monitor_.alarms()[i];
      alarm_log_.emplace_back(seq, a);
      switch (a.kind) {
        case core::AlarmKind::kNewOrigin: alarms_new_origin_.inc(); break;
        case core::AlarmKind::kMoas: alarms_moas_.inc(); break;
        case core::AlarmKind::kNewSubPrefix: alarms_sub_prefix_.inc(); break;
      }
    }
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    for (size_t i = 0; i < raised; ++i) {
      alarm_latency_.observe(static_cast<uint64_t>(ns));
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    date_ = e.date;
  }

  // Append last: once an event is visible in the log, its alarms are
  // already in alarm_log_ (the subscriber-side completeness invariant).
  trace.stage("append");
  const uint64_t assigned = log_.append(e);
  head_seq_.set(static_cast<int64_t>(assigned + 1));
  last_ingest_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  trace.finish("ok");
  return assigned;
}

std::shared_ptr<const svc::Snapshot> Publisher::compact(net::Date d,
                                                        uint64_t version) {
  compactions_.inc();
  return applier_.compact(d, version);
}

void Publisher::trim(size_t keep_last) {
  const uint64_t head = log_.head();
  const uint64_t floor = head > keep_last ? head - keep_last : 0;
  log_.trim(floor);
  std::lock_guard<std::mutex> lock(mu_);
  while (!alarm_log_.empty() && alarm_log_.front().first < floor) {
    alarm_log_.pop_front();
  }
}

std::string Publisher::handle_subscribe(std::string_view payload) {
  try {
    SubscribeRequest request = decode_subscribe(payload);
    const size_t max_events =
        std::min<size_t>(request.max_events, kMaxDeltaEvents);
    EventLog::Tail tail = log_.since(request.from_seq, max_events);

    Delta delta;
    delta.head = tail.head;
    delta.from = tail.from;
    delta.reset = tail.gap;
    delta.events = std::move(tail.events);
    {
      std::lock_guard<std::mutex> lock(mu_);
      delta.date = date_;
      if (!delta.reset && !delta.events.empty()) {
        const uint64_t lo = delta.from;
        const uint64_t hi = delta.from + delta.events.size();
        // alarm_log_ is sorted by event sequence (firing order).
        auto first = std::lower_bound(
            alarm_log_.begin(), alarm_log_.end(), lo,
            [](const auto& entry, uint64_t s) { return entry.first < s; });
        for (auto it = first; it != alarm_log_.end() && it->first < hi; ++it) {
          delta.alarms.push_back(it->second);
        }
      }
    }
    if (delta.reset) resets_.inc();
    deltas_.inc();
    return svc::encode_frame(svc::FrameType::kDeltaResponse,
                             encode_delta(delta));
  } catch (const ParseError& e) {
    return svc::encode_error(e.what());
  }
}

}  // namespace droplens::stream
