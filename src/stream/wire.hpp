// Payload codecs for the live-follow protocol ops.
//
// The query service's frame layer (svc/protocol.hpp) carries two opaque
// payloads for the streaming subsystem; their byte layouts live here so svc
// never links stream:
//
//   subscribe request := from_seq:u64 max_events:u32              (12 B)
//   delta response    := status:u8 head:u64 from:u64 date:u32
//                        event_count:u32 alarm_count:u32
//                        event_count * event                 (16 B each)
//                        alarm_count * alarm                 (20 B each)
//   alarm             := kind:u8 plen:u8 mon_plen:u8 flags:u8 date:u32
//                        network:u32 mon_network:u32 origin:u32
//
// Serial semantics are RTR-inspired (RFC 8210 §8) with 64-bit sequence
// numbers: a subscriber asks for everything from `from_seq`; the server
// answers either the consecutive run of events starting exactly there
// (status 0, `from == from_seq`) plus the alarms those events raised, or a
// reset (status 1, no events) when compaction already discarded that
// history — the subscriber must re-baseline (fetch a snapshot) and resume
// from the returned head. Events in a delta are consecutive: event i has
// sequence from + i, which is why sequence numbers never travel per-record.
//
// Decoding is strictly bounds-checked (counts validated against bytes
// present before allocation, enums range-checked), matching the discipline
// of svc/protocol.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/alarms.hpp"
#include "stream/event.hpp"

namespace droplens::stream {

/// Events per delta. 8192 events (128 KiB) plus their worst-case alarms
/// (three per announcement, 480 KiB) stays under svc::kMaxPayload with
/// headroom; servers clamp the subscriber's ask to this.
inline constexpr size_t kMaxDeltaEvents = 8192;
inline constexpr size_t kAlarmRecordSize = 20;

struct SubscribeRequest {
  uint64_t from_seq = 0;
  uint32_t max_events = kMaxDeltaEvents;

  friend bool operator==(const SubscribeRequest&,
                         const SubscribeRequest&) = default;
};

struct Delta {
  bool reset = false;   // history gone; re-baseline and resume from `head`
  uint64_t head = 0;    // publisher's log head at answer time
  uint64_t from = 0;    // sequence of events[0] (== head on reset)
  net::Date date;       // publisher's current stream date
  std::vector<Event> events;        // consecutive sequences from `from`
  std::vector<core::Alarm> alarms;  // raised by these events, firing order
};

std::string encode_subscribe(const SubscribeRequest& request);
/// Throws ParseError on a malformed payload or max_events of 0.
SubscribeRequest decode_subscribe(std::string_view payload);

/// Throws InvariantError when the delta exceeds kMaxDeltaEvents or its
/// alarm worst-case (events and alarms must fit one frame).
std::string encode_delta(const Delta& delta);
/// Throws ParseError on malformed bytes; event sequences are reconstructed
/// from `from`.
Delta decode_delta(std::string_view payload);

}  // namespace droplens::stream
