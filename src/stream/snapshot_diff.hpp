// Flat diffs between compiled snapshots, as event sequences.
//
// `snapshot_tool diff A.dls B.dls` lowers two compiled days into the
// ordered stream::Event sequence transforming A into B — the same currency
// the live pipeline speaks, so a diff can be shipped over the delta
// protocol, archived next to an event log, or replayed onto A to reproduce
// B (apply_diff; pinned by tests).
//
// Field → event mapping (all events dated b.date()):
//   routed     kBgpWithdraw / kBgpAnnounce      (origin unknown: value 0)
//   as0        kRoaRemove / kRoaAdd             (AS0: value 0, maxlen 32)
//   irr        kIrrRemove / kIrrAdd             (origin unknown: value 0)
//   allocated  kDelegationRemove / kDelegationAdd
//   drop map   kDropRemove / kDropAdd           (aux = categories, aux2 =
//                                                incident)
//   rov map    kRovClear / kRovSet              (value = RovStatus)
//   rir map    kRirClear / kRirSet              (value = rir::Rir index)
//
// A flat diff asserts *compiled* state: boolean spaces diff as interval-set
// differences CIDR-decomposed, valued maps as boundary sweeps where a
// changed value clears the old and sets the new. This is exactly why the
// kRovSet family exists (and why the live Applier rejects it — there these
// maps are derived, not asserted). Events come out in canonical order
// (removals first), so the sequence is deterministic for a given (A, B).
#pragma once

#include <vector>

#include "stream/event.hpp"
#include "svc/snapshot.hpp"

namespace droplens::stream {

/// The canonical event sequence transforming `a` into `b`. Empty iff
/// snapshots_equal(a, b).
std::vector<Event> diff_snapshots(const svc::Snapshot& a,
                                  const svc::Snapshot& b);

/// Replay a flat diff onto `a`: returns a snapshot whose structures equal
/// the diff's target (snapshots_equal against B for a diff_snapshots(A, B)
/// sequence). `date`/`version` stamp the result. Throws InvariantError on
/// an event type flat diffs never contain (live BGP/ROA detail is not
/// reconstructible from a flat snapshot, so e.g. a kRoaAdd with a real ASN
/// is a usage error).
svc::Snapshot apply_diff(const svc::Snapshot& a,
                         const std::vector<Event>& events, net::Date date,
                         uint64_t version);

/// Structural equality: same degraded bits and identical compiled
/// structures (interval sets by content, segment maps by span). Version and
/// date are metadata and do not participate.
bool snapshots_equal(const svc::Snapshot& a, const svc::Snapshot& b);

}  // namespace droplens::stream
