#include "stream/wire.hpp"

#include "util/error.hpp"

namespace droplens::stream {

namespace {

constexpr size_t kDeltaHeaderSize = 1 + 8 + 8 + 4 + 4 + 4;
constexpr size_t kMaxDeltaAlarms = 3 * kMaxDeltaEvents;

void put_u8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void put_u32(std::string& out, uint32_t v) {
  put_u8(out, static_cast<uint8_t>(v));
  put_u8(out, static_cast<uint8_t>(v >> 8));
  put_u8(out, static_cast<uint8_t>(v >> 16));
  put_u8(out, static_cast<uint8_t>(v >> 24));
}
void put_u64(std::string& out, uint64_t v) {
  put_u32(out, static_cast<uint32_t>(v));
  put_u32(out, static_cast<uint32_t>(v >> 32));
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }

  uint8_t u8() {
    need(1);
    return static_cast<uint8_t>(bytes_[pos_++]);
  }
  uint32_t u32() {
    uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      v |= uint32_t{u8()} << shift;
    }
    return v;
  }
  uint64_t u64() {
    uint64_t lo = u32();
    return lo | (uint64_t{u32()} << 32);
  }
  std::string_view take(size_t n) {
    need(n);
    std::string_view out = bytes_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  void expect_done(const char* what) const {
    if (pos_ != bytes_.size()) {
      throw ParseError(std::string("stream: trailing bytes after ") + what);
    }
  }

 private:
  void need(size_t n) const {
    if (remaining() < n) throw ParseError("stream: truncated payload");
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

void put_alarm(std::string& out, const core::Alarm& a) {
  put_u8(out, static_cast<uint8_t>(a.kind));
  put_u8(out, static_cast<uint8_t>(a.prefix.length()));
  put_u8(out, static_cast<uint8_t>(a.monitored.length()));
  put_u8(out, a.on_drop ? 1 : 0);
  put_u32(out, static_cast<uint32_t>(a.when.days()));
  put_u32(out, a.prefix.network().value());
  put_u32(out, a.monitored.network().value());
  put_u32(out, a.new_origin.value());
}

core::Alarm read_alarm(Reader& in) {
  core::Alarm a;
  uint8_t kind = in.u8();
  if (kind > static_cast<uint8_t>(core::AlarmKind::kNewSubPrefix)) {
    throw ParseError("stream: bad alarm kind");
  }
  a.kind = static_cast<core::AlarmKind>(kind);
  uint8_t plen = in.u8();
  uint8_t mon_plen = in.u8();
  if (plen > 32 || mon_plen > 32) {
    throw ParseError("stream: alarm prefix length > 32");
  }
  uint8_t flags = in.u8();
  if (flags > 1) throw ParseError("stream: bad alarm flags");
  a.on_drop = flags & 1;
  a.when = net::Date(static_cast<int32_t>(in.u32()));
  uint32_t network = in.u32();
  uint32_t mon_network = in.u32();
  a.prefix = net::Prefix::containing(net::Ipv4(network), plen);
  a.monitored = net::Prefix::containing(net::Ipv4(mon_network), mon_plen);
  a.new_origin = net::Asn(in.u32());
  return a;
}

}  // namespace

std::string encode_subscribe(const SubscribeRequest& request) {
  std::string payload;
  payload.reserve(12);
  put_u64(payload, request.from_seq);
  put_u32(payload, request.max_events);
  return payload;
}

SubscribeRequest decode_subscribe(std::string_view payload) {
  Reader in(payload);
  SubscribeRequest request;
  request.from_seq = in.u64();
  request.max_events = in.u32();
  in.expect_done("subscribe request");
  if (request.max_events == 0) {
    throw ParseError("stream: subscribe max_events is 0");
  }
  return request;
}

std::string encode_delta(const Delta& delta) {
  if (delta.events.size() > kMaxDeltaEvents) {
    throw InvariantError("stream: delta exceeds kMaxDeltaEvents");
  }
  if (delta.alarms.size() > kMaxDeltaAlarms) {
    throw InvariantError("stream: delta alarm count exceeds worst case");
  }
  std::string payload;
  payload.reserve(kDeltaHeaderSize + delta.events.size() * kEventRecordSize +
                  delta.alarms.size() * kAlarmRecordSize);
  put_u8(payload, delta.reset ? 1 : 0);
  put_u64(payload, delta.head);
  put_u64(payload, delta.from);
  put_u32(payload, static_cast<uint32_t>(delta.date.days()));
  put_u32(payload, static_cast<uint32_t>(delta.events.size()));
  put_u32(payload, static_cast<uint32_t>(delta.alarms.size()));
  for (const Event& e : delta.events) encode_event(payload, e);
  for (const core::Alarm& a : delta.alarms) put_alarm(payload, a);
  return payload;
}

Delta decode_delta(std::string_view payload) {
  Reader in(payload);
  Delta delta;
  uint8_t status = in.u8();
  if (status > 1) throw ParseError("stream: bad delta status");
  delta.reset = status == 1;
  delta.head = in.u64();
  delta.from = in.u64();
  delta.date = net::Date(static_cast<int32_t>(in.u32()));
  size_t event_count = in.u32();
  size_t alarm_count = in.u32();
  if (event_count > kMaxDeltaEvents) {
    throw ParseError("stream: delta exceeds kMaxDeltaEvents");
  }
  if (alarm_count > kMaxDeltaAlarms) {
    throw ParseError("stream: delta alarm count exceeds worst case");
  }
  if (delta.reset && (event_count || alarm_count)) {
    throw ParseError("stream: reset delta carries records");
  }
  if (in.remaining() !=
      event_count * kEventRecordSize + alarm_count * kAlarmRecordSize) {
    throw ParseError("stream: delta counts do not match payload size");
  }
  delta.events = decode_events(in.take(event_count * kEventRecordSize),
                               event_count, delta.from);
  delta.alarms.reserve(alarm_count);
  for (size_t i = 0; i < alarm_count; ++i) {
    delta.alarms.push_back(read_alarm(in));
  }
  in.expect_done("delta response");
  return delta;
}

}  // namespace droplens::stream
