#include "stream/applier.hpp"

#include <algorithm>
#include <utility>

#include "rir/registry.hpp"
#include "rpki/tal.hpp"

namespace droplens::stream {

namespace {

using svc::RovStatus;

/// A live ROA's validation-relevant fields, gathered by the covering walk.
struct CoveringRoa {
  uint32_t asn;
  uint8_t max_length;
};

}  // namespace

void Applier::seed_rir(const rir::Registry& registry) {
  rir_ = net::SegmentMap<uint8_t>();
  for (rir::Rir r : rir::kAllRirs) {
    for (const net::IntervalSet::Interval& iv :
         registry.administered(r).intervals()) {
      rir_.assign(iv.begin, iv.end, static_cast<uint8_t>(r));
    }
  }
  rir_.finalize();
}

void Applier::refresh_rov(const net::Prefix& p, LiveRoute& route) const {
  // The live ROAs a default-configured validator would consider for `p` —
  // what RoaArchive::covering(p, d, TalSet::defaults()) returns.
  constexpr rpki::TalSet kDefaults = rpki::TalSet::defaults();
  std::vector<CoveringRoa> covering;
  roas_.for_each_covering(
      p, [&](const net::Prefix&, const std::vector<RoaEntry>& entries) {
        for (const RoaEntry& r : entries) {
          if (kDefaults.has(static_cast<rpki::Tal>(r.tal))) {
            covering.push_back(CoveringRoa{r.asn, r.max_length});
          }
        }
      });

  RovStatus worst = RovStatus::kNotFound;
  if (!covering.empty()) {
    for (const ActiveRoute& active : route.entries) {
      bool valid = false;
      for (const CoveringRoa& roa : covering) {
        // RFC 6811 match; an AS0 ROA never matches (it only invalidates).
        if (roa.asn != 0 && active.origin == roa.asn &&
            p.length() <= roa.max_length) {
          valid = true;
          break;
        }
      }
      if (!valid) {
        worst = RovStatus::kInvalid;
        break;
      }
      worst = RovStatus::kValid;
    }
  }
  route.rov = static_cast<uint8_t>(worst);
}

void Applier::refresh_covered(const net::Prefix& p) {
  // Announced prefixes contained in `p` form the contiguous key range
  // [lower_bound(p), first() < p.end()): CIDR blocks nest, so no key in
  // that range can escape `p` (see header).
  for (auto it = routes_.lower_bound(p);
       it != routes_.end() && it->first.first() < p.end(); ++it) {
    refresh_rov(it->first, it->second);
  }
}

bool Applier::apply(const Event& e) {
  switch (e.type) {
    case EventType::kBgpAnnounce: {
      LiveRoute& route = routes_[e.prefix];
      route.entries.push_back(ActiveRoute{e.date, e.value});
      refresh_rov(e.prefix, route);
      break;
    }
    case EventType::kBgpWithdraw: {
      auto it = routes_.find(e.prefix);
      if (it == routes_.end()) break;
      auto& entries = it->second.entries;
      auto victim = entries.end();
      for (auto r = entries.begin(); r != entries.end(); ++r) {
        if (r->origin != e.value) continue;
        if (victim == entries.end() || r->begin < victim->begin) victim = r;
      }
      if (victim == entries.end()) break;
      entries.erase(victim);
      if (entries.empty()) {
        routes_.erase(it);
      } else {
        refresh_rov(e.prefix, it->second);
      }
      ++applied_;
      return true;
    }
    case EventType::kRoaAdd: {
      roas_[e.prefix].push_back(
          RoaEntry{e.value, e.aux, e.aux2});
      refresh_covered(e.prefix);
      break;
    }
    case EventType::kRoaRemove: {
      std::vector<RoaEntry>* entries = roas_.find(e.prefix);
      if (!entries) break;
      auto it = std::find_if(entries->begin(), entries->end(),
                             [&](const RoaEntry& r) {
                               return r.asn == e.value && r.max_length == e.aux &&
                                      r.tal == e.aux2;
                             });
      if (it == entries->end()) break;
      entries->erase(it);
      if (entries->empty()) roas_.erase(e.prefix);
      refresh_covered(e.prefix);
      ++applied_;
      return true;
    }
    case EventType::kDropAdd: {
      drop_[e.prefix].push_back(DropListing{e.aux, e.aux2});
      break;
    }
    case EventType::kDropRemove: {
      auto it = drop_.find(e.prefix);
      if (it == drop_.end()) break;
      auto& listings = it->second;
      auto match = std::find_if(listings.begin(), listings.end(),
                                [&](const DropListing& l) {
                                  return l.categories == e.aux &&
                                         l.incident == e.aux2;
                                });
      if (match == listings.end()) break;
      listings.erase(match);
      if (listings.empty()) drop_.erase(it);
      ++applied_;
      return true;
    }
    case EventType::kIrrAdd: {
      ++irr_[e.prefix];
      break;
    }
    case EventType::kIrrRemove: {
      auto it = irr_.find(e.prefix);
      if (it == irr_.end()) break;
      if (--it->second == 0) irr_.erase(it);
      ++applied_;
      return true;
    }
    case EventType::kDelegationAdd: {
      ++alloc_[e.prefix];
      break;
    }
    case EventType::kDelegationRemove: {
      auto it = alloc_.find(e.prefix);
      if (it == alloc_.end()) break;
      if (--it->second == 0) alloc_.erase(it);
      ++applied_;
      return true;
    }
    default:
      // Flat-diff assertions and unknown types never touch live state.
      break;
  }
  if (e.type == EventType::kBgpAnnounce || e.type == EventType::kRoaAdd ||
      e.type == EventType::kDropAdd || e.type == EventType::kIrrAdd ||
      e.type == EventType::kDelegationAdd) {
    ++applied_;
    return true;
  }
  ++rejected_;
  return false;
}

std::shared_ptr<const svc::Snapshot> Applier::compact(net::Date d,
                                                      uint64_t version) const {
  using Interval = net::IntervalSet::Interval;

  // Boolean spaces: std::map iteration and the trie walk both emit prefixes
  // with nondecreasing first(), which is what from_sorted needs.
  std::vector<Interval> ivs;
  ivs.reserve(routes_.size());
  for (const auto& [p, route] : routes_) {
    ivs.push_back(Interval{p.first(), p.end()});
  }
  net::IntervalSet routed = net::IntervalSet::from_sorted(ivs);

  ivs.clear();
  for (const auto& [p, count] : alloc_) {
    ivs.push_back(Interval{p.first(), p.end()});
  }
  net::IntervalSet allocated = net::IntervalSet::from_sorted(ivs);

  ivs.clear();
  for (const auto& [p, count] : irr_) {
    ivs.push_back(Interval{p.first(), p.end()});
  }
  net::IntervalSet irr = net::IntervalSet::from_sorted(ivs);

  ivs.clear();
  roas_.for_each(
      [&](const net::Prefix& p, const std::vector<RoaEntry>& entries) {
        for (const RoaEntry& r : entries) {
          if (r.asn == 0) {
            ivs.push_back(Interval{p.first(), p.end()});
            break;
          }
        }
      });
  net::IntervalSet as0 = net::IntervalSet::from_sorted(ivs);

  // DROP labels: OR over live listings, exactly the batch merge. Live
  // listings of one prefix all carry the DropIndex entry's (whole-history)
  // bits, so the OR equals what compile_snapshot paints for a listed day.
  net::SegmentMap<svc::Snapshot::DropInfo> drop;
  for (const auto& [p, listings] : drop_) {
    for (const DropListing& l : listings) {
      svc::Snapshot::DropInfo info;
      info.categories = l.categories;
      info.incident = l.incident;
      drop.merge(p, info,
                 [](const std::optional<svc::Snapshot::DropInfo>& existing,
                    const svc::Snapshot::DropInfo& v) {
                   if (!existing) return v;
                   svc::Snapshot::DropInfo merged = *existing;
                   merged.categories |= v.categories;
                   merged.incident |= v.incident;
                   return merged;
                 });
    }
  }
  drop.finalize();

  // ROV paint, least-specific-first. Equal-length distinct prefixes are
  // disjoint, so the within-length order never changes the point-function —
  // the finalized segments match the batch's stable_sort-then-paint.
  std::vector<std::pair<net::Prefix, uint8_t>> announced;
  announced.reserve(routes_.size());
  for (const auto& [p, route] : routes_) {
    announced.emplace_back(p, route.rov);
  }
  std::stable_sort(announced.begin(), announced.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.length() < b.first.length();
                   });
  net::SegmentMap<uint8_t> rov;
  for (const auto& [p, status] : announced) {
    rov.assign(p, status);
  }
  rov.finalize();

  return std::make_shared<const svc::Snapshot>(
      version, d, /*degraded=*/0, std::move(routed), std::move(as0),
      std::move(irr), std::move(allocated), std::move(drop), std::move(rov),
      rir_);
}

}  // namespace droplens::stream
