// The live side of delta publication: log + applier + alarms, one object.
//
// A Publisher owns the ingest path of a streaming droplensd: every event is
// (1) applied to the live Applier state, (2) run through the online
// AlarmMonitor — alarms are recorded against the event's sequence number —
// and (3) appended to the EventLog, in that order, so a subscriber that can
// see an event in the log can always see the alarms it raised. compact()
// folds the state into an immutable svc::Snapshot (the zero-downtime
// publish artifact), and trim() discards delivered history afterwards —
// subscribers that fell behind the floor get the RTR-style reset.
//
// Publisher implements svc::StreamFeed, so a svc::Server with
// set_stream_feed(&publisher) serves kSubscribeRequest frames from any
// transport thread. Threading contract: ingest()/compact()/trim() are
// single-writer (the follower thread); handle_subscribe() and the accessors
// are safe concurrently with the writer.
//
// Observability (per the obs registry conventions):
//   droplens_stream_events_ingested_total / _applied_total / _rejected_total
//   droplens_stream_alarms_total{kind}
//   droplens_stream_ingest_alarm_latency_ns   (log2 histogram)
//   droplens_stream_compactions_total, _deltas_total, _resets_total
//   droplens_stream_head_seq                  (gauge)
//   droplens_stream_ingest_lag_seconds        (gauge, see
//                                              refresh_ingest_lag_gauge)
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string_view>
#include <utility>

#include "obs/metrics.hpp"
#include "svc/transport.hpp"
#include "stream/alarm_monitor.hpp"
#include "stream/applier.hpp"
#include "stream/event_log.hpp"
#include "stream/wire.hpp"
#include "svc/server.hpp"

namespace droplens::stream {

class Publisher : public svc::StreamFeed {
 public:
  explicit Publisher(AlarmMonitor::Config alarm_config);

  /// Forwarded to the Applier; call once before the first compact().
  void seed_rir(const rir::Registry& registry);

  /// Ingest one event: apply, run the alarm rules, append to the log.
  /// Returns the assigned sequence number. Single-writer.
  uint64_t ingest(const Event& e);

  /// Fold live state into a snapshot for day `d` (see Applier::compact).
  std::shared_ptr<const svc::Snapshot> compact(net::Date d, uint64_t version);

  /// Discard delivered history, keeping the last `keep_last` events (their
  /// alarms are kept alongside). Lagging subscribers past the new floor
  /// will be told to reset.
  void trim(size_t keep_last);

  // svc::StreamFeed --------------------------------------------------------
  std::string handle_subscribe(std::string_view payload) override;

  uint64_t head() const { return log_.head(); }
  const Applier& applier() const { return applier_; }
  const AlarmMonitor& monitor() const { return monitor_; }
  const EventLog& log() const { return log_; }

  /// Seconds since the last ingest() returned (since construction before
  /// the first event) — the feed-liveness signal. Safe from any thread.
  double ingest_lag_seconds() const;
  /// Recompute droplens_stream_ingest_lag_seconds from the same clock —
  /// the admin plane runs this as a refresh hook before /metrics and
  /// /healthz render, so scrapes and health checks agree.
  void refresh_ingest_lag_gauge() {
    ingest_lag_.set(static_cast<int64_t>(ingest_lag_seconds()));
  }

 private:
  EventLog log_;
  Applier applier_;
  AlarmMonitor monitor_;

  /// Guards alarm_log_ and date_ against concurrent handle_subscribe reads.
  /// (applier_/monitor_ are writer-thread-only; log_ locks itself.)
  mutable std::mutex mu_;
  /// (event sequence, alarm) in firing order — the per-delta alarm source.
  std::deque<std::pair<uint64_t, core::Alarm>> alarm_log_;
  net::Date date_;

  obs::Counter ingested_;
  obs::Counter applied_;
  obs::Counter rejected_;
  obs::Counter alarms_new_origin_;
  obs::Counter alarms_moas_;
  obs::Counter alarms_sub_prefix_;
  obs::Counter compactions_;
  obs::Counter deltas_;
  obs::Counter resets_;
  obs::Gauge head_seq_;
  obs::Gauge ingest_lag_;
  obs::Histogram alarm_latency_;
  /// Ingest traces land in the flight recorder's "ingest" op class, with
  /// apply/alarm/append stage timings — the same machinery that traces
  /// requests, following the ingest path's thread hops instead.
  svc::TraceBinding ingest_trace_{"ingest"};
  std::atomic<uint64_t> last_ingest_ns_{0};  // steady clock at last ingest
};

}  // namespace droplens::stream
