#include "stream/event_log.hpp"

namespace droplens::stream {

uint64_t EventLog::append(Event e) {
  std::lock_guard<std::mutex> lock(mu_);
  e.seq = next_seq_++;
  events_.push_back(std::move(e));
  if (retain_ && events_.size() > retain_) {
    events_.pop_front();
    ++floor_seq_;
  }
  return next_seq_ - 1;
}

uint64_t EventLog::head() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

uint64_t EventLog::floor() const {
  std::lock_guard<std::mutex> lock(mu_);
  return floor_seq_;
}

uint64_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

EventLog::Tail EventLog::since(uint64_t from, size_t max_events) const {
  std::lock_guard<std::mutex> lock(mu_);
  Tail tail;
  tail.head = next_seq_;
  if (from < floor_seq_ || from > next_seq_) {
    tail.gap = true;
    tail.from = next_seq_;
    return tail;
  }
  tail.from = from;
  const size_t offset = static_cast<size_t>(from - floor_seq_);
  const size_t available = events_.size() - offset;
  const size_t n = max_events < available ? max_events : available;
  tail.events.reserve(n);
  for (size_t i = 0; i < n; ++i) tail.events.push_back(events_[offset + i]);
  return tail;
}

void EventLog::trim(uint64_t up_to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (up_to > next_seq_) up_to = next_seq_;
  while (floor_seq_ < up_to && !events_.empty()) {
    events_.pop_front();
    ++floor_seq_;
  }
  floor_seq_ = up_to;
}

}  // namespace droplens::stream
