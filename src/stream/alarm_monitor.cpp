#include "stream/alarm_monitor.hpp"

#include <algorithm>

#include "drop/drop_list.hpp"

namespace droplens::stream {

size_t AlarmMonitor::on_event(const Event& e) {
  if (e.type == EventType::kBgpWithdraw) {
    // One episode for (prefix, origin) ends. When several are active the
    // oldest goes first — which one is erased is invisible to the rules
    // (every active begin predates any future announcement date).
    auto it = active_.find(e.prefix);
    if (it != active_.end()) {
      auto& routes = it->second;
      auto victim = routes.end();
      for (auto r = routes.begin(); r != routes.end(); ++r) {
        if (r->origin != e.value) continue;
        if (victim == routes.end() || r->begin < victim->begin) victim = r;
      }
      if (victim != routes.end()) routes.erase(victim);
      if (routes.empty()) active_.erase(it);
    }
    return 0;
  }
  if (e.type != EventType::kBgpAnnounce) return 0;

  const net::Date begin = e.date;
  const net::Asn origin(e.value);
  auto& origins = seen_origins_[e.prefix];
  const bool in_window =
      begin >= config_.window_begin && begin < config_.window_end;
  size_t raised = 0;

  auto make_alarm = [&](core::AlarmKind kind, const net::Prefix& monitored) {
    core::Alarm a;
    a.kind = kind;
    a.prefix = e.prefix;
    a.monitored = monitored;
    a.when = begin;
    a.new_origin = origin;
    a.on_drop =
        config_.drop && config_.drop->first_listed(e.prefix).has_value();
    alarms_.push_back(std::move(a));
    ++raised;
  };

  if (in_window) {
    // New-origin alarm.
    if (!origins.empty() && !origins.contains(origin.value())) {
      make_alarm(core::AlarmKind::kNewOrigin, e.prefix);
    }
    // MOAS alarm: another origin is announcing right now. "Right now" is the
    // active set (day-`begin` withdrawals already processed); the strictly-
    // earlier-begin test matches the batch rule.
    if (auto it = active_.find(e.prefix); it != active_.end()) {
      for (const ActiveRoute& other : it->second) {
        if (other.begin < begin && net::Asn(other.origin) != origin) {
          make_alarm(core::AlarmKind::kMoas, e.prefix);
          break;
        }
      }
    }
    // New-sub-prefix alarm: first-ever announcement of a fresh more-specific
    // of a monitored baseline route.
    if (origins.empty()) {
      bool alarmed = false;
      baseline_.for_each_covering(
          e.prefix, [&](const net::Prefix& mon, char) {
            if (alarmed || mon == e.prefix) return;
            make_alarm(core::AlarmKind::kNewSubPrefix, mon);
            alarmed = true;
          });
    }
  } else if (begin < config_.window_begin) {
    baseline_.insert_or_assign(e.prefix, 1);
  }
  origins.insert(origin.value());
  active_[e.prefix].push_back(ActiveRoute{begin, origin.value()});
  return raised;
}

core::AlarmResult AlarmMonitor::result(const core::Study& study,
                                       const core::DropIndex& index) const {
  core::AlarmResult r;
  r.alarms = alarms_;
  core::add_drop_coverage(r, study, index);
  return r;
}

}  // namespace droplens::stream
