#include "stream/snapshot_diff.hpp"

#include <algorithm>
#include <map>
#include <span>

#include "net/cidr_cover.hpp"
#include "rir/rir.hpp"
#include "rpki/tal.hpp"
#include "util/error.hpp"

namespace droplens::stream {

namespace {

using net::IntervalSet;

/// Step through a canonical segment array as a point-function: value at a
/// position, and the next boundary after it.
template <typename T>
class Stepper {
 public:
  explicit Stepper(std::span<const typename net::SegmentMap<T>::Segment> segs)
      : segs_(segs) {}

  const T* at(uint64_t pos) {
    while (i_ < segs_.size() && segs_[i_].end <= pos) ++i_;
    if (i_ < segs_.size() && segs_[i_].begin <= pos) return &segs_[i_].value;
    return nullptr;
  }

  /// The next boundary strictly after `pos` (call at() first).
  uint64_t next_after(uint64_t pos) const {
    if (i_ >= segs_.size()) return kSpaceEnd;
    return segs_[i_].begin > pos ? segs_[i_].begin : segs_[i_].end;
  }

  static constexpr uint64_t kSpaceEnd = uint64_t{1} << 32;

 private:
  std::span<const typename net::SegmentMap<T>::Segment> segs_;
  size_t i_ = 0;
};

Event make_event(EventType type, const net::Prefix& p, net::Date d,
                 uint32_t value = 0, uint8_t aux = 0, uint8_t aux2 = 0) {
  Event e;
  e.type = type;
  e.date = d;
  e.prefix = p;
  e.value = value;
  e.aux = aux;
  e.aux2 = aux2;
  return e;
}

void diff_intervals(std::vector<Event>& out, const IntervalSet& a,
                    const IntervalSet& b, net::Date d, EventType remove,
                    EventType add, uint32_t value, uint8_t aux, uint8_t aux2) {
  for (const net::Prefix& p :
       net::cidr_cover(IntervalSet::set_difference(a, b))) {
    out.push_back(make_event(remove, p, d, value, aux, aux2));
  }
  for (const net::Prefix& p :
       net::cidr_cover(IntervalSet::set_difference(b, a))) {
    out.push_back(make_event(add, p, d, value, aux, aux2));
  }
}

/// Sweep two segment maps as point-functions; where they disagree, emit the
/// old value's removal and the new value's assertion over that range.
template <typename T, typename Emit>
void diff_segments(std::span<const typename net::SegmentMap<T>::Segment> a,
                   std::span<const typename net::SegmentMap<T>::Segment> b,
                   Emit&& emit) {
  Stepper<T> sa(a);
  Stepper<T> sb(b);
  uint64_t pos = 0;
  while (pos < Stepper<T>::kSpaceEnd) {
    const T* va = sa.at(pos);
    const T* vb = sb.at(pos);
    uint64_t next = std::min(sa.next_after(pos), sb.next_after(pos));
    const bool equal = (va == nullptr && vb == nullptr) ||
                       (va != nullptr && vb != nullptr && *va == *vb);
    if (!equal) {
      for (const net::Prefix& p : net::cidr_cover(pos, next)) {
        emit(p, va, vb);
      }
    }
    pos = next;
  }
}

/// Mutable interval→value map: what SegmentMap cannot do (it finalizes
/// exactly once and has no unpaint). Seeded from a snapshot's segments,
/// edited by set/clear, rebuilt into a fresh finalized SegmentMap.
template <typename T>
class Editor {
 public:
  explicit Editor(std::span<const typename net::SegmentMap<T>::Segment> segs) {
    for (const auto& s : segs) map_.emplace(s.begin, Piece{s.end, s.value});
  }

  void set(uint64_t begin, uint64_t end, const T& value) {
    clear(begin, end);
    map_.emplace(begin, Piece{end, value});
  }

  void clear(uint64_t begin, uint64_t end) {
    if (begin >= end) return;
    auto it = map_.upper_bound(begin);
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.end > begin) {
        if (prev->second.end > end) {
          map_.emplace(end, Piece{prev->second.end, prev->second.value});
        }
        prev->second.end = begin;
      }
    }
    it = map_.lower_bound(begin);
    while (it != map_.end() && it->first < end) {
      if (it->second.end > end) {
        map_.emplace(end, Piece{it->second.end, it->second.value});
      }
      it = map_.erase(it);
    }
  }

  net::SegmentMap<T> build() const {
    net::SegmentMap<T> m;
    for (const auto& [begin, piece] : map_) {
      m.assign(begin, piece.end, piece.value);
    }
    m.finalize();
    return m;
  }

 private:
  struct Piece {
    uint64_t end;
    T value;
  };
  std::map<uint64_t, Piece> map_;
};

template <typename T>
bool spans_equal(std::span<const T> a, std::span<const T> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace

std::vector<Event> diff_snapshots(const svc::Snapshot& a,
                                  const svc::Snapshot& b) {
  const net::Date d = b.date();
  std::vector<Event> out;

  diff_intervals(out, a.routed(), b.routed(), d, EventType::kBgpWithdraw,
                 EventType::kBgpAnnounce, 0, 0, 0);
  diff_intervals(out, a.as0(), b.as0(), d, EventType::kRoaRemove,
                 EventType::kRoaAdd, /*value=*/0, /*aux=*/32,
                 static_cast<uint8_t>(rpki::Tal::kApnicAs0));
  diff_intervals(out, a.irr(), b.irr(), d, EventType::kIrrRemove,
                 EventType::kIrrAdd, 0, 0, 0);
  diff_intervals(out, a.allocated(), b.allocated(), d,
                 EventType::kDelegationRemove, EventType::kDelegationAdd, 0, 0,
                 0);

  diff_segments<svc::Snapshot::DropInfo>(
      a.drop().segments(), b.drop().segments(),
      [&](const net::Prefix& p, const svc::Snapshot::DropInfo* old_value,
          const svc::Snapshot::DropInfo* new_value) {
        if (old_value) {
          out.push_back(make_event(EventType::kDropRemove, p, d, 0,
                                   old_value->categories, old_value->incident));
        }
        if (new_value) {
          out.push_back(make_event(EventType::kDropAdd, p, d, 0,
                                   new_value->categories, new_value->incident));
        }
      });
  diff_segments<uint8_t>(
      a.rov().segments(), b.rov().segments(),
      [&](const net::Prefix& p, const uint8_t* old_value,
          const uint8_t* new_value) {
        if (old_value) {
          out.push_back(make_event(EventType::kRovClear, p, d, *old_value));
        }
        if (new_value) {
          out.push_back(make_event(EventType::kRovSet, p, d, *new_value));
        }
      });
  diff_segments<uint8_t>(
      a.rir().segments(), b.rir().segments(),
      [&](const net::Prefix& p, const uint8_t* old_value,
          const uint8_t* new_value) {
        if (old_value) {
          out.push_back(make_event(EventType::kRirClear, p, d, *old_value));
        }
        if (new_value) {
          out.push_back(make_event(EventType::kRirSet, p, d, *new_value));
        }
      });

  // Canonical order: all removals precede all additions, so replaying a
  // value change clears the old before asserting the new.
  std::sort(out.begin(), out.end(), canonical_less);
  return out;
}

svc::Snapshot apply_diff(const svc::Snapshot& a,
                         const std::vector<Event>& events, net::Date date,
                         uint64_t version) {
  IntervalSet routed = a.routed();
  IntervalSet as0 = a.as0();
  IntervalSet irr = a.irr();
  IntervalSet allocated = a.allocated();
  Editor<svc::Snapshot::DropInfo> drop(a.drop().segments());
  Editor<uint8_t> rov(a.rov().segments());
  Editor<uint8_t> rir(a.rir().segments());

  for (const Event& e : events) {
    const uint64_t begin = e.prefix.first();
    const uint64_t end = e.prefix.end();
    switch (e.type) {
      case EventType::kBgpAnnounce: routed.insert(begin, end); break;
      case EventType::kBgpWithdraw: routed.erase(begin, end); break;
      case EventType::kRoaAdd:
      case EventType::kRoaRemove:
        if (e.value != 0) {
          throw InvariantError(
              "stream: flat diff cannot carry a real-origin ROA");
        }
        if (e.type == EventType::kRoaAdd) {
          as0.insert(begin, end);
        } else {
          as0.erase(begin, end);
        }
        break;
      case EventType::kIrrAdd: irr.insert(begin, end); break;
      case EventType::kIrrRemove: irr.erase(begin, end); break;
      case EventType::kDelegationAdd: allocated.insert(begin, end); break;
      case EventType::kDelegationRemove: allocated.erase(begin, end); break;
      case EventType::kDropAdd: {
        svc::Snapshot::DropInfo info;
        info.categories = e.aux;
        info.incident = e.aux2 ? 1 : 0;
        drop.set(begin, end, info);
        break;
      }
      case EventType::kDropRemove: drop.clear(begin, end); break;
      case EventType::kRovSet:
        if (e.value > static_cast<uint32_t>(svc::RovStatus::kUnrouted)) {
          throw InvariantError("stream: bad ROV status in flat diff");
        }
        rov.set(begin, end, static_cast<uint8_t>(e.value));
        break;
      case EventType::kRovClear: rov.clear(begin, end); break;
      case EventType::kRirSet:
        if (e.value >= rir::kAllRirs.size()) {
          throw InvariantError("stream: bad RIR index in flat diff");
        }
        rir.set(begin, end, static_cast<uint8_t>(e.value));
        break;
      case EventType::kRirClear: rir.clear(begin, end); break;
    }
  }

  return svc::Snapshot(version, date, a.degraded(), std::move(routed),
                       std::move(as0), std::move(irr), std::move(allocated),
                       drop.build(), rov.build(), rir.build());
}

bool snapshots_equal(const svc::Snapshot& a, const svc::Snapshot& b) {
  return a.degraded() == b.degraded() && a.routed() == b.routed() &&
         a.as0() == b.as0() && a.irr() == b.irr() &&
         a.allocated() == b.allocated() &&
         spans_equal(a.drop().segments(), b.drop().segments()) &&
         spans_equal(a.rov().segments(), b.rov().segments()) &&
         spans_equal(a.rir().segments(), b.rir().segments());
}

}  // namespace droplens::stream
