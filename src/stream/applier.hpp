// Incremental state machine from events to query-service snapshots.
//
// The batch pipeline compiles a day by scanning every substrate end to end
// (svc::compile_snapshot). The Applier maintains the same state *live*: each
// event mutates small keyed stores (active routes, live ROAs, DROP listings,
// IRR objects, allocations), and compact() folds them into a flat
// svc::Snapshot — byte-identical to what compile_snapshot would build for
// the same day, which tests/test_stream.cpp pins structure by structure.
//
// Why byte-identical works:
//  - The boolean space fields are unions of prefixes; IntervalSet is
//    canonical, so content equality is insertion-order-independent.
//  - The DROP map ORs category bits per point — order-independent — and
//    SegmentMap::finalize produces the canonical maximally-coalesced form
//    of whatever point-function was painted.
//  - The ROV paint goes least-specific-first; equal-length distinct
//    prefixes are disjoint, so any order within a length class paints the
//    same point-function. Per-prefix status is a worst-of fold (invalid >
//    valid > not-found) over active origins — also order-independent.
//  - The RIR paint is static (administered blocks), seeded once.
//
// ROV is recomputed incrementally: a BGP event refreshes its own prefix; a
// ROA event refreshes every announced prefix the ROA covers (an ordered-map
// range scan — contained keys are exactly [lower_bound(p), first() <
// p.end()), the nested-block property of CIDR).
//
// Threading: the Applier is single-writer, externally synchronized (the
// Publisher owns one and serializes apply/compact). compact() returns an
// immutable shared snapshot; readers never touch the live stores.
//
// Flat-diff event types (kRovSet family, see stream/event.hpp) assert
// derived state the Applier computes itself — apply() rejects them.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "net/interval_set.hpp"
#include "net/prefix_trie.hpp"
#include "net/segment_map.hpp"
#include "stream/event.hpp"
#include "svc/snapshot.hpp"

namespace droplens::rir {
class Registry;
}  // namespace droplens::rir

namespace droplens::stream {

class Applier {
 public:
  Applier() = default;

  /// Paint the administering-RIR map from the registry's static administered
  /// blocks. Call once before the first compact(); delegation *allocations*
  /// flow through events, the administered carve-up does not change.
  void seed_rir(const rir::Registry& registry);

  /// Apply one event to the live state. Returns false for events that do
  /// not apply: flat-diff assertion types, and removals with no matching
  /// live entry (a hostile or replayed-out-of-order stream must not corrupt
  /// state). BGP and ROA events refresh the affected ROV statuses.
  bool apply(const Event& e);

  /// Fold the live state into an immutable snapshot for day `d` —
  /// byte-identical to svc::compile_snapshot(study, index, d, version) once
  /// every event up to and including day `d` has been applied.
  std::shared_ptr<const svc::Snapshot> compact(net::Date d,
                                               uint64_t version) const;

  uint64_t applied() const { return applied_; }
  uint64_t rejected() const { return rejected_; }
  size_t announced_prefixes() const { return routes_.size(); }

 private:
  struct ActiveRoute {
    net::Date begin;
    uint32_t origin;
  };
  struct LiveRoute {
    std::vector<ActiveRoute> entries;
    uint8_t rov = 0;  // svc::RovStatus of this prefix's active origins
  };
  struct RoaEntry {
    uint32_t asn;
    uint8_t max_length;
    uint8_t tal;  // rpki::Tal index
  };
  struct DropListing {
    uint8_t categories;
    uint8_t incident;
  };

  /// Recompute the ROV status of `route` (keyed by `p`) against the live
  /// ROA set — the exact RFC 6811 worst-of fold compile_snapshot runs.
  void refresh_rov(const net::Prefix& p, LiveRoute& route) const;
  /// Refresh every announced prefix contained in `p` (ROA added/removed).
  void refresh_covered(const net::Prefix& p);

  uint64_t applied_ = 0;
  uint64_t rejected_ = 0;

  /// Announced prefixes with their active episodes and cached ROV status.
  std::map<net::Prefix, LiveRoute> routes_;
  /// Live ROAs keyed by ROA prefix — covering walks drive validation.
  net::PrefixMap<std::vector<RoaEntry>> roas_;
  /// Live DROP listings per prefix (overlaps keep their own label bits).
  std::map<net::Prefix, std::vector<DropListing>> drop_;
  /// Live IRR route-object count per prefix (origin is irrelevant to the
  /// covered-space answer, so a count suffices).
  std::map<net::Prefix, uint32_t> irr_;
  /// Live delegation count per prefix.
  std::map<net::Prefix, uint32_t> alloc_;
  /// Static administering-RIR paint (seed_rir), copied into every snapshot.
  net::SegmentMap<uint8_t> rir_;
};

}  // namespace droplens::stream
