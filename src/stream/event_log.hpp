// Append-only event log with 64-bit sequence numbers.
//
// The serial-number backbone of delta publication: every appended event gets
// the next sequence number, subscribers remember the next sequence they
// need, and since() answers either the missing tail or "gap" when retention
// (compaction) has already discarded it — the RTR cache-reset semantic,
// minus the wraparound headaches (64-bit serials outlive the universe at any
// plausible event rate).
//
// Thread-safe: one writer (the ingest thread) and any number of since()
// readers (transport threads serving subscribe frames) synchronize on an
// internal mutex. The append path is a deque push under an uncontended lock
// — micro-benchmarked well above the events/s targets in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "stream/event.hpp"

namespace droplens::stream {

class EventLog {
 public:
  /// Retain at most `retain` events; older ones are discarded as the head
  /// advances (0 = unbounded). Discarded history turns lagging subscribers'
  /// since() into a gap.
  explicit EventLog(size_t retain = 0) : retain_(retain) {}

  /// Append one event; stamps and returns its sequence number.
  uint64_t append(Event e);

  /// The next sequence number to be assigned (== last seq + 1).
  uint64_t head() const;

  /// The oldest retained sequence number (== head() when empty).
  uint64_t floor() const;

  uint64_t size() const;

  struct Tail {
    bool gap = false;       // `from` is below floor(): subscriber must reset
    uint64_t from = 0;      // first returned sequence (== requested, no gap)
    uint64_t head = 0;      // log head at read time
    std::vector<Event> events;
  };

  /// Events with sequence in [from, head()), capped at `max_events`.
  /// `from` beyond head() or below floor() answers a gap (reset semantics).
  Tail since(uint64_t from, size_t max_events) const;

  /// Raise the retention floor to `up_to` (events below it are discarded).
  /// A compaction calls this after folding history into a flat snapshot.
  void trim(uint64_t up_to);

 private:
  mutable std::mutex mu_;
  std::deque<Event> events_;
  uint64_t next_seq_ = 0;
  uint64_t floor_seq_ = 0;
  size_t retain_;
};

}  // namespace droplens::stream
