#include "bgp/route.hpp"

namespace droplens::bgp {

std::string AsPath::to_string() const {
  std::string out;
  for (size_t i = 0; i < hops_.size(); ++i) {
    if (i) out += ' ';
    out += std::to_string(hops_[i].value());
  }
  return out;
}

}  // namespace droplens::bgp
