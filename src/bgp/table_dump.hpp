// TABLE_DUMP-lite: a bgpdump-style text serialization of RIB snapshots.
//
// RouteViews RIBs are conventionally inspected as `bgpdump -m` pipe-format
// lines. We implement the subset the analyses need:
//
//   TABLE_DUMP2|2022-03-30|B|peer42|64512|10.0.0.0/8|3356 15169|IGP
//
// so peer tables can be persisted and re-read across runs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "bgp/fleet.hpp"
#include "bgp/route.hpp"

namespace droplens::bgp {

struct TableDumpEntry {
  net::Date date;
  std::string peer_name;
  net::Asn peer_asn;
  net::Prefix prefix;
  AsPath path;

  friend bool operator==(const TableDumpEntry&,
                         const TableDumpEntry&) = default;
};

/// Render `peer`'s table on day `d` as TABLE_DUMP-lite lines.
std::string write_table_dump(const CollectorFleet& fleet, PeerId peer,
                             net::Date d);

/// Parse TABLE_DUMP-lite text. Throws ParseError on malformed lines.
std::vector<TableDumpEntry> parse_table_dump(std::string_view text);

}  // namespace droplens::bgp
