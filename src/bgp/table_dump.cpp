#include "bgp/table_dump.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace droplens::bgp {

std::string write_table_dump(const CollectorFleet& fleet, PeerId peer,
                             net::Date d) {
  const Peer& p = fleet.peer(peer);
  std::string out;
  for (const Route& r : fleet.peer_table(peer, d)) {
    out += "TABLE_DUMP2|";
    out += d.to_string();
    out += "|B|";
    out += p.name.empty() ? "peer" + std::to_string(p.id) : p.name;
    out += '|';
    out += std::to_string(p.asn.value());
    out += '|';
    out += r.prefix.to_string();
    out += '|';
    out += r.path.to_string();
    out += "|IGP\n";
  }
  return out;
}

std::vector<TableDumpEntry> parse_table_dump(std::string_view text) {
  std::vector<TableDumpEntry> out;
  for (std::string_view line : util::split(text, '\n')) {
    line = util::trim(line);
    if (line.empty() || line.front() == '#') continue;
    std::vector<std::string_view> f = util::split(line, '|');
    if (f.size() < 7 || f[0] != "TABLE_DUMP2" || f[2] != "B") {
      throw ParseError("TABLE_DUMP: bad line: '" + std::string(line) + "'");
    }
    TableDumpEntry e;
    e.date = net::Date::parse(f[1]);
    e.peer_name = std::string(f[3]);
    e.peer_asn = net::Asn(static_cast<uint32_t>(util::parse_u64(f[4])));
    e.prefix = net::Prefix::parse(f[5]);
    std::vector<net::Asn> hops;
    for (std::string_view hop : util::split_ws(f[6])) {
      hops.emplace_back(static_cast<uint32_t>(util::parse_u64(hop)));
    }
    if (hops.empty()) {
      throw ParseError("TABLE_DUMP: empty AS path: '" + std::string(line) +
                       "'");
    }
    e.path = AsPath(std::move(hops));
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace droplens::bgp
