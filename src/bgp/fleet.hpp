// RouteViews-style collector fleet.
//
// The paper uses BGP announcement data from all 36 RouteViews collectors
// (§3). We model a fleet of collectors, each peering with a number of
// full-table peers. Announcements are recorded as *episodes*: a prefix
// originated with an AS path over a date range. A peer observes an episode
// unless its import policy rejects the prefix on that day — which is how the
// paper's three DROP-filtering peers (§4.1) and the hypothetical AS0-TAL
// filtering peers (§6.2.2) are expressed.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/route.hpp"
#include "net/date.hpp"
#include "net/interval_set.hpp"
#include "net/prefix.hpp"
#include "net/prefix_trie.hpp"

namespace droplens::bgp {

/// A peer's import policy: return true to REJECT (filter) the prefix on that
/// date. Policies are callbacks so the BGP layer stays independent of the
/// DROP / RPKI libraries that implement the actual filter predicates.
using RejectPolicy = std::function<bool(const net::Prefix&, net::Date)>;

struct Peer {
  PeerId id = 0;
  net::Asn asn;
  uint32_t collector = 0;
  bool full_table = true;
  RejectPolicy reject;  // empty: accepts everything
  std::string name;

  bool rejects(const net::Prefix& p, net::Date d) const {
    return reject && reject(p, d);
  }
};

struct Collector {
  uint32_t id = 0;
  std::string name;
  std::vector<PeerId> peers;
};

/// One origination episode of a prefix, as visible fleet-wide.
struct Episode {
  net::DateRange range;
  std::shared_ptr<const AsPath> path;

  net::Asn origin() const { return path->origin(); }
};

class CollectorFleet {
 public:
  CollectorFleet() = default;

  uint32_t add_collector(std::string name);
  PeerId add_peer(uint32_t collector, net::Asn asn, bool full_table = true,
                  RejectPolicy reject = nullptr, std::string name = {});

  size_t collector_count() const { return collectors_.size(); }
  size_t peer_count() const { return peers_.size(); }
  const Peer& peer(PeerId id) const { return peers_.at(id); }
  const std::vector<Peer>& peers() const { return peers_; }
  const std::vector<Collector>& collectors() const { return collectors_; }

  /// Record that `prefix` was announced with `path` over [range.begin,
  /// range.end). Overlapping episodes for the same prefix are allowed (e.g.
  /// MOAS conflicts during a hijack).
  void announce(const net::Prefix& prefix, AsPath path, net::DateRange range);

  /// All episodes for `prefix`, in insertion order. Empty if never announced.
  const std::vector<Episode>& episodes(const net::Prefix& prefix) const;

  /// Episodes for any prefix equal to or more specific than `prefix`.
  std::vector<std::pair<net::Prefix, Episode>> episodes_covered_by(
      const net::Prefix& prefix) const;

  /// True if any episode (for the exact prefix) covers `d`.
  bool announced_on(const net::Prefix& prefix, net::Date d) const;

  /// True if any episode for `prefix` *or a more specific prefix* covers `d`
  /// — the paper's routed/unrouted test for address space.
  bool routed_on(const net::Prefix& prefix, net::Date d) const;

  /// First/last day the exact prefix was announced; nullopt if never.
  std::optional<net::Date> first_announced(const net::Prefix& prefix) const;
  std::optional<net::Date> last_announced(const net::Prefix& prefix) const;

  /// Origins announced for `prefix` on day `d` (normally 0 or 1; >1 during a
  /// MOAS conflict).
  std::vector<net::Asn> origins_on(const net::Prefix& prefix,
                                   net::Date d) const;

  /// Number of full-table peers that observe `prefix` on `d`: announced and
  /// not rejected by the peer's import policy.
  size_t observing_peers(const net::Prefix& prefix, net::Date d) const;
  size_t full_table_peer_count() const;

  /// Whether a specific peer observes `prefix` on `d`.
  bool peer_observes(PeerId id, const net::Prefix& prefix, net::Date d) const;

  /// Materialize the RIB a peer would hold at end of day `d` — used by the
  /// §6.2.2 check (how many routes an AS0 TAL would have filtered) and the
  /// ROV-monitor example.
  std::vector<Route> peer_table(PeerId id, net::Date d) const;

  /// Replay all episodes as a date-ordered update stream (announce at
  /// range.begin, withdraw at range.end) for `peer` — feed for PeerRib.
  std::vector<Update> update_stream(PeerId id) const;

  /// All prefixes with at least one episode, in prefix order.
  std::vector<net::Prefix> announced_prefixes() const;

  /// Prefixes with an episode covering `d`, in prefix order.
  std::vector<net::Prefix> announced_prefixes_on(net::Date d) const;

  /// Address space covered by announcements on `d` — the "routed" space of
  /// the Fig 5 accounting.
  net::IntervalSet routed_space(net::Date d) const;

 private:
  std::vector<Collector> collectors_;
  std::vector<Peer> peers_;
  net::PrefixMap<std::vector<Episode>> episodes_;
  static const std::vector<Episode> kNoEpisodes;
};

}  // namespace droplens::bgp
