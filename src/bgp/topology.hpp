// AS-level topology and Gao–Rexford route propagation.
//
// The collector fleet records *what was announced*; this module models *who
// believes it*. An AsGraph holds customer-provider and peer links; propagate()
// floods competing originations through the graph under the standard
// valley-free export rules and local-preference order
// (customer > peer > provider, then shortest AS path), optionally with a set
// of ASes enforcing route origin validation. The result answers the question
// the paper's defense discussion leaves quantitative: how much of the
// Internet does a given hijack actually capture?
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/asn.hpp"

namespace droplens::bgp {

class AsGraph {
 public:
  /// Add `customer` as a customer of `provider` (both added implicitly).
  void add_provider_customer(net::Asn provider, net::Asn customer);

  /// Add a settlement-free peering link.
  void add_peering(net::Asn a, net::Asn b);

  size_t as_count() const { return nodes_.size(); }
  const std::vector<net::Asn>& ases() const { return nodes_; }
  bool contains(net::Asn as) const { return index_.contains(as); }

  const std::vector<net::Asn>& providers(net::Asn as) const;
  const std::vector<net::Asn>& customers(net::Asn as) const;
  const std::vector<net::Asn>& peers(net::Asn as) const;

 private:
  struct Node {
    std::vector<net::Asn> providers;
    std::vector<net::Asn> customers;
    std::vector<net::Asn> peers;
  };
  Node& node(net::Asn as);
  const Node* find(net::Asn as) const;

  std::vector<net::Asn> nodes_;
  std::unordered_map<net::Asn, size_t> index_;
  std::vector<Node> data_;
  static const std::vector<net::Asn> kNone;
};

/// How a route was learned — the local-preference order.
enum class RouteSource : uint8_t { kOrigin = 3, kCustomer = 2, kPeer = 1,
                                   kProvider = 0 };

/// One AS's chosen route for the contested prefix.
struct ChosenRoute {
  net::Asn origin;             // which origination it believes
  RouteSource source = RouteSource::kOrigin;
  int path_length = 0;         // AS hops from the origin
};

struct Origination {
  net::Asn origin;
  /// A validator that has this origination as invalid drops it. nullopt =
  /// route passes ROV everywhere (valid or not-found).
  bool rov_invalid = false;
};

struct PropagationResult {
  std::unordered_map<net::Asn, ChosenRoute> routes;

  /// Number of ASes whose chosen route leads to `origin`.
  size_t believers(net::Asn origin) const;
};

/// Propagate competing originations through `graph` with Gao–Rexford
/// semantics. `rov_enforcers` drop rov_invalid originations entirely.
PropagationResult propagate(
    const AsGraph& graph, const std::vector<Origination>& originations,
    const std::unordered_set<net::Asn>& rov_enforcers = {});

}  // namespace droplens::bgp
