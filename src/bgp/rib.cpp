#include "bgp/rib.hpp"

namespace droplens::bgp {

void PeerRib::apply(const Update& u) {
  if (u.type == UpdateType::kWithdraw) {
    routes_.erase(u.prefix);
    return;
  }
  routes_.insert_or_assign(u.prefix, Route{u.prefix, u.path, u.date});
}

std::vector<Route> PeerRib::snapshot() const {
  std::vector<Route> out;
  out.reserve(routes_.size());
  routes_.for_each(
      [&](const net::Prefix&, const Route& r) { out.push_back(r); });
  return out;
}

}  // namespace droplens::bgp
