#include "bgp/topology.hpp"

#include <algorithm>
#include <queue>

namespace droplens::bgp {

const std::vector<net::Asn> AsGraph::kNone;

AsGraph::Node& AsGraph::node(net::Asn as) {
  auto [it, inserted] = index_.try_emplace(as, data_.size());
  if (inserted) {
    nodes_.push_back(as);
    data_.emplace_back();
  }
  return data_[it->second];
}

const AsGraph::Node* AsGraph::find(net::Asn as) const {
  auto it = index_.find(as);
  return it == index_.end() ? nullptr : &data_[it->second];
}

void AsGraph::add_provider_customer(net::Asn provider, net::Asn customer) {
  node(provider).customers.push_back(customer);
  node(customer).providers.push_back(provider);
}

void AsGraph::add_peering(net::Asn a, net::Asn b) {
  node(a).peers.push_back(b);
  node(b).peers.push_back(a);
}

const std::vector<net::Asn>& AsGraph::providers(net::Asn as) const {
  const Node* n = find(as);
  return n ? n->providers : kNone;
}
const std::vector<net::Asn>& AsGraph::customers(net::Asn as) const {
  const Node* n = find(as);
  return n ? n->customers : kNone;
}
const std::vector<net::Asn>& AsGraph::peers(net::Asn as) const {
  const Node* n = find(as);
  return n ? n->peers : kNone;
}

size_t PropagationResult::believers(net::Asn origin) const {
  size_t n = 0;
  for (const auto& [as, route] : routes) n += route.origin == origin;
  return n;
}

namespace {

/// Is candidate (len_a, origin_a) better than incumbent (len_b, origin_b)
/// within the same preference class? Shorter path wins; ties break to the
/// lower origin ASN for determinism.
bool better(int len_a, net::Asn origin_a, int len_b, net::Asn origin_b) {
  if (len_a != len_b) return len_a < len_b;
  return origin_a < origin_b;
}

struct Candidate {
  int length;
  net::Asn origin;
  net::Asn at;

  bool operator>(const Candidate& other) const {
    if (length != other.length) return length > other.length;
    return origin.value() > other.origin.value();
  }
};

using Queue =
    std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>>;

}  // namespace

PropagationResult propagate(
    const AsGraph& graph, const std::vector<Origination>& originations,
    const std::unordered_set<net::Asn>& rov_enforcers) {
  PropagationResult result;

  auto accepts = [&](net::Asn as, const Origination& o) {
    return !(o.rov_invalid && rov_enforcers.contains(as));
  };
  auto origination_of = [&](net::Asn origin) -> const Origination* {
    for (const Origination& o : originations) {
      if (o.origin == origin) return &o;
    }
    return nullptr;
  };

  // --- Stage 1: customer routes flow upward --------------------------------
  // best[as] per stage; stage-1 entries are routes learned from a customer
  // (or self-originated).
  std::unordered_map<net::Asn, ChosenRoute> customer_route;
  Queue queue;
  for (const Origination& o : originations) {
    if (!graph.contains(o.origin) || !accepts(o.origin, o)) continue;
    queue.push(Candidate{0, o.origin, o.origin});
  }
  auto relax_customer = [&](const Candidate& c) {
    auto it = customer_route.find(c.at);
    if (it != customer_route.end() &&
        !better(c.length, c.origin, it->second.path_length,
                it->second.origin)) {
      return false;
    }
    customer_route[c.at] = ChosenRoute{
        c.origin, c.length == 0 ? RouteSource::kOrigin : RouteSource::kCustomer,
        c.length};
    return true;
  };
  while (!queue.empty()) {
    Candidate c = queue.top();
    queue.pop();
    const Origination* o = origination_of(c.origin);
    if (!o || !accepts(c.at, *o)) continue;
    if (!relax_customer(c)) continue;
    for (net::Asn provider : graph.providers(c.at)) {
      queue.push(Candidate{c.length + 1, c.origin, provider});
    }
  }

  // --- Stage 2: one peer hop ------------------------------------------------
  // An AS with a customer (or origin) route exports it to its peers; a peer
  // route is only used by ASes lacking a customer route.
  std::unordered_map<net::Asn, ChosenRoute> peer_route;
  for (const auto& [as, route] : customer_route) {
    for (net::Asn peer : graph.peers(as)) {
      if (customer_route.contains(peer)) continue;
      const Origination* o = origination_of(route.origin);
      if (!o || !accepts(peer, *o)) continue;
      int length = route.path_length + 1;
      auto it = peer_route.find(peer);
      if (it == peer_route.end() ||
          better(length, route.origin, it->second.path_length,
                 it->second.origin)) {
        peer_route[peer] =
            ChosenRoute{route.origin, RouteSource::kPeer, length};
      }
    }
  }

  // Merge stages 1+2 into the per-AS best so far.
  for (const auto& [as, route] : customer_route) result.routes[as] = route;
  for (const auto& [as, route] : peer_route) result.routes[as] = route;

  // --- Stage 3: provider routes flow downward -------------------------------
  // Any routed AS exports its best route to its customers; customers without
  // a customer/peer route adopt the best provider route (Dijkstra order).
  Queue down;
  for (const auto& [as, route] : result.routes) {
    down.push(Candidate{route.path_length, route.origin, as});
  }
  std::unordered_map<net::Asn, ChosenRoute> provider_route;
  while (!down.empty()) {
    Candidate c = down.top();
    down.pop();
    // The exporting AS's current best must still match this entry.
    auto best = result.routes.find(c.at);
    bool is_provider_entry = false;
    if (best == result.routes.end() ||
        best->second.origin != c.origin ||
        best->second.path_length != c.length) {
      auto pr = provider_route.find(c.at);
      if (pr == provider_route.end() || pr->second.origin != c.origin ||
          pr->second.path_length != c.length) {
        continue;  // stale queue entry
      }
      is_provider_entry = true;
    }
    (void)is_provider_entry;
    for (net::Asn customer : graph.customers(c.at)) {
      if (result.routes.contains(customer)) continue;  // has cust/peer route
      const Origination* o = origination_of(c.origin);
      if (!o || !accepts(customer, *o)) continue;
      int length = c.length + 1;
      auto it = provider_route.find(customer);
      if (it == provider_route.end() ||
          better(length, c.origin, it->second.path_length,
                 it->second.origin)) {
        provider_route[customer] =
            ChosenRoute{c.origin, RouteSource::kProvider, length};
        down.push(Candidate{length, c.origin, customer});
      }
    }
  }
  for (const auto& [as, route] : provider_route) {
    result.routes.emplace(as, route);
  }
  return result;
}

}  // namespace droplens::bgp
