#include "bgp/fleet.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace droplens::bgp {

const std::vector<Episode> CollectorFleet::kNoEpisodes;

uint32_t CollectorFleet::add_collector(std::string name) {
  uint32_t id = static_cast<uint32_t>(collectors_.size());
  collectors_.push_back(Collector{id, std::move(name), {}});
  return id;
}

PeerId CollectorFleet::add_peer(uint32_t collector, net::Asn asn,
                                bool full_table, RejectPolicy reject,
                                std::string name) {
  if (collector >= collectors_.size()) {
    throw InvariantError("unknown collector id");
  }
  PeerId id = static_cast<PeerId>(peers_.size());
  peers_.push_back(
      Peer{id, asn, collector, full_table, std::move(reject), std::move(name)});
  collectors_[collector].peers.push_back(id);
  return id;
}

void CollectorFleet::announce(const net::Prefix& prefix, AsPath path,
                              net::DateRange range) {
  if (path.empty()) throw InvariantError("announcement with empty AS path");
  if (range.begin >= range.end) {
    throw InvariantError("announcement with empty date range");
  }
  episodes_[prefix].push_back(
      Episode{range, std::make_shared<const AsPath>(std::move(path))});
}

const std::vector<Episode>& CollectorFleet::episodes(
    const net::Prefix& prefix) const {
  const auto* v = episodes_.find(prefix);
  return v ? *v : kNoEpisodes;
}

std::vector<std::pair<net::Prefix, Episode>> CollectorFleet::episodes_covered_by(
    const net::Prefix& prefix) const {
  std::vector<std::pair<net::Prefix, Episode>> out;
  episodes_.for_each_covered(
      prefix, [&](const net::Prefix& p, const std::vector<Episode>& eps) {
        for (const Episode& e : eps) out.emplace_back(p, e);
      });
  return out;
}

bool CollectorFleet::announced_on(const net::Prefix& prefix,
                                  net::Date d) const {
  for (const Episode& e : episodes(prefix)) {
    if (e.range.contains(d)) return true;
  }
  return false;
}

bool CollectorFleet::routed_on(const net::Prefix& prefix, net::Date d) const {
  bool routed = false;
  episodes_.for_each_covered(
      prefix, [&](const net::Prefix&, const std::vector<Episode>& eps) {
        if (routed) return;
        for (const Episode& e : eps) {
          if (e.range.contains(d)) {
            routed = true;
            return;
          }
        }
      });
  return routed;
}

std::optional<net::Date> CollectorFleet::first_announced(
    const net::Prefix& prefix) const {
  std::optional<net::Date> best;
  for (const Episode& e : episodes(prefix)) {
    if (!best || e.range.begin < *best) best = e.range.begin;
  }
  return best;
}

std::optional<net::Date> CollectorFleet::last_announced(
    const net::Prefix& prefix) const {
  std::optional<net::Date> best;
  for (const Episode& e : episodes(prefix)) {
    net::Date last = e.range.end - 1;
    if (!best || last > *best) best = last;
  }
  return best;
}

std::vector<net::Asn> CollectorFleet::origins_on(const net::Prefix& prefix,
                                                 net::Date d) const {
  std::vector<net::Asn> out;
  for (const Episode& e : episodes(prefix)) {
    if (e.range.contains(d) &&
        std::find(out.begin(), out.end(), e.origin()) == out.end()) {
      out.push_back(e.origin());
    }
  }
  return out;
}

size_t CollectorFleet::observing_peers(const net::Prefix& prefix,
                                       net::Date d) const {
  if (!announced_on(prefix, d)) return 0;
  size_t n = 0;
  for (const Peer& p : peers_) {
    if (p.full_table && !p.rejects(prefix, d)) ++n;
  }
  return n;
}

size_t CollectorFleet::full_table_peer_count() const {
  return static_cast<size_t>(
      std::count_if(peers_.begin(), peers_.end(),
                    [](const Peer& p) { return p.full_table; }));
}

bool CollectorFleet::peer_observes(PeerId id, const net::Prefix& prefix,
                                   net::Date d) const {
  return announced_on(prefix, d) && !peers_.at(id).rejects(prefix, d);
}

std::vector<Route> CollectorFleet::peer_table(PeerId id, net::Date d) const {
  const Peer& peer = peers_.at(id);
  std::vector<Route> out;
  episodes_.for_each(
      [&](const net::Prefix& p, const std::vector<Episode>& eps) {
        for (const Episode& e : eps) {
          if (e.range.contains(d) && !peer.rejects(p, d)) {
            out.push_back(Route{p, *e.path, e.range.begin});
            break;  // one best route per prefix
          }
        }
      });
  return out;
}

std::vector<Update> CollectorFleet::update_stream(PeerId id) const {
  const Peer& peer = peers_.at(id);
  std::vector<Update> out;
  episodes_.for_each(
      [&](const net::Prefix& p, const std::vector<Episode>& eps) {
        for (const Episode& e : eps) {
          // A policy-filtered prefix never reaches this peer's stream. Filter
          // decisions are evaluated at announce time.
          if (peer.rejects(p, e.range.begin)) continue;
          out.push_back(
              Update{e.range.begin, id, UpdateType::kAnnounce, p, *e.path});
          if (e.range.end != net::DateRange::unbounded()) {
            out.push_back(
                Update{e.range.end, id, UpdateType::kWithdraw, p, AsPath{}});
          }
        }
      });
  std::stable_sort(out.begin(), out.end(),
                   [](const Update& a, const Update& b) {
                     return a.date < b.date;
                   });
  return out;
}

std::vector<net::Prefix> CollectorFleet::announced_prefixes_on(
    net::Date d) const {
  std::vector<net::Prefix> out;
  episodes_.for_each(
      [&](const net::Prefix& p, const std::vector<Episode>& eps) {
        for (const Episode& e : eps) {
          if (e.range.contains(d)) {
            out.push_back(p);
            return;
          }
        }
      });
  return out;
}

net::IntervalSet CollectorFleet::routed_space(net::Date d) const {
  net::IntervalSet out;
  episodes_.for_each(
      [&](const net::Prefix& p, const std::vector<Episode>& eps) {
        for (const Episode& e : eps) {
          if (e.range.contains(d)) {
            out.insert(p);
            return;
          }
        }
      });
  return out;
}

std::vector<net::Prefix> CollectorFleet::announced_prefixes() const {
  std::vector<net::Prefix> out;
  episodes_.for_each([&](const net::Prefix& p, const std::vector<Episode>&) {
    out.push_back(p);
  });
  return out;
}

}  // namespace droplens::bgp
