// BGP route model: AS paths, routes, and update messages.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "net/asn.hpp"
#include "net/date.hpp"
#include "net/prefix.hpp"

namespace droplens::bgp {

/// An AS path as announced, collector-side first: path.front() is the peer's
/// own AS, path.back() is the origin AS. (Prepending is representable but the
/// analyses only care about membership and the origin.)
class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<net::Asn> hops) : hops_(std::move(hops)) {}
  AsPath(std::initializer_list<net::Asn> hops) : hops_(hops) {}

  bool empty() const { return hops_.empty(); }
  size_t length() const { return hops_.size(); }

  /// Origin AS: the network that (claims to) originate the prefix.
  net::Asn origin() const { return hops_.back(); }

  bool contains(net::Asn asn) const {
    for (net::Asn a : hops_) {
      if (a == asn) return true;
    }
    return false;
  }

  const std::vector<net::Asn>& hops() const { return hops_; }

  /// "50509 34665 263692" rendering.
  std::string to_string() const;

  friend bool operator==(const AsPath&, const AsPath&) = default;

 private:
  std::vector<net::Asn> hops_;
};

/// Identifies one BGP peer of the collector fleet.
using PeerId = uint32_t;

enum class UpdateType : uint8_t { kAnnounce, kWithdraw };

/// One BGP update as a collector records it.
struct Update {
  net::Date date;
  PeerId peer = 0;
  UpdateType type = UpdateType::kAnnounce;
  net::Prefix prefix;
  AsPath path;  // empty for withdrawals
};

/// A route installed in a peer RIB.
struct Route {
  net::Prefix prefix;
  AsPath path;
  net::Date learned;
};

}  // namespace droplens::bgp
