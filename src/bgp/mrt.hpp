// MRT-lite: a compact binary serialization for BGP update streams.
//
// RouteViews publishes MRT archives; we define a simplified, self-describing
// binary format ("MRTL") so update streams can be persisted and replayed
// across runs — the moral equivalent of the paper's BGP archive inputs.
//
// Layout (all integers little-endian):
//   magic   "MRTL"            4 bytes
//   version u16               currently 1
//   count   u64               number of records
//   record: date i32, peer u32, type u8 (0=announce, 1=withdraw),
//           prefix u32 + len u8, hops u16, hop u32 * hops
#pragma once

#include <iosfwd>
#include <vector>

#include "bgp/route.hpp"
#include "util/parse_report.hpp"

namespace droplens::bgp {

/// Serialize `updates` to `out`. Throws std::ios_base::failure on I/O error.
void write_mrtl(std::ostream& out, const std::vector<Update>& updates);

/// Parse an MRTL stream. The declared record count is validated against the
/// remaining stream size (when the stream is seekable) so a corrupt header
/// can never drive a huge allocation. Under kStrict malformed input throws
/// ParseError; under kLenient the records parsed before the first corrupt
/// byte are returned and the failure is recorded in `report` (a binary
/// stream has no record framing to resync on, so parsing stops there).
std::vector<Update> read_mrtl(
    std::istream& in, util::ParsePolicy policy = util::ParsePolicy::kStrict,
    util::ParseReport* report = nullptr);

}  // namespace droplens::bgp
