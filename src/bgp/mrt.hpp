// MRT-lite: a compact binary serialization for BGP update streams.
//
// RouteViews publishes MRT archives; we define a simplified, self-describing
// binary format ("MRTL") so update streams can be persisted and replayed
// across runs — the moral equivalent of the paper's BGP archive inputs.
//
// Layout (all integers little-endian):
//   magic   "MRTL"            4 bytes
//   version u16               currently 1
//   count   u64               number of records
//   record: date i32, peer u32, type u8 (0=announce, 1=withdraw),
//           prefix u32 + len u8, hops u16, hop u32 * hops
#pragma once

#include <iosfwd>
#include <vector>

#include "bgp/route.hpp"

namespace droplens::bgp {

/// Serialize `updates` to `out`. Throws std::ios_base::failure on I/O error.
void write_mrtl(std::ostream& out, const std::vector<Update>& updates);

/// Parse an MRTL stream. Throws ParseError on malformed input.
std::vector<Update> read_mrtl(std::istream& in);

}  // namespace droplens::bgp
