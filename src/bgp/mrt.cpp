#include "bgp/mrt.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

#include "util/error.hpp"

namespace droplens::bgp {

namespace {

constexpr char kMagic[4] = {'M', 'R', 'T', 'L'};
constexpr uint16_t kVersion = 1;

template <typename T>
void put(std::ostream& out, T v) {
  // Serialize little-endian byte by byte for portability.
  unsigned char buf[sizeof(T)];
  using U = std::make_unsigned_t<T>;
  U u = static_cast<U>(v);
  for (size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<unsigned char>(u >> (8 * i));
  }
  out.write(reinterpret_cast<const char*>(buf), sizeof buf);
}

template <typename T>
T get(std::istream& in) {
  unsigned char buf[sizeof(T)];
  if (!in.read(reinterpret_cast<char*>(buf), sizeof buf)) {
    throw ParseError("MRTL: truncated stream");
  }
  using U = std::make_unsigned_t<T>;
  U u = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    u |= static_cast<U>(buf[i]) << (8 * i);
  }
  return static_cast<T>(u);
}

}  // namespace

void write_mrtl(std::ostream& out, const std::vector<Update>& updates) {
  out.write(kMagic, sizeof kMagic);
  put<uint16_t>(out, kVersion);
  put<uint64_t>(out, updates.size());
  for (const Update& u : updates) {
    put<int32_t>(out, u.date.days());
    put<uint32_t>(out, u.peer);
    put<uint8_t>(out, u.type == UpdateType::kWithdraw ? 1 : 0);
    put<uint32_t>(out, u.prefix.network().value());
    put<uint8_t>(out, static_cast<uint8_t>(u.prefix.length()));
    put<uint16_t>(out, static_cast<uint16_t>(u.path.length()));
    for (net::Asn a : u.path.hops()) put<uint32_t>(out, a.value());
  }
}

std::vector<Update> read_mrtl(std::istream& in) {
  char magic[4];
  if (!in.read(magic, sizeof magic) || std::memcmp(magic, kMagic, 4) != 0) {
    throw ParseError("MRTL: bad magic");
  }
  uint16_t version = get<uint16_t>(in);
  if (version != kVersion) {
    throw ParseError("MRTL: unsupported version " + std::to_string(version));
  }
  uint64_t count = get<uint64_t>(in);
  std::vector<Update> out;
  // The count is untrusted input: a corrupt header must not drive a huge
  // allocation. A lying count is caught as a truncated stream below.
  out.reserve(static_cast<size_t>(std::min<uint64_t>(count, 1 << 16)));
  for (uint64_t i = 0; i < count; ++i) {
    Update u;
    u.date = net::Date(get<int32_t>(in));
    u.peer = get<uint32_t>(in);
    uint8_t type = get<uint8_t>(in);
    if (type > 1) throw ParseError("MRTL: bad update type");
    u.type = type ? UpdateType::kWithdraw : UpdateType::kAnnounce;
    uint32_t net = get<uint32_t>(in);
    uint8_t len = get<uint8_t>(in);
    if (len > 32) throw ParseError("MRTL: bad prefix length");
    try {
      u.prefix = net::Prefix(net::Ipv4(net), len);
    } catch (const InvariantError& e) {
      throw ParseError(std::string("MRTL: ") + e.what());
    }
    uint16_t hops = get<uint16_t>(in);
    std::vector<net::Asn> path;
    path.reserve(hops);
    for (uint16_t h = 0; h < hops; ++h) path.emplace_back(get<uint32_t>(in));
    u.path = AsPath(std::move(path));
    if (u.type == UpdateType::kAnnounce && u.path.empty()) {
      throw ParseError("MRTL: announce with empty path");
    }
    out.push_back(std::move(u));
  }
  return out;
}

}  // namespace droplens::bgp
