#include "bgp/mrt.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <optional>
#include <ostream>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace droplens::bgp {

namespace {

constexpr char kMagic[4] = {'M', 'R', 'T', 'L'};
constexpr uint16_t kVersion = 1;

template <typename T>
void put(std::ostream& out, T v) {
  // Serialize little-endian byte by byte for portability.
  unsigned char buf[sizeof(T)];
  using U = std::make_unsigned_t<T>;
  U u = static_cast<U>(v);
  for (size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<unsigned char>(u >> (8 * i));
  }
  out.write(reinterpret_cast<const char*>(buf), sizeof buf);
}

template <typename T>
T get(std::istream& in) {
  unsigned char buf[sizeof(T)];
  if (!in.read(reinterpret_cast<char*>(buf), sizeof buf)) {
    throw ParseError("MRTL: truncated stream");
  }
  using U = std::make_unsigned_t<T>;
  U u = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    u |= static_cast<U>(buf[i]) << (8 * i);
  }
  return static_cast<T>(u);
}

}  // namespace

void write_mrtl(std::ostream& out, const std::vector<Update>& updates) {
  out.write(kMagic, sizeof kMagic);
  put<uint16_t>(out, kVersion);
  put<uint64_t>(out, updates.size());
  for (const Update& u : updates) {
    put<int32_t>(out, u.date.days());
    put<uint32_t>(out, u.peer);
    put<uint8_t>(out, u.type == UpdateType::kWithdraw ? 1 : 0);
    put<uint32_t>(out, u.prefix.network().value());
    put<uint8_t>(out, static_cast<uint8_t>(u.prefix.length()));
    put<uint16_t>(out, static_cast<uint16_t>(u.path.length()));
    for (net::Asn a : u.path.hops()) put<uint32_t>(out, a.value());
  }
}

namespace {

// Bytes left between the current position and end of stream, or nullopt when
// the stream is not seekable. Restores the read position either way.
std::optional<uint64_t> remaining_bytes(std::istream& in) {
  std::streampos pos = in.tellg();
  if (pos == std::streampos(-1)) return std::nullopt;
  in.seekg(0, std::ios::end);
  std::streampos end = in.tellg();
  in.seekg(pos);
  if (end == std::streampos(-1) || !in) {
    in.clear();
    in.seekg(pos);
    return std::nullopt;
  }
  return static_cast<uint64_t>(end - pos);
}

// date i32 + peer u32 + type u8 + prefix u32 + len u8 + hops u16.
constexpr uint64_t kMinRecordBytes = 16;

Update read_record(std::istream& in) {
  Update u;
  u.date = net::Date(get<int32_t>(in));
  u.peer = get<uint32_t>(in);
  uint8_t type = get<uint8_t>(in);
  if (type > 1) throw ParseError("MRTL: bad update type");
  u.type = type ? UpdateType::kWithdraw : UpdateType::kAnnounce;
  uint32_t net = get<uint32_t>(in);
  uint8_t len = get<uint8_t>(in);
  if (len > 32) throw ParseError("MRTL: bad prefix length");
  try {
    u.prefix = net::Prefix(net::Ipv4(net), len);
  } catch (const InvariantError& e) {
    throw ParseError(std::string("MRTL: ") + e.what());
  }
  uint16_t hops = get<uint16_t>(in);
  std::vector<net::Asn> path;
  path.reserve(hops);
  for (uint16_t h = 0; h < hops; ++h) path.emplace_back(get<uint32_t>(in));
  u.path = AsPath(std::move(path));
  if (u.type == UpdateType::kAnnounce && u.path.empty()) {
    throw ParseError("MRTL: announce with empty path");
  }
  return u;
}

// Error text from read_record already carries the "MRTL: " prefix; strip it
// before re-wrapping with record context.
std::string strip_prefix(std::string_view what) {
  constexpr std::string_view kPrefix = "MRTL: ";
  if (what.substr(0, kPrefix.size()) == kPrefix) {
    what.remove_prefix(kPrefix.size());
  }
  return std::string(what);
}

}  // namespace

std::vector<Update> read_mrtl(std::istream& in, util::ParsePolicy policy,
                              util::ParseReport* report) {
  obs::Span span("parse.mrtl");
  size_t skipped = 0;
  char magic[4];
  if (!in.read(magic, sizeof magic) || std::memcmp(magic, kMagic, 4) != 0) {
    // A bad magic means the whole file is unusable; that is a hard error in
    // both policies (there is nothing to salvage records from).
    throw ParseError("MRTL: bad magic");
  }
  uint16_t version = get<uint16_t>(in);
  if (version != kVersion) {
    throw ParseError("MRTL: unsupported version " + std::to_string(version));
  }
  uint64_t count = get<uint64_t>(in);
  // The count is untrusted input: a bit-flipped header must not drive a
  // multi-GB allocation. Validate it against the bytes actually left in the
  // stream (each record is at least kMinRecordBytes) before reserving.
  std::optional<uint64_t> left = remaining_bytes(in);
  if (left && count > *left / kMinRecordBytes) {
    throw ParseError("MRTL: header declares " + std::to_string(count) +
                     " records but only " + std::to_string(*left) +
                     " bytes remain");
  }
  std::vector<Update> out;
  out.reserve(static_cast<size_t>(std::min<uint64_t>(count, 1 << 16)));
  for (uint64_t i = 0; i < count; ++i) {
    std::streampos record_start = in.tellg();
    try {
      out.push_back(read_record(in));
    } catch (const ParseError& e) {
      if (policy == util::ParsePolicy::kStrict) {
        throw ParseError("MRTL: record " + std::to_string(i) + ": " +
                         strip_prefix(e.what()));
      }
      // Binary records carry no framing to resync on, so a corrupt record
      // ends the stream: keep what parsed, account for the rest.
      if (report) {
        uint64_t offset = record_start == std::streampos(-1)
                              ? 0
                              : static_cast<uint64_t>(record_start);
        report->add_error_at(
            offset, "record " + std::to_string(i) + ": " +
                        strip_prefix(e.what()) + "; dropped remaining " +
                        std::to_string(count - i) + " records");
      }
      skipped = static_cast<size_t>(count - i);
      break;
    }
    if (report) report->add_parsed();
  }
  if (obs::Registry* reg = obs::installed()) {
    obs::Labels feed{{"feed", "bgp"}};
    reg->counter("droplens_parse_records_total", feed).inc(out.size());
    reg->counter("droplens_parse_records_skipped_total", feed).inc(skipped);
  }
  return out;
}

}  // namespace droplens::bgp
