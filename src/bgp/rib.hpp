// Per-peer Routing Information Base.
#pragma once

#include <optional>
#include <vector>

#include "bgp/route.hpp"
#include "net/prefix_trie.hpp"

namespace droplens::bgp {

/// The routes one peer currently advertises to a collector. Applies
/// announce/withdraw updates and answers exact and longest-prefix queries.
class PeerRib {
 public:
  /// Apply an update for this peer. Re-announcement replaces the path.
  void apply(const Update& u);

  /// The installed route for exactly `p`, if any.
  const Route* find(const net::Prefix& p) const { return routes_.find(p); }

  /// Longest-prefix match for `p` (what a forwarding decision would use).
  const Route* longest_match(const net::Prefix& p) const {
    return routes_.longest_match(p);
  }

  size_t size() const { return routes_.size(); }

  /// All installed routes, in prefix order.
  std::vector<Route> snapshot() const;

 private:
  net::PrefixMap<Route> routes_;
};

}  // namespace droplens::bgp
