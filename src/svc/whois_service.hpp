// irr::WhoisServer riding the svc transport layer.
//
// The whois protocol is newline-delimited where the binary protocol is
// length-prefixed; this adapter supplies the delimiting so the same
// TcpServer / LoopbackConnection core serves both. Lines are capped — a
// peer that streams garbage without a newline gets an F response and a
// closed connection instead of an unbounded buffer.
#pragma once

#include <string>
#include <string_view>

#include "irr/whois.hpp"
#include "svc/transport.hpp"

namespace droplens::svc {

class WhoisService : public Service {
 public:
  /// Longest accepted query line, terminator included.
  static constexpr size_t kMaxLine = 1024;

  explicit WhoisService(const irr::WhoisServer& server) : server_(server) {}

  size_t message_size(std::string_view buffer) const override;
  std::string serve(std::string_view message) override;
  std::string malformed_response(std::string_view head) override;
  /// IRRd-style F error lines for refusals: a connection over the cap or a
  /// shed query gets "F overloaded", a deadline close "F deadline exceeded"
  /// — typed, parseable, and distinct from a silent drop.
  std::string overload_response(std::string_view message) override;
  std::string timeout_response() override;

 private:
  const irr::WhoisServer& server_;
};

/// Client-side framer for IRRd responses ("A<len>\n…C\n", "C\n", "D\n",
/// "F …\n"): pass to TcpClientConnection when talking to a WhoisService.
size_t whois_response_size(std::string_view buffer);

}  // namespace droplens::svc
