#include "svc/snapshot_store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "core/drop_index.hpp"
#include "core/study.hpp"
#include "obs/metrics.hpp"
#include "svc/snapshot_io.hpp"
#include "util/error.hpp"

namespace droplens::svc {

namespace fs = std::filesystem;

SnapshotStore::SnapshotStore(Config config, const core::Study* study,
                             const core::DropIndex* index)
    : config_(std::move(config)), study_(study), index_(index) {}

std::string SnapshotStore::file_name(net::Date d) {
  net::Date::Ymd ymd = d.ymd();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d%02d%02d.dls", ymd.year, ymd.month,
                ymd.day);
  return buf;
}

std::string SnapshotStore::path_for(net::Date d) const {
  return (fs::path(config_.dir) / file_name(d)).string();
}

std::shared_ptr<const Snapshot> SnapshotStore::get(net::Date d) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = resident_.find(d);
  if (it != resident_.end()) {
    ++stats_.resident_hits;
    it->second.last_used = ++clock_;
    return it->second.snap;
  }
  std::shared_ptr<const Snapshot> snap = materialize(d);
  if (snap) {
    resident_[d] = Entry{snap, ++clock_};
    evict_over_capacity();
  }
  return snap;
}

std::shared_ptr<const Snapshot> SnapshotStore::materialize(net::Date d) {
  const bool can_compile = study_ != nullptr && index_ != nullptr;
  if (!config_.dir.empty()) {
    std::string path = path_for(d);
    std::error_code ec;
    if (fs::exists(path, ec)) {
      try {
        auto snap = load_snapshot(path, next_version_ + 1);
        ++next_version_;
        ++stats_.loads;
        return snap;
      } catch (const SnapshotFormatError&) {
        // A damaged file is not fatal when we can rebuild its content; the
        // re-save below replaces it. Without a compiler the caller must
        // hear about the corruption.
        ++stats_.load_failures;
        obs::counter("droplens_svc_snapshot_load_failures_total", {},
                     "Snapshot files rejected by the loader")
            .inc();
        if (!can_compile) throw;
      }
    }
  }
  if (!can_compile) return nullptr;
  auto snap = compile_snapshot(*study_, *index_, d, next_version_ + 1);
  ++next_version_;
  ++stats_.compiles;
  if (config_.save_compiled && !config_.dir.empty()) {
    std::error_code ec;
    fs::create_directories(config_.dir, ec);
    save_snapshot(*snap, path_for(d));
    ++stats_.saves;
  }
  return snap;
}

void SnapshotStore::evict_over_capacity() {
  if (config_.max_resident == 0) return;
  while (resident_.size() > config_.max_resident) {
    auto victim = resident_.begin();
    for (auto it = resident_.begin(); it != resident_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    resident_.erase(victim);
    ++stats_.evictions;
  }
}

void SnapshotStore::rescan() {
  std::lock_guard<std::mutex> lock(mu_);
  resident_.clear();
}

std::vector<net::Date> SnapshotStore::on_disk() const {
  std::vector<net::Date> dates;
  if (config_.dir.empty()) return dates;
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(config_.dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.size() != 12 || name.substr(8) != ".dls") continue;
    try {
      dates.push_back(net::Date::parse(name.substr(0, 8)));
    } catch (const ParseError&) {
      continue;
    }
  }
  std::sort(dates.begin(), dates.end());
  return dates;
}

SnapshotStore::Stats SnapshotStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t SnapshotStore::resident_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_.size();
}

}  // namespace droplens::svc
