#include "svc/snapshot_store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <system_error>

#include "core/drop_index.hpp"
#include "core/study.hpp"
#include "obs/metrics.hpp"
#include "svc/snapshot_io.hpp"
#include "util/error.hpp"

namespace droplens::svc {

namespace fs = std::filesystem;

std::optional<SnapshotStore::FileStamp> SnapshotStore::stat_stamp(
    const std::string& path) {
  std::error_code ec;
  uint64_t size = fs::file_size(path, ec);
  if (ec) return std::nullopt;
  fs::file_time_type mtime = fs::last_write_time(path, ec);
  if (ec) return std::nullopt;
  return FileStamp{size, mtime.time_since_epoch().count()};
}

SnapshotStore::SnapshotStore(Config config, const core::Study* study,
                             const core::DropIndex* index)
    : config_(std::move(config)), study_(study), index_(index) {
  resident_days_ =
      obs::gauge("droplens_store_resident_days", {},
                 "Days currently resident (mapped, patched, or compiled) in "
                 "the snapshot store");
}

std::string SnapshotStore::file_name(net::Date d) {
  net::Date::Ymd ymd = d.ymd();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d%02d%02d.dls", ymd.year, ymd.month,
                ymd.day);
  return buf;
}

std::string SnapshotStore::path_for(net::Date d) const {
  return (fs::path(config_.dir) / file_name(d)).string();
}

std::shared_ptr<const Snapshot> SnapshotStore::get(net::Date d) {
  return get_internal(d, 0);
}

std::shared_ptr<const Snapshot> SnapshotStore::get_internal(net::Date d,
                                                            int depth) {
  for (;;) {
    std::shared_ptr<Slot> slot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      std::shared_ptr<Slot>& registered = resident_[d];
      if (!registered) {
        registered = std::make_shared<Slot>();
        update_resident_gauge();
      }
      slot = registered;
      slot->last_used = ++clock_;
      if (slot->ready.load(std::memory_order_acquire)) {
        ++stats_.resident_hits;
        return slot->snap;
      }
    }
    // Miss or in-flight: serialize materialization of this date only. The
    // registry lock is NOT held here, so other dates stay fully servable
    // while this one mmaps, patches, or compiles.
    std::unique_lock<std::mutex> latch(slot->latch);
    if (slot->ready.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.resident_hits;  // another thread finished while we waited
      return slot->snap;
    }
    {
      // A failed materializer may have dropped the slot while we waited on
      // its latch; restart so the result lands in a registered slot.
      std::lock_guard<std::mutex> lock(mu_);
      auto it = resident_.find(d);
      if (it == resident_.end() || it->second != slot) continue;
    }
    if (materialize_hook_) materialize_hook_(d);
    std::shared_ptr<const Snapshot> snap;
    try {
      snap = materialize(d, *slot, depth);
    } catch (...) {
      forget(d, slot);
      throw;
    }
    if (!snap) {
      forget(d, slot);
      return nullptr;
    }
    slot->snap = snap;
    slot->ready.store(true, std::memory_order_release);
    latch.unlock();
    {
      std::lock_guard<std::mutex> lock(mu_);
      evict_over_capacity();
    }
    return snap;
  }
}

std::shared_ptr<const Snapshot> SnapshotStore::materialize(net::Date d,
                                                           Slot& slot,
                                                           int depth) {
  const bool can_compile = study_ != nullptr && index_ != nullptr;
  if (!config_.dir.empty()) {
    std::string path = path_for(d);
    std::error_code ec;
    if (fs::exists(path, ec)) {
      try {
        // Stamp before reading: a file replaced mid-load records the OLD
        // identity, so the next rescan sees a mismatch and drops the day —
        // stale residency is impossible, re-reads are merely wasted.
        std::optional<FileStamp> stamp = stat_stamp(path);
        std::shared_ptr<const Snapshot> snap;
        if (snapshot_file_kind(path) == SnapshotFileKind::kDelta) {
          if (depth >= kMaxDeltaChain) {
            throw SnapshotFormatError(
                SnapshotIoError::kBadInvariant,
                "snapshot_store: delta chain deeper than " +
                    std::to_string(kMaxDeltaChain));
          }
          SnapshotDeltaHeader h = read_snapshot_delta_header(path);
          // Resolve the base through the store itself: bases land in the
          // LRU (hot chains resolve once) and their latches nest in
          // strictly decreasing date order (h.base < d, loader-validated).
          std::shared_ptr<const Snapshot> base =
              get_internal(net::Date(h.base_date_days), depth + 1);
          if (!base) {
            throw SnapshotFormatError(
                SnapshotIoError::kIo,
                "snapshot_store: delta base " +
                    net::Date(h.base_date_days).to_string() +
                    " is unavailable");
          }
          snap = load_snapshot_delta(path, *base, next_version());
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.delta_loads;
        } else {
          snap = load_snapshot(path, next_version());
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.loads;
        }
        if (stamp) {
          slot.has_stamp = true;
          slot.stamp = *stamp;
        }
        return snap;
      } catch (const SnapshotFormatError&) {
        // A damaged file — or a delta whose chain is broken — is not fatal
        // when we can rebuild its content; the re-save below replaces it
        // with a keyframe. Without a compiler the caller must hear about
        // the corruption.
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.load_failures;
        }
        obs::counter("droplens_svc_snapshot_load_failures_total", {},
                     "Snapshot files rejected by the loader")
            .inc();
        if (!can_compile) throw;
      }
    }
  }
  if (!can_compile) return nullptr;
  if (d < study_->window_begin || d > study_->window_end) {
    // Dates are client-supplied wire input once a Server fronts the store;
    // compiling (and write-through saving) whatever a peer asks for would
    // let one client fill the LRU and the disk. Files an operator placed in
    // the directory are served regardless of the window, above.
    return nullptr;
  }
  auto snap = compile_snapshot(*study_, *index_, d, next_version());
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.compiles;
  }
  if (config_.save_compiled && !config_.dir.empty()) {
    std::error_code ec;
    fs::create_directories(config_.dir, ec);
    std::string path = path_for(d);
    save_snapshot(*snap, path);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.saves;
    }
    if (std::optional<FileStamp> stamp = stat_stamp(path)) {
      slot.has_stamp = true;
      slot.stamp = *stamp;
    }
  }
  return snap;
}

void SnapshotStore::forget(net::Date d, const std::shared_ptr<Slot>& slot) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = resident_.find(d);
  if (it != resident_.end() && it->second == slot) {
    resident_.erase(it);
    update_resident_gauge();
  }
}

void SnapshotStore::evict_over_capacity() {
  if (config_.max_resident == 0) return;
  for (;;) {
    // Only ready slots count against capacity or are eligible as victims;
    // an in-flight slot's materializer still expects to publish into it.
    size_t ready_count = 0;
    auto victim = resident_.end();
    for (auto it = resident_.begin(); it != resident_.end(); ++it) {
      if (!it->second->ready.load(std::memory_order_acquire)) continue;
      ++ready_count;
      if (victim == resident_.end() ||
          it->second->last_used < victim->second->last_used) {
        victim = it;
      }
    }
    if (ready_count <= config_.max_resident || victim == resident_.end()) {
      return;
    }
    resident_.erase(victim);
    ++stats_.evictions;
    update_resident_gauge();
  }
}

void SnapshotStore::rescan() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = resident_.begin(); it != resident_.end();) {
    const Slot& slot = *it->second;
    if (!slot.ready.load(std::memory_order_acquire)) {
      // In-flight: its materializer stamped the file before reading it, so
      // whatever it produces is already consistent with this rescan.
      ++it;
      continue;
    }
    bool keep = false;
    if (!config_.dir.empty() && slot.has_stamp) {
      std::optional<FileStamp> now = stat_stamp(path_for(it->first));
      keep = now && now->size == slot.stamp.size &&
             now->mtime == slot.stamp.mtime;
    }
    it = keep ? std::next(it) : resident_.erase(it);
  }
  update_resident_gauge();
}

std::vector<net::Date> SnapshotStore::on_disk() const {
  std::vector<net::Date> dates;
  if (config_.dir.empty()) return dates;
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(config_.dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.size() != 12 || name.substr(8) != ".dls") continue;
    try {
      dates.push_back(net::Date::parse(name.substr(0, 8)));
    } catch (const ParseError&) {
      continue;
    }
  }
  std::sort(dates.begin(), dates.end());
  return dates;
}

SnapshotStore::Stats SnapshotStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t SnapshotStore::resident_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_.size();
}

}  // namespace droplens::svc
