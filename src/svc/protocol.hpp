// Wire protocol of the prefix-intelligence query service.
//
// Length-prefixed binary frames, little-endian integers throughout:
//
//   frame   := 'D' 'L' version:u8 type:u8 payload_len:u32 payload
//   query request payload  := count:u16 count * { date:u32 network:u32
//                             plen:u8 fields:u8 }                (10 B each)
//   query response payload := snapshot_version:u64 date:u32 degraded:u8
//                             count:u16 count * answer           (8 B each)
//   answer  := status:u8 fields:u8 flags:u8 categories:u8 bucket:u8
//              rov:u8 rir_status:u8 rir:u8
//   stats request payload  := (empty)
//   stats response payload := requests:u64 queries:u64 malformed:u64
//                             reloads:u64 snapshot_version:u64
//                             7 * field_lookups:u64
//                             bucket_count:u16 bucket_count * u64
//   metrics request payload  := (empty)
//   metrics response payload := Prometheus text exposition bytes
//   error payload          := message bytes (<= 256)
//   range request payload  := date_begin:u32 date_end:u32 network:u32
//                             plen:u8 fields:u8                  (14 B)
//   range response payload := network:u32 plen:u8 fields:u8 run_count:u16
//                             run_count * { start_date:u32 days:u32
//                             degraded:u8 answer }               (17 B each)
//   subscribe request payload := from_seq:u64 max_events:u32     (12 B)
//   delta response payload    := streaming delta (see stream/wire.hpp; svc
//                                carries these two payloads opaquely)
//
// A query batch may mix dates: each query record carries its own date:u32
// and a store-backed server resolves every distinct date in the frame. The
// response header's date/version/degraded describe the first query's date;
// per-answer status says kOk, kWrongDate (single-snapshot server, other
// date) or kUnavailable (store could not materialize that date).
//
// The range op asks one prefix's status across an inclusive date window
// [date_begin, date_end] (at most kMaxRangeDays days) and answers with
// run-length-encoded transitions: consecutive days whose answer bytes and
// degradation bits are identical collapse into one run. Runs are contiguous
// and ascending — run[i+1].start_date == run[i].start_date + run[i].days —
// and cover the window exactly; decoders reject anything else. Days the
// store cannot serve appear as runs whose answer status is kUnavailable.
//
// The stats counters are monotonic but mutually unsynchronized: each is a
// relaxed atomic read at one point in time, so `queries` may momentarily
// run ahead of the latency-bucket total while frames are in flight. Totals
// never decrease; exact cross-counter consistency is not promised.
//
// Responses carry the snapshot version so clients detect reloads mid-batch.
// Decoding is strictly bounds-checked: declared counts are validated against
// the bytes actually present before anything is allocated, and payload
// length is capped — a malformed or hostile frame costs a ParseError, never
// an over-allocation or a crash (same discipline as bgp::read_mrtl).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/date.hpp"
#include "net/prefix.hpp"
#include "svc/snapshot.hpp"

namespace droplens::svc {

inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kHeaderSize = 8;
inline constexpr size_t kMaxPayload = size_t{1} << 20;
/// Queries per frame; bounds the per-frame work a client can demand.
inline constexpr size_t kMaxBatch = 4096;
/// Days per range query; bounds the per-frame work like kMaxBatch does for
/// batches (a paper-scale window is ~1000 days, well inside).
inline constexpr size_t kMaxRangeDays = 4096;

enum class FrameType : uint8_t {
  kQueryRequest = 1,
  kQueryResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  kError = 5,
  // Added after the stats op (PR 3); old clients never send them and old
  // frames decode exactly as before, so the protocol stays byte-compatible.
  kMetricsRequest = 6,
  kMetricsResponse = 7,
  // Appended numbering (PR 6), same compatibility rule: the range op asks
  // one prefix across a date window and gets RLE-compressed transitions.
  kRangeRequest = 8,
  kRangeResponse = 9,
  // Live-follow ops (same compatibility rule). The payloads are defined by
  // the streaming layer (stream/wire.hpp); svc carries them opaquely so the
  // service library stays independent of stream. A server without a stream
  // feed attached answers kSubscribeRequest with kError.
  kSubscribeRequest = 10,
  kDeltaResponse = 11,
};

enum class QueryStatus : uint8_t {
  kOk = 0,
  kWrongDate = 1,    // single-snapshot server serves a different date
  kUnavailable = 2,  // store could not materialize the requested date
};

struct Query {
  net::Date date;
  net::Prefix prefix;
  uint8_t fields = kAllFields;

  friend bool operator==(const Query&, const Query&) = default;
};

struct QueryResponse {
  uint64_t snapshot_version = 0;
  net::Date date;
  uint8_t degraded = 0;  // core::Feed degradation bits of the snapshot
  std::vector<Answer> answers;

  friend bool operator==(const QueryResponse&, const QueryResponse&) = default;
};

/// One prefix across an inclusive date window — the range op's request.
struct RangeQuery {
  net::Date begin;
  net::Date end;  // inclusive; end - begin + 1 <= kMaxRangeDays
  net::Prefix prefix;
  uint8_t fields = kAllFields;

  friend bool operator==(const RangeQuery&, const RangeQuery&) = default;
};

/// A maximal run of consecutive days with one identical answer.
struct RangeRun {
  net::Date start;
  uint32_t days = 1;
  uint8_t degraded = 0;  // the run's snapshot degradation bits
  Answer answer;

  friend bool operator==(const RangeRun&, const RangeRun&) = default;
};

struct RangeResponse {
  net::Prefix prefix;
  uint8_t fields = kAllFields;
  /// Contiguous, ascending, covering the queried window exactly.
  std::vector<RangeRun> runs;

  friend bool operator==(const RangeResponse&, const RangeResponse&) = default;
};

/// Observability counters, as served by the `!stats`-style protocol op.
struct ServerStats {
  uint64_t requests = 0;   // frames handled (any type)
  uint64_t queries = 0;    // individual prefix lookups
  uint64_t malformed = 0;  // frames rejected by the decoder
  uint64_t reloads = 0;    // snapshots published after the first
  uint64_t snapshot_version = 0;
  std::array<uint64_t, kFieldCount> field_lookups{};
  /// Frame service times: bucket i counts frames in [2^i, 2^(i+1)) ns.
  std::vector<uint64_t> latency_ns_buckets;

  friend bool operator==(const ServerStats&, const ServerStats&) = default;
};

struct FrameHeader {
  uint8_t protocol = 0;
  FrameType type = FrameType::kError;
  uint32_t payload_len = 0;
};

/// Size in bytes of the complete frame at the head of `buffer`, or 0 when
/// more data is needed. Throws ParseError when the head cannot be a frame
/// (bad magic/version, or a declared payload beyond kMaxPayload).
size_t frame_size(std::string_view buffer);

/// Decode and validate a complete frame's header. Throws ParseError.
FrameHeader decode_header(std::string_view frame);

/// The payload slice of a complete frame (header already validated).
std::string_view frame_payload(std::string_view frame);

std::string encode_query_request(const std::vector<Query>& queries);
/// Throws ParseError on count/byte mismatch or an invalid prefix length.
std::vector<Query> decode_query_request(std::string_view payload);

std::string encode_query_response(const QueryResponse& response);
QueryResponse decode_query_response(std::string_view payload);

std::string encode_range_request(const RangeQuery& query);
/// Throws ParseError on a bad prefix length, an inverted window, or a span
/// beyond kMaxRangeDays.
RangeQuery decode_range_request(std::string_view payload);

std::string encode_range_response(const RangeResponse& response);
/// Validates the runs' contiguity/coverage contract. Throws ParseError.
RangeResponse decode_range_response(std::string_view payload);

std::string encode_stats_request();
std::string encode_stats_response(const ServerStats& stats);
ServerStats decode_stats_response(std::string_view payload);

/// The read-only metrics op: the response payload is the server registry's
/// Prometheus text page (truncated at kMaxPayload, which a sane registry
/// never approaches).
std::string encode_metrics_request();
std::string encode_metrics_response(std::string_view text);
std::string decode_metrics_response(std::string_view payload);

std::string encode_error(std::string_view message);
std::string decode_error(std::string_view payload);

/// Wrap an arbitrary payload in a frame of the given type — the hook the
/// streaming layer uses for its subscribe/delta payloads (whose codecs live
/// in stream/wire.hpp, outside this library). Payloads beyond kMaxPayload
/// throw InvariantError.
std::string encode_frame(FrameType type, std::string_view payload);

}  // namespace droplens::svc
