#include "svc/whois_service.hpp"

#include <cstdint>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace droplens::svc {

size_t WhoisService::message_size(std::string_view buffer) const {
  size_t newline = buffer.find('\n');
  if (newline == std::string_view::npos) {
    if (buffer.size() >= kMaxLine) throw ParseError("whois: line too long");
    return 0;
  }
  if (newline + 1 > kMaxLine) throw ParseError("whois: line too long");
  return newline + 1;
}

std::string WhoisService::serve(std::string_view message) {
  // Strip the newline terminator (and a CR from telnet-style clients);
  // WhoisServer::handle wants the bare query.
  if (!message.empty() && message.back() == '\n') message.remove_suffix(1);
  if (!message.empty() && message.back() == '\r') message.remove_suffix(1);
  return server_.handle(message);
}

std::string WhoisService::malformed_response(std::string_view /*head*/) {
  return "F line too long\n";
}

std::string WhoisService::overload_response(std::string_view /*message*/) {
  return "F overloaded\n";
}

std::string WhoisService::timeout_response() {
  return "F deadline exceeded\n";
}

size_t whois_response_size(std::string_view buffer) {
  if (buffer.empty()) return 0;
  switch (buffer.front()) {
    case 'C':
    case 'D': {
      if (buffer.size() < 2) return 0;
      if (buffer[1] != '\n') throw ParseError("whois: bad response framing");
      return 2;
    }
    case 'F': {
      size_t newline = buffer.find('\n');
      return newline == std::string_view::npos ? 0 : newline + 1;
    }
    case 'A': {
      // "A<len>\n" + len payload bytes + "C\n"
      size_t newline = buffer.find('\n');
      if (newline == std::string_view::npos) return 0;
      if (newline == 1) throw ParseError("whois: bad A response length");
      uint64_t len;
      try {
        len = util::parse_u64(buffer.substr(1, newline - 1));
      } catch (const ParseError&) {
        throw ParseError("whois: bad A response length");
      }
      size_t total = newline + 1 + static_cast<size_t>(len) + 2;
      if (buffer.size() < total) return 0;
      if (buffer[total - 2] != 'C' || buffer[total - 1] != '\n') {
        throw ParseError("whois: bad response framing");
      }
      return total;
    }
    default:
      throw ParseError("whois: bad response framing");
  }
}

}  // namespace droplens::svc
