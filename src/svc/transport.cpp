#include "svc/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "util/error.hpp"

namespace droplens::svc {

namespace {

constexpr size_t kReadChunk = 64 * 1024;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("svc transport: " + what + ": " +
                           std::strerror(errno));
}

// Retries short writes and EINTR; MSG_NOSIGNAL keeps a dead peer from
// raising SIGPIPE. Returns false when the peer is gone.
bool write_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

uint64_t steady_ms() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Arms SO_RCVTIMEO so the next blocking read returns EAGAIN after
// `remaining_ms` (0 disables the timeout). Rounded up so a nonzero
// remaining never becomes "wait forever".
void set_read_timeout(int fd, uint64_t remaining_ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(remaining_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((remaining_ms % 1000) * 1000);
  if (remaining_ms != 0 && tv.tv_sec == 0 && tv.tv_usec == 0) {
    tv.tv_usec = 1000;
  }
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

const char* kReasonNames[kDisconnectReasonCount] = {
    "peer_closed",    "malformed",      "idle_timeout",
    "read_deadline",  "write_deadline", "write_overflow",
    "shed",           "server_stop",    "error",
};

const char* kClassNames[kMessageClassCount] = {"bulk", "normal", "control"};

obs::Labels with_listener(const char* transport, const std::string& name,
                          std::initializer_list<std::pair<const char*,
                                                          const char*>>
                              extra = {}) {
  obs::Labels labels{{"transport", transport}};
  if (!name.empty()) labels.emplace_back("listener", name);
  for (const auto& [k, v] : extra) labels.emplace_back(k, v);
  return labels;
}

}  // namespace

const char* disconnect_reason_name(DisconnectReason r) {
  return kReasonNames[static_cast<size_t>(r)];
}

TraceBinding::TraceBinding(const std::string& name) {
  recorder = obs::installed_flight_recorder();
  if (recorder) {
    op = recorder->op_class(name.empty() ? "server" : name);
  }
}

TransportCounters::TransportCounters(const char* transport,
                                     const std::string& name) {
  accepted_c_ = obs::counter("droplens_transport_accepted_total",
                             with_listener(transport, name),
                             "Connections accepted over the lifetime");
  overload_rejected_c_ =
      obs::counter("droplens_transport_overload_rejects_total",
                   with_listener(transport, name),
                   "Accepts refused at the connection cap");
  accept_errors_c_ = obs::counter("droplens_transport_accept_errors_total",
                                  with_listener(transport, name),
                                  "Transient accept() failures survived");
  open_g_ = obs::gauge("droplens_transport_open_connections",
                       with_listener(transport, name),
                       "Currently open connections");
  buffered_bytes_g_ = obs::gauge("droplens_transport_buffered_bytes",
                                 with_listener(transport, name),
                                 "Response bytes queued for slow readers");
  inflight_g_ = obs::gauge(
      "droplens_transport_inflight", with_listener(transport, name),
      "Messages being served plus responses not yet flushed");
  for (size_t i = 0; i < kMessageClassCount; ++i) {
    shed_c_[i] = obs::counter(
        "droplens_transport_shed_total",
        with_listener(transport, name, {{"class", kClassNames[i]}}),
        "Messages refused under overload, by priority class");
  }
  for (size_t i = 0; i < kDisconnectReasonCount; ++i) {
    disconnects_c_[i] = obs::counter(
        "droplens_transport_disconnects_total",
        with_listener(transport, name, {{"reason", kReasonNames[i]}}),
        "Connections closed, by reason");
  }
}

bool TransportCounters::try_accept(size_t max_conns) {
  // Reserve-then-check keeps the cap strict even when several event threads
  // race through accept at once.
  uint64_t now_open = open_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (max_conns != 0 && now_open > max_conns) {
    open_.fetch_sub(1, std::memory_order_relaxed);
    overload_rejected_.fetch_add(1, std::memory_order_relaxed);
    overload_rejected_c_.inc();
    return false;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  accepted_c_.inc();
  open_g_.set(static_cast<int64_t>(now_open));
  return true;
}

void TransportCounters::on_close(DisconnectReason r) {
  uint64_t now_open = open_.fetch_sub(1, std::memory_order_relaxed) - 1;
  open_g_.set(static_cast<int64_t>(now_open));
  disconnects_[static_cast<size_t>(r)].fetch_add(1, std::memory_order_relaxed);
  disconnects_c_[static_cast<size_t>(r)].inc();
}

TransportStats TransportCounters::snapshot() const {
  TransportStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.overload_rejected = overload_rejected_.load(std::memory_order_relaxed);
  s.accept_errors = accept_errors_.load(std::memory_order_relaxed);
  s.open = open_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kMessageClassCount; ++i) {
    s.shed[i] = shed_[i].load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < kDisconnectReasonCount; ++i) {
    s.disconnects[i] = disconnects_[i].load(std::memory_order_relaxed);
  }
  return s;
}

AcceptAction accept_errno_action(int err) {
  switch (err) {
    case EINTR:
    case ECONNABORTED:  // peer gave up during the handshake
    case EPROTO:
      return AcceptAction::kRetry;
    case EAGAIN:  // nonblocking listener drained (also EWOULDBLOCK)
      return AcceptAction::kRetry;
    case EMFILE:  // fd exhaustion: retrying instantly would spin; back off
    case ENFILE:
    case ENOBUFS:
    case ENOMEM:
      return AcceptAction::kRetryBackoff;
    default:
      // EBADF / EINVAL / ENOTSOCK: the listening socket itself is gone.
      return AcceptAction::kFatal;
  }
}

Listener open_listener(const ListenerOptions& options, bool nonblocking) {
  Listener l;
  l.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (l.fd < 0) fail("socket");
  int saved = 0;
  try {
    int one = 1;
    if (::setsockopt(l.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
      fail("setsockopt(SO_REUSEADDR)");
    }
    if (nonblocking) {
      int flags = ::fcntl(l.fd, F_GETFL, 0);
      if (flags < 0 || ::fcntl(l.fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        fail("fcntl(O_NONBLOCK)");
      }
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options.port);
    if (::bind(l.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      fail("bind");
    }
    if (::listen(l.fd, options.backlog) < 0) fail("listen");
    socklen_t len = sizeof(addr);
    if (::getsockname(l.fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
      fail("getsockname");
    }
    l.port = ntohs(addr.sin_port);
  } catch (...) {
    saved = errno;
    ::close(l.fd);
    errno = saved;
    throw;
  }
  return l;
}

namespace {
TransportOptions legacy_options(uint16_t port) {
  TransportOptions o;
  o.listen.port = port;
  return o;
}
}  // namespace

TcpServer::TcpServer(Service& service, uint16_t port)
    : TcpServer(service, legacy_options(port)) {}

TcpServer::TcpServer(Service& service, const TransportOptions& options)
    : service_(service),
      options_(options),
      counters_("threads", options.name),
      trace_(options.name) {
  Listener l = open_listener(options_.listen, /*nonblocking=*/false);
  listen_fd_ = l.fd;
  port_ = l.port;
  acceptor_ = std::thread([this] { accept_loop(); });
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Already stopping/stopped; still join in case of a racing caller.
    if (acceptor_.joinable()) acceptor_.join();
  } else {
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (acceptor_.joinable()) acceptor_.join();
    ::close(listen_fd_);
  }
  std::vector<std::unique_ptr<ConnectionSlot>> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connections_);
    for (auto& slot : connections) {
      if (slot->fd >= 0) ::shutdown(slot->fd, SHUT_RDWR);
    }
  }
  for (auto& slot : connections) {
    if (slot->thread.joinable()) slot->thread.join();
  }
}

void TcpServer::reap_finished_locked() {
  for (size_t i = 0; i < connections_.size();) {
    if (connections_[i]->done.load(std::memory_order_acquire)) {
      if (connections_[i]->thread.joinable()) connections_[i]->thread.join();
      connections_[i] = std::move(connections_.back());
      connections_.pop_back();
    } else {
      ++i;
    }
  }
}

void TcpServer::accept_loop() {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // Transient failures must not kill the acceptor: a single EMFILE
      // burst used to end the loop permanently, leaving a healthy daemon
      // that silently never answered again. Only a shut-down listening
      // socket (stop(), or a fatal errno) ends the loop.
      if (stopping_.load()) break;
      switch (accept_errno_action(errno)) {
        case AcceptAction::kRetry:
          counters_.on_accept_error();
          continue;
        case AcceptAction::kRetryBackoff:
          counters_.on_accept_error();
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          continue;
        case AcceptAction::kFatal:
          return;
      }
      continue;
    }
    if (!counters_.try_accept(options_.max_conns)) {
      // Over the cap: a typed overload reply when the protocol has one,
      // then an immediate close — never an unbounded thread.
      std::string reply = service_.overload_response({});
      if (!reply.empty()) write_all(fd, reply);
      ::close(fd);
      continue;
    }
    if (options_.so_sndbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                   sizeof(options_.so_sndbuf));
    }
    std::lock_guard<std::mutex> lock(mu_);
    reap_finished_locked();
    auto slot = std::make_unique<ConnectionSlot>();
    slot->fd = fd;
    // Raw pointer stays valid across vector moves/swaps (unique_ptr slot);
    // the slot is only destroyed after its thread is joined.
    ConnectionSlot* raw = slot.get();
    connections_.push_back(std::move(slot));
    raw->thread = std::thread([this, raw] {
      connection_loop(raw);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void TcpServer::close_slot(ConnectionSlot* slot, DisconnectReason reason) {
  counters_.on_close(reason);
  // Mark closed under the lock so stop() never shutdown()s a recycled fd.
  std::lock_guard<std::mutex> lock(mu_);
  ::close(slot->fd);
  slot->fd = -1;
}

void TcpServer::connection_loop(ConnectionSlot* slot) {
  const int fd = slot->fd;
  std::string buffer;
  char chunk[kReadChunk];
  uint64_t last_activity = steady_ms();
  uint64_t partial_since = 0;  // 0 = no incomplete message pending
  DisconnectReason reason = DisconnectReason::kPeerClosed;
  // One trace per request. The first trace on a connection starts at
  // accept; later ones start when their first bytes arrive. An armed trace
  // left at close is submitted as "abandoned" by its destructor.
  obs::SpanContext trace = trace_.begin();
  trace.stage("accept");
  bool trace_reading = false;
  while (true) {
    // Drain every complete message already buffered before reading more.
    bool closed = false;
    while (true) {
      size_t n;
      try {
        n = service_.message_size(buffer);
      } catch (const ParseError&) {
        write_all(fd, service_.malformed_response(buffer));
        trace.finish("malformed");
        reason = DisconnectReason::kMalformed;
        closed = true;
        break;
      }
      if (n == 0) break;
      partial_since = 0;
      if (!trace) trace = trace_.begin();
      trace_reading = false;
      trace.stage("serve");
      std::string response =
          service_.serve(std::string_view(buffer).substr(0, n), trace);
      buffer.erase(0, n);
      trace.stage("flush");
      if (!write_all(fd, response)) {
        trace.finish("error");
        reason = DisconnectReason::kPeerClosed;
        closed = true;
        break;
      }
      trace.finish("ok");
    }
    if (closed) break;
    if (!buffer.empty() && partial_since == 0) partial_since = steady_ms();

    // Blocking-read deadline enforcement rides SO_RCVTIMEO: the next read
    // wakes no later than the earliest applicable deadline, and a timeout
    // gets a typed reply before the close (the anti-slowloris path — a
    // byte-at-a-time client is bounded by read_deadline_ms no matter how
    // steadily it drips).
    uint64_t wait_ms = 0;  // 0 = block forever
    DisconnectReason timeout_reason = DisconnectReason::kIdleTimeout;
    const uint64_t now = steady_ms();
    if (partial_since != 0 && options_.read_deadline_ms != 0) {
      uint64_t deadline = partial_since + options_.read_deadline_ms;
      wait_ms = deadline > now ? deadline - now : 1;
      timeout_reason = DisconnectReason::kReadDeadline;
    } else if (options_.idle_timeout_ms != 0) {
      uint64_t deadline = last_activity + options_.idle_timeout_ms;
      wait_ms = deadline > now ? deadline - now : 1;
      timeout_reason = DisconnectReason::kIdleTimeout;
    }
    set_read_timeout(fd, wait_ms);

    ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got < 0 && errno == EINTR) continue;
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
        wait_ms != 0) {
      // Deadline may have been shortened by SO_RCVTIMEO rounding; re-check.
      const uint64_t after = steady_ms();
      const uint64_t deadline =
          timeout_reason == DisconnectReason::kReadDeadline
              ? partial_since + options_.read_deadline_ms
              : last_activity + options_.idle_timeout_ms;
      if (after < deadline) continue;
      std::string reply = service_.timeout_response();
      if (!reply.empty()) write_all(fd, reply);
      trace.finish("timeout");
      reason = timeout_reason;
      break;
    }
    if (got <= 0) {
      reason = got < 0 ? DisconnectReason::kError
                       : DisconnectReason::kPeerClosed;
      break;
    }
    buffer.append(chunk, static_cast<size_t>(got));
    if (!trace) trace = trace_.begin();
    if (trace && !trace_reading) {
      trace.stage("read");
      trace_reading = true;
    }
    last_activity = steady_ms();
  }
  close_slot(slot, stopping_.load() ? DisconnectReason::kServerStop : reason);
}

TcpClientConnection::TcpClientConnection(const std::string& host,
                                         uint16_t port, Framer framer)
    : framer_(std::move(framer)) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("svc transport: bad address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int saved = errno;
    ::close(fd_);
    errno = saved;
    fail("connect");
  }
}

TcpClientConnection::~TcpClientConnection() {
  if (fd_ >= 0) ::close(fd_);
}

std::string TcpClientConnection::roundtrip(std::string_view message) {
  if (!write_all(fd_, message)) fail("send");
  char chunk[kReadChunk];
  while (true) {
    size_t n = framer_(buffer_);  // ParseError here means a broken server
    if (n > 0) {
      std::string response = buffer_.substr(0, n);
      buffer_.erase(0, n);
      return response;
    }
    ssize_t got = ::read(fd_, chunk, sizeof(chunk));
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) {
      throw std::runtime_error("svc transport: connection closed mid-response");
    }
    buffer_.append(chunk, static_cast<size_t>(got));
  }
}

}  // namespace droplens::svc
