#include "svc/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/error.hpp"

namespace droplens::svc {

namespace {

constexpr size_t kReadChunk = 64 * 1024;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("svc transport: " + what + ": " +
                           std::strerror(errno));
}

// Retries short writes and EINTR; MSG_NOSIGNAL keeps a dead peer from
// raising SIGPIPE. Returns false when the peer is gone.
bool write_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(Service& service, uint16_t port) : service_(service) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) fail("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    fail("bind");
  }
  if (::listen(listen_fd_, 64) < 0) {
    int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    fail("listen");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  acceptor_ = std::thread([this] { accept_loop(); });
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Already stopping/stopped; still join in case of a racing caller.
    if (acceptor_.joinable()) acceptor_.join();
  } else {
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (acceptor_.joinable()) acceptor_.join();
    ::close(listen_fd_);
  }
  std::vector<std::unique_ptr<ConnectionSlot>> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connections_);
    for (auto& slot : connections) {
      if (slot->fd >= 0) ::shutdown(slot->fd, SHUT_RDWR);
    }
  }
  for (auto& slot : connections) {
    if (slot->thread.joinable()) slot->thread.join();
  }
}

void TcpServer::accept_loop() {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket shut down
    }
    accepted_.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu_);
    auto slot = std::make_unique<ConnectionSlot>();
    slot->fd = fd;
    // Raw pointer stays valid across vector moves/swaps (unique_ptr slot);
    // the slot is only destroyed after its thread is joined in stop().
    ConnectionSlot* raw = slot.get();
    connections_.push_back(std::move(slot));
    raw->thread = std::thread([this, raw] { connection_loop(raw); });
  }
}

void TcpServer::connection_loop(ConnectionSlot* slot) {
  const int fd = slot->fd;
  std::string buffer;
  char chunk[kReadChunk];
  while (true) {
    // Drain every complete message already buffered before reading more.
    bool closed = false;
    while (true) {
      size_t n;
      try {
        n = service_.message_size(buffer);
      } catch (const ParseError&) {
        write_all(fd, service_.malformed_response(buffer));
        closed = true;
        break;
      }
      if (n == 0) break;
      std::string response = service_.serve(std::string_view(buffer).substr(0, n));
      buffer.erase(0, n);
      if (!write_all(fd, response)) {
        closed = true;
        break;
      }
    }
    if (closed) break;
    ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;
    buffer.append(chunk, static_cast<size_t>(got));
  }
  // Mark closed under the lock so stop() never shutdown()s a recycled fd.
  std::lock_guard<std::mutex> lock(mu_);
  ::close(fd);
  slot->fd = -1;
}

TcpClientConnection::TcpClientConnection(const std::string& host,
                                         uint16_t port, Framer framer)
    : framer_(std::move(framer)) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("svc transport: bad address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int saved = errno;
    ::close(fd_);
    errno = saved;
    fail("connect");
  }
}

TcpClientConnection::~TcpClientConnection() {
  if (fd_ >= 0) ::close(fd_);
}

std::string TcpClientConnection::roundtrip(std::string_view message) {
  if (!write_all(fd_, message)) fail("send");
  char chunk[kReadChunk];
  while (true) {
    size_t n = framer_(buffer_);  // ParseError here means a broken server
    if (n > 0) {
      std::string response = buffer_.substr(0, n);
      buffer_.erase(0, n);
      return response;
    }
    ssize_t got = ::read(fd_, chunk, sizeof(chunk));
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) {
      throw std::runtime_error("svc transport: connection closed mid-response");
    }
    buffer_.append(chunk, static_cast<size_t>(got));
  }
}

}  // namespace droplens::svc
