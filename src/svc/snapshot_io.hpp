// On-disk persistence for svc::Snapshot — the mmap-able `.dls` format.
//
// A snapshot is already flat (sorted interval and segment arrays), so the
// file is exactly those arrays behind a fixed, checksummed header. All
// integers are little-endian; every segment offset is 8-byte aligned, so a
// page-aligned mmap base keeps every array properly aligned for its element
// type.
//
//   offset  field
//   ------  -------------------------------------------------------------
//   0       magic            "DLSNAP\r\n" (8 bytes; \r\n catches ASCII-mode
//                            transfer mangling, the PNG trick)
//   8       format_version   uint32, kSnapshotFormatVersion
//   12      header_crc32c    uint32 — CRC32C of the 208-byte header with
//                            this field zeroed
//   16      date_days        int32, net::Date::days()
//   20      degraded         uint8 per-feed degradation bits + 3 zero bytes
//   24      writer_version   uint64 — snapshot version at save time
//                            (informational: loaders assign their own, see
//                            SnapshotStore's monotonic counter)
//   32      file_length      uint64 — total file size, audited on load
//   40      segments[7]      SegmentDesc each: offset u64, length u64,
//                            crc32c u32, elem_size u32
//   208     payload          the seven arrays back to back, header order:
//                            routed/as0/irr/allocated  Interval[] (16 B)
//                            drop  Segment<DropInfo>[] (24 B)
//                            rov   Segment<uint8_t>[]  (24 B)
//                            rir   Segment<uint8_t>[]  (24 B)
//
// The writer is deterministic: equal snapshot contents produce identical
// bytes (struct padding is explicitly zeroed), for any thread count the
// compile ran with — so repeated saves are byte-stable and a file's CRC
// pins its content.
//
// The loader mmaps the file and validates everything before trusting any of
// it: magic, version, header CRC, exact layout accounting (each segment
// must start where the previous one ended and the last must end at EOF, so
// oversized declared lengths cannot over-allocate — the loader never
// allocates payload at all), per-segment CRC32C, structural invariants
// (sorted, disjoint, in-bounds arrays) and value ranges. Only then does it
// build a Snapshot whose IntervalSets / SegmentMaps are zero-copy views
// over the mapped arrays; the mapping lives exactly as long as the returned
// shared_ptr's control block. Every rejection is a typed
// SnapshotFormatError — hostile bytes must never crash the loader (see
// tests/test_snapshot_io.cpp, ctest label `persist`).
//
// Delta files (format_version 2) store day N as patches over a declared
// base day (normally N-1), so a whole study window costs a fraction of the
// all-keyframe size — consecutive days share almost all of their interval
// structure. Same magic, 216-byte header (adds base_date_days after the
// keyframe fields), same strict sequential segment accounting; each of the
// seven segments is now a byte stream (elem_size 1):
//
//   patch := new_count:u64 new_crc32c:u32 op_count:u32 op_count * op
//   op    := 0x00 base_start:u32 count:u32         copy base elements
//          | 0x01 count:u32 count * element bytes  literal new elements
//
// Ops replay left to right and must produce exactly new_count elements in
// the segment's canonical serialized encoding (the bytes serialize_snapshot
// would emit); new_crc32c pins the reconstruction end to end — applying a
// patch over the wrong base bytes fails the CRC before any invariant check.
// A version-1 loader rejects delta files cleanly with kBadVersion, so the
// formats coexist in one directory; keyframe loads stay zero-copy mmap
// while a delta load materializes owned arrays (base must be resolved
// first — SnapshotStore walks the base chain, snapshot_tool expands it).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "svc/snapshot.hpp"
#include "util/error.hpp"

namespace droplens::svc {

// The format commits to little-endian integers and to the host's in-memory
// array layouts (asserted below); a big-endian port needs a byte-swapping
// loader and a format_version bump.
static_assert(std::endian::native == std::endian::little,
              "the .dls snapshot format requires a little-endian host");

/// Why a snapshot file was rejected. Ordered by validation stage: each code
/// can only be reported once every earlier stage passed.
enum class SnapshotIoError : uint8_t {
  kIo,           // open/stat/mmap/write syscall failure
  kTruncated,    // shorter than the header, or than the declared length
  kBadMagic,
  kBadVersion,   // format version this build doesn't speak
  kBadHeaderCrc,
  kBadLayout,    // segment table inconsistent with the file's real shape
  kBadSegmentCrc,
  kBadInvariant, // payload arrays violate structural/value invariants
};

std::string_view to_string(SnapshotIoError code);

/// The loader's and writer's only exception type (beyond OOM).
class SnapshotFormatError : public ParseError {
 public:
  SnapshotFormatError(SnapshotIoError code, const std::string& what)
      : ParseError(what), code_(code) {}

  SnapshotIoError code() const { return code_; }

 private:
  SnapshotIoError code_;
};

namespace detail {

/// Narrowing guard for the format's u32 wire fields (patch-op indexes and
/// counts). IPv4 bounds keep every real segment array under 2^32 elements,
/// so the fields are wide enough — but a writer handed a violating array
/// must fail loudly here, never wrap silently into a valid-looking patch.
inline uint32_t checked_u32(uint64_t v, const char* what) {
  if (v > UINT32_MAX) {
    throw SnapshotFormatError(
        SnapshotIoError::kBadInvariant,
        std::string("svc: ") + what + " overflows a u32 wire field");
  }
  return static_cast<uint32_t>(v);
}

}  // namespace detail

inline constexpr char kSnapshotMagic[8] = {'D', 'L', 'S', 'N',
                                           'A', 'P', '\r', '\n'};
inline constexpr uint32_t kSnapshotFormatVersion = 1;
/// Delta files share the magic; the version field tells the kinds apart.
inline constexpr uint32_t kSnapshotDeltaFormatVersion = 2;
inline constexpr size_t kSnapshotSegmentCount = 7;

/// Names of the seven payload segments, in file order.
enum class SnapshotSegment : uint8_t {
  kRouted = 0,
  kAs0 = 1,
  kIrr = 2,
  kAllocated = 3,
  kDrop = 4,
  kRov = 5,
  kRir = 6,
};

std::string_view to_string(SnapshotSegment s);

struct SegmentDesc {
  uint64_t offset;     // from file start; 8-byte aligned
  uint64_t length;     // bytes; multiple of elem_size
  uint32_t crc32c;     // CRC32C of the segment's bytes
  uint32_t elem_size;  // bytes per element (16 or 24)

  uint64_t count() const { return elem_size ? length / elem_size : 0; }
};

struct SnapshotHeader {
  char magic[8];
  uint32_t format_version;
  uint32_t header_crc32c;
  int32_t date_days;
  uint8_t degraded;
  uint8_t reserved[3];  // zero; covered by header_crc32c
  uint64_t writer_version;
  uint64_t file_length;
  SegmentDesc segments[kSnapshotSegmentCount];
};

/// Header of a delta file: the keyframe fields plus the base day the
/// patches apply over. Segment descriptors describe the patch byte streams
/// (elem_size 1), not the reconstructed arrays.
struct SnapshotDeltaHeader {
  char magic[8];
  uint32_t format_version;  // kSnapshotDeltaFormatVersion
  uint32_t header_crc32c;   // CRC32C of this header with the field zeroed
  int32_t date_days;
  uint8_t degraded;
  uint8_t reserved[3];    // zero; covered by header_crc32c
  int32_t base_date_days;  // strictly earlier than date_days
  uint32_t reserved2;      // zero; covered by header_crc32c
  uint64_t writer_version;
  uint64_t file_length;
  SegmentDesc segments[kSnapshotSegmentCount];
};

// The golden-file test (tests/test_snapshot_io.cpp) pins these layout facts
// against checked-in bytes; the static_asserts pin them against the
// compiler. An accidental struct change fails here before it fails CI.
static_assert(sizeof(SegmentDesc) == 24);
static_assert(sizeof(SnapshotHeader) == 208);
static_assert(offsetof(SnapshotHeader, magic) == 0);
static_assert(offsetof(SnapshotHeader, format_version) == 8);
static_assert(offsetof(SnapshotHeader, header_crc32c) == 12);
static_assert(offsetof(SnapshotHeader, date_days) == 16);
static_assert(offsetof(SnapshotHeader, degraded) == 20);
static_assert(offsetof(SnapshotHeader, writer_version) == 24);
static_assert(offsetof(SnapshotHeader, file_length) == 32);
static_assert(offsetof(SnapshotHeader, segments) == 40);
static_assert(sizeof(SnapshotDeltaHeader) == 216);
static_assert(offsetof(SnapshotDeltaHeader, base_date_days) == 24);
static_assert(offsetof(SnapshotDeltaHeader, writer_version) == 32);
static_assert(offsetof(SnapshotDeltaHeader, file_length) == 40);
static_assert(offsetof(SnapshotDeltaHeader, segments) == 48);

/// Serialize `snap` to the `.dls` byte layout. Deterministic: equal
/// snapshot contents yield identical bytes.
std::string serialize_snapshot(const Snapshot& snap);

/// serialize_snapshot + atomic file replace (write to `path`.tmp, rename).
/// Throws SnapshotFormatError(kIo) on any filesystem failure.
void save_snapshot(const Snapshot& snap, const std::string& path);

/// mmap `path`, validate it fully, and return a Snapshot viewing the mapped
/// arrays without copying them. `version` is the version the returned
/// snapshot reports — version assignment belongs to the caller (normally a
/// SnapshotStore's monotonic counter), not to the file, so that distinct
/// snapshots in one process never share a version. Throws
/// SnapshotFormatError on any defect.
std::shared_ptr<const Snapshot> load_snapshot(const std::string& path,
                                              uint64_t version);

/// Read and validate `path`'s header only (magic, version, CRC, layout
/// accounting against the real file size) without touching payload bytes —
/// what `snapshot_tool inspect` prints. Throws SnapshotFormatError.
SnapshotHeader read_snapshot_header(const std::string& path);

/// What kind of .dls file `path` is, from its magic and version fields
/// alone. Throws SnapshotFormatError on a missing/short file, bad magic, or
/// a version this build doesn't speak.
enum class SnapshotFileKind : uint8_t { kKeyframe, kDelta };
SnapshotFileKind snapshot_file_kind(const std::string& path);

/// Serialize `snap` as a delta over `base` (both must carry real dates,
/// base strictly earlier). Deterministic like serialize_snapshot; the
/// output is typically a few percent of the keyframe size for consecutive
/// days. Throws InvariantError on a non-earlier base.
std::string serialize_snapshot_delta(const Snapshot& snap,
                                     const Snapshot& base);

/// serialize_snapshot_delta + atomic file replace.
void save_snapshot_delta(const Snapshot& snap, const Snapshot& base,
                         const std::string& path);

/// Load a delta file by applying its patches over `base`, which must be the
/// snapshot of the file's declared base date (checked; a content mismatch
/// beyond the date is caught by the reconstruction CRC). The result owns
/// its arrays — no mapping outlives the call. Throws SnapshotFormatError.
std::shared_ptr<const Snapshot> load_snapshot_delta(const std::string& path,
                                                    const Snapshot& base,
                                                    uint64_t version);

/// Header-only read+validate of a delta file (the store uses it to learn
/// the base date before resolving the chain). Throws SnapshotFormatError.
SnapshotDeltaHeader read_snapshot_delta_header(const std::string& path);

}  // namespace droplens::svc
