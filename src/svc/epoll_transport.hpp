// The hardened serving edge: an epoll transport with first-class
// robustness semantics.
//
// EpollServer replaces TcpServer's thread-per-connection model with a small
// fixed pool of event-loop threads multiplexing nonblocking sockets. Every
// thread owns a private epoll instance plus a shard of the connections; the
// shared listening socket sits in every epoll with EPOLLEXCLUSIVE, so
// accepts spread across the pool without a handoff queue and each
// connection is confined to the thread that accepted it (no cross-thread
// connection state, which is what keeps the loop TSan-clean).
//
// Robustness is the point, not an afterthought:
//
//   connection cap    accepts beyond max_conns get the service's typed
//                     overload reply (best effort) and an immediate close —
//                     never an unbounded fd, never a thread
//   deadlines         a timer wheel per thread drives idle timeouts (quiet
//                     connections), read deadlines (a partial message must
//                     complete — kills slowloris against the binary, whois,
//                     and HTTP frontends alike), and write deadlines
//                     (queued responses must drain)
//   backpressure      responses are written straight from the serve()
//                     buffer; whatever the kernel won't take queues in a
//                     bounded per-connection list, and a reader slow enough
//                     to cross max_write_buffer is disconnected instead of
//                     ballooning memory
//   load shedding     in-flight work (messages being served + responses not
//                     yet flushed) crossing max_inflight flips the server to
//                     degraded service: bulk ops (range) shed first at M/2,
//                     normal queries at M, control ops (stats/metrics) last
//                     at 2*M — so the observability plane stays up while the
//                     server defends itself
//
// Every limit, shed decision, timeout, and disconnect reason is a
// TransportCounters instrument, so /metrics shows the defense in action.
//
// The per-connection state machine (documented in DESIGN.md §11):
//
//            ┌────────── readable ──────────┐
//   [open] ──┤ read → buffer → delimit      │
//            │   complete → classify        │
//            │     shed? → typed reply      │
//            │     else  → serve → write    │
//            │   partial  → arm read ddl    │
//            └── writable → flush queue ────┘
//   close paths: peer EOF/error · malformed head · idle/read/write deadline
//                · write-queue overflow · shed (no typed reply) · stop()
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "svc/transport.hpp"

namespace droplens::svc {

/// Hashed timer wheel: O(1) arm/cancel, O(due) expiry per advance. Time is
/// caller-supplied milliseconds, which keeps the wheel deterministic and
/// unit-testable without a clock. One timer per id; re-arming replaces.
/// Entries whose deadline lies beyond one wheel revolution stay bucketed in
/// their slot and are re-examined each revolution (lazy cascading).
class TimerWheel {
 public:
  explicit TimerWheel(uint64_t now_ms, uint32_t tick_ms = 16,
                      size_t slots = 256);

  /// Arm (or re-arm) timer `id` to fire once `now >= deadline_ms`.
  void arm(uint64_t id, uint64_t deadline_ms);
  void cancel(uint64_t id);

  /// Advance to `now_ms`, appending every due id to `expired` in
  /// (deadline, id) order. Monotonic: a `now_ms` earlier than the cursor is
  /// treated as the cursor.
  void advance(uint64_t now_ms, std::vector<uint64_t>& expired);

  /// Milliseconds until the next tick boundary — the natural epoll_wait
  /// timeout. Returns `idle_hint` when nothing is armed.
  uint64_t next_wake_delay(uint64_t now_ms, uint64_t idle_hint = 1000) const;

  size_t armed() const { return armed_.size(); }
  uint32_t tick_ms() const { return tick_ms_; }

 private:
  struct Entry {
    uint64_t id;
    uint64_t deadline;
  };

  uint32_t tick_ms_;
  uint64_t cursor_;  // last fully-processed tick index
  std::vector<std::vector<Entry>> slots_;
  std::unordered_map<uint64_t, uint64_t> armed_;  // id -> live deadline
};

/// Epoll daemon on 127.0.0.1. Port 0 binds an ephemeral port. Runs any
/// Service unchanged; see the file comment for the robustness contract.
class EpollServer : public TransportServer {
 public:
  /// Throws std::runtime_error if the socket cannot be bound or the epoll
  /// machinery cannot be set up.
  EpollServer(Service& service, const TransportOptions& options);
  ~EpollServer() override;

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  uint16_t port() const override { return port_; }
  void stop() override;
  TransportStats stats() const override { return counters_.snapshot(); }

  /// Current in-flight work (messages being served + unflushed responses).
  size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

  /// Test hook: pretend this much extra work is in flight, so shed
  /// thresholds can be crossed deterministically without racing real load.
  void set_inflight_bias_for_tests(size_t bias) {
    inflight_bias_.store(bias, std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    std::string in;                // unparsed request bytes
    std::deque<std::string> out;   // queued response bytes, head first
    size_t out_head_off = 0;       // bytes of out.front() already written
    size_t out_bytes = 0;          // total queued bytes (watermark basis)
    size_t unflushed = 0;          // responses counted in inflight_
    uint64_t last_activity = 0;    // ms; read progress resets it
    uint64_t partial_since = 0;    // ms; 0 = no incomplete message pending
    uint64_t write_pending_since = 0;  // ms; 0 = queue empty
    uint32_t registered_events = 0;    // epoll mask currently registered
    bool closing_after_flush = false;
    DisconnectReason flush_close_reason = DisconnectReason::kPeerClosed;
    /// The request trace parked on this connection between callbacks. One
    /// active trace at a time: accept/read stages accrue here, serve/flush
    /// run under it, and the flush completion (or a close path) finishes
    /// it. Destroying the Conn with an armed trace submits "abandoned".
    obs::SpanContext trace;
    bool trace_reading = false;  // "read" stage open for the current trace
    bool trace_served = false;   // trace is past serve, waiting on flush
  };

  struct Worker {
    int epoll_fd = -1;
    int wake_fd = -1;  // eventfd: stop() pokes it
    std::unordered_map<int, std::unique_ptr<Conn>> conns;
    std::unique_ptr<TimerWheel> wheel;
    std::thread thread;
  };

  void loop(Worker& w);
  void accept_ready(Worker& w, uint64_t now);
  void handle_io(Worker& w, Conn& c, uint32_t events, uint64_t now);
  /// Serve/shed every complete buffered message. Returns false when the
  /// connection was closed along the way.
  bool drain_messages(Worker& w, Conn& c, uint64_t now);
  /// Append a response and push as much as the kernel will take right now.
  /// Returns false when the connection was closed (overflow / dead peer).
  bool enqueue(Worker& w, Conn& c, std::string&& bytes, uint64_t now);
  bool flush_out(Worker& w, Conn& c, uint64_t now);
  void update_epoll(Worker& w, Conn& c);
  /// Queue `reply` (may be empty) and close once it drains.
  void close_after_flush(Worker& w, Conn& c, std::string&& reply,
                         DisconnectReason reason, uint64_t now);
  void close_conn(Worker& w, Conn& c, DisconnectReason reason);
  /// Re-arm the connection's single wheel timer to its earliest deadline.
  void rearm_timer(Worker& w, Conn& c);
  void expire_timers(Worker& w, uint64_t now);
  bool should_shed(MessageClass cls) const;
  /// Finish the connection's active trace (no-op when inert) and reset the
  /// per-request trace flags.
  void finish_trace(Conn& c, std::string_view outcome);

  Service& service_;
  TransportOptions options_;
  mutable TransportCounters counters_;
  TraceBinding trace_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> inflight_{0};
  std::atomic<size_t> inflight_bias_{0};
  std::vector<std::unique_ptr<Worker>> workers_;
};

/// Which transport a frontend should run on.
enum class TransportKind : uint8_t { kThreads, kEpoll };

/// "epoll" or "threads" → kind; throws std::runtime_error on anything else.
TransportKind parse_transport_kind(std::string_view name);

/// Construct the chosen transport behind the common interface. The
/// epoll-only TransportOptions fields are inert for kThreads.
std::unique_ptr<TransportServer> make_transport_server(
    TransportKind kind, Service& service, const TransportOptions& options);

}  // namespace droplens::svc
