#include "svc/admin_http.hpp"

#include <dirent.h>
#include <time.h>

#include <cctype>
#include <cstdio>

#include "obs/prometheus.hpp"
#include "util/error.hpp"

namespace droplens::svc {

namespace {

bool equals_ci(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// The value of header `name` (case-insensitive) in `head`, trimmed; empty
/// when absent. `head` includes the request line, which has no colon before
/// its first space and so never matches.
std::string_view find_header(std::string_view head, std::string_view name) {
  size_t pos = 0;
  while (pos < head.size()) {
    size_t eol = head.find('\n', pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    if (equals_ci(trim(line.substr(0, colon)), name)) {
      return trim(line.substr(colon + 1));
    }
  }
  return {};
}

/// Declared body length of the request whose head is `head`. Throws
/// ParseError on an unparseable value — the stream cannot be resynchronized
/// without knowing where the body ends.
size_t content_length(std::string_view head, size_t cap) {
  std::string_view value = find_header(head, "content-length");
  if (value.empty()) return 0;
  uint64_t n = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      throw ParseError("http: unparseable Content-Length");
    }
    n = n * 10 + static_cast<uint64_t>(c - '0');
    if (n > cap) throw ParseError("http: request body exceeds cap");
  }
  return static_cast<size_t>(n);
}

/// Build one response. `head_only` (a HEAD request) sends the headers the
/// GET would have — including its Content-Length — with no body.
/// `extra_header` is a complete "Name: value" line or empty.
std::string http_response(std::string_view status, std::string_view type,
                          std::string_view body, bool keep_alive,
                          bool head_only = false,
                          std::string_view extra_header = {}) {
  std::string out;
  out.reserve(160 + (head_only ? 0 : body.size()));
  out.append("HTTP/1.1 ");
  out.append(status);
  out.append("\r\nContent-Type: ");
  out.append(type);
  out.append("\r\nContent-Length: ");
  out.append(std::to_string(body.size()));
  if (!extra_header.empty()) {
    out.append("\r\n");
    out.append(extra_header);
  }
  out.append(keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                        : "\r\nConnection: close\r\n\r\n");
  if (!head_only) out.append(body);
  return out;
}

uint64_t steady_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000u +
         static_cast<uint64_t>(ts.tv_nsec);
}

/// Open file descriptors of this process, via /proc/self/fd; -1 when that
/// can't be read (non-Linux). The readdir fd itself is excluded.
int count_open_fds() {
  DIR* dir = opendir("/proc/self/fd");
  if (!dir) return -1;
  int n = 0;
  while (dirent* entry = readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    ++n;
  }
  closedir(dir);
  return n - 1;
}

constexpr std::string_view kRoutes[] = {"/",      "/metrics", "/healthz",
                                        "/statusz", "/tracez",  "/slowz",
                                        "/logz"};

}  // namespace

AdminHttpService::AdminHttpService(const obs::Registry& registry)
    : AdminHttpService([&registry] {
        Options o;
        o.registry = &registry;
        return o;
      }()) {}

AdminHttpService::AdminHttpService(Options options)
    : options_(std::move(options)), start_steady_ns_(steady_ns()) {}

void AdminHttpService::add_health_check(std::string name, HealthCheck check) {
  health_checks_.emplace_back(std::move(name), std::move(check));
}

void AdminHttpService::add_status_section(std::string title,
                                          StatusSection section) {
  status_sections_.emplace_back(std::move(title), std::move(section));
}

void AdminHttpService::add_refresh_hook(std::function<void()> hook) {
  refresh_hooks_.push_back(std::move(hook));
}

size_t AdminHttpService::message_size(std::string_view buffer) const {
  // A message is the head (request line through blank line) plus its
  // declared Content-Length body. Consuming the body is what keeps
  // keep-alive and pipelined peers in sync: leftover body bytes would be
  // parsed as the next request's head and poison the connection.
  size_t head_len = 0;
  size_t end = buffer.find("\r\n\r\n");
  if (end != std::string_view::npos) {
    head_len = end + 4;
  } else {
    end = buffer.find("\n\n");  // tolerate bare-LF clients (nc, printf)
    if (end != std::string_view::npos) head_len = end + 2;
  }
  if (head_len == 0) {
    if (buffer.size() > kMaxHead) {
      throw ParseError("http: request head exceeds cap");
    }
    return 0;
  }
  size_t body_len = content_length(buffer.substr(0, head_len), kMaxBody);
  if (buffer.size() < head_len + body_len) return 0;  // body still arriving
  return head_len + body_len;
}

void AdminHttpService::run_refresh_hooks() {
  for (const auto& hook : refresh_hooks_) hook();
}

AdminHttpService::Page AdminHttpService::metrics_page() {
  run_refresh_hooks();
  std::string body;
  if (options_.registry) {
    body = obs::render_prometheus(*options_.registry, options_.exemplars);
  }
  return {"200 OK", "text/plain; version=0.0.4; charset=utf-8",
          std::move(body)};
}

AdminHttpService::Page AdminHttpService::healthz_page() {
  run_refresh_hooks();
  std::string failures;
  for (const auto& [name, check] : health_checks_) {
    if (std::optional<std::string> reason = check()) {
      failures += name;
      failures += ": ";
      failures += *reason;
      failures += '\n';
    }
  }
  if (failures.empty()) {
    return {"200 OK", "text/plain", "ok\n"};
  }
  return {"503 Service Unavailable", "text/plain",
          "unhealthy\n" + failures};
}

AdminHttpService::Page AdminHttpService::statusz_page() const {
  std::string body;
  body += options_.build_info.empty() ? "droplens (unversioned build)"
                                      : options_.build_info;
  body += '\n';
  const uint64_t uptime_ns = steady_ns() - start_steady_ns_;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "uptime_seconds %.3f\n",
                static_cast<double>(uptime_ns) / 1e9);
  body += buf;
  const int fds = count_open_fds();
  if (fds >= 0) {
    body += "open_fds ";
    body += std::to_string(fds);
    body += '\n';
  }
  for (const auto& [title, section] : status_sections_) {
    body += "\n== ";
    body += title;
    body += " ==\n";
    body += section();
    if (!body.empty() && body.back() != '\n') body += '\n';
  }
  return {"200 OK", "text/plain", std::move(body)};
}

AdminHttpService::Page AdminHttpService::tracez_page() const {
  if (!options_.recorder) {
    return {"200 OK", "text/plain", "no flight recorder wired\n"};
  }
  return {"200 OK", "text/plain", options_.recorder->render_tracez()};
}

AdminHttpService::Page AdminHttpService::slowz_page() const {
  if (!options_.recorder) {
    return {"200 OK", "text/plain", "no flight recorder wired\n"};
  }
  return {"200 OK", "text/plain", options_.recorder->render_slowz()};
}

AdminHttpService::Page AdminHttpService::logz_page() const {
  if (!options_.logger) {
    return {"200 OK", "text/plain", "no logger wired\n"};
  }
  return {"200 OK", "text/plain", options_.logger->render_logz()};
}

AdminHttpService::Page AdminHttpService::index_page(
    std::string_view status) const {
  std::string body = "droplens admin plane. routes:\n";
  for (std::string_view route : kRoutes) {
    body += "  ";
    body += route;
    body += '\n';
  }
  return {std::string(status), "text/plain", std::move(body)};
}

AdminHttpService::Page AdminHttpService::dispatch(std::string_view path) {
  if (path == "/metrics") return metrics_page();
  if (path == "/healthz") return healthz_page();
  if (path == "/statusz") return statusz_page();
  if (path == "/tracez") return tracez_page();
  if (path == "/slowz") return slowz_page();
  if (path == "/logz") return logz_page();
  if (path == "/") return index_page("200 OK");
  return index_page("404 Not Found");
}

std::string AdminHttpService::serve(std::string_view message) {
  // Request line: METHOD SP PATH SP VERSION. Headers matter only for
  // Content-Length (already consumed by message_size) and Connection.
  size_t eol = message.find_first_of("\r\n");
  std::string_view line =
      eol == std::string_view::npos ? message : message.substr(0, eol);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return http_response("400 Bad Request", "text/plain", "bad request\n",
                         false);
  }
  std::string_view method = line.substr(0, sp1);
  std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);
  // Persistence follows the request's version defaults, overridable by an
  // explicit Connection header either way.
  std::string_view connection = find_header(message, "connection");
  bool keep_alive = equals_ci(connection, "keep-alive") ||
                    (version == "HTTP/1.1" && !equals_ci(connection, "close"));
  // Ignore query strings: /metrics?foo=bar still answers.
  path = path.substr(0, path.find('?'));
  if (method != "GET" && method != "HEAD") {
    // The route table is uniform: every route is readable and nothing else.
    return http_response("405 Method Not Allowed", "text/plain",
                         "only GET and HEAD are served\n", keep_alive,
                         /*head_only=*/false, "Allow: GET, HEAD");
  }
  Page page = dispatch(path);
  return http_response(page.status, page.content_type, page.body, keep_alive,
                       /*head_only=*/method == "HEAD");
}

std::string AdminHttpService::malformed_response(std::string_view head) {
  // message_size throws for exactly three reasons; re-derive which one so
  // the close is typed. A head that never completed within kMaxHead is
  // "too large" (431); a complete head whose declared body crosses kMaxBody
  // is 413; an unparseable Content-Length is a plain 400.
  const bool head_complete = head.find("\r\n\r\n") != std::string_view::npos ||
                             head.find("\n\n") != std::string_view::npos;
  if (!head_complete) {
    return http_response("431 Request Header Fields Too Large", "text/plain",
                         "request head exceeds cap\n", false);
  }
  try {
    content_length(head, kMaxBody);
  } catch (const ParseError& e) {
    if (std::string_view(e.what()).find("exceeds") !=
        std::string_view::npos) {
      return http_response("413 Payload Too Large", "text/plain",
                           "request body exceeds cap\n", false);
    }
  }
  return http_response("400 Bad Request", "text/plain", "bad request\n",
                       false);
}

MessageClass AdminHttpService::classify(std::string_view /*message*/) const {
  return MessageClass::kControl;
}

std::string AdminHttpService::overload_response(std::string_view /*msg*/) {
  return http_response("503 Service Unavailable", "text/plain",
                       "overloaded\n", false);
}

std::string AdminHttpService::timeout_response() {
  return http_response("408 Request Timeout", "text/plain",
                       "deadline exceeded\n", false);
}

}  // namespace droplens::svc
