// Date-keyed snapshot store: the persistence layer under a serving daemon.
//
// One study window is many dates; a Server publishes one Snapshot at a
// time, but the store keeps the whole window reachable: a directory of
// `YYYYMMDD.dls` files (svc/snapshot_io.hpp) plus an LRU of resident days —
// mmap-loaded from disk when a file exists, compiled through the engine on
// miss (and written through, so the next process start mmaps instead of
// recompiling).
//
// The store owns version assignment. Snapshot versions exist so clients can
// tell "same bytes re-served" from "new artifact" across reloads; before
// the store, every call site passed its own counter to compile_snapshot and
// nothing guaranteed uniqueness across dates. Here a single monotonic
// counter stamps every materialization — load, compile, or re-materialize
// after eviction/rescan — so two distinct snapshot objects never share a
// version (asserted by tests/test_snapshot_io.cpp).
//
// Thread safety: get()/rescan()/stats() are mutex-serialized; a compile on
// miss happens under the lock (the engine below fans out across its own
// pool). Returned shared_ptrs are immutable snapshots, safe to share.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/date.hpp"
#include "svc/snapshot.hpp"

namespace droplens::core {
class DropIndex;
struct Study;
}  // namespace droplens::core

namespace droplens::svc {

class SnapshotStore {
 public:
  struct Config {
    /// Directory of .dls files. Empty = memory-only store (no load/save);
    /// created on first save if missing.
    std::string dir;
    /// Max resident (mapped or compiled) days; least-recently-used days are
    /// dropped beyond it. 0 = unbounded.
    size_t max_resident = 8;
    /// Write a .dls for every compile miss (requires `dir`).
    bool save_compiled = true;
  };

  struct Stats {
    size_t resident_hits = 0;
    size_t loads = 0;          // mmap loads that succeeded
    size_t load_failures = 0;  // corrupt/unreadable files encountered
    size_t compiles = 0;
    size_t saves = 0;
    size_t evictions = 0;
  };

  /// `study` and `index` enable compile-on-miss; pass null for a disk-only
  /// store. Both must outlive the store.
  explicit SnapshotStore(Config config, const core::Study* study = nullptr,
                         const core::DropIndex* index = nullptr);

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// The snapshot for `d`: resident if cached; else mmap-loaded from
  /// `dir/YYYYMMDD.dls`; else compiled (written through when configured).
  /// Returns null when neither disk nor a compiler can serve the date. A
  /// corrupt file falls back to compile when a compiler is attached —
  /// re-saving over the bad file — and rethrows its SnapshotFormatError
  /// otherwise.
  std::shared_ptr<const Snapshot> get(net::Date d);

  /// Drop every resident day, so the next get() re-reads the directory —
  /// the SIGHUP hook. Version numbers keep counting up: a re-materialized
  /// day never reuses a version an earlier mapping served.
  void rescan();

  /// Dates with a .dls file in the directory, ascending. Files whose names
  /// don't parse as YYYYMMDD.dls are ignored.
  std::vector<net::Date> on_disk() const;

  static std::string file_name(net::Date d);  // "YYYYMMDD.dls"
  std::string path_for(net::Date d) const;

  Stats stats() const;
  size_t resident_count() const;

 private:
  std::shared_ptr<const Snapshot> materialize(net::Date d);  // under mu_
  void evict_over_capacity();                                // under mu_

  const Config config_;
  const core::Study* study_;
  const core::DropIndex* index_;

  mutable std::mutex mu_;
  uint64_t next_version_ = 0;  // last version handed out; never reused
  uint64_t clock_ = 0;         // LRU stamp source
  struct Entry {
    std::shared_ptr<const Snapshot> snap;
    uint64_t last_used = 0;
  };
  std::map<net::Date, Entry> resident_;
  Stats stats_;
};

}  // namespace droplens::svc
