// Date-keyed snapshot store: the persistence layer under a serving daemon.
//
// One study window is many dates; the store keeps the whole window
// reachable behind one call: a directory of `YYYYMMDD.dls` files
// (svc/snapshot_io.hpp) plus an LRU of resident days — mmap-loaded from
// disk when a keyframe file exists, reconstructed over the base chain when
// the file is a delta, compiled through the engine on miss (and written
// through, so the next process start mmaps instead of recompiling).
//
// The store owns version assignment. Snapshot versions exist so clients can
// tell "same bytes re-served" from "new artifact" across reloads; before
// the store, every call site passed its own counter to compile_snapshot and
// nothing guaranteed uniqueness across dates. Here a single monotonic
// counter stamps every materialization — load, patch, compile, or
// re-materialization after eviction/rescan — so two distinct snapshot
// objects never share a version (asserted by tests/test_snapshot_io.cpp).
//
// Thread safety: a short registry mutex guards the date→slot map, the LRU
// clock, and the counters; every date additionally owns a materialization
// latch. get() touches the registry lock only to find or create the slot,
// then materializes (mmap / patch / compile — ~0.6 s at paper scale for a
// compile) under the slot's own latch, so a miss on one date never blocks
// concurrent get()s for other dates (regression-tested under TSan, label
// `window`). Latches nest only along delta chains, whose hops go strictly
// back in time (loader-validated), so they are always acquired in
// decreasing date order; the registry lock is never held while acquiring a
// latch. Returned shared_ptrs are immutable snapshots, safe to share.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/date.hpp"
#include "obs/metrics.hpp"
#include "svc/snapshot.hpp"

namespace droplens::core {
class DropIndex;
struct Study;
}  // namespace droplens::core

namespace droplens::svc {

class SnapshotStore {
 public:
  struct Config {
    /// Directory of .dls files. Empty = memory-only store (no load/save);
    /// created on first save if missing.
    std::string dir;
    /// Max resident (mapped, patched, or compiled) days; least-recently-
    /// used days are dropped beyond it. 0 = unbounded.
    size_t max_resident = 8;
    /// Write a .dls for every compile miss (requires `dir`). Always a
    /// keyframe — healing a corrupt delta rewrites it as one.
    bool save_compiled = true;
  };

  struct Stats {
    size_t resident_hits = 0;
    size_t loads = 0;          // keyframe mmap loads that succeeded
    size_t delta_loads = 0;    // delta reconstructions that succeeded
    size_t load_failures = 0;  // corrupt/unreadable files encountered
    size_t compiles = 0;
    size_t saves = 0;
    size_t evictions = 0;
  };

  /// Longest base chain a delta load will follow before declaring the file
  /// bad; `snapshot_tool delta --keyframe-every=K` keeps real chains short.
  static constexpr int kMaxDeltaChain = 512;

  /// `study` and `index` enable compile-on-miss; pass null for a disk-only
  /// store. Both must outlive the store.
  explicit SnapshotStore(Config config, const core::Study* study = nullptr,
                         const core::DropIndex* index = nullptr);

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// The snapshot for `d`: resident if cached; else mmap-loaded (keyframe)
  /// or patched over its base chain (delta) from `dir/YYYYMMDD.dls`; else
  /// compiled (written through when configured). Compile-on-miss serves
  /// only dates inside the study window — wire-supplied dates outside it
  /// return null instead of compiling, so a hostile client cannot churn
  /// the LRU or fill the disk (files already in the directory are served
  /// whatever their date). Returns null when neither disk nor a compiler
  /// can serve the date. A corrupt file — including a
  /// delta whose chain is broken — falls back to compile when a compiler is
  /// attached, re-saving over the bad file, and rethrows its
  /// SnapshotFormatError otherwise (on every call: failures are never
  /// cached).
  std::shared_ptr<const Snapshot> get(net::Date d);

  /// Re-sync residency with the directory — the SIGHUP hook. Incremental:
  /// a resident day whose backing file still has the size and mtime
  /// recorded at load time is kept (no thundering herd of re-mmaps after a
  /// reload signal); changed, deleted, and file-less (memory-only or
  /// unsaved-compile) days are dropped so the next get() re-materializes
  /// them. Version numbers keep counting up: a re-materialized day never
  /// reuses a version an earlier mapping served.
  void rescan();

  /// Dates with a .dls file in the directory, ascending. Files whose names
  /// don't parse as YYYYMMDD.dls are ignored.
  std::vector<net::Date> on_disk() const;

  static std::string file_name(net::Date d);  // "YYYYMMDD.dls"
  std::string path_for(net::Date d) const;

  Stats stats() const;
  size_t resident_count() const;

  /// Test-only: called at the top of every materialization, under the
  /// date's latch with no registry lock held — a hook that blocks proves
  /// other dates stay servable mid-miss. Set before any concurrent use.
  void set_materialize_hook_for_tests(std::function<void(net::Date)> hook) {
    materialize_hook_ = std::move(hook);
  }

 private:
  /// File identity at materialization time, for incremental rescan.
  struct FileStamp {
    uint64_t size = 0;
    int64_t mtime = 0;  // filesystem clock ticks since its epoch
  };
  static std::optional<FileStamp> stat_stamp(const std::string& path);

  /// One date's residency. `latch` serializes materialization of this date
  /// only; `snap` and `stamp` are written under it before `ready` is set
  /// (release) and are immutable once `ready` reads true (acquire).
  /// `last_used` belongs to the registry lock.
  struct Slot {
    std::mutex latch;
    std::atomic<bool> ready{false};
    std::shared_ptr<const Snapshot> snap;
    bool has_stamp = false;
    FileStamp stamp;
    uint64_t last_used = 0;
  };

  std::shared_ptr<const Snapshot> get_internal(net::Date d, int depth);
  /// Under the slot latch; takes mu_ only for counter bumps.
  std::shared_ptr<const Snapshot> materialize(net::Date d, Slot& slot,
                                              int depth);
  void evict_over_capacity();  // under mu_
  /// Under mu_: republish resident_.size() as droplens_store_resident_days
  /// — the same number resident_count() answers, so /healthz and a
  /// Prometheus scrape can never disagree about residency.
  void update_resident_gauge() {
    resident_days_.set(static_cast<int64_t>(resident_.size()));
  }
  /// Drop `slot` from the registry if it is still the one registered for
  /// `d` — the failure path, so corrupt dates retry on every get().
  void forget(net::Date d, const std::shared_ptr<Slot>& slot);
  uint64_t next_version() { return next_version_.fetch_add(1) + 1; }

  const Config config_;
  const core::Study* study_;
  const core::DropIndex* index_;
  std::function<void(net::Date)> materialize_hook_;

  std::atomic<uint64_t> next_version_{0};  // last version handed out

  mutable std::mutex mu_;  // registry lock: resident_, clock_, stats_
  uint64_t clock_ = 0;     // LRU stamp source
  std::map<net::Date, std::shared_ptr<Slot>> resident_;
  Stats stats_;
  obs::Gauge resident_days_;  // mirrors resident_.size()
};

}  // namespace droplens::svc
