#include "svc/snapshot_io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/data_quality.hpp"
#include "drop/category.hpp"
#include "net/interval_set.hpp"
#include "net/segment_map.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rir/rir.hpp"
#include "util/crc32c.hpp"

namespace droplens::svc {

namespace {

using net::IntervalSet;
using Interval = IntervalSet::Interval;
using DropSegment = net::SegmentMap<Snapshot::DropInfo>::Segment;
using ByteSegment = net::SegmentMap<uint8_t>::Segment;

// The zero-copy contract: the on-disk element layouts are exactly the
// in-memory ones, so a view over mapped bytes is a view over real arrays.
// The writer zeroes padding explicitly; these asserts pin the layouts.
static_assert(std::is_trivially_copyable_v<Interval>);
static_assert(sizeof(Interval) == 16 && alignof(Interval) == 8);
static_assert(offsetof(Interval, end) == 8);
static_assert(std::is_trivially_copyable_v<DropSegment>);
static_assert(sizeof(DropSegment) == 24 && alignof(DropSegment) == 8);
static_assert(offsetof(DropSegment, value) == 16);
static_assert(sizeof(Snapshot::DropInfo) == 2);
static_assert(offsetof(Snapshot::DropInfo, incident) == 1);
static_assert(std::is_trivially_copyable_v<ByteSegment>);
static_assert(sizeof(ByteSegment) == 24 && alignof(ByteSegment) == 8);
static_assert(offsetof(ByteSegment, value) == 16);

constexpr uint32_t kElemSizes[kSnapshotSegmentCount] = {
    sizeof(Interval),    sizeof(Interval),    sizeof(Interval),
    sizeof(Interval),    sizeof(DropSegment), sizeof(ByteSegment),
    sizeof(ByteSegment),
};

/// Bits of Snapshot::degraded() that can be set: one per core::Feed.
constexpr uint8_t kFeedMask =
    static_cast<uint8_t>((1u << core::kFeedCount) - 1);
/// Bits a DropInfo::categories byte can carry: one per drop::Category.
constexpr uint8_t kCategoryMask =
    static_cast<uint8_t>((1u << drop::kAllCategories.size()) - 1);

[[noreturn]] void fail(SnapshotIoError code, const std::string& what) {
  throw SnapshotFormatError(code, "snapshot_io: " + what);
}

uint32_t header_crc(const SnapshotHeader& h) {
  SnapshotHeader copy = h;
  copy.header_crc32c = 0;
  return util::crc32c(&copy, sizeof(copy));
}

// --- writer ----------------------------------------------------------------

void append_intervals(std::string& out, std::span<const Interval> ivs) {
  // Interval has no padding; a straight byte copy is deterministic.
  out.append(reinterpret_cast<const char*>(ivs.data()), ivs.size_bytes());
}

void append_drop_segments(std::string& out,
                          std::span<const DropSegment> segs) {
  for (const DropSegment& s : segs) {
    char buf[sizeof(DropSegment)] = {};  // zero the 6 padding bytes
    std::memcpy(buf + 0, &s.begin, sizeof(s.begin));
    std::memcpy(buf + 8, &s.end, sizeof(s.end));
    buf[16] = static_cast<char>(s.value.categories);
    buf[17] = static_cast<char>(s.value.incident);
    out.append(buf, sizeof(buf));
  }
}

void append_byte_segments(std::string& out,
                          std::span<const ByteSegment> segs) {
  for (const ByteSegment& s : segs) {
    char buf[sizeof(ByteSegment)] = {};  // zero the 7 padding bytes
    std::memcpy(buf + 0, &s.begin, sizeof(s.begin));
    std::memcpy(buf + 8, &s.end, sizeof(s.end));
    buf[16] = static_cast<char>(s.value);
    out.append(buf, sizeof(buf));
  }
}

// --- mmap ------------------------------------------------------------------

class MappedFile {
 public:
  static MappedFile open(const std::string& path) {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      fail(SnapshotIoError::kIo,
           "open '" + path + "': " + std::strerror(errno));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      int err = errno;
      ::close(fd);
      fail(SnapshotIoError::kIo,
           "fstat '" + path + "': " + std::strerror(err));
    }
    size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      fail(SnapshotIoError::kTruncated, "'" + path + "' is empty");
    }
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps the file alive
    if (base == MAP_FAILED) {
      fail(SnapshotIoError::kIo,
           "mmap '" + path + "': " + std::strerror(errno));
    }
    return MappedFile(static_cast<const char*>(base), size);
  }

  MappedFile(MappedFile&& other) noexcept
      : base_(std::exchange(other.base_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      unmap();
      base_ = std::exchange(other.base_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() { unmap(); }

  const char* data() const { return base_; }
  size_t size() const { return size_; }

 private:
  MappedFile(const char* base, size_t size) : base_(base), size_(size) {}
  void unmap() {
    if (base_) ::munmap(const_cast<char*>(base_), size_);
  }

  const char* base_ = nullptr;
  size_t size_ = 0;
};

/// Control-block payload of a loaded snapshot: the Snapshot's views point
/// into `file`, so both live and die together.
struct MappedSnapshot {
  explicit MappedSnapshot(MappedFile f) : file(std::move(f)) {}
  MappedFile file;
  Snapshot snap;
};

// --- shared validation -----------------------------------------------------

/// Validate everything about a header that doesn't require payload access:
/// magic, version, CRC, and the segment table's exact accounting of a file
/// of `file_size` bytes.
void validate_header(const SnapshotHeader& h, uint64_t file_size) {
  if (std::memcmp(h.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    fail(SnapshotIoError::kBadMagic, "bad magic");
  }
  if (h.format_version != kSnapshotFormatVersion) {
    fail(SnapshotIoError::kBadVersion,
         "format version " + std::to_string(h.format_version) +
             " (this build speaks " + std::to_string(kSnapshotFormatVersion) +
             ")");
  }
  if (header_crc(h) != h.header_crc32c) {
    fail(SnapshotIoError::kBadHeaderCrc, "header CRC mismatch");
  }
  if (h.file_length > file_size) {
    fail(SnapshotIoError::kTruncated,
         "file is " + std::to_string(file_size) + " bytes, header declares " +
             std::to_string(h.file_length));
  }
  if (h.file_length < file_size) {
    fail(SnapshotIoError::kBadLayout,
         "trailing bytes past the declared file length");
  }
  if (h.degraded & ~kFeedMask) {
    fail(SnapshotIoError::kBadInvariant, "unknown degraded-feed bits");
  }
  // Strict sequential layout: each segment starts exactly where the
  // previous one ended, and the last ends at EOF. A corrupt length cannot
  // smuggle out-of-bounds reads or allocation — there is nothing to
  // allocate and nothing between or beyond the audited segments.
  uint64_t cursor = sizeof(SnapshotHeader);
  for (size_t i = 0; i < kSnapshotSegmentCount; ++i) {
    const SegmentDesc& sd = h.segments[i];
    std::string name(to_string(static_cast<SnapshotSegment>(i)));
    if (sd.elem_size != kElemSizes[i]) {
      fail(SnapshotIoError::kBadLayout, "segment " + name + ": element size " +
                                            std::to_string(sd.elem_size));
    }
    if (sd.offset != cursor) {
      fail(SnapshotIoError::kBadLayout,
           "segment " + name + ": offset " + std::to_string(sd.offset) +
               ", expected " + std::to_string(cursor));
    }
    if (sd.length % sd.elem_size != 0 || sd.length > file_size - cursor) {
      fail(SnapshotIoError::kBadLayout,
           "segment " + name + ": length " + std::to_string(sd.length));
    }
    cursor += sd.length;
  }
  if (cursor != file_size) {
    fail(SnapshotIoError::kBadLayout,
         "segments account for " + std::to_string(cursor) + " of " +
             std::to_string(file_size) + " bytes");
  }
}

// The shared array-validation path works over raw bytes so the mmap loader
// (viewing the file) and the delta loader (viewing reconstructed buffers)
// reject exactly the same invariant violations.

IntervalSet load_interval_set(const char* data, uint64_t length,
                              SnapshotSegment seg) {
  // 8-byte-aligned trivially-copyable bytes viewed as the real array type —
  // the writer produced these exact bytes from real objects.
  std::span<const Interval> ivs(reinterpret_cast<const Interval*>(data),
                                length / sizeof(Interval));
  if (!IntervalSet::is_canonical(ivs)) {
    fail(SnapshotIoError::kBadInvariant,
         "segment " + std::string(to_string(seg)) +
             ": intervals not sorted/disjoint/bounded");
  }
  return IntervalSet::view(ivs);
}

template <typename T, typename CheckValue>
net::SegmentMap<T> load_segment_map(const char* data, uint64_t length,
                                    SnapshotSegment seg, CheckValue&& check) {
  using Seg = typename net::SegmentMap<T>::Segment;
  std::span<const Seg> segs(reinterpret_cast<const Seg*>(data),
                            length / sizeof(Seg));
  if (!net::SegmentMap<T>::is_canonical(segs)) {
    fail(SnapshotIoError::kBadInvariant,
         "segment " + std::string(to_string(seg)) +
             ": segments not sorted/disjoint/bounded");
  }
  for (const auto& s : segs) {
    if (!check(s.value)) {
      fail(SnapshotIoError::kBadInvariant,
           "segment " + std::string(to_string(seg)) + ": value out of range");
    }
  }
  return net::SegmentMap<T>::view(segs);
}

/// Validate all seven segment byte arrays and assemble a Snapshot of views
/// over them. `bytes_of(i)` returns the i-th segment's (data, byte length);
/// the storage must outlive the snapshot (mapped file or owned buffers).
template <typename Source>
Snapshot build_snapshot_views(uint64_t version, net::Date date,
                              uint8_t degraded, Source&& bytes_of) {
  auto iv = [&](SnapshotSegment seg) {
    auto [data, length] = bytes_of(static_cast<size_t>(seg));
    return load_interval_set(data, length, seg);
  };
  IntervalSet routed = iv(SnapshotSegment::kRouted);
  IntervalSet as0 = iv(SnapshotSegment::kAs0);
  IntervalSet irr = iv(SnapshotSegment::kIrr);
  IntervalSet allocated = iv(SnapshotSegment::kAllocated);
  auto [drop_data, drop_len] =
      bytes_of(static_cast<size_t>(SnapshotSegment::kDrop));
  auto drop = load_segment_map<Snapshot::DropInfo>(
      drop_data, drop_len, SnapshotSegment::kDrop,
      [](const Snapshot::DropInfo& v) {
        return (v.categories & ~kCategoryMask) == 0 && v.incident <= 1;
      });
  auto [rov_data, rov_len] =
      bytes_of(static_cast<size_t>(SnapshotSegment::kRov));
  auto rov = load_segment_map<uint8_t>(
      rov_data, rov_len, SnapshotSegment::kRov, [](uint8_t v) {
        return v <= static_cast<uint8_t>(RovStatus::kUnrouted);
      });
  auto [rir_data, rir_len] =
      bytes_of(static_cast<size_t>(SnapshotSegment::kRir));
  auto rir = load_segment_map<uint8_t>(
      rir_data, rir_len, SnapshotSegment::kRir,
      [](uint8_t v) { return v < rir::kAllRirs.size(); });
  return Snapshot(version, date, degraded, std::move(routed), std::move(as0),
                  std::move(irr), std::move(allocated), std::move(drop),
                  std::move(rov), std::move(rir));
}

}  // namespace

std::string_view to_string(SnapshotIoError code) {
  switch (code) {
    case SnapshotIoError::kIo: return "io-error";
    case SnapshotIoError::kTruncated: return "truncated";
    case SnapshotIoError::kBadMagic: return "bad-magic";
    case SnapshotIoError::kBadVersion: return "bad-version";
    case SnapshotIoError::kBadHeaderCrc: return "bad-header-crc";
    case SnapshotIoError::kBadLayout: return "bad-layout";
    case SnapshotIoError::kBadSegmentCrc: return "bad-segment-crc";
    case SnapshotIoError::kBadInvariant: return "bad-invariant";
  }
  return "unknown";
}

std::string_view to_string(SnapshotSegment s) {
  switch (s) {
    case SnapshotSegment::kRouted: return "routed";
    case SnapshotSegment::kAs0: return "as0";
    case SnapshotSegment::kIrr: return "irr";
    case SnapshotSegment::kAllocated: return "allocated";
    case SnapshotSegment::kDrop: return "drop";
    case SnapshotSegment::kRov: return "rov";
    case SnapshotSegment::kRir: return "rir";
  }
  return "unknown";
}

std::string serialize_snapshot(const Snapshot& snap) {
  obs::Span span("svc.serialize_snapshot");
  std::string out(sizeof(SnapshotHeader), '\0');

  SnapshotHeader h{};
  std::memcpy(h.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
  h.format_version = kSnapshotFormatVersion;
  h.date_days = snap.date().days();
  h.degraded = snap.degraded();
  h.writer_version = snap.version();

  const auto seal = [&](SnapshotSegment seg, size_t payload_begin) {
    SegmentDesc& sd = h.segments[static_cast<size_t>(seg)];
    sd.offset = payload_begin;
    sd.length = out.size() - payload_begin;
    sd.crc32c = util::crc32c(out.data() + payload_begin, sd.length);
    sd.elem_size = kElemSizes[static_cast<size_t>(seg)];
  };

  size_t begin = out.size();
  append_intervals(out, snap.routed().intervals());
  seal(SnapshotSegment::kRouted, begin);
  begin = out.size();
  append_intervals(out, snap.as0().intervals());
  seal(SnapshotSegment::kAs0, begin);
  begin = out.size();
  append_intervals(out, snap.irr().intervals());
  seal(SnapshotSegment::kIrr, begin);
  begin = out.size();
  append_intervals(out, snap.allocated().intervals());
  seal(SnapshotSegment::kAllocated, begin);
  begin = out.size();
  append_drop_segments(out, snap.drop().segments());
  seal(SnapshotSegment::kDrop, begin);
  begin = out.size();
  append_byte_segments(out, snap.rov().segments());
  seal(SnapshotSegment::kRov, begin);
  begin = out.size();
  append_byte_segments(out, snap.rir().segments());
  seal(SnapshotSegment::kRir, begin);

  h.file_length = out.size();
  h.header_crc32c = header_crc(h);
  std::memcpy(out.data(), &h, sizeof(h));
  return out;
}

namespace {

void write_file_atomically(const std::string& bytes, const std::string& path) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    fail(SnapshotIoError::kIo,
         "open '" + tmp + "' for write: " + std::strerror(errno));
  }
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool ok = written == bytes.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    fail(SnapshotIoError::kIo, "write '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    int err = errno;
    std::remove(tmp.c_str());
    fail(SnapshotIoError::kIo,
         "rename '" + tmp + "' -> '" + path + "': " + std::strerror(err));
  }
}

}  // namespace

void save_snapshot(const Snapshot& snap, const std::string& path) {
  obs::Span span("svc.save_snapshot");
  obs::counter("droplens_svc_snapshot_saves_total", {},
               "Snapshots saved to .dls files")
      .inc();
  write_file_atomically(serialize_snapshot(snap), path);
}

std::shared_ptr<const Snapshot> load_snapshot(const std::string& path,
                                              uint64_t version) {
  obs::Span span("svc.load_snapshot");
  obs::counter("droplens_svc_snapshot_loads_total", {},
               "Snapshots mmap-loaded from .dls files")
      .inc();
  MappedFile map = MappedFile::open(path);
  if (map.size() < sizeof(SnapshotHeader)) {
    fail(SnapshotIoError::kTruncated,
         "'" + path + "' is " + std::to_string(map.size()) +
             " bytes, shorter than the header");
  }
  SnapshotHeader h;
  std::memcpy(&h, map.data(), sizeof(h));
  validate_header(h, map.size());
  for (size_t i = 0; i < kSnapshotSegmentCount; ++i) {
    const SegmentDesc& sd = h.segments[i];
    if (util::crc32c(map.data() + sd.offset, sd.length) != sd.crc32c) {
      fail(SnapshotIoError::kBadSegmentCrc,
           "segment " +
               std::string(to_string(static_cast<SnapshotSegment>(i))) +
               ": CRC mismatch");
    }
  }

  // The views below point into `map`; hand the mapping to the control block
  // so snapshot and mapping share one lifetime. Moving a MappedFile moves
  // ownership, not the base address, so the views stay valid.
  auto holder = std::make_shared<MappedSnapshot>(std::move(map));
  holder->snap = build_snapshot_views(
      version, net::Date(h.date_days), h.degraded, [&](size_t i) {
        const SegmentDesc& sd = h.segments[i];
        return std::pair<const char*, uint64_t>(
            holder->file.data() + sd.offset, sd.length);
      });
  return std::shared_ptr<const Snapshot>(holder, &holder->snap);
}

SnapshotHeader read_snapshot_header(const std::string& path) {
  // Reuse the mmap path: headers are one page anyway, and this guarantees
  // inspect and load agree on every check that doesn't touch payload.
  MappedFile map = MappedFile::open(path);
  if (map.size() < sizeof(SnapshotHeader)) {
    fail(SnapshotIoError::kTruncated,
         "'" + path + "' is " + std::to_string(map.size()) +
             " bytes, shorter than the header");
  }
  SnapshotHeader h;
  std::memcpy(&h, map.data(), sizeof(h));
  validate_header(h, map.size());
  return h;
}

// --- delta files -----------------------------------------------------------

namespace {

/// Hard ceiling on one reconstructed segment. Real segments are KBs–MBs;
/// this only exists so a hostile patch cannot declare a huge new_count and
/// turn a small file into a giant allocation.
constexpr uint64_t kMaxDeltaSegmentBytes = uint64_t{1} << 30;

// The host is little-endian (static_assert in the header), so appending raw
// integer bytes is the wire encoding.
template <typename T>
void put_le(std::string& out, T v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint32_t delta_header_crc(const SnapshotDeltaHeader& h) {
  SnapshotDeltaHeader copy = h;
  copy.header_crc32c = 0;
  return util::crc32c(&copy, sizeof(copy));
}

/// One segment's canonical serialized bytes — exactly what
/// serialize_snapshot emits for it (zeroed padding), whatever mix of owned
/// and view structures the snapshot holds.
std::string encode_segment(const Snapshot& snap, size_t i) {
  std::string out;
  switch (static_cast<SnapshotSegment>(i)) {
    case SnapshotSegment::kRouted:
      append_intervals(out, snap.routed().intervals());
      break;
    case SnapshotSegment::kAs0:
      append_intervals(out, snap.as0().intervals());
      break;
    case SnapshotSegment::kIrr:
      append_intervals(out, snap.irr().intervals());
      break;
    case SnapshotSegment::kAllocated:
      append_intervals(out, snap.allocated().intervals());
      break;
    case SnapshotSegment::kDrop:
      append_drop_segments(out, snap.drop().segments());
      break;
    case SnapshotSegment::kRov:
      append_byte_segments(out, snap.rov().segments());
      break;
    case SnapshotSegment::kRir:
      append_byte_segments(out, snap.rir().segments());
      break;
  }
  return out;
}

/// Element-level diff of two canonical segment encodings, as a patch byte
/// stream. Elements are matched on their leading begin:u64 (both Interval
/// and Segment lead with it): equal bytes extend a copy run, a begin only
/// the base has is a deletion (skipped), anything else is a literal.
std::string diff_segment(const std::string& base_enc,
                         const std::string& new_enc, uint32_t esz) {
  const size_t nb = base_enc.size() / esz;
  const size_t nn = new_enc.size() / esz;
  auto key = [esz](const std::string& enc, size_t idx) {
    uint64_t k;
    std::memcpy(&k, enc.data() + idx * esz, sizeof(k));
    return k;
  };

  struct Op {
    bool copy;
    uint64_t start;  // base element index (copy) or new element index (lit)
    uint64_t count;
  };
  std::vector<Op> ops;
  auto emit = [&ops](bool copy, size_t idx) {
    if (!ops.empty() && ops.back().copy == copy &&
        ops.back().start + ops.back().count == idx) {
      ++ops.back().count;
    } else {
      ops.push_back({copy, idx, 1});
    }
  };

  size_t bi = 0, ni = 0;
  while (bi < nb && ni < nn) {
    if (std::memcmp(base_enc.data() + bi * esz, new_enc.data() + ni * esz,
                    esz) == 0) {
      emit(true, bi);
      ++bi;
      ++ni;
    } else if (key(base_enc, bi) < key(new_enc, ni)) {
      ++bi;  // deleted from the base; patches never mention it
    } else {
      emit(false, ni);
      if (key(base_enc, bi) == key(new_enc, ni)) ++bi;  // modified in place
      ++ni;
    }
  }
  for (; ni < nn; ++ni) emit(false, ni);

  std::string out;
  put_le<uint64_t>(out, nn);
  put_le<uint32_t>(out, util::crc32c(new_enc.data(), new_enc.size()));
  put_le<uint32_t>(out, detail::checked_u32(ops.size(), "patch op count"));
  for (const Op& op : ops) {
    if (op.copy) {
      put_le<uint8_t>(out, 0);
      put_le<uint32_t>(out, detail::checked_u32(op.start, "copy op start"));
      put_le<uint32_t>(out, detail::checked_u32(op.count, "copy op count"));
    } else {
      put_le<uint8_t>(out, 1);
      put_le<uint32_t>(out,
                       detail::checked_u32(op.count, "literal op count"));
      out.append(new_enc.data() + op.start * esz, op.count * esz);
    }
  }
  return out;
}

/// Bounds-checked cursor over one patch stream; running out of bytes means
/// the stream lies about its own shape (the file-level truncation case is
/// already excluded by the header's strict layout accounting).
class PatchReader {
 public:
  PatchReader(const char* data, uint64_t size, SnapshotSegment seg)
      : data_(data), size_(size), seg_(seg) {}

  template <typename T>
  T take() {
    T v;
    std::memcpy(&v, bytes(sizeof(T)), sizeof(T));
    return v;
  }
  const char* bytes(uint64_t n) {
    if (size_ - pos_ < n) {
      fail(SnapshotIoError::kBadLayout,
           "segment " + std::string(to_string(seg_)) +
               ": truncated patch stream");
    }
    const char* p = data_ + pos_;
    pos_ += n;
    return p;
  }
  bool done() const { return pos_ == size_; }

 private:
  const char* data_;
  uint64_t size_;
  uint64_t pos_ = 0;
  SnapshotSegment seg_;
};

/// Replay one patch stream over the base segment's canonical bytes.
std::string apply_patch(const char* data, uint64_t size,
                        const std::string& base_enc, uint32_t esz,
                        SnapshotSegment seg) {
  const std::string name(to_string(seg));
  PatchReader in(data, size, seg);
  const uint64_t new_count = in.take<uint64_t>();
  const uint32_t new_crc = in.take<uint32_t>();
  const uint32_t op_count = in.take<uint32_t>();
  if (new_count > kMaxDeltaSegmentBytes / esz) {
    fail(SnapshotIoError::kBadInvariant,
         "segment " + name + ": reconstructed size exceeds cap");
  }
  const uint64_t base_count = base_enc.size() / esz;
  std::string out;
  out.reserve(new_count * esz);
  uint64_t produced = 0;
  for (uint32_t i = 0; i < op_count; ++i) {
    const uint8_t kind = in.take<uint8_t>();
    uint64_t count;
    if (kind == 0) {
      const uint64_t start = in.take<uint32_t>();
      count = in.take<uint32_t>();
      if (count == 0 || start + count > base_count) {
        fail(SnapshotIoError::kBadInvariant,
             "segment " + name + ": copy op beyond the base segment");
      }
      if (produced + count > new_count) {
        fail(SnapshotIoError::kBadLayout,
             "segment " + name + ": ops overrun the declared element count");
      }
      out.append(base_enc.data() + start * esz, count * esz);
    } else if (kind == 1) {
      count = in.take<uint32_t>();
      if (count == 0) {
        fail(SnapshotIoError::kBadLayout,
             "segment " + name + ": empty literal op");
      }
      if (produced + count > new_count) {
        fail(SnapshotIoError::kBadLayout,
             "segment " + name + ": ops overrun the declared element count");
      }
      out.append(in.bytes(count * esz), count * esz);
    } else {
      fail(SnapshotIoError::kBadLayout,
           "segment " + name + ": unknown patch op " + std::to_string(kind));
    }
    produced += count;
  }
  if (!in.done()) {
    fail(SnapshotIoError::kBadLayout,
         "segment " + name + ": trailing bytes after the last patch op");
  }
  if (produced != new_count) {
    fail(SnapshotIoError::kBadLayout,
         "segment " + name + ": ops produced " + std::to_string(produced) +
             " of " + std::to_string(new_count) + " elements");
  }
  if (util::crc32c(out.data(), out.size()) != new_crc) {
    // Wrong base content, or literal bytes flipped: either way the
    // reconstruction is not the day the writer serialized.
    fail(SnapshotIoError::kBadSegmentCrc,
         "segment " + name + ": reconstruction CRC mismatch");
  }
  return out;
}

/// Everything about a delta header that doesn't require payload access.
/// Mirrors validate_header; patch streams are byte-granular (elem_size 1).
void validate_delta_header(const SnapshotDeltaHeader& h, uint64_t file_size) {
  if (std::memcmp(h.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    fail(SnapshotIoError::kBadMagic, "bad magic");
  }
  if (h.format_version != kSnapshotDeltaFormatVersion) {
    fail(SnapshotIoError::kBadVersion,
         "format version " + std::to_string(h.format_version) +
             " where a delta (version " +
             std::to_string(kSnapshotDeltaFormatVersion) + ") was expected");
  }
  if (delta_header_crc(h) != h.header_crc32c) {
    fail(SnapshotIoError::kBadHeaderCrc, "header CRC mismatch");
  }
  if (h.file_length > file_size) {
    fail(SnapshotIoError::kTruncated,
         "file is " + std::to_string(file_size) + " bytes, header declares " +
             std::to_string(h.file_length));
  }
  if (h.file_length < file_size) {
    fail(SnapshotIoError::kBadLayout,
         "trailing bytes past the declared file length");
  }
  if (h.degraded & ~kFeedMask) {
    fail(SnapshotIoError::kBadInvariant, "unknown degraded-feed bits");
  }
  if (h.base_date_days >= h.date_days) {
    // Also rules out self-reference and cycles: every chain hop goes
    // strictly back in time.
    fail(SnapshotIoError::kBadInvariant,
         "delta base is not earlier than its own date");
  }
  uint64_t cursor = sizeof(SnapshotDeltaHeader);
  for (size_t i = 0; i < kSnapshotSegmentCount; ++i) {
    const SegmentDesc& sd = h.segments[i];
    std::string name(to_string(static_cast<SnapshotSegment>(i)));
    if (sd.elem_size != 1) {
      fail(SnapshotIoError::kBadLayout,
           "segment " + name + ": patch element size " +
               std::to_string(sd.elem_size));
    }
    if (sd.offset != cursor) {
      fail(SnapshotIoError::kBadLayout,
           "segment " + name + ": offset " + std::to_string(sd.offset) +
               ", expected " + std::to_string(cursor));
    }
    if (sd.length > file_size - cursor) {
      fail(SnapshotIoError::kBadLayout,
           "segment " + name + ": length " + std::to_string(sd.length));
    }
    cursor += sd.length;
  }
  if (cursor != file_size) {
    fail(SnapshotIoError::kBadLayout,
         "segments account for " + std::to_string(cursor) + " of " +
             std::to_string(file_size) + " bytes");
  }
}

/// Control-block payload of a delta-loaded snapshot: the reconstructed
/// segment bytes in 8-byte-aligned owned storage, viewed by `snap`.
struct PatchedSnapshot {
  std::array<std::vector<uint64_t>, kSnapshotSegmentCount> arrays;
  std::array<uint64_t, kSnapshotSegmentCount> lengths{};
  Snapshot snap;
};

}  // namespace

std::string serialize_snapshot_delta(const Snapshot& snap,
                                     const Snapshot& base) {
  obs::Span span("svc.serialize_snapshot_delta");
  if (!(base.date() < snap.date())) {
    throw InvariantError(
        "snapshot_io: delta base must be strictly earlier than the snapshot");
  }
  std::string out(sizeof(SnapshotDeltaHeader), '\0');

  SnapshotDeltaHeader h{};
  std::memcpy(h.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
  h.format_version = kSnapshotDeltaFormatVersion;
  h.date_days = snap.date().days();
  h.degraded = snap.degraded();
  h.base_date_days = base.date().days();
  h.writer_version = snap.version();

  for (size_t i = 0; i < kSnapshotSegmentCount; ++i) {
    const size_t begin = out.size();
    out.append(diff_segment(encode_segment(base, i), encode_segment(snap, i),
                            kElemSizes[i]));
    SegmentDesc& sd = h.segments[i];
    sd.offset = begin;
    sd.length = out.size() - begin;
    sd.crc32c = util::crc32c(out.data() + begin, sd.length);
    sd.elem_size = 1;
  }

  h.file_length = out.size();
  h.header_crc32c = delta_header_crc(h);
  std::memcpy(out.data(), &h, sizeof(h));
  return out;
}

void save_snapshot_delta(const Snapshot& snap, const Snapshot& base,
                         const std::string& path) {
  obs::Span span("svc.save_snapshot_delta");
  obs::counter("droplens_svc_snapshot_saves_total", {},
               "Snapshots saved to .dls files")
      .inc();
  write_file_atomically(serialize_snapshot_delta(snap, base), path);
}

std::shared_ptr<const Snapshot> load_snapshot_delta(const std::string& path,
                                                    const Snapshot& base,
                                                    uint64_t version) {
  obs::Span span("svc.load_snapshot_delta");
  obs::counter("droplens_svc_snapshot_delta_loads_total", {},
               "Snapshots reconstructed from delta .dls files")
      .inc();
  MappedFile map = MappedFile::open(path);
  if (map.size() < sizeof(SnapshotDeltaHeader)) {
    fail(SnapshotIoError::kTruncated,
         "'" + path + "' is " + std::to_string(map.size()) +
             " bytes, shorter than the delta header");
  }
  SnapshotDeltaHeader h;
  std::memcpy(&h, map.data(), sizeof(h));
  validate_delta_header(h, map.size());
  if (h.base_date_days != base.date().days()) {
    fail(SnapshotIoError::kBadInvariant,
         "delta declares base " + net::Date(h.base_date_days).to_string() +
             ", got " + base.date().to_string());
  }
  for (size_t i = 0; i < kSnapshotSegmentCount; ++i) {
    const SegmentDesc& sd = h.segments[i];
    if (util::crc32c(map.data() + sd.offset, sd.length) != sd.crc32c) {
      fail(SnapshotIoError::kBadSegmentCrc,
           "segment " +
               std::string(to_string(static_cast<SnapshotSegment>(i))) +
               ": CRC mismatch");
    }
  }

  // Reconstruct every segment into owned aligned storage, then view it like
  // the mmap loader views the file — same canonicality and value checks.
  auto holder = std::make_shared<PatchedSnapshot>();
  for (size_t i = 0; i < kSnapshotSegmentCount; ++i) {
    const SegmentDesc& sd = h.segments[i];
    std::string bytes =
        apply_patch(map.data() + sd.offset, sd.length, encode_segment(base, i),
                    kElemSizes[i], static_cast<SnapshotSegment>(i));
    holder->arrays[i].resize((bytes.size() + 7) / 8);
    std::memcpy(holder->arrays[i].data(), bytes.data(), bytes.size());
    holder->lengths[i] = bytes.size();
  }
  holder->snap = build_snapshot_views(
      version, net::Date(h.date_days), h.degraded, [&](size_t i) {
        return std::pair<const char*, uint64_t>(
            reinterpret_cast<const char*>(holder->arrays[i].data()),
            holder->lengths[i]);
      });
  return std::shared_ptr<const Snapshot>(holder, &holder->snap);
}

SnapshotDeltaHeader read_snapshot_delta_header(const std::string& path) {
  MappedFile map = MappedFile::open(path);
  if (map.size() < sizeof(SnapshotDeltaHeader)) {
    fail(SnapshotIoError::kTruncated,
         "'" + path + "' is " + std::to_string(map.size()) +
             " bytes, shorter than the delta header");
  }
  SnapshotDeltaHeader h;
  std::memcpy(&h, map.data(), sizeof(h));
  validate_delta_header(h, map.size());
  return h;
}

SnapshotFileKind snapshot_file_kind(const std::string& path) {
  MappedFile map = MappedFile::open(path);
  if (map.size() < sizeof(kSnapshotMagic) + sizeof(uint32_t)) {
    fail(SnapshotIoError::kTruncated,
         "'" + path + "' is " + std::to_string(map.size()) +
             " bytes, shorter than magic + version");
  }
  if (std::memcmp(map.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    fail(SnapshotIoError::kBadMagic, "bad magic");
  }
  uint32_t version;
  std::memcpy(&version, map.data() + sizeof(kSnapshotMagic), sizeof(version));
  switch (version) {
    case kSnapshotFormatVersion:
      return SnapshotFileKind::kKeyframe;
    case kSnapshotDeltaFormatVersion:
      return SnapshotFileKind::kDelta;
  }
  fail(SnapshotIoError::kBadVersion,
       "format version " + std::to_string(version) +
           " (this build speaks " + std::to_string(kSnapshotFormatVersion) +
           " and " + std::to_string(kSnapshotDeltaFormatVersion) + ")");
}

}  // namespace droplens::svc
