#include "svc/snapshot_io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <span>
#include <type_traits>
#include <utility>

#include "core/data_quality.hpp"
#include "drop/category.hpp"
#include "net/interval_set.hpp"
#include "net/segment_map.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rir/rir.hpp"
#include "util/crc32c.hpp"

namespace droplens::svc {

namespace {

using net::IntervalSet;
using Interval = IntervalSet::Interval;
using DropSegment = net::SegmentMap<Snapshot::DropInfo>::Segment;
using ByteSegment = net::SegmentMap<uint8_t>::Segment;

// The zero-copy contract: the on-disk element layouts are exactly the
// in-memory ones, so a view over mapped bytes is a view over real arrays.
// The writer zeroes padding explicitly; these asserts pin the layouts.
static_assert(std::is_trivially_copyable_v<Interval>);
static_assert(sizeof(Interval) == 16 && alignof(Interval) == 8);
static_assert(offsetof(Interval, end) == 8);
static_assert(std::is_trivially_copyable_v<DropSegment>);
static_assert(sizeof(DropSegment) == 24 && alignof(DropSegment) == 8);
static_assert(offsetof(DropSegment, value) == 16);
static_assert(sizeof(Snapshot::DropInfo) == 2);
static_assert(offsetof(Snapshot::DropInfo, incident) == 1);
static_assert(std::is_trivially_copyable_v<ByteSegment>);
static_assert(sizeof(ByteSegment) == 24 && alignof(ByteSegment) == 8);
static_assert(offsetof(ByteSegment, value) == 16);

constexpr uint32_t kElemSizes[kSnapshotSegmentCount] = {
    sizeof(Interval),    sizeof(Interval),    sizeof(Interval),
    sizeof(Interval),    sizeof(DropSegment), sizeof(ByteSegment),
    sizeof(ByteSegment),
};

/// Bits of Snapshot::degraded() that can be set: one per core::Feed.
constexpr uint8_t kFeedMask =
    static_cast<uint8_t>((1u << core::kFeedCount) - 1);
/// Bits a DropInfo::categories byte can carry: one per drop::Category.
constexpr uint8_t kCategoryMask =
    static_cast<uint8_t>((1u << drop::kAllCategories.size()) - 1);

[[noreturn]] void fail(SnapshotIoError code, const std::string& what) {
  throw SnapshotFormatError(code, "snapshot_io: " + what);
}

uint32_t header_crc(const SnapshotHeader& h) {
  SnapshotHeader copy = h;
  copy.header_crc32c = 0;
  return util::crc32c(&copy, sizeof(copy));
}

// --- writer ----------------------------------------------------------------

void append_intervals(std::string& out, std::span<const Interval> ivs) {
  // Interval has no padding; a straight byte copy is deterministic.
  out.append(reinterpret_cast<const char*>(ivs.data()), ivs.size_bytes());
}

void append_drop_segments(std::string& out,
                          std::span<const DropSegment> segs) {
  for (const DropSegment& s : segs) {
    char buf[sizeof(DropSegment)] = {};  // zero the 6 padding bytes
    std::memcpy(buf + 0, &s.begin, sizeof(s.begin));
    std::memcpy(buf + 8, &s.end, sizeof(s.end));
    buf[16] = static_cast<char>(s.value.categories);
    buf[17] = static_cast<char>(s.value.incident);
    out.append(buf, sizeof(buf));
  }
}

void append_byte_segments(std::string& out,
                          std::span<const ByteSegment> segs) {
  for (const ByteSegment& s : segs) {
    char buf[sizeof(ByteSegment)] = {};  // zero the 7 padding bytes
    std::memcpy(buf + 0, &s.begin, sizeof(s.begin));
    std::memcpy(buf + 8, &s.end, sizeof(s.end));
    buf[16] = static_cast<char>(s.value);
    out.append(buf, sizeof(buf));
  }
}

// --- mmap ------------------------------------------------------------------

class MappedFile {
 public:
  static MappedFile open(const std::string& path) {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      fail(SnapshotIoError::kIo,
           "open '" + path + "': " + std::strerror(errno));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      int err = errno;
      ::close(fd);
      fail(SnapshotIoError::kIo,
           "fstat '" + path + "': " + std::strerror(err));
    }
    size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      fail(SnapshotIoError::kTruncated, "'" + path + "' is empty");
    }
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps the file alive
    if (base == MAP_FAILED) {
      fail(SnapshotIoError::kIo,
           "mmap '" + path + "': " + std::strerror(errno));
    }
    return MappedFile(static_cast<const char*>(base), size);
  }

  MappedFile(MappedFile&& other) noexcept
      : base_(std::exchange(other.base_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      unmap();
      base_ = std::exchange(other.base_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() { unmap(); }

  const char* data() const { return base_; }
  size_t size() const { return size_; }

 private:
  MappedFile(const char* base, size_t size) : base_(base), size_(size) {}
  void unmap() {
    if (base_) ::munmap(const_cast<char*>(base_), size_);
  }

  const char* base_ = nullptr;
  size_t size_ = 0;
};

/// Control-block payload of a loaded snapshot: the Snapshot's views point
/// into `file`, so both live and die together.
struct MappedSnapshot {
  explicit MappedSnapshot(MappedFile f) : file(std::move(f)) {}
  MappedFile file;
  Snapshot snap;
};

// --- shared validation -----------------------------------------------------

/// Validate everything about a header that doesn't require payload access:
/// magic, version, CRC, and the segment table's exact accounting of a file
/// of `file_size` bytes.
void validate_header(const SnapshotHeader& h, uint64_t file_size) {
  if (std::memcmp(h.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    fail(SnapshotIoError::kBadMagic, "bad magic");
  }
  if (h.format_version != kSnapshotFormatVersion) {
    fail(SnapshotIoError::kBadVersion,
         "format version " + std::to_string(h.format_version) +
             " (this build speaks " + std::to_string(kSnapshotFormatVersion) +
             ")");
  }
  if (header_crc(h) != h.header_crc32c) {
    fail(SnapshotIoError::kBadHeaderCrc, "header CRC mismatch");
  }
  if (h.file_length > file_size) {
    fail(SnapshotIoError::kTruncated,
         "file is " + std::to_string(file_size) + " bytes, header declares " +
             std::to_string(h.file_length));
  }
  if (h.file_length < file_size) {
    fail(SnapshotIoError::kBadLayout,
         "trailing bytes past the declared file length");
  }
  if (h.degraded & ~kFeedMask) {
    fail(SnapshotIoError::kBadInvariant, "unknown degraded-feed bits");
  }
  // Strict sequential layout: each segment starts exactly where the
  // previous one ended, and the last ends at EOF. A corrupt length cannot
  // smuggle out-of-bounds reads or allocation — there is nothing to
  // allocate and nothing between or beyond the audited segments.
  uint64_t cursor = sizeof(SnapshotHeader);
  for (size_t i = 0; i < kSnapshotSegmentCount; ++i) {
    const SegmentDesc& sd = h.segments[i];
    std::string name(to_string(static_cast<SnapshotSegment>(i)));
    if (sd.elem_size != kElemSizes[i]) {
      fail(SnapshotIoError::kBadLayout, "segment " + name + ": element size " +
                                            std::to_string(sd.elem_size));
    }
    if (sd.offset != cursor) {
      fail(SnapshotIoError::kBadLayout,
           "segment " + name + ": offset " + std::to_string(sd.offset) +
               ", expected " + std::to_string(cursor));
    }
    if (sd.length % sd.elem_size != 0 || sd.length > file_size - cursor) {
      fail(SnapshotIoError::kBadLayout,
           "segment " + name + ": length " + std::to_string(sd.length));
    }
    cursor += sd.length;
  }
  if (cursor != file_size) {
    fail(SnapshotIoError::kBadLayout,
         "segments account for " + std::to_string(cursor) + " of " +
             std::to_string(file_size) + " bytes");
  }
}

template <typename T>
std::span<const T> segment_span(const MappedFile& map, const SegmentDesc& sd) {
  // Offsets are 8-byte aligned (validated) on a page-aligned base, and T is
  // trivially copyable, so viewing the mapped bytes as a T array is the
  // standard zero-copy read; the writer produced these exact bytes from
  // real T objects.
  return std::span<const T>(
      reinterpret_cast<const T*>(map.data() + sd.offset),
      sd.length / sizeof(T));
}

IntervalSet load_interval_set(const MappedFile& map, const SnapshotHeader& h,
                              SnapshotSegment seg) {
  std::span<const Interval> ivs = segment_span<Interval>(
      map, h.segments[static_cast<size_t>(seg)]);
  if (!IntervalSet::is_canonical(ivs)) {
    fail(SnapshotIoError::kBadInvariant,
         "segment " + std::string(to_string(seg)) +
             ": intervals not sorted/disjoint/bounded");
  }
  return IntervalSet::view(ivs);
}

template <typename T, typename CheckValue>
net::SegmentMap<T> load_segment_map(const MappedFile& map,
                                    const SnapshotHeader& h,
                                    SnapshotSegment seg, CheckValue&& check) {
  std::span<const typename net::SegmentMap<T>::Segment> segs =
      segment_span<typename net::SegmentMap<T>::Segment>(
          map, h.segments[static_cast<size_t>(seg)]);
  if (!net::SegmentMap<T>::is_canonical(segs)) {
    fail(SnapshotIoError::kBadInvariant,
         "segment " + std::string(to_string(seg)) +
             ": segments not sorted/disjoint/bounded");
  }
  for (const auto& s : segs) {
    if (!check(s.value)) {
      fail(SnapshotIoError::kBadInvariant,
           "segment " + std::string(to_string(seg)) + ": value out of range");
    }
  }
  return net::SegmentMap<T>::view(segs);
}

}  // namespace

std::string_view to_string(SnapshotIoError code) {
  switch (code) {
    case SnapshotIoError::kIo: return "io-error";
    case SnapshotIoError::kTruncated: return "truncated";
    case SnapshotIoError::kBadMagic: return "bad-magic";
    case SnapshotIoError::kBadVersion: return "bad-version";
    case SnapshotIoError::kBadHeaderCrc: return "bad-header-crc";
    case SnapshotIoError::kBadLayout: return "bad-layout";
    case SnapshotIoError::kBadSegmentCrc: return "bad-segment-crc";
    case SnapshotIoError::kBadInvariant: return "bad-invariant";
  }
  return "unknown";
}

std::string_view to_string(SnapshotSegment s) {
  switch (s) {
    case SnapshotSegment::kRouted: return "routed";
    case SnapshotSegment::kAs0: return "as0";
    case SnapshotSegment::kIrr: return "irr";
    case SnapshotSegment::kAllocated: return "allocated";
    case SnapshotSegment::kDrop: return "drop";
    case SnapshotSegment::kRov: return "rov";
    case SnapshotSegment::kRir: return "rir";
  }
  return "unknown";
}

std::string serialize_snapshot(const Snapshot& snap) {
  obs::Span span("svc.serialize_snapshot");
  std::string out(sizeof(SnapshotHeader), '\0');

  SnapshotHeader h{};
  std::memcpy(h.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
  h.format_version = kSnapshotFormatVersion;
  h.date_days = snap.date().days();
  h.degraded = snap.degraded();
  h.writer_version = snap.version();

  const auto seal = [&](SnapshotSegment seg, size_t payload_begin) {
    SegmentDesc& sd = h.segments[static_cast<size_t>(seg)];
    sd.offset = payload_begin;
    sd.length = out.size() - payload_begin;
    sd.crc32c = util::crc32c(out.data() + payload_begin, sd.length);
    sd.elem_size = kElemSizes[static_cast<size_t>(seg)];
  };

  size_t begin = out.size();
  append_intervals(out, snap.routed().intervals());
  seal(SnapshotSegment::kRouted, begin);
  begin = out.size();
  append_intervals(out, snap.as0().intervals());
  seal(SnapshotSegment::kAs0, begin);
  begin = out.size();
  append_intervals(out, snap.irr().intervals());
  seal(SnapshotSegment::kIrr, begin);
  begin = out.size();
  append_intervals(out, snap.allocated().intervals());
  seal(SnapshotSegment::kAllocated, begin);
  begin = out.size();
  append_drop_segments(out, snap.drop().segments());
  seal(SnapshotSegment::kDrop, begin);
  begin = out.size();
  append_byte_segments(out, snap.rov().segments());
  seal(SnapshotSegment::kRov, begin);
  begin = out.size();
  append_byte_segments(out, snap.rir().segments());
  seal(SnapshotSegment::kRir, begin);

  h.file_length = out.size();
  h.header_crc32c = header_crc(h);
  std::memcpy(out.data(), &h, sizeof(h));
  return out;
}

void save_snapshot(const Snapshot& snap, const std::string& path) {
  obs::Span span("svc.save_snapshot");
  obs::counter("droplens_svc_snapshot_saves_total", {},
               "Snapshots saved to .dls files")
      .inc();
  std::string bytes = serialize_snapshot(snap);
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    fail(SnapshotIoError::kIo,
         "open '" + tmp + "' for write: " + std::strerror(errno));
  }
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool ok = written == bytes.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    fail(SnapshotIoError::kIo, "write '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    int err = errno;
    std::remove(tmp.c_str());
    fail(SnapshotIoError::kIo,
         "rename '" + tmp + "' -> '" + path + "': " + std::strerror(err));
  }
}

std::shared_ptr<const Snapshot> load_snapshot(const std::string& path,
                                              uint64_t version) {
  obs::Span span("svc.load_snapshot");
  obs::counter("droplens_svc_snapshot_loads_total", {},
               "Snapshots mmap-loaded from .dls files")
      .inc();
  MappedFile map = MappedFile::open(path);
  if (map.size() < sizeof(SnapshotHeader)) {
    fail(SnapshotIoError::kTruncated,
         "'" + path + "' is " + std::to_string(map.size()) +
             " bytes, shorter than the header");
  }
  SnapshotHeader h;
  std::memcpy(&h, map.data(), sizeof(h));
  validate_header(h, map.size());
  for (size_t i = 0; i < kSnapshotSegmentCount; ++i) {
    const SegmentDesc& sd = h.segments[i];
    if (util::crc32c(map.data() + sd.offset, sd.length) != sd.crc32c) {
      fail(SnapshotIoError::kBadSegmentCrc,
           "segment " +
               std::string(to_string(static_cast<SnapshotSegment>(i))) +
               ": CRC mismatch");
    }
  }

  IntervalSet routed = load_interval_set(map, h, SnapshotSegment::kRouted);
  IntervalSet as0 = load_interval_set(map, h, SnapshotSegment::kAs0);
  IntervalSet irr = load_interval_set(map, h, SnapshotSegment::kIrr);
  IntervalSet allocated =
      load_interval_set(map, h, SnapshotSegment::kAllocated);
  auto drop = load_segment_map<Snapshot::DropInfo>(
      map, h, SnapshotSegment::kDrop, [](const Snapshot::DropInfo& v) {
        return (v.categories & ~kCategoryMask) == 0 && v.incident <= 1;
      });
  auto rov = load_segment_map<uint8_t>(
      map, h, SnapshotSegment::kRov, [](uint8_t v) {
        return v <= static_cast<uint8_t>(RovStatus::kUnrouted);
      });
  auto rir = load_segment_map<uint8_t>(
      map, h, SnapshotSegment::kRir,
      [](uint8_t v) { return v < rir::kAllRirs.size(); });

  // The views above point into `map`; hand the mapping to the control block
  // so snapshot and mapping share one lifetime. Moving a MappedFile moves
  // ownership, not the base address, so the views stay valid.
  auto holder = std::make_shared<MappedSnapshot>(std::move(map));
  holder->snap = Snapshot(version, net::Date(h.date_days), h.degraded,
                          std::move(routed), std::move(as0), std::move(irr),
                          std::move(allocated), std::move(drop),
                          std::move(rov), std::move(rir));
  return std::shared_ptr<const Snapshot>(holder, &holder->snap);
}

SnapshotHeader read_snapshot_header(const std::string& path) {
  // Reuse the mmap path: headers are one page anyway, and this guarantees
  // inspect and load agree on every check that doesn't touch payload.
  MappedFile map = MappedFile::open(path);
  if (map.size() < sizeof(SnapshotHeader)) {
    fail(SnapshotIoError::kTruncated,
         "'" + path + "' is " + std::to_string(map.size()) +
             " bytes, shorter than the header");
  }
  SnapshotHeader h;
  std::memcpy(&h, map.data(), sizeof(h));
  validate_header(h, map.size());
  return h;
}

}  // namespace droplens::svc
