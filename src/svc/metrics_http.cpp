#include "svc/metrics_http.hpp"

#include "obs/prometheus.hpp"
#include "util/error.hpp"

namespace droplens::svc {

namespace {

std::string http_response(std::string_view status, std::string_view type,
                          std::string_view body) {
  std::string out;
  out.reserve(128 + body.size());
  out.append("HTTP/1.0 ");
  out.append(status);
  out.append("\r\nContent-Type: ");
  out.append(type);
  out.append("\r\nContent-Length: ");
  out.append(std::to_string(body.size()));
  out.append("\r\nConnection: close\r\n\r\n");
  out.append(body);
  return out;
}

}  // namespace

size_t MetricsHttpService::message_size(std::string_view buffer) const {
  // A message is the request head through its terminating blank line. Bodies
  // are not consumed — any trailing bytes become an (unparseable) next head.
  size_t end = buffer.find("\r\n\r\n");
  if (end != std::string_view::npos) return end + 4;
  end = buffer.find("\n\n");  // tolerate bare-LF clients (nc, printf)
  if (end != std::string_view::npos) return end + 2;
  if (buffer.size() > kMaxHead) {
    throw ParseError("http: request head exceeds cap");
  }
  return 0;
}

std::string MetricsHttpService::serve(std::string_view message) {
  // Request line: METHOD SP PATH SP VERSION. Everything after the first
  // line (headers) is irrelevant to a fixed read-only endpoint.
  size_t eol = message.find_first_of("\r\n");
  std::string_view line =
      eol == std::string_view::npos ? message : message.substr(0, eol);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return http_response("400 Bad Request", "text/plain", "bad request\n");
  }
  std::string_view method = line.substr(0, sp1);
  std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Ignore query strings: /metrics?foo=bar still answers.
  path = path.substr(0, path.find('?'));
  if (method != "GET") {
    return http_response("405 Method Not Allowed", "text/plain",
                         "only GET is served\n");
  }
  if (path != "/metrics") {
    return http_response("404 Not Found", "text/plain",
                         "try /metrics\n");
  }
  return http_response("200 OK",
                       "text/plain; version=0.0.4; charset=utf-8",
                       obs::render_prometheus(registry_));
}

std::string MetricsHttpService::malformed_response(std::string_view /*head*/) {
  return http_response("400 Bad Request", "text/plain", "bad request\n");
}

}  // namespace droplens::svc
