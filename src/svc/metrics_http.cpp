#include "svc/metrics_http.hpp"

#include <cctype>

#include "obs/prometheus.hpp"
#include "util/error.hpp"

namespace droplens::svc {

namespace {

bool equals_ci(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// The value of header `name` (case-insensitive) in `head`, trimmed; empty
/// when absent. `head` includes the request line, which has no colon before
/// its first space and so never matches.
std::string_view find_header(std::string_view head, std::string_view name) {
  size_t pos = 0;
  while (pos < head.size()) {
    size_t eol = head.find('\n', pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    if (equals_ci(trim(line.substr(0, colon)), name)) {
      return trim(line.substr(colon + 1));
    }
  }
  return {};
}

/// Declared body length of the request whose head is `head`. Throws
/// ParseError on an unparseable value — the stream cannot be resynchronized
/// without knowing where the body ends.
size_t content_length(std::string_view head, size_t cap) {
  std::string_view value = find_header(head, "content-length");
  if (value.empty()) return 0;
  uint64_t n = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      throw ParseError("http: unparseable Content-Length");
    }
    n = n * 10 + static_cast<uint64_t>(c - '0');
    if (n > cap) throw ParseError("http: request body exceeds cap");
  }
  return static_cast<size_t>(n);
}

std::string http_response(std::string_view status, std::string_view type,
                          std::string_view body, bool keep_alive) {
  std::string out;
  out.reserve(128 + body.size());
  out.append("HTTP/1.1 ");
  out.append(status);
  out.append("\r\nContent-Type: ");
  out.append(type);
  out.append("\r\nContent-Length: ");
  out.append(std::to_string(body.size()));
  out.append(keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                        : "\r\nConnection: close\r\n\r\n");
  out.append(body);
  return out;
}

}  // namespace

size_t MetricsHttpService::message_size(std::string_view buffer) const {
  // A message is the head (request line through blank line) plus its
  // declared Content-Length body. Consuming the body is what keeps
  // keep-alive and pipelined peers in sync: leftover body bytes would be
  // parsed as the next request's head and poison the connection.
  size_t head_len = 0;
  size_t end = buffer.find("\r\n\r\n");
  if (end != std::string_view::npos) {
    head_len = end + 4;
  } else {
    end = buffer.find("\n\n");  // tolerate bare-LF clients (nc, printf)
    if (end != std::string_view::npos) head_len = end + 2;
  }
  if (head_len == 0) {
    if (buffer.size() > kMaxHead) {
      throw ParseError("http: request head exceeds cap");
    }
    return 0;
  }
  size_t body_len = content_length(buffer.substr(0, head_len), kMaxBody);
  if (buffer.size() < head_len + body_len) return 0;  // body still arriving
  return head_len + body_len;
}

std::string MetricsHttpService::serve(std::string_view message) {
  // Request line: METHOD SP PATH SP VERSION. Headers matter only for
  // Content-Length (already consumed by message_size) and Connection.
  size_t eol = message.find_first_of("\r\n");
  std::string_view line =
      eol == std::string_view::npos ? message : message.substr(0, eol);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return http_response("400 Bad Request", "text/plain", "bad request\n",
                         false);
  }
  std::string_view method = line.substr(0, sp1);
  std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);
  // Persistence follows the request's version defaults, overridable by an
  // explicit Connection header either way.
  std::string_view connection = find_header(message, "connection");
  bool keep_alive = equals_ci(connection, "keep-alive") ||
                    (version == "HTTP/1.1" && !equals_ci(connection, "close"));
  // Ignore query strings: /metrics?foo=bar still answers.
  path = path.substr(0, path.find('?'));
  if (method != "GET") {
    return http_response("405 Method Not Allowed", "text/plain",
                         "only GET is served\n", keep_alive);
  }
  if (path != "/metrics") {
    return http_response("404 Not Found", "text/plain", "try /metrics\n",
                         keep_alive);
  }
  return http_response("200 OK",
                       "text/plain; version=0.0.4; charset=utf-8",
                       obs::render_prometheus(registry_), keep_alive);
}

std::string MetricsHttpService::malformed_response(std::string_view head) {
  // message_size throws for exactly three reasons; re-derive which one so
  // the close is typed. A head that never completed within kMaxHead is
  // "too large" (431); a complete head whose declared body crosses kMaxBody
  // is 413; an unparseable Content-Length is a plain 400.
  const bool head_complete = head.find("\r\n\r\n") != std::string_view::npos ||
                             head.find("\n\n") != std::string_view::npos;
  if (!head_complete) {
    return http_response("431 Request Header Fields Too Large", "text/plain",
                         "request head exceeds cap\n", false);
  }
  try {
    content_length(head, kMaxBody);
  } catch (const ParseError& e) {
    if (std::string_view(e.what()).find("exceeds") !=
        std::string_view::npos) {
      return http_response("413 Payload Too Large", "text/plain",
                           "request body exceeds cap\n", false);
    }
  }
  return http_response("400 Bad Request", "text/plain", "bad request\n",
                       false);
}

MessageClass MetricsHttpService::classify(std::string_view /*message*/) const {
  return MessageClass::kControl;
}

std::string MetricsHttpService::overload_response(std::string_view /*msg*/) {
  return http_response("503 Service Unavailable", "text/plain",
                       "overloaded\n", false);
}

std::string MetricsHttpService::timeout_response() {
  return http_response("408 Request Timeout", "text/plain",
                       "deadline exceeded\n", false);
}

}  // namespace droplens::svc
