// Plain-HTTP front for the obs registry, riding the svc transport layer.
//
// Serves `GET /metrics` as a Prometheus text page (exposition format 0.0.4)
// so a scraper can point at droplensd without speaking the binary protocol.
// Deliberately minimal — one endpoint — but a real stream citizen: a
// message is the request head PLUS its declared Content-Length body, so a
// keep-alive scraper's next request starts exactly where the previous one
// ended and pipelined requests each get their response in order (stray body
// bytes used to be re-parsed as the next request's head, killing the
// connection after the first scrape). Responses carry Content-Length and
// honor the connection semantics of the request's HTTP version:
// keep-alive for HTTP/1.1 unless the client says `Connection: close`,
// close for HTTP/1.0 unless it says `Connection: keep-alive`. Request
// heads and bodies are capped; a peer that streams bytes without ever
// finishing a request gets a 400 and a closed connection.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "svc/transport.hpp"

namespace droplens::svc {

class MetricsHttpService : public Service {
 public:
  /// Longest accepted request head (request line + headers + blank line).
  static constexpr size_t kMaxHead = 8192;
  /// Longest accepted request body (a scraper has no business sending one,
  /// but consuming what arrives is what keeps the stream in sync).
  static constexpr size_t kMaxBody = 1 << 16;

  explicit MetricsHttpService(const obs::Registry& registry)
      : registry_(registry) {}

  size_t message_size(std::string_view buffer) const override;
  std::string serve(std::string_view message) override;
  /// Typed "too large" closes: 431 for a head that never completed within
  /// kMaxHead, 413 for a declared body beyond kMaxBody, 400 otherwise.
  std::string malformed_response(std::string_view head) override;
  /// Scrapes are the observability plane: kControl, shed last.
  MessageClass classify(std::string_view message) const override;
  /// 503 with Connection: close — typed "too busy".
  std::string overload_response(std::string_view message) override;
  /// 408 with Connection: close — typed "too slow".
  std::string timeout_response() override;

 private:
  const obs::Registry& registry_;
};

}  // namespace droplens::svc
