// Plain-HTTP front for the obs registry, riding the svc transport layer.
//
// Serves `GET /metrics` as a Prometheus text page (exposition format 0.0.4)
// so a scraper can point at droplensd without speaking the binary protocol.
// Deliberately minimal: one endpoint, HTTP/1.0 semantics, Connection: close
// on every response — the scraper reads Content-Length bytes and hangs up,
// which is exactly the lifecycle TcpServer's per-connection loop expects.
// Request heads are capped; a peer that streams bytes without ever
// finishing its header gets a 400 and a closed connection.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "svc/transport.hpp"

namespace droplens::svc {

class MetricsHttpService : public Service {
 public:
  /// Longest accepted request head (request line + headers + blank line).
  static constexpr size_t kMaxHead = 8192;

  explicit MetricsHttpService(const obs::Registry& registry)
      : registry_(registry) {}

  size_t message_size(std::string_view buffer) const override;
  std::string serve(std::string_view message) override;
  std::string malformed_response(std::string_view head) override;

 private:
  const obs::Registry& registry_;
};

}  // namespace droplens::svc
