// The query service's snapshot artifact.
//
// A Snapshot is the engine's answer to one date, compiled once into flat,
// immutable lookup structures and then shared read-only by every server
// thread: IntervalSets (already a sorted vector of disjoint ranges) for the
// boolean space fields, SegmentMaps for the valued ones (DROP categories,
// ROV status, administering RIR). Lookups are a handful of binary searches,
// no locks, no allocation.
//
// Semantics: valued fields answer at the query prefix's network address
// (the longest-match point, since paints go least-specific-first); boolean
// space fields answer "does the query prefix overlap this space". A day
// whose ingestion ledger marked feeds unavailable still compiles — the
// affected structures are empty and the feed's bit is set in `degraded`, so
// every response says how much to trust it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "core/data_quality.hpp"
#include "core/drop_index.hpp"
#include "core/study.hpp"
#include "net/interval_set.hpp"
#include "net/prefix.hpp"
#include "net/segment_map.hpp"
#include "rir/rir.hpp"

namespace droplens::svc {

/// The queryable fields, as bit positions of the request field mask.
enum class Field : uint8_t {
  kDrop = 0,            // DROP membership + category labels + incident flag
  kClassification = 1,  // primary classification bucket (drop::Category)
  kRov = 2,             // RFC 6811 status of the announced route(s)
  kAs0 = 3,             // covered by an AS0 ROA (any TAL)
  kIrr = 4,             // covered by a live IRR route object
  kRir = 5,             // delegation status + administering RIR
  kRouted = 6,          // overlaps BGP-announced space
};
inline constexpr uint8_t kFieldCount = 7;

constexpr uint8_t field_bit(Field f) {
  return static_cast<uint8_t>(uint8_t{1} << static_cast<uint8_t>(f));
}
inline constexpr uint8_t kAllFields = 0x7f;

/// Aggregate RFC 6811 status of a prefix's announcements on the snapshot
/// date. Invalid dominates (any invalid origin is worth surfacing), then
/// valid, then not-found; unrouted means no covering announcement at all.
enum class RovStatus : uint8_t {
  kValid = 0,
  kInvalid = 1,
  kNotFound = 2,
  kUnrouted = 3,
};

enum class RirStatus : uint8_t {
  kAllocated = 0,       // inside a live allocation
  kFreePool = 1,        // administered by an RIR, not allocated
  kUnadministered = 2,  // outside every RIR's administered space
};

/// No-category / no-RIR sentinel for the uint8 wire slots.
inline constexpr uint8_t kNoValue = 0xff;

/// One prefix's answer. Mirrors the wire record byte for byte (see
/// svc/protocol.hpp); fields outside the requested mask are left zeroed.
struct Answer {
  uint8_t status = 0;       // protocol QueryStatus (kOk / kWrongDate)
  uint8_t fields = 0;       // mask of fields actually answered
  bool drop_listed = false;
  bool incident = false;
  bool as0_covered = false;
  bool irr_registered = false;
  bool routed = false;
  uint8_t categories = 0;       // drop::CategorySet bits
  uint8_t bucket = kNoValue;    // primary drop::Category, kNoValue if none
  RovStatus rov = RovStatus::kUnrouted;
  RirStatus rir_status = RirStatus::kUnadministered;
  uint8_t rir = kNoValue;       // rir::Rir index, kNoValue if unadministered

  friend bool operator==(const Answer&, const Answer&) = default;
};

class Snapshot {
 public:
  /// Labels of the space covered by DROP listings.
  struct DropInfo {
    uint8_t categories = 0;  // drop::CategorySet bits (OR over listings)
    // 0/1. uint8_t rather than bool so a view over mmapped bytes can never
    // hold a trap value (reading a bool whose byte is not 0/1 is UB); the
    // loader rejects files with other values.
    uint8_t incident = 0;

    friend bool operator==(const DropInfo&, const DropInfo&) = default;
  };

  Snapshot() = default;

  /// Assemble a snapshot directly from its parts — the path the mmap loader
  /// (svc/snapshot_io.hpp) and tests use. Structures may be owned or views;
  /// SegmentMaps must already be finalized.
  Snapshot(uint64_t version, net::Date date, uint8_t degraded,
           net::IntervalSet routed, net::IntervalSet as0, net::IntervalSet irr,
           net::IntervalSet allocated, net::SegmentMap<DropInfo> drop,
           net::SegmentMap<uint8_t> rov, net::SegmentMap<uint8_t> rir)
      : version_(version),
        date_(date),
        degraded_(degraded),
        routed_(std::move(routed)),
        as0_(std::move(as0)),
        irr_(std::move(irr)),
        allocated_(std::move(allocated)),
        drop_(std::move(drop)),
        rov_(std::move(rov)),
        rir_(std::move(rir)) {
    build_indexes();
  }

  uint64_t version() const { return version_; }
  net::Date date() const { return date_; }
  /// Per-feed degradation bits: bit i set = core::Feed i was unavailable on
  /// this date, and the structures derived from it are empty.
  uint8_t degraded() const { return degraded_; }

  /// Answer `fields` for `p`. Never throws; lock-free and allocation-free.
  Answer lookup(const net::Prefix& p, uint8_t fields) const;

  /// Answer a batch: out[i] = lookup(prefixes[i], fields[i]), assembled
  /// from the substrates' batched (prefetching, branch-free) searches —
  /// byte-identical to per-query lookup() by construction: both paths share
  /// one assembly template and differ only in how the substrate answers are
  /// produced. All three spans must have equal length. Allocation-free.
  void lookup_batch(std::span<const net::Prefix> prefixes,
                    std::span<const uint8_t> fields,
                    std::span<Answer> out) const;

  /// lookup() forced through the substrates' plain std::upper_bound
  /// searches, bypassing every Eytzinger index — the oracle the
  /// differential scale tier cross-checks the fast paths against.
  Answer lookup_reference(const net::Prefix& p, uint8_t fields) const;

  /// Build the substrates' acceleration indexes (idempotent, cheap when
  /// already built). Every construction path calls this; it exists
  /// publicly for tests that assemble snapshots by hand.
  void build_indexes() {
    routed_.build_index();
    as0_.build_index();
    irr_.build_index();
    allocated_.build_index();
    drop_.build_index();
    rov_.build_index();
    rir_.build_index();
  }

  // Read access to the compiled structures, in on-disk segment order — the
  // spans the snapshot writer serializes (see svc/snapshot_io.hpp).
  const net::IntervalSet& routed() const { return routed_; }
  const net::IntervalSet& as0() const { return as0_; }
  const net::IntervalSet& irr() const { return irr_; }
  const net::IntervalSet& allocated() const { return allocated_; }
  const net::SegmentMap<DropInfo>& drop() const { return drop_; }
  const net::SegmentMap<uint8_t>& rov() const { return rov_; }
  const net::SegmentMap<uint8_t>& rir() const { return rir_; }

 private:
  friend std::shared_ptr<const Snapshot> compile_snapshot(
      const core::Study& study, const core::DropIndex& index, net::Date d,
      uint64_t version);

  uint64_t version_ = 0;
  net::Date date_;
  uint8_t degraded_ = 0;

  net::IntervalSet routed_;
  net::IntervalSet as0_;
  net::IntervalSet irr_;
  net::IntervalSet allocated_;
  net::SegmentMap<Snapshot::DropInfo> drop_;
  net::SegmentMap<uint8_t> rov_;  // RovStatus of announced space
  net::SegmentMap<uint8_t> rir_;  // administering rir::Rir index
};

/// Compile the study's state for day `d` into a Snapshot. Routes through the
/// Study's SnapshotCache / ThreadPool / DataQuality hooks when present, so a
/// warm engine compiles in the cost of a few interval intersections. The
/// result is deterministic: byte-identical for any thread count.
std::shared_ptr<const Snapshot> compile_snapshot(const core::Study& study,
                                                 const core::DropIndex& index,
                                                 net::Date d, uint64_t version);

}  // namespace droplens::svc
