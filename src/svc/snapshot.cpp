#include "svc/snapshot.hpp"

#include <algorithm>
#include <vector>

#include "core/engine.hpp"
#include "drop/category.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rpki/archive.hpp"
#include "rpki/tal.hpp"

namespace droplens::svc {

namespace {

constexpr uint8_t feed_bit(core::Feed f) {
  return static_cast<uint8_t>(uint8_t{1} << static_cast<uint8_t>(f));
}

/// Primary classification bucket: the first category (in kAllCategories
/// order) a prefix carries.
uint8_t primary_bucket(uint8_t category_bits) {
  for (drop::Category c : drop::kAllCategories) {
    if (category_bits & (uint8_t{1} << static_cast<int>(c))) {
      return static_cast<uint8_t>(c);
    }
  }
  return kNoValue;
}

}  // namespace

Answer Snapshot::lookup(const net::Prefix& p, uint8_t fields) const {
  Answer a;
  a.fields = fields & kAllFields;
  if (a.fields & (field_bit(Field::kDrop) | field_bit(Field::kClassification))) {
    if (const DropInfo* info = drop_.lookup(p)) {
      a.drop_listed = true;
      a.incident = info->incident;
      if (a.fields & field_bit(Field::kDrop)) a.categories = info->categories;
      if (a.fields & field_bit(Field::kClassification)) {
        a.bucket = primary_bucket(info->categories);
      }
    }
  }
  if (a.fields & field_bit(Field::kRov)) {
    const uint8_t* status = rov_.lookup(p);
    a.rov = status ? static_cast<RovStatus>(*status) : RovStatus::kUnrouted;
  }
  if (a.fields & field_bit(Field::kAs0)) a.as0_covered = as0_.intersects(p);
  if (a.fields & field_bit(Field::kIrr)) a.irr_registered = irr_.intersects(p);
  if (a.fields & field_bit(Field::kRouted)) a.routed = routed_.intersects(p);
  if (a.fields & field_bit(Field::kRir)) {
    if (const uint8_t* rir = rir_.lookup(p)) {
      a.rir = *rir;
      a.rir_status = allocated_.contains(net::Ipv4(
                         static_cast<uint32_t>(p.first())))
                         ? RirStatus::kAllocated
                         : RirStatus::kFreePool;
    } else {
      a.rir_status = RirStatus::kUnadministered;
    }
  }
  return a;
}

std::shared_ptr<const Snapshot> compile_snapshot(const core::Study& study,
                                                 const core::DropIndex& index,
                                                 net::Date d,
                                                 uint64_t version) {
  obs::Span span("svc.compile_snapshot");
  obs::counter("droplens_svc_snapshot_compiles_total", {},
               "Snapshots compiled for the query service")
      .inc();
  auto snap = std::make_shared<Snapshot>();
  snap->version_ = version;
  snap->date_ = d;

  using core::engine::SetPtr;

  // Boolean space fields: one immutable IntervalSet each. A null SetPtr —
  // ledger-unavailable day or failed substrate computation — leaves the set
  // empty and flags the feed.
  if (SetPtr routed = core::engine::routed_space(study, d)) {
    snap->routed_ = *routed;
  } else {
    snap->degraded_ |= feed_bit(core::Feed::kBgpUpdates);
  }
  if (SetPtr allocated = core::engine::allocated_space(study, d)) {
    snap->allocated_ = *allocated;
  } else {
    snap->degraded_ |= feed_bit(core::Feed::kDelegations);
  }
  if (SetPtr as0 = core::engine::signed_space(study, d, rpki::TalSet::all(),
                                        rpki::RoaArchive::Filter::kAs0Only)) {
    snap->as0_ = *as0;
  } else {
    snap->degraded_ |= feed_bit(core::Feed::kRoas);
  }
  if (SetPtr irr = core::engine::irr_space(study, d)) {
    snap->irr_ = *irr;
  } else {
    snap->degraded_ |= feed_bit(core::Feed::kIrr);
  }

  // DROP labels: OR the categories of every listing covering a point, so
  // overlapping listings answer with their label union (order-independent).
  if (core::engine::day_available(study, core::Feed::kDropFeed, d)) {
    for (const core::DropEntry& entry : index.entries()) {
      if (!study.drop.listed_on(entry.prefix, d)) continue;
      Snapshot::DropInfo info;
      info.categories = 0;
      for (drop::Category c : drop::kAllCategories) {
        if (entry.categories.has(c)) {
          info.categories |= uint8_t{1} << static_cast<int>(c);
        }
      }
      info.incident = entry.incident;
      snap->drop_.merge(entry.prefix, info,
                        [](const std::optional<Snapshot::DropInfo>& existing,
                           const Snapshot::DropInfo& v) {
                          if (!existing) return v;
                          Snapshot::DropInfo merged = *existing;
                          merged.categories |= v.categories;
                          merged.incident |= v.incident;
                          return merged;
                        });
    }
  } else {
    snap->degraded_ |= feed_bit(core::Feed::kDropFeed);
  }
  snap->drop_.finalize();

  // ROV paint: per announced prefix, the aggregate RFC 6811 status of its
  // origins that day. Painted least-specific-first so a point lookup gives
  // the most specific covering announcement — router longest-match. The
  // validation fan-out writes to slot i; painting is sequential in index
  // order, keeping the artifact byte-identical for any thread count.
  const bool bgp_ok =
      (snap->degraded_ & feed_bit(core::Feed::kBgpUpdates)) == 0;
  const bool roas_ok = core::engine::day_available(study, core::Feed::kRoas, d);
  if (!roas_ok) snap->degraded_ |= feed_bit(core::Feed::kRoas);
  if (bgp_ok) {
    std::vector<net::Prefix> announced = study.fleet.announced_prefixes_on(d);
    std::stable_sort(announced.begin(), announced.end(),
                     [](const net::Prefix& a, const net::Prefix& b) {
                       return a.length() < b.length();
                     });
    std::vector<uint8_t> status(announced.size(),
                                static_cast<uint8_t>(RovStatus::kNotFound));
    if (roas_ok) {
      core::engine::parallel_for(study, announced.size(), [&](size_t i) {
        RovStatus worst = RovStatus::kNotFound;
        for (net::Asn origin : study.fleet.origins_on(announced[i], d)) {
          switch (study.roas.validate_route(announced[i], origin, d)) {
            case rpki::Validity::kInvalid:
              worst = RovStatus::kInvalid;
              break;
            case rpki::Validity::kValid:
              if (worst != RovStatus::kInvalid) worst = RovStatus::kValid;
              break;
            case rpki::Validity::kNotFound:
              break;
          }
          if (worst == RovStatus::kInvalid) break;
        }
        status[i] = static_cast<uint8_t>(worst);
      });
    }
    for (size_t i = 0; i < announced.size(); ++i) {
      snap->rov_.assign(announced[i], status[i]);
    }
  }
  snap->rov_.finalize();

  // Administering RIR: painted from the static administered blocks (they
  // are disjoint across RIRs, so paint order is irrelevant).
  for (rir::Rir r : rir::kAllRirs) {
    for (const net::IntervalSet::Interval& iv :
         study.registry.administered(r).intervals()) {
      snap->rir_.assign(iv.begin, iv.end, static_cast<uint8_t>(r));
    }
  }
  snap->rir_.finalize();

  return snap;
}

}  // namespace droplens::svc
