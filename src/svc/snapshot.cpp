#include "svc/snapshot.hpp"

#include <algorithm>
#include <vector>

#include "core/engine.hpp"
#include "drop/category.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rpki/archive.hpp"
#include "rpki/tal.hpp"

namespace droplens::svc {

namespace {

constexpr uint8_t feed_bit(core::Feed f) {
  return static_cast<uint8_t>(uint8_t{1} << static_cast<uint8_t>(f));
}

/// Primary classification bucket: the first category (in kAllCategories
/// order) a prefix carries.
uint8_t primary_bucket(uint8_t category_bits) {
  for (drop::Category c : drop::kAllCategories) {
    if (category_bits & (uint8_t{1} << static_cast<int>(c))) {
      return static_cast<uint8_t>(c);
    }
  }
  return kNoValue;
}

/// One assembly routine for every lookup flavour. `sub` supplies the seven
/// substrate answers; the scalar, reference, and batched paths plug in
/// different providers, so their answers can only differ if a substrate
/// search itself differs — exactly what the differential tests pin.
template <typename Sub>
Answer assemble_answer(uint8_t fields, const Sub& sub) {
  Answer a;
  a.fields = fields & kAllFields;
  if (a.fields & (field_bit(Field::kDrop) | field_bit(Field::kClassification))) {
    if (const Snapshot::DropInfo* info = sub.drop_info()) {
      a.drop_listed = true;
      a.incident = info->incident;
      if (a.fields & field_bit(Field::kDrop)) a.categories = info->categories;
      if (a.fields & field_bit(Field::kClassification)) {
        a.bucket = primary_bucket(info->categories);
      }
    }
  }
  if (a.fields & field_bit(Field::kRov)) {
    const uint8_t* status = sub.rov_status();
    a.rov = status ? static_cast<RovStatus>(*status) : RovStatus::kUnrouted;
  }
  if (a.fields & field_bit(Field::kAs0)) a.as0_covered = sub.as0();
  if (a.fields & field_bit(Field::kIrr)) a.irr_registered = sub.irr();
  if (a.fields & field_bit(Field::kRouted)) a.routed = sub.routed();
  if (a.fields & field_bit(Field::kRir)) {
    if (const uint8_t* rir = sub.rir_value()) {
      a.rir = *rir;
      a.rir_status = sub.allocated_at_first() ? RirStatus::kAllocated
                                              : RirStatus::kFreePool;
    } else {
      a.rir_status = RirStatus::kUnadministered;
    }
  }
  return a;
}

/// Per-query provider over the live structures; kReference forces the
/// plain std::upper_bound searches.
template <bool kReference>
struct ScalarSub {
  const Snapshot& s;
  const net::Prefix& p;

  const Snapshot::DropInfo* drop_info() const {
    return kReference ? s.drop().lookup_reference(p.first())
                      : s.drop().lookup(p);
  }
  const uint8_t* rov_status() const {
    return kReference ? s.rov().lookup_reference(p.first()) : s.rov().lookup(p);
  }
  const uint8_t* rir_value() const {
    return kReference ? s.rir().lookup_reference(p.first()) : s.rir().lookup(p);
  }
  bool as0() const {
    return kReference ? s.as0().intersects_reference(p) : s.as0().intersects(p);
  }
  bool irr() const {
    return kReference ? s.irr().intersects_reference(p) : s.irr().intersects(p);
  }
  bool routed() const {
    return kReference ? s.routed().intersects_reference(p)
                      : s.routed().intersects(p);
  }
  bool allocated_at_first() const {
    net::Ipv4 first(static_cast<uint32_t>(p.first()));
    return kReference ? s.allocated().contains_reference(first)
                      : s.allocated().contains(first);
  }
};

/// Provider over one batch lane's precomputed substrate answers.
struct LaneSub {
  const Snapshot::DropInfo* drop_v;
  const uint8_t* rov_v;
  const uint8_t* rir_v;
  bool as0_v, irr_v, routed_v, alloc_v;

  const Snapshot::DropInfo* drop_info() const { return drop_v; }
  const uint8_t* rov_status() const { return rov_v; }
  const uint8_t* rir_value() const { return rir_v; }
  bool as0() const { return as0_v; }
  bool irr() const { return irr_v; }
  bool routed() const { return routed_v; }
  bool allocated_at_first() const { return alloc_v; }
};

}  // namespace

Answer Snapshot::lookup(const net::Prefix& p, uint8_t fields) const {
  return assemble_answer(fields, ScalarSub<false>{*this, p});
}

Answer Snapshot::lookup_reference(const net::Prefix& p, uint8_t fields) const {
  return assemble_answer(fields, ScalarSub<true>{*this, p});
}

void Snapshot::lookup_batch(std::span<const net::Prefix> prefixes,
                            std::span<const uint8_t> fields,
                            std::span<Answer> out) const {
  assert(prefixes.size() == fields.size() && prefixes.size() == out.size());
  // Chunked so the per-substrate scratch stays on the stack: run each
  // requested substrate's batched search over the whole chunk (a stripe of
  // independent, prefetched descents), then assemble per lane.
  constexpr size_t kChunk = 512;
  uint64_t firsts[kChunk];
  const DropInfo* drop_v[kChunk];
  const uint8_t* rov_v[kChunk];
  const uint8_t* rir_v[kChunk];
  uint8_t as0_v[kChunk], irr_v[kChunk], routed_v[kChunk], alloc_v[kChunk];
  for (size_t base = 0; base < prefixes.size(); base += kChunk) {
    const size_t len = std::min(kChunk, prefixes.size() - base);
    uint8_t want = 0;
    for (size_t j = 0; j < len; ++j) want |= fields[base + j];
    want &= kAllFields;
    for (size_t j = 0; j < len; ++j) firsts[j] = prefixes[base + j].first();
    const std::span<const uint64_t> first_keys(firsts, len);
    const std::span<const net::Prefix> chunk = prefixes.subspan(base, len);
    // Unrequested substrates zero-fill their lanes so LaneSub construction
    // below never reads an indeterminate slot (assembly still ignores them
    // per-lane).
    if (want &
        (field_bit(Field::kDrop) | field_bit(Field::kClassification))) {
      drop_.lookup_batch(first_keys, drop_v);
    } else {
      std::fill_n(drop_v, len, nullptr);
    }
    if (want & field_bit(Field::kRov)) {
      rov_.lookup_batch(first_keys, rov_v);
    } else {
      std::fill_n(rov_v, len, nullptr);
    }
    if (want & field_bit(Field::kRir)) {
      rir_.lookup_batch(first_keys, rir_v);
      allocated_.contains_batch(first_keys, alloc_v);
    } else {
      std::fill_n(rir_v, len, nullptr);
      std::fill_n(alloc_v, len, uint8_t{0});
    }
    if (want & field_bit(Field::kAs0)) {
      as0_.intersects_batch(chunk, as0_v);
    } else {
      std::fill_n(as0_v, len, uint8_t{0});
    }
    if (want & field_bit(Field::kIrr)) {
      irr_.intersects_batch(chunk, irr_v);
    } else {
      std::fill_n(irr_v, len, uint8_t{0});
    }
    if (want & field_bit(Field::kRouted)) {
      routed_.intersects_batch(chunk, routed_v);
    } else {
      std::fill_n(routed_v, len, uint8_t{0});
    }
    for (size_t j = 0; j < len; ++j) {
      // Lanes only read the substrates their own field mask requested —
      // which the chunk's `want` union covers, so those slots are filled.
      out[base + j] = assemble_answer(
          fields[base + j],
          LaneSub{drop_v[j], rov_v[j], rir_v[j], as0_v[j] != 0, irr_v[j] != 0,
                  routed_v[j] != 0, alloc_v[j] != 0});
    }
  }
}

std::shared_ptr<const Snapshot> compile_snapshot(const core::Study& study,
                                                 const core::DropIndex& index,
                                                 net::Date d,
                                                 uint64_t version) {
  obs::Span span("svc.compile_snapshot");
  obs::counter("droplens_svc_snapshot_compiles_total", {},
               "Snapshots compiled for the query service")
      .inc();
  auto snap = std::make_shared<Snapshot>();
  snap->version_ = version;
  snap->date_ = d;

  using core::engine::SetPtr;

  // Boolean space fields: one immutable IntervalSet each. A null SetPtr —
  // ledger-unavailable day or failed substrate computation — leaves the set
  // empty and flags the feed.
  if (SetPtr routed = core::engine::routed_space(study, d)) {
    snap->routed_ = *routed;
  } else {
    snap->degraded_ |= feed_bit(core::Feed::kBgpUpdates);
  }
  if (SetPtr allocated = core::engine::allocated_space(study, d)) {
    snap->allocated_ = *allocated;
  } else {
    snap->degraded_ |= feed_bit(core::Feed::kDelegations);
  }
  if (SetPtr as0 = core::engine::signed_space(study, d, rpki::TalSet::all(),
                                        rpki::RoaArchive::Filter::kAs0Only)) {
    snap->as0_ = *as0;
  } else {
    snap->degraded_ |= feed_bit(core::Feed::kRoas);
  }
  if (SetPtr irr = core::engine::irr_space(study, d)) {
    snap->irr_ = *irr;
  } else {
    snap->degraded_ |= feed_bit(core::Feed::kIrr);
  }

  // DROP labels: OR the categories of every listing covering a point, so
  // overlapping listings answer with their label union (order-independent).
  if (core::engine::day_available(study, core::Feed::kDropFeed, d)) {
    for (const core::DropEntry& entry : index.entries()) {
      if (!study.drop.listed_on(entry.prefix, d)) continue;
      Snapshot::DropInfo info;
      info.categories = 0;
      for (drop::Category c : drop::kAllCategories) {
        if (entry.categories.has(c)) {
          info.categories |= uint8_t{1} << static_cast<int>(c);
        }
      }
      info.incident = entry.incident;
      snap->drop_.merge(entry.prefix, info,
                        [](const std::optional<Snapshot::DropInfo>& existing,
                           const Snapshot::DropInfo& v) {
                          if (!existing) return v;
                          Snapshot::DropInfo merged = *existing;
                          merged.categories |= v.categories;
                          merged.incident |= v.incident;
                          return merged;
                        });
    }
  } else {
    snap->degraded_ |= feed_bit(core::Feed::kDropFeed);
  }
  snap->drop_.finalize();

  // ROV paint: per announced prefix, the aggregate RFC 6811 status of its
  // origins that day. Painted least-specific-first so a point lookup gives
  // the most specific covering announcement — router longest-match. The
  // validation fan-out writes to slot i; painting is sequential in index
  // order, keeping the artifact byte-identical for any thread count.
  const bool bgp_ok =
      (snap->degraded_ & feed_bit(core::Feed::kBgpUpdates)) == 0;
  const bool roas_ok = core::engine::day_available(study, core::Feed::kRoas, d);
  if (!roas_ok) snap->degraded_ |= feed_bit(core::Feed::kRoas);
  if (bgp_ok) {
    std::vector<net::Prefix> announced = study.fleet.announced_prefixes_on(d);
    std::stable_sort(announced.begin(), announced.end(),
                     [](const net::Prefix& a, const net::Prefix& b) {
                       return a.length() < b.length();
                     });
    std::vector<uint8_t> status(announced.size(),
                                static_cast<uint8_t>(RovStatus::kNotFound));
    if (roas_ok) {
      core::engine::parallel_for(study, announced.size(), [&](size_t i) {
        RovStatus worst = RovStatus::kNotFound;
        for (net::Asn origin : study.fleet.origins_on(announced[i], d)) {
          switch (study.roas.validate_route(announced[i], origin, d)) {
            case rpki::Validity::kInvalid:
              worst = RovStatus::kInvalid;
              break;
            case rpki::Validity::kValid:
              if (worst != RovStatus::kInvalid) worst = RovStatus::kValid;
              break;
            case rpki::Validity::kNotFound:
              break;
          }
          if (worst == RovStatus::kInvalid) break;
        }
        status[i] = static_cast<uint8_t>(worst);
      });
    }
    for (size_t i = 0; i < announced.size(); ++i) {
      snap->rov_.assign(announced[i], status[i]);
    }
  }
  snap->rov_.finalize();

  // Administering RIR: painted from the static administered blocks (they
  // are disjoint across RIRs, so paint order is irrelevant).
  for (rir::Rir r : rir::kAllRirs) {
    for (const net::IntervalSet::Interval& iv :
         study.registry.administered(r).intervals()) {
      snap->rir_.assign(iv.begin, iv.end, static_cast<uint8_t>(r));
    }
  }
  snap->rir_.finalize();

  // The interval sets were copied from the engine's cached (index-less)
  // sets; the finalize() calls above already indexed the segment maps.
  snap->build_indexes();

  return snap;
}

}  // namespace droplens::svc
