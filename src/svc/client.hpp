// Synchronous client for the query service.
//
// Wraps any Connection (loopback or TCP) with encode/roundtrip/decode and
// transparent batching: query() splits oversized batches into kMaxBatch
// frames and stitches the responses back together. Server-side errors
// (malformed frame, no snapshot) surface as std::runtime_error.
#pragma once

#include <string_view>
#include <vector>

#include "svc/protocol.hpp"
#include "svc/transport.hpp"

namespace droplens::svc {

class Client {
 public:
  explicit Client(Connection& connection) : connection_(connection) {}

  /// Answer one prefix. Throws std::runtime_error on transport failure or a
  /// server error frame.
  Answer lookup(net::Date date, const net::Prefix& prefix,
                uint8_t fields = kAllFields);

  /// Answer a batch, splitting into kMaxBatch-sized frames as needed.
  /// answers[i] corresponds to queries[i]; snapshot_version/date/degraded
  /// come from the last frame (a reload mid-batch shows up as answers with
  /// differing per-frame versions — re-query if that matters).
  QueryResponse query(const std::vector<Query>& queries);

  /// Status of one prefix across every day in [begin, end] (inclusive), in
  /// one server-side pass — run-length-encoded on transitions, so a stable
  /// prefix costs one run however long the window. Requires a server in
  /// store mode; others answer with an error frame (thrown here).
  RangeResponse range(net::Date begin, net::Date end,
                      const net::Prefix& prefix, uint8_t fields = kAllFields);

  /// Fetch the server's observability counters.
  ServerStats stats();

  /// Round-trip one live-follow subscribe: sends `payload` (encoded by
  /// stream::encode_subscribe) as a kSubscribeRequest and returns the raw
  /// kDeltaResponse payload for stream::decode_delta. Raw bytes in, raw
  /// bytes out, so svc stays independent of the streaming layer —
  /// stream::Subscriber is the typed wrapper.
  std::string subscribe_raw(std::string_view payload);

 private:
  /// Roundtrip one encoded frame, expecting `want` back; error frames and
  /// type mismatches throw std::runtime_error.
  std::string_view expect(const std::string& request, FrameType want,
                          std::string& response_storage);

  Connection& connection_;
};

}  // namespace droplens::svc
