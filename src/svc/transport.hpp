// Transport layer of the query service.
//
// A Service is one protocol endpoint: it knows how to delimit messages in a
// byte stream (length-prefixed frames for the binary protocol, newline-
// terminated lines for whois) and how to serve one message. Transports move
// bytes and know nothing else — so the binary query server and the whois
// front ride the same server core:
//
//   LoopbackConnection   in-process, deterministic; what tests and the
//                        service bench drive
//   TcpServer            POSIX TCP daemon: accept loop + one thread per
//                        connection, each running the read/delimit/serve
//                        loop against the shared Service
//   TcpClientConnection  blocking client socket with a response framer
//
// Service implementations must be safe to call from many transport threads
// concurrently; serve() must never throw (protocol errors are responses).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace droplens::svc {

class Service {
 public:
  virtual ~Service() = default;

  /// Size of the first complete message at the head of `buffer`; 0 when more
  /// bytes are needed. Throws ParseError when the head can never become a
  /// valid message — the transport then sends malformed_response() and
  /// closes, since the stream cannot be resynchronized.
  virtual size_t message_size(std::string_view buffer) const = 0;

  /// Serve one complete message. Must not throw; must be thread-safe.
  virtual std::string serve(std::string_view message) = 0;

  /// The final response for an undelimitable stream head.
  virtual std::string malformed_response(std::string_view head) = 0;
};

/// A synchronous request/response channel, as used by svc::Client.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Send one message, return the service's response. Throws
  /// std::runtime_error on transport failure.
  virtual std::string roundtrip(std::string_view message) = 0;
};

/// In-process transport: a roundtrip is a direct call into the service.
/// Deterministic and allocation-light — the reference transport for tests
/// and benchmarks.
class LoopbackConnection : public Connection {
 public:
  explicit LoopbackConnection(Service& service) : service_(service) {}

  std::string roundtrip(std::string_view message) override {
    return service_.serve(message);
  }

 private:
  Service& service_;
};

/// Client-side response delimiter: same contract as Service::message_size.
using Framer = std::function<size_t(std::string_view)>;

/// Blocking TCP daemon on 127.0.0.1. Port 0 binds an ephemeral port
/// (read it back via port()). One accept thread; one thread per connection.
class TcpServer {
 public:
  /// Throws std::runtime_error if the socket cannot be bound.
  explicit TcpServer(Service& service, uint16_t port = 0);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  uint16_t port() const { return port_; }

  /// Connections accepted over the server's lifetime.
  size_t connections_accepted() const { return accepted_.load(); }

  /// Stop accepting, shut down open connections, join all threads.
  /// Idempotent; also run by the destructor.
  void stop();

 private:
  struct ConnectionSlot {
    int fd = -1;
    std::thread thread;
  };

  void accept_loop();
  void connection_loop(ConnectionSlot* slot);

  Service& service_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> accepted_{0};
  std::thread acceptor_;
  std::mutex mu_;
  std::vector<std::unique_ptr<ConnectionSlot>> connections_;
};

/// Blocking client socket to a TcpServer. `framer` delimits responses
/// (svc::frame_size for the binary protocol, whois_response_size for whois).
class TcpClientConnection : public Connection {
 public:
  /// Throws std::runtime_error if the connection cannot be established.
  TcpClientConnection(const std::string& host, uint16_t port, Framer framer);
  ~TcpClientConnection() override;

  TcpClientConnection(const TcpClientConnection&) = delete;
  TcpClientConnection& operator=(const TcpClientConnection&) = delete;

  std::string roundtrip(std::string_view message) override;

 private:
  int fd_ = -1;
  Framer framer_;
  std::string buffer_;
};

}  // namespace droplens::svc
