// Transport layer of the query service.
//
// A Service is one protocol endpoint: it knows how to delimit messages in a
// byte stream (length-prefixed frames for the binary protocol, newline-
// terminated lines for whois, head+body requests for HTTP) and how to serve
// one message. Transports move bytes and know nothing else — so the binary
// query server, the whois front, and the metrics HTTP front all ride the
// same server core:
//
//   LoopbackConnection   in-process, deterministic; what tests and the
//                        service bench drive
//   TcpServer            POSIX TCP daemon: accept loop + one thread per
//                        connection, each running the read/delimit/serve
//                        loop against the shared Service
//   EpollServer          (epoll_transport.hpp) fixed pool of event-loop
//                        threads multiplexing nonblocking sockets — the
//                        hardened transport for untrusted networks
//   TcpClientConnection  blocking client socket with a response framer
//
// Service implementations must be safe to call from many transport threads
// concurrently; serve() must never throw (protocol errors are responses).
//
// Robustness semantics are part of the transport contract, not an add-on:
// both servers share ListenerOptions (backlog, port), a connection cap with
// a typed overload reply, idle/read deadlines with a typed timeout reply,
// and a TransportCounters block that makes every limit, shed decision, and
// disconnect reason visible as obs::Registry instruments.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace droplens::svc {

/// Priority class of one complete message, as reported by the Service.
/// Under overload the transport sheds kBulk first, kNormal next, and
/// kControl last — so the stats/metrics ops that let an operator watch the
/// server defend itself are the last thing to go dark.
enum class MessageClass : uint8_t { kBulk = 0, kNormal = 1, kControl = 2 };
inline constexpr size_t kMessageClassCount = 3;

/// Why a transport closed a connection. Each reason is a labelled series of
/// droplens_transport_disconnects_total.
enum class DisconnectReason : uint8_t {
  kPeerClosed = 0,   // orderly EOF or reset from the peer
  kMalformed,        // Service::message_size threw (unresynchronizable head)
  kIdleTimeout,      // no bytes and no pending work for idle_timeout_ms
  kReadDeadline,     // a partial message outlived read_deadline_ms
  kWriteDeadline,    // queued response bytes outlived write_deadline_ms
  kWriteOverflow,    // per-connection write queue crossed its watermark
  kShed,             // load shedding closed it (no typed reply available)
  kServerStop,       // stop() tore it down
  kError,            // read/write syscall failure
};
inline constexpr size_t kDisconnectReasonCount = 9;
const char* disconnect_reason_name(DisconnectReason r);

class Service {
 public:
  virtual ~Service() = default;

  /// Size of the first complete message at the head of `buffer`; 0 when more
  /// bytes are needed. Throws ParseError when the head can never become a
  /// valid message — the transport then sends malformed_response() and
  /// closes, since the stream cannot be resynchronized.
  virtual size_t message_size(std::string_view buffer) const = 0;

  /// Serve one complete message. Must not throw; must be thread-safe.
  virtual std::string serve(std::string_view message) = 0;

  /// Serve with the request's trace context — what transports call. The
  /// default forwards to the 1-arg serve; services that want sub-stage
  /// timings on the trace (svc::Server marks decode/answer) override this
  /// and keep the 1-arg form as the plain entry point. `ctx` may be inert;
  /// every stage call on it is then a no-op.
  virtual std::string serve(std::string_view message, obs::SpanContext& ctx) {
    (void)ctx;
    return serve(message);
  }

  /// The final response for an undelimitable stream head.
  virtual std::string malformed_response(std::string_view head) = 0;

  /// Shed priority of one complete message. Default: everything kNormal.
  virtual MessageClass classify(std::string_view /*message*/) const {
    return MessageClass::kNormal;
  }

  /// The typed reply for a request refused under overload — either a shed
  /// message (passed in) or a connection refused at the cap (empty view).
  /// An empty reply tells the transport to close without writing.
  virtual std::string overload_response(std::string_view /*message*/) {
    return {};
  }

  /// The typed reply written (best effort) before a deadline/idle close.
  /// An empty reply closes silently.
  virtual std::string timeout_response() { return {}; }
};

/// A synchronous request/response channel, as used by svc::Client.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Send one message, return the service's response. Throws
  /// std::runtime_error on transport failure.
  virtual std::string roundtrip(std::string_view message) = 0;
};

/// In-process transport: a roundtrip is a direct call into the service.
/// Deterministic and allocation-light — the reference transport for tests
/// and benchmarks.
class LoopbackConnection : public Connection {
 public:
  explicit LoopbackConnection(Service& service) : service_(service) {}

  std::string roundtrip(std::string_view message) override {
    return service_.serve(message);
  }

 private:
  Service& service_;
};

/// Client-side response delimiter: same contract as Service::message_size.
using Framer = std::function<size_t(std::string_view)>;

/// Listening-socket parameters shared by both transports. Port 0 binds an
/// ephemeral port (read it back via port()).
struct ListenerOptions {
  uint16_t port = 0;
  /// listen(2) backlog — the kernel's queue of not-yet-accepted
  /// connections. Was a hardcoded 64; floods deeper than the backlog now
  /// get kernel-side SYN drops instead of silently tuned behavior.
  int backlog = 128;
};

/// Knobs shared by both transports. Fields marked (epoll) are inert on the
/// thread-per-connection TcpServer, which cannot observe write-queue depth
/// or global in-flight load from inside a blocking read.
struct TransportOptions {
  ListenerOptions listen;
  /// Label for this server's obs series ({listener="name"}); empty = none.
  std::string name;
  /// Hard cap on concurrently open connections; excess accepts get the
  /// service's overload_response() (best effort) and an immediate close.
  /// 0 = unlimited.
  size_t max_conns = 0;
  /// Close a connection with no activity — no bytes arriving, no write
  /// progress — after this long. A pure inactivity backstop: it bounds even
  /// a stalled partial message or an undrained response queue when the
  /// sharper read/write deadlines are not configured. 0 = never.
  uint32_t idle_timeout_ms = 0;
  /// A partial message at the head of the buffer must complete within this
  /// deadline or the connection is closed with a typed timeout reply —
  /// the anti-slowloris knob. 0 = never.
  uint32_t read_deadline_ms = 0;
  /// (epoll) Queued response bytes must drain within this deadline. 0 = never.
  uint32_t write_deadline_ms = 0;
  /// (epoll) Per-connection write-queue watermark in bytes; a reader slow
  /// enough to queue more than this is disconnected instead of ballooning
  /// memory.
  size_t max_write_buffer = 4u << 20;
  /// (epoll) Load-shedding pivot: with max_inflight = M, kBulk messages are
  /// shed once in-flight work reaches max(1, M/2), kNormal at M, kControl
  /// at 2*M. In-flight = messages being served plus responses not yet
  /// flushed to the kernel. 0 disables shedding.
  size_t max_inflight = 0;
  /// (epoll) Number of event-loop threads.
  unsigned event_threads = 2;
  /// (epoll) Timer-wheel granularity; deadlines are enforced within one tick.
  uint32_t tick_ms = 16;
  /// Per-connection SO_SNDBUF override (0 = kernel default). Mostly for
  /// tests that need a small kernel buffer to exercise backpressure.
  int so_sndbuf = 0;
};

/// Counters every transport shares. Values are monotonically increasing
/// (except `open`) and mutually unsynchronized, same contract as
/// ServerStats.
struct TransportStats {
  uint64_t accepted = 0;          ///< connections accepted over the lifetime
  uint64_t overload_rejected = 0; ///< accepts refused at the connection cap
  uint64_t accept_errors = 0;     ///< transient accept() failures survived
  uint64_t open = 0;              ///< currently open connections
  std::array<uint64_t, kMessageClassCount> shed{};  ///< messages shed, by class
  std::array<uint64_t, kDisconnectReasonCount> disconnects{};
};

/// Internal: the instrument block both transports record into. Plain
/// atomics back the stats() API; obs handles (bound from the installed
/// registry, no-ops otherwise) put the same numbers on /metrics.
class TransportCounters {
 public:
  TransportCounters(const char* transport, const std::string& name);

  /// Atomically reserve a connection slot against `max_conns` (0 = no cap).
  /// Returns false — and counts an overload rejection — when full.
  bool try_accept(size_t max_conns);
  void on_close(DisconnectReason r);
  void on_accept_error() {
    accept_errors_.fetch_add(1, std::memory_order_relaxed);
    accept_errors_c_.inc();
  }
  void on_shed(MessageClass c) {
    shed_[static_cast<size_t>(c)].fetch_add(1, std::memory_order_relaxed);
    shed_c_[static_cast<size_t>(c)].inc();
  }
  void add_buffered(int64_t delta) { buffered_bytes_g_.add(delta); }
  void set_inflight(int64_t v) { inflight_g_.set(v); }

  TransportStats snapshot() const;

 private:
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> overload_rejected_{0};
  std::atomic<uint64_t> accept_errors_{0};
  std::atomic<uint64_t> open_{0};
  std::array<std::atomic<uint64_t>, kMessageClassCount> shed_{};
  std::array<std::atomic<uint64_t>, kDisconnectReasonCount> disconnects_{};

  obs::Counter accepted_c_;
  obs::Counter overload_rejected_c_;
  obs::Counter accept_errors_c_;
  obs::Gauge open_g_;
  obs::Gauge buffered_bytes_g_;
  obs::Gauge inflight_g_;
  std::array<obs::Counter, kMessageClassCount> shed_c_;
  std::array<obs::Counter, kDisconnectReasonCount> disconnects_c_;
};

/// Internal: a transport's hookup to the process flight recorder, resolved
/// once at server construction. The op class is the server's `name` option
/// ("binary", "whois", "admin", ...), so each listener's requests land in
/// their own trace rings. Inert — begin() returns an inert context — when
/// no recorder was installed at construction. The recorder, like the obs
/// registry, must outlive the transport.
struct TraceBinding {
  explicit TraceBinding(const std::string& name);
  obs::SpanContext begin() const {
    return recorder ? recorder->begin(op) : obs::SpanContext();
  }
  explicit operator bool() const { return recorder != nullptr; }

  obs::FlightRecorder* recorder = nullptr;
  uint16_t op = 0;
};

/// What a transport should do about a failed accept(2). Transient errors
/// (a peer that aborted mid-handshake, a signal) retry immediately;
/// fd-exhaustion retries after a backoff so the loop never spins; only a
/// shut-down listening socket is fatal.
enum class AcceptAction : uint8_t { kRetry, kRetryBackoff, kFatal };
AcceptAction accept_errno_action(int err);

/// A bound, listening socket. Failures anywhere — including setsockopt and
/// O_NONBLOCK, which used to be ignored — throw std::runtime_error.
struct Listener {
  int fd = -1;
  uint16_t port = 0;
};
Listener open_listener(const ListenerOptions& options, bool nonblocking);

/// The common face of TcpServer and EpollServer, so frontends and tests can
/// hold either behind one pointer.
class TransportServer {
 public:
  virtual ~TransportServer() = default;
  virtual uint16_t port() const = 0;
  /// Stop accepting, shut down open connections, join all threads.
  /// Idempotent; also run by destructors.
  virtual void stop() = 0;
  virtual TransportStats stats() const = 0;
};

/// Blocking TCP daemon on 127.0.0.1. One accept thread; one thread per
/// connection. Honors max_conns / idle_timeout_ms / read_deadline_ms from
/// TransportOptions (deadlines via SO_RCVTIMEO on the blocking reads);
/// write-queue and shedding knobs need the epoll transport.
class TcpServer : public TransportServer {
 public:
  /// Throws std::runtime_error if the socket cannot be bound.
  explicit TcpServer(Service& service, uint16_t port = 0);
  TcpServer(Service& service, const TransportOptions& options);
  ~TcpServer() override;

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  uint16_t port() const override { return port_; }

  /// Connections accepted over the server's lifetime.
  size_t connections_accepted() const { return counters_.snapshot().accepted; }

  void stop() override;
  TransportStats stats() const override { return counters_.snapshot(); }

 private:
  struct ConnectionSlot {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void connection_loop(ConnectionSlot* slot);
  void close_slot(ConnectionSlot* slot, DisconnectReason reason);
  /// Reap finished connection slots so the vector doesn't grow forever.
  void reap_finished_locked();

  Service& service_;
  TransportOptions options_;
  mutable TransportCounters counters_;
  TraceBinding trace_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex mu_;
  std::vector<std::unique_ptr<ConnectionSlot>> connections_;
};

/// Blocking client socket to a TcpServer/EpollServer. `framer` delimits
/// responses (svc::frame_size for the binary protocol, whois_response_size
/// for whois).
class TcpClientConnection : public Connection {
 public:
  /// Throws std::runtime_error if the connection cannot be established.
  TcpClientConnection(const std::string& host, uint16_t port, Framer framer);
  ~TcpClientConnection() override;

  TcpClientConnection(const TcpClientConnection&) = delete;
  TcpClientConnection& operator=(const TcpClientConnection&) = delete;

  std::string roundtrip(std::string_view message) override;

 private:
  int fd_ = -1;
  Framer framer_;
  std::string buffer_;
};

}  // namespace droplens::svc
