#include "svc/client.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace droplens::svc {

std::string_view Client::expect(const std::string& request, FrameType want,
                                std::string& response_storage) {
  response_storage = connection_.roundtrip(request);
  // A broken server can send anything; decode defensively and surface the
  // problem as an exception rather than garbage answers.
  if (frame_size(response_storage) != response_storage.size()) {
    throw std::runtime_error("svc client: incomplete response frame");
  }
  FrameHeader header = decode_header(response_storage);
  if (header.type == FrameType::kError) {
    throw std::runtime_error("svc server error: " +
                             decode_error(frame_payload(response_storage)));
  }
  if (header.type != want) {
    throw std::runtime_error("svc client: unexpected response frame type");
  }
  return frame_payload(response_storage);
}

Answer Client::lookup(net::Date date, const net::Prefix& prefix,
                      uint8_t fields) {
  Query q;
  q.date = date;
  q.prefix = prefix;
  q.fields = fields;
  QueryResponse response = query({q});
  if (response.answers.size() != 1) {
    throw std::runtime_error("svc client: answer count mismatch");
  }
  return response.answers[0];
}

QueryResponse Client::query(const std::vector<Query>& queries) {
  QueryResponse merged;
  std::string storage;
  for (size_t begin = 0; begin < queries.size() || queries.empty();) {
    const size_t end = std::min(queries.size(), begin + kMaxBatch);
    std::vector<Query> chunk(queries.begin() + static_cast<ptrdiff_t>(begin),
                             queries.begin() + static_cast<ptrdiff_t>(end));
    std::string_view payload =
        expect(encode_query_request(chunk), FrameType::kQueryResponse, storage);
    QueryResponse part = decode_query_response(payload);
    if (part.answers.size() != chunk.size()) {
      throw std::runtime_error("svc client: answer count mismatch");
    }
    merged.snapshot_version = part.snapshot_version;
    merged.date = part.date;
    merged.degraded = part.degraded;
    merged.answers.insert(merged.answers.end(), part.answers.begin(),
                          part.answers.end());
    begin = end;
    if (queries.empty()) break;  // one empty frame round-trips the metadata
  }
  return merged;
}

RangeResponse Client::range(net::Date begin, net::Date end,
                            const net::Prefix& prefix, uint8_t fields) {
  RangeQuery rq;
  rq.begin = begin;
  rq.end = end;
  rq.prefix = prefix;
  rq.fields = fields;
  std::string storage;
  std::string_view payload = expect(encode_range_request(rq),
                                    FrameType::kRangeResponse, storage);
  RangeResponse response = decode_range_response(payload);
  // The decoder already proved the runs contiguous and ascending; pin the
  // window bounds too so a confused server can't silently shift the answer.
  if (response.runs.empty() ||
      response.runs.front().start.days() != begin.days() ||
      response.runs.back().start.days() +
              static_cast<int32_t>(response.runs.back().days) !=
          end.days() + 1) {
    throw std::runtime_error("svc client: range response window mismatch");
  }
  return response;
}

std::string Client::subscribe_raw(std::string_view payload) {
  std::string storage;
  std::string_view response =
      expect(encode_frame(FrameType::kSubscribeRequest, payload),
             FrameType::kDeltaResponse, storage);
  return std::string(response);
}

ServerStats Client::stats() {
  std::string storage;
  std::string_view payload =
      expect(encode_stats_request(), FrameType::kStatsResponse, storage);
  return decode_stats_response(payload);
}

}  // namespace droplens::svc
