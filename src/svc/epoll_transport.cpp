#include "svc/epoll_transport.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "util/error.hpp"

namespace droplens::svc {

namespace {

constexpr size_t kReadChunk = 64 * 1024;
/// Longest writev gather per sendmsg call.
constexpr size_t kMaxIov = 8;
/// Grace period for flushing a final (timeout/malformed) reply when no
/// write deadline is configured; a peer that won't even read its eviction
/// notice is force-closed after this.
constexpr uint64_t kDefaultFlushGraceMs = 1000;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("svc epoll: " + what + ": " +
                           std::strerror(errno));
}

uint64_t steady_ms() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---------------------------------------------------------------------------
// TimerWheel

TimerWheel::TimerWheel(uint64_t now_ms, uint32_t tick_ms, size_t slots)
    : tick_ms_(tick_ms == 0 ? 1 : tick_ms),
      cursor_(now_ms / tick_ms_),
      slots_(slots == 0 ? 1 : slots) {}

void TimerWheel::arm(uint64_t id, uint64_t deadline_ms) {
  armed_[id] = deadline_ms;  // stale slot entries are skipped lazily
  // Bucket by the deadline rounded UP to a tick: when the cursor first
  // reaches the slot, now >= deadline is guaranteed for anything within one
  // revolution. Flooring instead would park a deadline that lands mid-tick
  // in a slot the cursor passes a fraction early, postponing it a whole
  // revolution.
  uint64_t tick = (deadline_ms + tick_ms_ - 1) / tick_ms_;
  // A deadline already behind the cursor still has to fire: park it in the
  // next tick's slot so the next advance sees it.
  if (tick <= cursor_) tick = cursor_ + 1;
  slots_[tick % slots_.size()].push_back(Entry{id, deadline_ms});
}

void TimerWheel::cancel(uint64_t id) { armed_.erase(id); }

void TimerWheel::advance(uint64_t now_ms, std::vector<uint64_t>& expired) {
  uint64_t target = now_ms / tick_ms_;
  if (target <= cursor_) return;
  // A gap longer than one revolution still only needs each slot scanned
  // once — entries are expired by their absolute deadline, not slot order.
  const uint64_t steps =
      std::min<uint64_t>(target - cursor_, slots_.size());
  std::vector<Entry> due;
  for (uint64_t s = 1; s <= steps; ++s) {
    std::vector<Entry>& slot = slots_[(cursor_ + s) % slots_.size()];
    size_t keep = 0;
    for (Entry& e : slot) {
      auto it = armed_.find(e.id);
      if (it == armed_.end() || it->second != e.deadline) continue;  // stale
      if (e.deadline <= now_ms) {
        due.push_back(e);
        armed_.erase(it);
      } else {
        slot[keep++] = e;  // future revolution; leave bucketed
      }
    }
    slot.resize(keep);
  }
  cursor_ = target;
  std::sort(due.begin(), due.end(), [](const Entry& a, const Entry& b) {
    return a.deadline != b.deadline ? a.deadline < b.deadline : a.id < b.id;
  });
  for (const Entry& e : due) expired.push_back(e.id);
}

uint64_t TimerWheel::next_wake_delay(uint64_t now_ms,
                                     uint64_t idle_hint) const {
  if (armed_.empty()) return idle_hint;
  const uint64_t next_boundary = (now_ms / tick_ms_ + 1) * tick_ms_;
  return next_boundary - now_ms;
}

// ---------------------------------------------------------------------------
// EpollServer

EpollServer::EpollServer(Service& service, const TransportOptions& options)
    : service_(service),
      options_(options),
      counters_("epoll", options.name),
      trace_(options.name) {
  Listener l = open_listener(options_.listen, /*nonblocking=*/true);
  listen_fd_ = l.fd;
  port_ = l.port;
  const unsigned threads = std::max(1u, options_.event_threads);
  const uint64_t now = steady_ms();
  try {
    for (unsigned i = 0; i < threads; ++i) {
      auto w = std::make_unique<Worker>();
      w->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
      if (w->epoll_fd < 0) fail("epoll_create1");
      w->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
      if (w->wake_fd < 0) fail("eventfd");
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = w->wake_fd;
      if (::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->wake_fd, &ev) < 0) {
        fail("epoll_ctl(wake)");
      }
      // EPOLLEXCLUSIVE: exactly one sleeping worker wakes per incoming
      // connection burst, so accepts spread without a thundering herd and
      // every connection is born onto the thread that owns it for life.
      ev.events = EPOLLIN | EPOLLEXCLUSIVE;
      ev.data.fd = listen_fd_;
      if (::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
        fail("epoll_ctl(listen)");
      }
      w->wheel = std::make_unique<TimerWheel>(now, options_.tick_ms);
      workers_.push_back(std::move(w));
    }
  } catch (...) {
    stopping_.store(true);
    for (auto& w : workers_) {
      if (w->epoll_fd >= 0) ::close(w->epoll_fd);
      if (w->wake_fd >= 0) ::close(w->wake_fd);
    }
    ::close(listen_fd_);
    throw;
  }
  for (auto& w : workers_) {
    Worker* raw = w.get();
    w->thread = std::thread([this, raw] { loop(*raw); });
  }
}

EpollServer::~EpollServer() { stop(); }

void EpollServer::stop() {
  bool expected = false;
  if (stopping_.compare_exchange_strong(expected, true)) {
    for (auto& w : workers_) {
      uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(w->wake_fd, &one, sizeof(one));
    }
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
    if (w->epoll_fd >= 0) {
      ::close(w->epoll_fd);
      w->epoll_fd = -1;
    }
    if (w->wake_fd >= 0) {
      ::close(w->wake_fd);
      w->wake_fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void EpollServer::loop(Worker& w) {
  std::array<epoll_event, 64> events;
  while (!stopping_.load(std::memory_order_acquire)) {
    uint64_t now = steady_ms();
    const uint64_t delay = w.wheel->next_wake_delay(now, /*idle_hint=*/200);
    const int timeout = static_cast<int>(std::min<uint64_t>(delay, 60'000));
    int n = ::epoll_wait(w.epoll_fd, events.data(),
                         static_cast<int>(events.size()), timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone: shutting down
    }
    now = steady_ms();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        accept_ready(w, now);
      } else if (fd == w.wake_fd) {
        uint64_t drained;
        [[maybe_unused]] ssize_t r =
            ::read(w.wake_fd, &drained, sizeof(drained));
      } else {
        // epoll delivers at most one event per fd per wait, so a
        // connection closed earlier in this batch cannot alias a
        // same-batch event (lookups on erased fds simply miss).
        auto it = w.conns.find(fd);
        if (it != w.conns.end()) {
          handle_io(w, *it->second, events[i].events, now);
        }
      }
    }
    expire_timers(w, steady_ms());
  }
  // Teardown: this thread owns its shard exclusively, so closing here
  // cannot race in-flight I/O.
  for (auto& [fd, c] : w.conns) {
    counters_.add_buffered(-static_cast<int64_t>(c->out_bytes));
    if (c->unflushed > 0) {
      inflight_.fetch_sub(c->unflushed, std::memory_order_relaxed);
    }
    counters_.on_close(DisconnectReason::kServerStop);
    ::close(fd);
  }
  counters_.set_inflight(
      static_cast<int64_t>(inflight_.load(std::memory_order_relaxed)));
  w.conns.clear();
}

void EpollServer::accept_ready(Worker& w, uint64_t now) {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      switch (accept_errno_action(errno)) {
        case AcceptAction::kRetry:
          counters_.on_accept_error();
          continue;
        case AcceptAction::kRetryBackoff:
          // fd exhaustion: the listen fd stays readable (level-triggered),
          // so without a pause this loop would spin hot. A short sleep on
          // the unlucky worker throttles accepts while the other workers
          // keep serving.
          counters_.on_accept_error();
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          return;
        case AcceptAction::kFatal:
          return;
      }
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    if (!counters_.try_accept(options_.max_conns)) {
      // Over the cap: a typed overload reply when the protocol has one
      // (best effort — the socket buffer of a fresh connection always has
      // room), then an immediate close. Never an unbounded fd.
      std::string reply = service_.overload_response({});
      if (!reply.empty()) {
        [[maybe_unused]] ssize_t r = ::send(
            fd, reply.data(), reply.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
      }
      ::close(fd);
      continue;
    }
    if (options_.so_sndbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                   sizeof(options_.so_sndbuf));
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->last_activity = now;
    conn->registered_events = EPOLLIN;
    // The connection's first request gets its accept latency on the trace;
    // later requests begin at their first read.
    conn->trace = trace_.begin();
    conn->trace.stage("accept");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(w.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      counters_.on_close(DisconnectReason::kError);
      ::close(fd);
      continue;
    }
    Conn& ref = *conn;
    w.conns.emplace(fd, std::move(conn));
    rearm_timer(w, ref);
  }
}

void EpollServer::handle_io(Worker& w, Conn& c, uint32_t events,
                            uint64_t now) {
  if (events & EPOLLERR) {
    close_conn(w, c, DisconnectReason::kError);
    return;
  }
  if (events & EPOLLOUT) {
    if (!flush_out(w, c, now)) return;
  }
  if ((events & (EPOLLIN | EPOLLHUP)) && !c.closing_after_flush) {
    char chunk[kReadChunk];
    ssize_t got = ::read(c.fd, chunk, sizeof(chunk));
    if (got == 0) {
      close_conn(w, c, DisconnectReason::kPeerClosed);
      return;
    }
    if (got < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        close_conn(w, c, DisconnectReason::kError);
        return;
      }
    } else {
      c.in.append(chunk, static_cast<size_t>(got));
      c.last_activity = now;
      // Resume (or begin) the request trace on the thread this connection
      // is confined to: the first chunk of a request opens its read stage.
      if (!c.trace) c.trace = trace_.begin();
      if (c.trace && !c.trace_served && !c.trace_reading) {
        c.trace.stage("read");
        c.trace_reading = true;
      }
      if (!drain_messages(w, c, now)) return;
    }
  }
  rearm_timer(w, c);
}

bool EpollServer::should_shed(MessageClass cls) const {
  const size_t m = options_.max_inflight;
  if (m == 0) return false;
  const size_t load = inflight_.load(std::memory_order_relaxed) +
                      inflight_bias_.load(std::memory_order_relaxed);
  switch (cls) {
    case MessageClass::kBulk:
      return load >= std::max<size_t>(1, m / 2);
    case MessageClass::kNormal:
      return load >= m;
    case MessageClass::kControl:
      return load >= 2 * m;
  }
  return false;
}

bool EpollServer::drain_messages(Worker& w, Conn& c, uint64_t now) {
  while (true) {
    size_t n;
    try {
      n = service_.message_size(c.in);
    } catch (const ParseError&) {
      std::string reply = service_.malformed_response(c.in);
      finish_trace(c, "malformed");
      close_after_flush(w, c, std::move(reply), DisconnectReason::kMalformed,
                        now);
      return false;
    }
    if (n == 0) {
      if (c.in.empty()) {
        c.partial_since = 0;
      } else if (c.partial_since == 0) {
        c.partial_since = now;  // read deadline starts at the first byte
      }
      return true;
    }
    c.partial_since = 0;
    // A pipelined request completing while the previous response still
    // drains takes over the connection's single trace slot: the old trace
    // finishes here (its flush overlapped this request's read) and a fresh
    // one covers the new message.
    if (c.trace && c.trace_served) finish_trace(c, "ok");
    if (!c.trace) c.trace = trace_.begin();
    const std::string_view message(c.in.data(), n);
    const MessageClass cls = service_.classify(message);
    if (should_shed(cls)) {
      counters_.on_shed(cls);
      std::string reply = service_.overload_response(message);
      c.in.erase(0, n);
      finish_trace(c, "shed");
      if (reply.empty()) {
        close_conn(w, c, DisconnectReason::kShed);
        return false;
      }
      if (!enqueue(w, c, std::move(reply), now)) return false;
      continue;
    }
    inflight_.fetch_add(1, std::memory_order_relaxed);
    counters_.set_inflight(
        static_cast<int64_t>(inflight_.load(std::memory_order_relaxed)));
    c.unflushed += 1;
    c.trace_reading = false;
    c.trace.stage("serve");
    std::string response = service_.serve(message, c.trace);
    c.trace.stage("flush");
    c.trace_served = true;
    c.in.erase(0, n);
    if (!enqueue(w, c, std::move(response), now)) return false;
  }
}

bool EpollServer::enqueue(Worker& w, Conn& c, std::string&& bytes,
                          uint64_t now) {
  if (!bytes.empty()) {
    c.out_bytes += bytes.size();
    counters_.add_buffered(static_cast<int64_t>(bytes.size()));
    c.out.push_back(std::move(bytes));
  }
  if (!flush_out(w, c, now)) return false;
  if (c.out_bytes > options_.max_write_buffer) {
    // Backpressure limit: a reader this slow gets disconnected instead of
    // growing an unbounded queue.
    close_conn(w, c, DisconnectReason::kWriteOverflow);
    return false;
  }
  return true;
}

bool EpollServer::flush_out(Worker& w, Conn& c, uint64_t now) {
  // Responses go to the kernel straight from the buffers serve() returned —
  // a writev gather over the queue head, no intermediate copy; only the
  // unsent tail stays queued.
  while (!c.out.empty()) {
    iovec iov[kMaxIov];
    size_t cnt = 0;
    size_t off = c.out_head_off;
    for (auto it = c.out.begin(); it != c.out.end() && cnt < kMaxIov; ++it) {
      iov[cnt].iov_base = const_cast<char*>(it->data()) + off;
      iov[cnt].iov_len = it->size() - off;
      off = 0;
      ++cnt;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = cnt;
    ssize_t written = ::sendmsg(c.fd, &mh, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(w, c, DisconnectReason::kPeerClosed);
      return false;
    }
    c.last_activity = now;  // a draining peer is not idle
    c.out_bytes -= static_cast<size_t>(written);
    counters_.add_buffered(-written);
    size_t left = static_cast<size_t>(written);
    while (left > 0) {
      const size_t head_remaining = c.out.front().size() - c.out_head_off;
      if (left >= head_remaining) {
        left -= head_remaining;
        c.out.pop_front();
        c.out_head_off = 0;
      } else {
        c.out_head_off += left;
        left = 0;
      }
    }
  }
  if (c.out.empty()) {
    c.out_head_off = 0;
    c.write_pending_since = 0;
    if (c.unflushed > 0) {
      inflight_.fetch_sub(c.unflushed, std::memory_order_relaxed);
      c.unflushed = 0;
      counters_.set_inflight(
          static_cast<int64_t>(inflight_.load(std::memory_order_relaxed)));
    }
    // The response reached the kernel: the request's trace is complete.
    if (c.trace && c.trace_served) finish_trace(c, "ok");
    if (c.closing_after_flush) {
      close_conn(w, c, c.flush_close_reason);
      return false;
    }
  } else if (c.write_pending_since == 0) {
    c.write_pending_since = now;
  }
  update_epoll(w, c);
  return true;
}

void EpollServer::update_epoll(Worker& w, Conn& c) {
  uint32_t wanted = c.closing_after_flush ? 0u : uint32_t{EPOLLIN};
  if (!c.out.empty()) wanted |= EPOLLOUT;
  if (wanted == c.registered_events) return;
  epoll_event ev{};
  ev.events = wanted;
  ev.data.fd = c.fd;
  ::epoll_ctl(w.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
  c.registered_events = wanted;
}

void EpollServer::close_after_flush(Worker& w, Conn& c, std::string&& reply,
                                    DisconnectReason reason, uint64_t now) {
  if (reply.empty() && c.out.empty()) {
    close_conn(w, c, reason);
    return;
  }
  c.closing_after_flush = true;
  c.flush_close_reason = reason;
  c.in.clear();
  ::shutdown(c.fd, SHUT_RD);  // done reading; only the final reply remains
  if (!enqueue(w, c, std::move(reply), now)) return;  // may close inline
  if (c.write_pending_since == 0) c.write_pending_since = now;
  rearm_timer(w, c);
}

void EpollServer::finish_trace(Conn& c, std::string_view outcome) {
  if (c.trace) c.trace.finish(outcome);
  c.trace_reading = false;
  c.trace_served = false;
}

void EpollServer::close_conn(Worker& w, Conn& c, DisconnectReason reason) {
  const int fd = c.fd;
  w.wheel->cancel(static_cast<uint64_t>(fd));
  ::epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  counters_.add_buffered(-static_cast<int64_t>(c.out_bytes));
  if (c.unflushed > 0) {
    inflight_.fetch_sub(c.unflushed, std::memory_order_relaxed);
    counters_.set_inflight(
        static_cast<int64_t>(inflight_.load(std::memory_order_relaxed)));
  }
  counters_.on_close(reason);
  ::close(fd);
  w.conns.erase(fd);  // destroys c — nothing may touch it past this line
}

// A connection has at most one armed timer, always set to the minimum of
// its applicable limits; expire_timers re-derives which limit fired.
void EpollServer::rearm_timer(Worker& w, Conn& c) {
  uint64_t at = 0;
  if (c.closing_after_flush) {
    const uint64_t grace = options_.write_deadline_ms != 0
                               ? options_.write_deadline_ms
                               : kDefaultFlushGraceMs;
    at = c.write_pending_since + grace;
  } else {
    if (options_.idle_timeout_ms != 0) {
      at = c.last_activity + options_.idle_timeout_ms;
    }
    if (options_.read_deadline_ms != 0 && c.partial_since != 0) {
      const uint64_t d = c.partial_since + options_.read_deadline_ms;
      if (at == 0 || d < at) at = d;
    }
    if (options_.write_deadline_ms != 0 && c.write_pending_since != 0) {
      const uint64_t d = c.write_pending_since + options_.write_deadline_ms;
      if (at == 0 || d < at) at = d;
    }
  }
  if (at == 0) {
    w.wheel->cancel(static_cast<uint64_t>(c.fd));
  } else {
    w.wheel->arm(static_cast<uint64_t>(c.fd), at);
  }
}

void EpollServer::expire_timers(Worker& w, uint64_t now) {
  std::vector<uint64_t> expired;
  w.wheel->advance(now, expired);
  for (uint64_t id : expired) {
    auto it = w.conns.find(static_cast<int>(id));
    if (it == w.conns.end()) continue;
    Conn& c = *it->second;
    if (c.closing_after_flush) {
      // The flush grace ran out: the peer would not even read its eviction
      // notice. Count the original close reason.
      close_conn(w, c, c.flush_close_reason);
      continue;
    }
    // Deadlines move as the connection makes progress; fire only the ones
    // still due, re-arm the rest.
    if (options_.read_deadline_ms != 0 && c.partial_since != 0 &&
        now >= c.partial_since + options_.read_deadline_ms) {
      finish_trace(c, "timeout");
      close_after_flush(w, c, service_.timeout_response(),
                        DisconnectReason::kReadDeadline, now);
      continue;
    }
    if (options_.write_deadline_ms != 0 && c.write_pending_since != 0 &&
        now >= c.write_pending_since + options_.write_deadline_ms) {
      // A peer that stopped reading gets no farewell it would never drain.
      finish_trace(c, "timeout");
      close_conn(w, c, DisconnectReason::kWriteDeadline);
      continue;
    }
    // Idle is a pure inactivity backstop: it fires even with a partial
    // message or an undrained queue pending, so a connection making no
    // progress in either direction is always bounded — with or without the
    // sharper read/write deadlines configured.
    if (options_.idle_timeout_ms != 0 &&
        now >= c.last_activity + options_.idle_timeout_ms) {
      finish_trace(c, "timeout");
      close_after_flush(w, c, service_.timeout_response(),
                        DisconnectReason::kIdleTimeout, now);
      continue;
    }
    rearm_timer(w, c);
  }
}

// ---------------------------------------------------------------------------
// Factory

TransportKind parse_transport_kind(std::string_view name) {
  if (name == "epoll") return TransportKind::kEpoll;
  if (name == "threads") return TransportKind::kThreads;
  throw std::runtime_error("svc: unknown transport '" + std::string(name) +
                           "' (expected epoll|threads)");
}

std::unique_ptr<TransportServer> make_transport_server(
    TransportKind kind, Service& service, const TransportOptions& options) {
  if (kind == TransportKind::kEpoll) {
    return std::make_unique<EpollServer>(service, options);
  }
  return std::make_unique<TcpServer>(service, options);
}

}  // namespace droplens::svc
