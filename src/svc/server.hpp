// Transport-agnostic server core of the query service.
//
// Two serving modes share one Server:
//
//  - Single-snapshot mode: the Server owns the published Snapshot behind a
//    shared_ptr that handlers copy exactly once per frame, so every answer
//    in a response is computed against one snapshot even while publish()
//    swaps in a new one — zero-downtime reload with per-frame
//    self-consistency. Queries for any other date answer kWrongDate.
//
//  - Store mode (whole-window time travel): the Server holds a
//    SnapshotStore and every query's wire date resolves through
//    SnapshotStore::get(). A frame may mix dates — the batch is grouped by
//    date, each distinct date materialized once (sequentially: a get() may
//    compile, and the store's per-date latches already dedup across
//    frames), then the lookups fan out. Dates the store cannot serve
//    answer kUnavailable. Store mode also serves the range op: one prefix
//    across [d0, d1] in a single pass, run-length-encoded on transitions.
//
// Large batches fan out across the engine's util::ThreadPool with
// slot-indexed writes, keeping responses byte-identical for any thread
// count.
//
// Observability rides the obs registry: counters (frames, queries,
// malformed frames, per-field lookups, reloads) and a log2 latency
// histogram are registry instruments — bound from the process-installed
// obs::Registry when one exists (so droplensd's /metrics page includes
// them) and from a private registry otherwise (so stats always work). The
// stats protocol op serves the same numbers in the same wire format as
// before the registry existed; the metrics op renders the whole backing
// registry as Prometheus text. Stats are read at one point per request,
// each counter once — monotonic, but not mutually synchronized (writers
// are relaxed atomics that never pause for a reader).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "svc/protocol.hpp"
#include "svc/snapshot.hpp"
#include "svc/transport.hpp"

namespace droplens::util {
class ThreadPool;
}  // namespace droplens::util

namespace droplens::svc {

class SnapshotStore;

/// Hook the streaming subsystem implements (stream::Publisher) to serve the
/// live-follow ops. Declared here — and taken as an abstract pointer — so
/// svc never links stream; the payload byte layouts live in stream/wire.hpp.
class StreamFeed {
 public:
  virtual ~StreamFeed() = default;
  /// Answer one kSubscribeRequest payload with a complete response frame
  /// (normally kDeltaResponse; a kError frame is also valid). Called from
  /// transport threads concurrently — implementations must be thread-safe.
  virtual std::string handle_subscribe(std::string_view payload) = 0;
};

class Server : public Service {
 public:
  /// Single-snapshot mode. `initial` may be null (queries answer with an
  /// error frame until the first publish). `pool`, when set, fans large
  /// batches out across its workers; null serves every batch on the
  /// transport thread.
  explicit Server(std::shared_ptr<const Snapshot> initial = nullptr,
                  util::ThreadPool* pool = nullptr);

  /// Store mode: every query date resolves through `store` (which must
  /// outlive the server) and the range op is live. publish()/snapshot()
  /// are inert in this mode.
  explicit Server(SnapshotStore& store, util::ThreadPool* pool = nullptr);

  /// Atomically replace the served snapshot. In-flight frames finish
  /// against the snapshot they started with; new frames see `snap`.
  /// Replacing an existing snapshot counts as a reload. In store mode this
  /// publishes the *live head*: a query whose date matches the published
  /// snapshot's date is answered from it directly, ahead of the store —
  /// how a streaming follower keeps "today" current between compactions
  /// while history still resolves through the store.
  void publish(std::shared_ptr<const Snapshot> snap);

  /// Attach the live-follow handler (null detaches). Without one, subscribe
  /// frames answer kError. Call before serving or between frames; the
  /// pointer must outlive the server's serving threads.
  void set_stream_feed(StreamFeed* feed) {
    stream_feed_.store(feed, std::memory_order_release);
  }

  /// The currently served snapshot (null before the first publish).
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Current counters, as served by the stats protocol op. Each counter is
  /// read exactly once, at this call; see the header comment for the
  /// consistency contract.
  ServerStats stats() const;

  /// The registry backing this server's instruments: the process-installed
  /// obs registry at construction time, else a private one. The metrics
  /// protocol op renders it.
  obs::Registry& metrics_registry() const { return *registry_; }

  // Service interface ------------------------------------------------------
  size_t message_size(std::string_view buffer) const override;
  std::string serve(std::string_view frame) override;
  /// Trace-aware serve: the same dispatch, with decode/answer stage marks
  /// on the request trace so /slowz shows where a slow frame spent its
  /// time. The 1-arg form forwards here with an inert context.
  std::string serve(std::string_view frame, obs::SpanContext& ctx) override;
  std::string malformed_response(std::string_view head) override;
  /// Shed priority by frame type: range requests are the most work per
  /// frame (kBulk, shed first), query batches are kNormal, and the
  /// stats/metrics ops are kControl (shed last) so operators can watch an
  /// overloaded server defend itself.
  MessageClass classify(std::string_view message) const override;
  /// Typed kError frame: "overloaded: connection limit" at the cap (empty
  /// message), "overloaded: request shed" for a shed frame.
  std::string overload_response(std::string_view message) override;
  /// Typed kError frame for idle/read-deadline closes.
  std::string timeout_response() override;

 private:
  /// Batches at least this large go through the thread pool.
  static constexpr size_t kParallelThreshold = 256;
  /// log2 histogram: bucket i counts frames served in [2^i, 2^(i+1)) ns.
  static constexpr size_t kLatencyBuckets = 40;

  std::string handle_queries(std::string_view payload);
  std::string handle_store_queries(const std::vector<Query>& queries);
  std::string handle_range(std::string_view payload);
  /// store_->get with failures mapped to null (answers say kUnavailable).
  std::shared_ptr<const Snapshot> store_get(net::Date d);
  void note_served(const Snapshot& snap);

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Snapshot> snapshot_;
  SnapshotStore* store_ = nullptr;
  std::atomic<StreamFeed*> stream_feed_{nullptr};
  util::ThreadPool* pool_;
  /// Highest snapshot version served in store mode — what the stats op's
  /// snapshot_version field reports there.
  std::atomic<uint64_t> last_served_version_{0};

  std::unique_ptr<obs::Registry> own_registry_;  // when none was installed
  obs::Registry* registry_;
  obs::Counter requests_;
  obs::Counter queries_;
  obs::Counter malformed_;
  obs::Counter reloads_;
  obs::Counter unavailable_;
  std::array<obs::Counter, kFieldCount> field_lookups_;
  obs::Histogram latency_;
};

}  // namespace droplens::svc
