// Transport-agnostic server core of the query service.
//
// The Server owns the published Snapshot behind a shared_ptr that handlers
// copy exactly once per frame, so every answer in a response is computed
// against one snapshot even while publish() swaps in a new one — zero-
// downtime reload with per-frame self-consistency. Large batches fan out
// across the engine's util::ThreadPool with slot-indexed writes, keeping
// responses byte-identical for any thread count.
//
// Observability is built in: relaxed atomic counters (frames, queries,
// malformed frames, per-field lookups, reloads) and a log2 latency
// histogram, all served by the stats protocol op.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "svc/protocol.hpp"
#include "svc/snapshot.hpp"
#include "svc/transport.hpp"

namespace droplens::util {
class ThreadPool;
}  // namespace droplens::util

namespace droplens::svc {

class Server : public Service {
 public:
  /// `initial` may be null (queries answer with an error frame until the
  /// first publish). `pool`, when set, fans large batches out across its
  /// workers; null serves every batch on the transport thread.
  explicit Server(std::shared_ptr<const Snapshot> initial = nullptr,
                  util::ThreadPool* pool = nullptr);

  /// Atomically replace the served snapshot. In-flight frames finish
  /// against the snapshot they started with; new frames see `snap`.
  /// Replacing an existing snapshot counts as a reload.
  void publish(std::shared_ptr<const Snapshot> snap);

  /// The currently served snapshot (null before the first publish).
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Current counters, as served by the stats protocol op.
  ServerStats stats() const;

  // Service interface ------------------------------------------------------
  size_t message_size(std::string_view buffer) const override;
  std::string serve(std::string_view frame) override;
  std::string malformed_response(std::string_view head) override;

 private:
  /// Batches at least this large go through the thread pool.
  static constexpr size_t kParallelThreshold = 256;
  /// log2 histogram: bucket i counts frames served in [2^i, 2^(i+1)) ns.
  static constexpr size_t kLatencyBuckets = 40;

  std::string handle_queries(std::string_view payload);
  void record_latency(uint64_t ns);

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Snapshot> snapshot_;
  util::ThreadPool* pool_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> malformed_{0};
  std::atomic<uint64_t> reloads_{0};
  std::array<std::atomic<uint64_t>, kFieldCount> field_lookups_{};
  std::array<std::atomic<uint64_t>, kLatencyBuckets> latency_{};
};

}  // namespace droplens::svc
