#include "svc/protocol.hpp"

#include "util/error.hpp"

namespace droplens::svc {

namespace {

constexpr char kMagic0 = 'D';
constexpr char kMagic1 = 'L';
constexpr size_t kQueryRecordSize = 10;
constexpr size_t kAnswerRecordSize = 8;
constexpr size_t kRangeRunRecordSize = 9 + kAnswerRecordSize;
constexpr size_t kMaxErrorMessage = 256;
constexpr size_t kMaxLatencyBuckets = 64;

// Little-endian append/read helpers. A Reader tracks its own cursor and
// bounds-checks every take; decoders validate declared counts against
// remaining() BEFORE allocating.
void put_u8(std::string& out, uint8_t v) { out.push_back(static_cast<char>(v)); }
void put_u16(std::string& out, uint16_t v) {
  put_u8(out, static_cast<uint8_t>(v));
  put_u8(out, static_cast<uint8_t>(v >> 8));
}
void put_u32(std::string& out, uint32_t v) {
  put_u16(out, static_cast<uint16_t>(v));
  put_u16(out, static_cast<uint16_t>(v >> 16));
}
void put_u64(std::string& out, uint64_t v) {
  put_u32(out, static_cast<uint32_t>(v));
  put_u32(out, static_cast<uint32_t>(v >> 32));
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }

  uint8_t u8() {
    need(1);
    return static_cast<uint8_t>(bytes_[pos_++]);
  }
  uint16_t u16() {
    uint16_t lo = u8();
    return static_cast<uint16_t>(lo | (uint16_t{u8()} << 8));
  }
  uint32_t u32() {
    uint32_t lo = u16();
    return lo | (uint32_t{u16()} << 16);
  }
  uint64_t u64() {
    uint64_t lo = u32();
    return lo | (uint64_t{u32()} << 32);
  }

  void expect_done(const char* what) const {
    if (pos_ != bytes_.size()) {
      throw ParseError(std::string("svc: trailing bytes after ") + what);
    }
  }

 private:
  void need(size_t n) const {
    if (remaining() < n) throw ParseError("svc: truncated payload");
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

std::string frame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  put_u8(out, kProtocolVersion);
  put_u8(out, static_cast<uint8_t>(type));
  put_u32(out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

uint8_t answer_flags(const Answer& a) {
  return static_cast<uint8_t>((a.drop_listed ? 0x01 : 0) |
                              (a.incident ? 0x02 : 0) |
                              (a.as0_covered ? 0x04 : 0) |
                              (a.irr_registered ? 0x08 : 0) |
                              (a.routed ? 0x10 : 0));
}

// The 8-byte answer record, shared by the query and range responses.
void put_answer(std::string& out, const Answer& a) {
  put_u8(out, a.status);
  put_u8(out, a.fields);
  put_u8(out, answer_flags(a));
  put_u8(out, a.categories);
  put_u8(out, a.bucket);
  put_u8(out, static_cast<uint8_t>(a.rov));
  put_u8(out, static_cast<uint8_t>(a.rir_status));
  put_u8(out, a.rir);
}

Answer read_answer(Reader& in) {
  Answer a;
  a.status = in.u8();
  a.fields = in.u8();
  uint8_t flags = in.u8();
  a.drop_listed = flags & 0x01;
  a.incident = flags & 0x02;
  a.as0_covered = flags & 0x04;
  a.irr_registered = flags & 0x08;
  a.routed = flags & 0x10;
  a.categories = in.u8();
  a.bucket = in.u8();
  uint8_t rov = in.u8();
  if (rov > static_cast<uint8_t>(RovStatus::kUnrouted)) {
    throw ParseError("svc: bad ROV status");
  }
  a.rov = static_cast<RovStatus>(rov);
  uint8_t rir_status = in.u8();
  if (rir_status > static_cast<uint8_t>(RirStatus::kUnadministered)) {
    throw ParseError("svc: bad RIR status");
  }
  a.rir_status = static_cast<RirStatus>(rir_status);
  a.rir = in.u8();
  return a;
}

}  // namespace

size_t frame_size(std::string_view buffer) {
  if (buffer.size() < kHeaderSize) {
    // Reject impossible heads early so a stream never stalls on garbage.
    if (!buffer.empty() && buffer[0] != kMagic0) {
      throw ParseError("svc: bad frame magic");
    }
    if (buffer.size() >= 2 && buffer[1] != kMagic1) {
      throw ParseError("svc: bad frame magic");
    }
    return 0;
  }
  FrameHeader header = decode_header(buffer);
  size_t total = kHeaderSize + header.payload_len;
  return buffer.size() >= total ? total : 0;
}

FrameHeader decode_header(std::string_view frame) {
  if (frame.size() < kHeaderSize) throw ParseError("svc: truncated header");
  if (frame[0] != kMagic0 || frame[1] != kMagic1) {
    throw ParseError("svc: bad frame magic");
  }
  FrameHeader header;
  header.protocol = static_cast<uint8_t>(frame[2]);
  if (header.protocol != kProtocolVersion) {
    throw ParseError("svc: unsupported protocol version " +
                     std::to_string(header.protocol));
  }
  uint8_t type = static_cast<uint8_t>(frame[3]);
  if (type < static_cast<uint8_t>(FrameType::kQueryRequest) ||
      type > static_cast<uint8_t>(FrameType::kDeltaResponse)) {
    throw ParseError("svc: unknown frame type " + std::to_string(type));
  }
  header.type = static_cast<FrameType>(type);
  header.payload_len = static_cast<uint32_t>(static_cast<uint8_t>(frame[4])) |
                       (uint32_t{static_cast<uint8_t>(frame[5])} << 8) |
                       (uint32_t{static_cast<uint8_t>(frame[6])} << 16) |
                       (uint32_t{static_cast<uint8_t>(frame[7])} << 24);
  if (header.payload_len > kMaxPayload) {
    throw ParseError("svc: payload length " +
                     std::to_string(header.payload_len) + " exceeds cap");
  }
  return header;
}

std::string_view frame_payload(std::string_view frame) {
  return frame.substr(kHeaderSize);
}

std::string encode_query_request(const std::vector<Query>& queries) {
  if (queries.size() > kMaxBatch) {
    throw InvariantError("svc: batch exceeds kMaxBatch");
  }
  std::string payload;
  payload.reserve(2 + queries.size() * kQueryRecordSize);
  put_u16(payload, static_cast<uint16_t>(queries.size()));
  for (const Query& q : queries) {
    put_u32(payload, static_cast<uint32_t>(q.date.days()));
    put_u32(payload, q.prefix.network().value());
    put_u8(payload, static_cast<uint8_t>(q.prefix.length()));
    put_u8(payload, q.fields);
  }
  return frame(FrameType::kQueryRequest, payload);
}

std::vector<Query> decode_query_request(std::string_view payload) {
  Reader in(payload);
  size_t count = in.u16();
  if (count > kMaxBatch) throw ParseError("svc: batch exceeds kMaxBatch");
  if (in.remaining() != count * kQueryRecordSize) {
    throw ParseError("svc: query count does not match payload size");
  }
  std::vector<Query> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Query q;
    q.date = net::Date(static_cast<int32_t>(in.u32()));
    uint32_t network = in.u32();
    uint8_t plen = in.u8();
    q.fields = in.u8() & kAllFields;
    if (plen > 32) throw ParseError("svc: prefix length > 32");
    // Mask stray host bits instead of rejecting: lookup semantics are
    // point-stab at the network address anyway.
    q.prefix = net::Prefix::containing(net::Ipv4(network), plen);
    queries.push_back(q);
  }
  in.expect_done("query request");
  return queries;
}

std::string encode_query_response(const QueryResponse& response) {
  if (response.answers.size() > kMaxBatch) {
    throw InvariantError("svc: batch exceeds kMaxBatch");
  }
  std::string payload;
  payload.reserve(15 + response.answers.size() * kAnswerRecordSize);
  put_u64(payload, response.snapshot_version);
  put_u32(payload, static_cast<uint32_t>(response.date.days()));
  put_u8(payload, response.degraded);
  put_u16(payload, static_cast<uint16_t>(response.answers.size()));
  for (const Answer& a : response.answers) put_answer(payload, a);
  return frame(FrameType::kQueryResponse, payload);
}

QueryResponse decode_query_response(std::string_view payload) {
  Reader in(payload);
  QueryResponse response;
  response.snapshot_version = in.u64();
  response.date = net::Date(static_cast<int32_t>(in.u32()));
  response.degraded = in.u8();
  size_t count = in.u16();
  if (count > kMaxBatch) throw ParseError("svc: batch exceeds kMaxBatch");
  if (in.remaining() != count * kAnswerRecordSize) {
    throw ParseError("svc: answer count does not match payload size");
  }
  response.answers.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    response.answers.push_back(read_answer(in));
  }
  in.expect_done("query response");
  return response;
}

std::string encode_range_request(const RangeQuery& query) {
  if (query.begin > query.end) {
    throw InvariantError("svc: inverted range window");
  }
  if (static_cast<size_t>(query.end.days() - query.begin.days()) + 1 >
      kMaxRangeDays) {
    throw InvariantError("svc: range exceeds kMaxRangeDays");
  }
  std::string payload;
  payload.reserve(14);
  put_u32(payload, static_cast<uint32_t>(query.begin.days()));
  put_u32(payload, static_cast<uint32_t>(query.end.days()));
  put_u32(payload, query.prefix.network().value());
  put_u8(payload, static_cast<uint8_t>(query.prefix.length()));
  put_u8(payload, query.fields);
  return frame(FrameType::kRangeRequest, payload);
}

RangeQuery decode_range_request(std::string_view payload) {
  Reader in(payload);
  RangeQuery q;
  q.begin = net::Date(static_cast<int32_t>(in.u32()));
  q.end = net::Date(static_cast<int32_t>(in.u32()));
  uint32_t network = in.u32();
  uint8_t plen = in.u8();
  q.fields = in.u8() & kAllFields;
  in.expect_done("range request");
  if (q.begin > q.end) throw ParseError("svc: inverted range window");
  if (static_cast<uint64_t>(q.end.days()) -
          static_cast<uint64_t>(q.begin.days()) + 1 >
      kMaxRangeDays) {
    throw ParseError("svc: range exceeds kMaxRangeDays");
  }
  if (plen > 32) throw ParseError("svc: prefix length > 32");
  q.prefix = net::Prefix::containing(net::Ipv4(network), plen);
  return q;
}

std::string encode_range_response(const RangeResponse& response) {
  if (response.runs.size() > kMaxRangeDays) {
    throw InvariantError("svc: too many range runs");
  }
  std::string payload;
  payload.reserve(8 + response.runs.size() * kRangeRunRecordSize);
  put_u32(payload, response.prefix.network().value());
  put_u8(payload, static_cast<uint8_t>(response.prefix.length()));
  put_u8(payload, response.fields);
  put_u16(payload, static_cast<uint16_t>(response.runs.size()));
  for (const RangeRun& run : response.runs) {
    put_u32(payload, static_cast<uint32_t>(run.start.days()));
    put_u32(payload, run.days);
    put_u8(payload, run.degraded);
    put_answer(payload, run.answer);
  }
  return frame(FrameType::kRangeResponse, payload);
}

RangeResponse decode_range_response(std::string_view payload) {
  Reader in(payload);
  RangeResponse response;
  uint32_t network = in.u32();
  uint8_t plen = in.u8();
  if (plen > 32) throw ParseError("svc: prefix length > 32");
  response.prefix = net::Prefix::containing(net::Ipv4(network), plen);
  response.fields = in.u8() & kAllFields;
  size_t count = in.u16();
  if (count > kMaxRangeDays) throw ParseError("svc: too many range runs");
  if (in.remaining() != count * kRangeRunRecordSize) {
    throw ParseError("svc: run count does not match payload size");
  }
  response.runs.reserve(count);
  uint64_t total_days = 0;
  for (size_t i = 0; i < count; ++i) {
    RangeRun run;
    run.start = net::Date(static_cast<int32_t>(in.u32()));
    run.days = in.u32();
    run.degraded = in.u8();
    run.answer = read_answer(in);
    if (run.days == 0) throw ParseError("svc: empty range run");
    if (!response.runs.empty()) {
      const RangeRun& prev = response.runs.back();
      if (run.start.days() !=
          prev.start.days() + static_cast<int32_t>(prev.days)) {
        throw ParseError("svc: range runs are not contiguous");
      }
    }
    total_days += run.days;
    if (total_days > kMaxRangeDays) {
      throw ParseError("svc: range runs exceed kMaxRangeDays");
    }
    response.runs.push_back(run);
  }
  in.expect_done("range response");
  return response;
}

std::string encode_stats_request() {
  return frame(FrameType::kStatsRequest, {});
}

std::string encode_stats_response(const ServerStats& stats) {
  std::string payload;
  put_u64(payload, stats.requests);
  put_u64(payload, stats.queries);
  put_u64(payload, stats.malformed);
  put_u64(payload, stats.reloads);
  put_u64(payload, stats.snapshot_version);
  for (uint64_t lookups : stats.field_lookups) put_u64(payload, lookups);
  put_u16(payload, static_cast<uint16_t>(stats.latency_ns_buckets.size()));
  for (uint64_t bucket : stats.latency_ns_buckets) put_u64(payload, bucket);
  return frame(FrameType::kStatsResponse, payload);
}

ServerStats decode_stats_response(std::string_view payload) {
  Reader in(payload);
  ServerStats stats;
  stats.requests = in.u64();
  stats.queries = in.u64();
  stats.malformed = in.u64();
  stats.reloads = in.u64();
  stats.snapshot_version = in.u64();
  for (uint64_t& lookups : stats.field_lookups) lookups = in.u64();
  size_t buckets = in.u16();
  if (buckets > kMaxLatencyBuckets) {
    throw ParseError("svc: too many latency buckets");
  }
  if (in.remaining() != buckets * 8) {
    throw ParseError("svc: bucket count does not match payload size");
  }
  stats.latency_ns_buckets.resize(buckets);
  for (uint64_t& bucket : stats.latency_ns_buckets) bucket = in.u64();
  in.expect_done("stats response");
  return stats;
}

std::string encode_metrics_request() {
  return frame(FrameType::kMetricsRequest, {});
}

std::string encode_metrics_response(std::string_view text) {
  return frame(FrameType::kMetricsResponse, text.substr(0, kMaxPayload));
}

std::string decode_metrics_response(std::string_view payload) {
  return std::string(payload);
}

std::string encode_error(std::string_view message) {
  return frame(FrameType::kError, message.substr(0, kMaxErrorMessage));
}

std::string decode_error(std::string_view payload) {
  return std::string(payload.substr(0, kMaxErrorMessage));
}

std::string encode_frame(FrameType type, std::string_view payload) {
  if (payload.size() > kMaxPayload) {
    throw InvariantError("svc: payload exceeds kMaxPayload");
  }
  return frame(type, payload);
}

}  // namespace droplens::svc
