#include "svc/server.hpp"

#include <chrono>
#include <map>
#include <vector>

#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "svc/snapshot_io.hpp"
#include "svc/snapshot_store.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace droplens::svc {

namespace {

// Wire order of the stats op's per-field counters (= Field bit positions).
constexpr const char* kFieldNames[kFieldCount] = {
    "drop", "classification", "rov", "as0", "irr", "rir", "routed"};

// Queries per Snapshot::lookup_batch call on the serving path. Chunks are
// answered into disjoint slices of the response array, so the parallel_for
// fan-out below stays byte-deterministic for any thread count; the scratch
// per chunk lives on the worker's stack.
constexpr size_t kServeChunk = 512;

// Answer queries[c*kServeChunk ...) against `s`, batching every query whose
// `accept` predicate passes and writing `miss` for the rest.
template <typename Accept>
void answer_chunk(const Snapshot& s, const std::vector<Query>& queries,
                  std::vector<Answer>& answers, size_t c, const Accept& accept,
                  const Answer& miss) {
  const size_t begin = c * kServeChunk;
  const size_t end = std::min(queries.size(), begin + kServeChunk);
  net::Prefix prefixes[kServeChunk];
  uint8_t fields[kServeChunk];
  uint32_t slot[kServeChunk];
  Answer out[kServeChunk];
  size_t m = 0;
  for (size_t i = begin; i < end; ++i) {
    const Query& q = queries[i];
    if (!accept(q)) {
      answers[i] = miss;
      continue;
    }
    prefixes[m] = q.prefix;
    fields[m] = q.fields;
    slot[m] = static_cast<uint32_t>(i);
    ++m;
  }
  s.lookup_batch(std::span<const net::Prefix>(prefixes, m),
                 std::span<const uint8_t>(fields, m), std::span<Answer>(out, m));
  for (size_t j = 0; j < m; ++j) answers[slot[j]] = out[j];
}

}  // namespace

Server::Server(std::shared_ptr<const Snapshot> initial, util::ThreadPool* pool)
    : snapshot_(std::move(initial)), pool_(pool) {
  registry_ = obs::installed();
  if (!registry_) {
    own_registry_ = std::make_unique<obs::Registry>();
    registry_ = own_registry_.get();
  }
  requests_ = registry_->counter("droplens_svc_requests_total", {},
                                 "Frames handled, any type");
  queries_ = registry_->counter("droplens_svc_queries_total", {},
                                "Individual prefix lookups");
  malformed_ = registry_->counter("droplens_svc_malformed_total", {},
                                  "Frames rejected by the decoder");
  reloads_ = registry_->counter("droplens_svc_reloads_total", {},
                                "Snapshots published after the first");
  unavailable_ =
      registry_->counter("droplens_svc_unavailable_dates_total", {},
                         "Query dates the snapshot store could not serve");
  for (size_t i = 0; i < kFieldCount; ++i) {
    field_lookups_[i] =
        registry_->counter("droplens_svc_field_lookups_total",
                           {{"field", kFieldNames[i]}},
                           "Per-field lookups across answered queries");
  }
  latency_ = registry_->histogram(
      "droplens_svc_request_latency_ns",
      obs::Registry::log2_bounds(kLatencyBuckets - 1), {},
      "Frame service time in nanoseconds (log2 buckets)");
}

Server::Server(SnapshotStore& store, util::ThreadPool* pool)
    : Server(nullptr, pool) {
  store_ = &store;
}

void Server::publish(std::shared_ptr<const Snapshot> snap) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (snapshot_) reloads_.inc();
  snapshot_ = std::move(snap);
}

std::shared_ptr<const Snapshot> Server::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.requests = requests_.value();
  s.queries = queries_.value();
  s.malformed = malformed_.value();
  s.reloads = reloads_.value();
  if (std::shared_ptr<const Snapshot> snap = snapshot()) {
    s.snapshot_version = snap->version();
  } else if (store_) {
    s.snapshot_version = last_served_version_.load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < kFieldCount; ++i) {
    s.field_lookups[i] = field_lookups_[i].value();
  }
  s.latency_ns_buckets.resize(kLatencyBuckets);
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    s.latency_ns_buckets[i] = latency_.bucket_value(i);
  }
  return s;
}

size_t Server::message_size(std::string_view buffer) const {
  return frame_size(buffer);
}

std::string Server::malformed_response(std::string_view /*head*/) {
  malformed_.inc();
  return encode_error("malformed frame");
}

MessageClass Server::classify(std::string_view message) const {
  if (message.size() < 4) return MessageClass::kNormal;
  switch (static_cast<FrameType>(static_cast<uint8_t>(message[3]))) {
    case FrameType::kRangeRequest:
      return MessageClass::kBulk;  // most work per frame — shed first
    case FrameType::kStatsRequest:
    case FrameType::kMetricsRequest:
      return MessageClass::kControl;  // observability — shed last
    default:
      return MessageClass::kNormal;
  }
}

std::string Server::overload_response(std::string_view message) {
  return encode_error(message.empty() ? "overloaded: connection limit"
                                      : "overloaded: request shed");
}

std::string Server::timeout_response() {
  return encode_error("deadline exceeded");
}

std::string Server::serve(std::string_view frame) {
  obs::SpanContext inert;
  return serve(frame, inert);
}

std::string Server::serve(std::string_view frame, obs::SpanContext& ctx) {
  const auto start = std::chrono::steady_clock::now();
  requests_.inc();
  std::string response;
  try {
    ctx.stage("decode");
    FrameHeader header = decode_header(frame);
    if (kHeaderSize + header.payload_len != frame.size()) {
      throw ParseError("svc: frame length mismatch");
    }
    ctx.stage("answer");
    switch (header.type) {
      case FrameType::kQueryRequest:
        response = handle_queries(frame_payload(frame));
        break;
      case FrameType::kStatsRequest:
        if (!frame_payload(frame).empty()) {
          throw ParseError("svc: stats request carries a payload");
        }
        response = encode_stats_response(stats());
        break;
      case FrameType::kMetricsRequest:
        if (!frame_payload(frame).empty()) {
          throw ParseError("svc: metrics request carries a payload");
        }
        response = encode_metrics_response(obs::render_prometheus(*registry_));
        break;
      case FrameType::kRangeRequest:
        response = handle_range(frame_payload(frame));
        break;
      case FrameType::kSubscribeRequest: {
        StreamFeed* feed = stream_feed_.load(std::memory_order_acquire);
        response = feed ? feed->handle_subscribe(frame_payload(frame))
                        : encode_error("no stream feed attached");
        break;
      }
      default:
        throw ParseError("svc: unexpected frame type from client");
    }
  } catch (const ParseError& e) {
    malformed_.inc();
    response = encode_error(e.what());
  }
  ctx.stage_end();
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  latency_.observe(static_cast<uint64_t>(ns));
  return response;
}

std::string Server::handle_queries(std::string_view payload) {
  obs::Span span("svc.handle_queries");
  std::vector<Query> queries = decode_query_request(payload);
  if (store_) return handle_store_queries(queries);
  // One snapshot copy per frame: every answer below is computed against it,
  // however many publishes race with us.
  std::shared_ptr<const Snapshot> snap = snapshot();
  if (!snap) return encode_error("no snapshot loaded");

  queries_.inc(queries.size());
  QueryResponse response;
  response.snapshot_version = snap->version();
  response.date = snap->date();
  response.degraded = snap->degraded();
  response.answers.resize(queries.size());

  const Snapshot& s = *snap;
  Answer wrong_date;
  wrong_date.status = static_cast<uint8_t>(QueryStatus::kWrongDate);
  auto accept = [&](const Query& q) { return q.date == s.date(); };
  auto serve_chunk = [&](size_t c) {
    answer_chunk(s, queries, response.answers, c, accept, wrong_date);
  };
  const size_t chunks = (queries.size() + kServeChunk - 1) / kServeChunk;
  if (pool_ && queries.size() >= kParallelThreshold) {
    pool_->parallel_for(chunks, serve_chunk);
  } else {
    for (size_t c = 0; c < chunks; ++c) serve_chunk(c);
  }

  // Count per-field lookups once per answered query; sequential and cheap.
  for (const Query& q : queries) {
    if (q.date != s.date()) continue;
    for (uint8_t f = 0; f < kFieldCount; ++f) {
      if (q.fields & (uint8_t{1} << f)) {
        field_lookups_[f].inc();
      }
    }
  }
  return encode_query_response(response);
}

std::string Server::handle_store_queries(const std::vector<Query>& queries) {
  // Group by date and resolve each distinct date exactly once per frame.
  // Resolution is sequential on purpose: a get() may compile (~0.6 s at
  // paper scale), and the store's per-date latches already dedup identical
  // misses across concurrent frames — fanning the gets out here would just
  // pile threads onto the same latches.
  std::map<net::Date, std::shared_ptr<const Snapshot>> by_date;
  for (const Query& q : queries) by_date.emplace(q.date, nullptr);
  for (auto& [date, snap] : by_date) {
    snap = store_get(date);
    if (snap) note_served(*snap);
  }

  queries_.inc(queries.size());
  QueryResponse response;
  response.answers.resize(queries.size());
  if (!queries.empty()) {
    // Header metadata describes the first query's date (see protocol.hpp);
    // a frame that mixes dates reads per-answer status instead.
    response.date = queries.front().date;
    if (const auto& first = by_date.find(queries.front().date)->second) {
      response.snapshot_version = first->version();
      response.degraded = first->degraded();
    }
  }

  Answer unavailable;
  unavailable.status = static_cast<uint8_t>(QueryStatus::kUnavailable);
  if (by_date.size() == 1 && by_date.begin()->second) {
    // The bulk shape — one date per frame — takes the batched data plane.
    const Snapshot& s = *by_date.begin()->second;
    auto accept = [](const Query&) { return true; };
    auto serve_chunk = [&](size_t c) {
      answer_chunk(s, queries, response.answers, c, accept, unavailable);
    };
    const size_t chunks = (queries.size() + kServeChunk - 1) / kServeChunk;
    if (pool_ && queries.size() >= kParallelThreshold) {
      pool_->parallel_for(chunks, serve_chunk);
    } else {
      for (size_t c = 0; c < chunks; ++c) serve_chunk(c);
    }
  } else {
    auto answer_one = [&](size_t i) {
      const Query& q = queries[i];
      const Snapshot* s = by_date.find(q.date)->second.get();
      if (!s) {
        response.answers[i] = unavailable;
        return;
      }
      response.answers[i] = s->lookup(q.prefix, q.fields);
    };
    if (pool_ && queries.size() >= kParallelThreshold) {
      pool_->parallel_for(queries.size(), answer_one);
    } else {
      for (size_t i = 0; i < queries.size(); ++i) answer_one(i);
    }
  }

  for (const Query& q : queries) {
    if (!by_date.find(q.date)->second) continue;
    for (uint8_t f = 0; f < kFieldCount; ++f) {
      if (q.fields & (uint8_t{1} << f)) {
        field_lookups_[f].inc();
      }
    }
  }
  return encode_query_response(response);
}

std::string Server::handle_range(std::string_view payload) {
  obs::Span span("svc.handle_range");
  RangeQuery rq = decode_range_request(payload);
  if (!store_) return encode_error("range queries require a snapshot store");

  RangeResponse response;
  response.prefix = rq.prefix;
  response.fields = rq.fields;
  const int32_t begin = rq.begin.days();
  const int32_t end = rq.end.days();
  queries_.inc(static_cast<uint64_t>(end - begin) + 1);
  // One pass over the window; adjacent days that agree on every requested
  // field (and degradation bits) merge into one run, so a stable prefix
  // costs one record however long the window is.
  for (int32_t dd = begin; dd <= end; ++dd) {
    net::Date d(dd);
    Answer a;
    uint8_t degraded = 0;
    if (std::shared_ptr<const Snapshot> snap = store_get(d)) {
      note_served(*snap);
      a = snap->lookup(rq.prefix, rq.fields);
      degraded = snap->degraded();
      for (uint8_t f = 0; f < kFieldCount; ++f) {
        if (rq.fields & (uint8_t{1} << f)) {
          field_lookups_[f].inc();
        }
      }
    } else {
      a.status = static_cast<uint8_t>(QueryStatus::kUnavailable);
    }
    if (!response.runs.empty() && response.runs.back().degraded == degraded &&
        response.runs.back().answer == a) {
      ++response.runs.back().days;
    } else {
      response.runs.push_back(RangeRun{d, 1, degraded, a});
    }
  }
  return encode_range_response(response);
}

std::shared_ptr<const Snapshot> Server::store_get(net::Date d) {
  // The live head (a streaming follower's latest compaction, see publish)
  // outranks the store for its own date; history still resolves below.
  if (std::shared_ptr<const Snapshot> live = snapshot();
      live && live->date() == d) {
    return live;
  }
  std::shared_ptr<const Snapshot> snap;
  try {
    snap = store_->get(d);
  } catch (const SnapshotFormatError&) {
    // A corrupt file with no compiler to heal it: this date answers
    // kUnavailable; the store's own counters record the load failure.
  }
  if (!snap) unavailable_.inc();
  return snap;
}

void Server::note_served(const Snapshot& snap) {
  uint64_t v = snap.version();
  uint64_t cur = last_served_version_.load(std::memory_order_relaxed);
  while (cur < v && !last_served_version_.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace droplens::svc
