#include "svc/server.hpp"

#include <bit>
#include <chrono>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace droplens::svc {

Server::Server(std::shared_ptr<const Snapshot> initial, util::ThreadPool* pool)
    : snapshot_(std::move(initial)), pool_(pool) {}

void Server::publish(std::shared_ptr<const Snapshot> snap) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (snapshot_) reloads_.fetch_add(1, std::memory_order_relaxed);
  snapshot_ = std::move(snap);
}

std::shared_ptr<const Snapshot> Server::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.queries = queries_.load(std::memory_order_relaxed);
  s.malformed = malformed_.load(std::memory_order_relaxed);
  s.reloads = reloads_.load(std::memory_order_relaxed);
  if (std::shared_ptr<const Snapshot> snap = snapshot()) {
    s.snapshot_version = snap->version();
  }
  for (size_t i = 0; i < kFieldCount; ++i) {
    s.field_lookups[i] = field_lookups_[i].load(std::memory_order_relaxed);
  }
  s.latency_ns_buckets.resize(kLatencyBuckets);
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    s.latency_ns_buckets[i] = latency_[i].load(std::memory_order_relaxed);
  }
  return s;
}

size_t Server::message_size(std::string_view buffer) const {
  return frame_size(buffer);
}

std::string Server::malformed_response(std::string_view /*head*/) {
  malformed_.fetch_add(1, std::memory_order_relaxed);
  return encode_error("malformed frame");
}

std::string Server::serve(std::string_view frame) {
  const auto start = std::chrono::steady_clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::string response;
  try {
    FrameHeader header = decode_header(frame);
    if (kHeaderSize + header.payload_len != frame.size()) {
      throw ParseError("svc: frame length mismatch");
    }
    switch (header.type) {
      case FrameType::kQueryRequest:
        response = handle_queries(frame_payload(frame));
        break;
      case FrameType::kStatsRequest:
        if (!frame_payload(frame).empty()) {
          throw ParseError("svc: stats request carries a payload");
        }
        response = encode_stats_response(stats());
        break;
      default:
        throw ParseError("svc: unexpected frame type from client");
    }
  } catch (const ParseError& e) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    response = encode_error(e.what());
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  record_latency(static_cast<uint64_t>(ns));
  return response;
}

std::string Server::handle_queries(std::string_view payload) {
  std::vector<Query> queries = decode_query_request(payload);
  // One snapshot copy per frame: every answer below is computed against it,
  // however many publishes race with us.
  std::shared_ptr<const Snapshot> snap = snapshot();
  if (!snap) return encode_error("no snapshot loaded");

  queries_.fetch_add(queries.size(), std::memory_order_relaxed);
  QueryResponse response;
  response.snapshot_version = snap->version();
  response.date = snap->date();
  response.degraded = snap->degraded();
  response.answers.resize(queries.size());

  const Snapshot& s = *snap;
  auto answer_one = [&](size_t i) {
    const Query& q = queries[i];
    if (q.date != s.date()) {
      Answer a;
      a.status = static_cast<uint8_t>(QueryStatus::kWrongDate);
      response.answers[i] = a;
      return;
    }
    response.answers[i] = s.lookup(q.prefix, q.fields);
  };
  if (pool_ && queries.size() >= kParallelThreshold) {
    pool_->parallel_for(queries.size(), answer_one);
  } else {
    for (size_t i = 0; i < queries.size(); ++i) answer_one(i);
  }

  // Count per-field lookups once per answered query; sequential and cheap.
  for (const Query& q : queries) {
    if (q.date != s.date()) continue;
    for (uint8_t f = 0; f < kFieldCount; ++f) {
      if (q.fields & (uint8_t{1} << f)) {
        field_lookups_[f].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return encode_query_response(response);
}

void Server::record_latency(uint64_t ns) {
  size_t bucket = ns == 0 ? 0 : static_cast<size_t>(std::bit_width(ns)) - 1;
  if (bucket >= kLatencyBuckets) bucket = kLatencyBuckets - 1;
  latency_[bucket].fetch_add(1, std::memory_order_relaxed);
}

}  // namespace droplens::svc
