// The admin plane: one plain-HTTP service exposing the operator's view of
// a droplens daemon, riding the same svc transport layer as the query
// protocols. Grown out of the single-endpoint MetricsHttpService; the
// stream-framing discipline (a message is head + declared Content-Length
// body; responses carry Content-Length and honor keep-alive semantics) is
// unchanged and still what keeps scrapers and pipelined peers in sync.
//
// Routes:
//
//   /metrics   Prometheus text exposition of the wired registry. When a
//              FlightRecorder is wired, histogram buckets carry OpenMetrics
//              exemplars linking p99 buckets to trace ids on /tracez.
//   /healthz   readiness: 200 "ok" when every registered health check
//              passes, 503 with per-check reasons otherwise. Checks are
//              wired by the embedding daemon (SnapshotStore residency,
//              stream publisher liveness, ...).
//   /statusz   one page of "what is this process": build info, uptime, fd
//              count, plus daemon-registered sections (resident dates,
//              connection and shed summaries).
//   /tracez    recent sampled request traces per op class.
//   /slowz     the slowest requests ever seen per op class, with per-stage
//              breakdowns.
//   /logz      recent log records and suppression counts.
//   /          route index.
//
// HTTP hygiene: HEAD answers every route with the same headers (including
// the Content-Length the GET body would have) and no body; a known route
// with any other method gets 405 + `Allow: GET, HEAD`; unknown paths get
// 404 with the route index. Every response keeps the Content-Length /
// keep-alive discipline regardless of status.
//
// Wiring happens at daemon setup, before a transport starts serving:
// registration calls (add_health_check / add_status_section /
// add_refresh_hook) are NOT synchronized against serve().
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "svc/transport.hpp"

namespace droplens::svc {

class AdminHttpService : public Service {
 public:
  /// Longest accepted request head (request line + headers + blank line).
  static constexpr size_t kMaxHead = 8192;
  /// Longest accepted request body (an admin client has no business sending
  /// one, but consuming what arrives keeps the stream in sync).
  static constexpr size_t kMaxBody = 1 << 16;

  struct Options {
    /// Rendered on /metrics. nullptr serves an empty exposition.
    const obs::Registry* registry = nullptr;
    /// Exemplar provider for /metrics histogram buckets (usually the
    /// recorder below). nullptr = no exemplars.
    const obs::ExemplarSource* exemplars = nullptr;
    /// Serves /tracez and /slowz. nullptr = those routes answer a hint.
    const obs::FlightRecorder* recorder = nullptr;
    /// Serves /logz. nullptr = that route answers a hint.
    const obs::Logger* logger = nullptr;
    /// First line of /statusz, e.g. "droplensd <version> (<compiler>)".
    std::string build_info;
  };

  /// Metrics-only compatibility shape: exactly the old MetricsHttpService.
  explicit AdminHttpService(const obs::Registry& registry);
  explicit AdminHttpService(Options options);

  /// A health check returns std::nullopt when healthy, or a short reason
  /// string when not. All checks must pass for /healthz to answer 200.
  using HealthCheck = std::function<std::optional<std::string>()>;
  void add_health_check(std::string name, HealthCheck check);

  /// A /statusz section: title plus a body renderer called per request.
  using StatusSection = std::function<std::string()>;
  void add_status_section(std::string title, StatusSection section);

  /// Run before /metrics and /healthz render — the hook point for gauges
  /// that must be recomputed at scrape time (ingest lag, residency).
  void add_refresh_hook(std::function<void()> hook);

  // Service ------------------------------------------------------------------
  size_t message_size(std::string_view buffer) const override;
  std::string serve(std::string_view message) override;
  /// Typed "too large" closes: 431 for a head that never completed within
  /// kMaxHead, 413 for a declared body beyond kMaxBody, 400 otherwise.
  std::string malformed_response(std::string_view head) override;
  /// The admin plane is the observability plane: kControl, shed last.
  MessageClass classify(std::string_view message) const override;
  /// 503 with Connection: close — typed "too busy".
  std::string overload_response(std::string_view message) override;
  /// 408 with Connection: close — typed "too slow".
  std::string timeout_response() override;

 private:
  struct Page {
    std::string status;        // "200 OK", "503 Service Unavailable", ...
    std::string content_type;  // "text/plain", ...
    std::string body;
  };

  Page dispatch(std::string_view path);
  Page metrics_page();
  Page healthz_page();
  Page statusz_page() const;
  Page tracez_page() const;
  Page slowz_page() const;
  Page logz_page() const;
  Page index_page(std::string_view status) const;
  void run_refresh_hooks();

  Options options_;
  uint64_t start_steady_ns_ = 0;  // uptime base
  std::vector<std::pair<std::string, HealthCheck>> health_checks_;
  std::vector<std::pair<std::string, StatusSection>> status_sections_;
  std::vector<std::function<void()>> refresh_hooks_;
};

}  // namespace droplens::svc
