// Pipeline tracing: RAII scoped timing with parent/child nesting.
//
// A Span measures the wall-clock and thread-CPU time of one scope. Spans
// opened while another span is active on the same thread nest under it;
// when a root span closes, its finished tree is submitted to the installed
// Tracer, which keeps a bounded ring of recent traces (oldest dropped).
// Worker threads have their own span stacks, so a span opened inside a
// ThreadPool task becomes a root trace of its own rather than racing on the
// parent — the ring is the only shared state, and it is mutex-guarded.
//
// Like the metrics registry, tracing degrades to nothing when no Tracer is
// installed: Span construction is then one atomic load and a branch, and no
// clock is read. Tracing never alters what the pipeline computes — only
// when it is timed — which the report determinism tests pin down.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace droplens::obs {

class Tracer {
 public:
  /// One finished span: timings plus the nested spans it contained.
  struct Record {
    std::string name;
    uint64_t wall_ns = 0;
    uint64_t cpu_ns = 0;
    std::vector<Record> children;
  };

  /// Keeps the `capacity` most recent root traces.
  explicit Tracer(size_t capacity = 256);

  /// Submit one finished root trace (called by ~Span; public for tests).
  void submit(Record&& root);

  /// The retained traces, oldest first. Copies under the ring mutex.
  std::vector<Record> recent() const;

  /// Total root traces ever submitted (including dropped ones).
  uint64_t submitted() const;

  /// Render the retained traces as an indented tree with per-span wall/CPU
  /// millisecond timings — the `full_report --trace` dump.
  void render(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t submitted_ = 0;
  std::vector<Record> ring_;
};

/// Install `t` as the process-wide tracer (nullptr uninstalls). The tracer
/// must outlive every span opened while it was installed.
void install_tracer(Tracer* t);
Tracer* installed_tracer();

/// RAII scope timer. No-op (no clock read) when no tracer is installed at
/// construction time.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
};

/// RAII helper for tests and tools: installs on construction, restores the
/// previous tracer on destruction.
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer& t) : previous_(installed_tracer()) {
    install_tracer(&t);
  }
  ~ScopedTracer() { install_tracer(previous_); }
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  Tracer* previous_;
};

}  // namespace droplens::obs
