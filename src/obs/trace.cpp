#include "obs/trace.hpp"

#include <time.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <utility>

namespace droplens::obs {

namespace {

std::atomic<Tracer*> g_tracer{nullptr};

struct Frame {
  Tracer* tracer = nullptr;  // the tracer installed when the span opened
  Tracer::Record record;
  std::chrono::steady_clock::time_point wall_start;
  uint64_t cpu_start = 0;
};

// Per-thread stack of open spans. Spans strictly nest (RAII), so the stack
// discipline holds even through exceptions.
thread_local std::vector<Frame> t_stack;

uint64_t thread_cpu_ns() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000u +
         static_cast<uint64_t>(ts.tv_nsec);
}

void render_record(std::ostream& out, const Tracer::Record& record,
                   int depth) {
  char timings[64];
  std::snprintf(timings, sizeof(timings), "  wall=%.3fms cpu=%.3fms",
                record.wall_ns / 1e6, record.cpu_ns / 1e6);
  for (int i = 0; i < depth; ++i) out << "  ";
  out << record.name << timings << '\n';
  for (const Tracer::Record& child : record.children) {
    render_record(out, child, depth + 1);
  }
}

}  // namespace

Tracer::Tracer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void Tracer::submit(Record&& root) {
  std::lock_guard<std::mutex> lock(mu_);
  ++submitted_;
  if (ring_.size() == capacity_) ring_.erase(ring_.begin());
  ring_.push_back(std::move(root));
}

std::vector<Tracer::Record> Tracer::recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_;
}

uint64_t Tracer::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

void Tracer::render(std::ostream& out) const {
  for (const Record& record : recent()) render_record(out, record, 0);
}

void install_tracer(Tracer* t) {
  g_tracer.store(t, std::memory_order_release);
}

Tracer* installed_tracer() {
  return g_tracer.load(std::memory_order_acquire);
}

Span::Span(const char* name) {
  Tracer* tracer = installed_tracer();
  if (!tracer) return;  // the no-op mode: no clock read, nothing recorded
  active_ = true;
  Frame frame;
  frame.tracer = tracer;
  frame.record.name = name;
  frame.wall_start = std::chrono::steady_clock::now();
  frame.cpu_start = thread_cpu_ns();
  t_stack.push_back(std::move(frame));
}

Span::~Span() {
  if (!active_) return;
  Frame frame = std::move(t_stack.back());
  t_stack.pop_back();
  frame.record.wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - frame.wall_start)
          .count());
  uint64_t cpu_now = thread_cpu_ns();
  frame.record.cpu_ns = cpu_now >= frame.cpu_start
                            ? cpu_now - frame.cpu_start
                            : 0;
  if (!t_stack.empty()) {
    t_stack.back().record.children.push_back(std::move(frame.record));
  } else {
    frame.tracer->submit(std::move(frame.record));
  }
}

}  // namespace droplens::obs
