// Structured leveled logging: logfmt/JSON sinks, per-site rate limiting,
// and a bounded ring of recent records for the admin plane's /logz.
//
// Replaces the ad-hoc `std::cerr <<` scattered through examples/ and the
// transports. Every record carries a timestamp, level, call site
// (file:line), a message, and optional key=value fields:
//
//   logfmt  ts=2026-08-08T12:34:56.789Z level=warn site=droplensd.cpp:91
//           msg="bind failed" port=8053 errno=98
//   json    {"ts":"...","level":"warn","site":"droplensd.cpp:91",
//            "msg":"bind failed","port":"8053","errno":"98"}
//
// Call sites use the DLOG_* macros, which plant a static LogSite per
// expansion. The site carries lock-free GCRA rate-limiter state: each site
// may burst `site_burst` records, then is throttled to one per
// `site_interval_ns`; suppressed records are counted and surfaced as a
// `suppressed=N` field on the next record that gets through — a hot error
// path cannot flood the sink, and you can still see how hot it was.
//
// The level gate is one relaxed atomic load; a record below the level costs
// nothing else. Formatting and the sink write happen outside any lock; the
// /logz ring append is the only mutex, sized by ring_capacity.
//
// Sinks write to stderr by default so tool stdout (report output) stays
// byte-identical. Tests inject a capture sink and a fake clock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace droplens::obs {

enum class LogLevel : uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* log_level_name(LogLevel level);
/// Parse "debug"/"info"/"warn"/"error" (the --log-level vocabulary).
std::optional<LogLevel> parse_log_level(std::string_view s);

enum class LogFormat : uint8_t { kLogfmt, kJson };

/// Parse "logfmt"/"json" (the --log-format vocabulary).
std::optional<LogFormat> parse_log_format(std::string_view s);

/// Ordered key/value pairs attached to one record. Values are strings;
/// callers stringify numbers (std::to_string) at the call site.
using LogFields = std::vector<std::pair<std::string, std::string>>;

/// Static per-call-site state, planted by the DLOG_* macros. Carries the
/// rate-limiter cells; must have static storage duration.
struct LogSite {
  const char* file = "";
  int line = 0;
  /// GCRA theoretical-arrival-time, ns on the logger's clock. 0 = fresh.
  std::atomic<uint64_t> tat_ns{0};
  /// Records dropped at this site since the last one that got through.
  std::atomic<uint64_t> suppressed{0};
};

class Logger {
 public:
  struct Options {
    LogLevel level = LogLevel::kInfo;
    LogFormat format = LogFormat::kLogfmt;
    /// Per-site rate limit: after `site_burst` records in a burst, one per
    /// `site_interval_ns`. 0 interval disables limiting.
    uint64_t site_interval_ns = 1'000'000'000;
    uint32_t site_burst = 10;
    /// Recent formatted records kept for /logz.
    size_t ring_capacity = 256;
  };

  Logger() : Logger(Options()) {}
  explicit Logger(Options options);

  /// Emit one record (rate-limited per site, gated by level).
  void log(LogLevel level, LogSite& site, std::string_view msg,
           const LogFields& fields = {});

  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  void set_level(LogLevel level) {
    level_.store(static_cast<uint8_t>(level), std::memory_order_relaxed);
  }
  LogFormat format() const { return format_; }

  /// Records emitted (past the gate and limiter) / dropped by the limiter.
  uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

  /// The /logz page body: recent records oldest-first, preceded by a
  /// one-line summary.
  std::string render_logz() const;

  /// Test seams. The sink receives one formatted line WITHOUT the trailing
  /// newline; default writes "line\n" to stderr. The clock returns unix ns;
  /// default reads CLOCK_REALTIME.
  void set_sink(std::function<void(std::string_view)> sink) {
    std::lock_guard<std::mutex> lock(mu_);
    sink_ = std::move(sink);
  }
  void set_clock(std::function<uint64_t()> clock) {
    std::lock_guard<std::mutex> lock(mu_);
    clock_ = std::move(clock);
  }

 private:
  uint64_t now_ns() const;
  bool admit(LogSite& site, uint64_t now, uint64_t* suppressed_before) const;

  const Options options_;
  std::atomic<uint8_t> level_;
  const LogFormat format_;
  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> suppressed_{0};
  Counter emitted_by_level_[4];
  Counter suppressed_total_;

  mutable std::mutex mu_;  // guards sink_, clock_, ring_
  std::function<void(std::string_view)> sink_;
  std::function<uint64_t()> clock_;
  std::vector<std::string> ring_;
  size_t ring_next_ = 0;
  bool ring_wrapped_ = false;
};

/// Install `l` as the process-wide logger (nullptr uninstalls). Must
/// outlive every DLOG_* call while installed.
void install_logger(Logger* l);
/// The installed logger, or a lazily-constructed default (stderr, logfmt,
/// info) — DLOG_* always has somewhere to go.
Logger& ambient_logger();

/// Emit through the ambient logger. Prefer the DLOG_* macros, which plant
/// the static site.
void log_to_ambient(LogLevel level, LogSite& site, std::string_view msg,
                    const LogFields& fields = {});

}  // namespace droplens::obs

/// DLOG_INFO("message") or DLOG_INFO("message", {{"key", value}, ...}).
#define DROPLENS_LOG_AT(level_, ...)                                     \
  do {                                                                   \
    static ::droplens::obs::LogSite droplens_log_site{__FILE__,          \
                                                      __LINE__};         \
    ::droplens::obs::log_to_ambient(level_, droplens_log_site,           \
                                    __VA_ARGS__);                        \
  } while (0)

#define DLOG_DEBUG(...) \
  DROPLENS_LOG_AT(::droplens::obs::LogLevel::kDebug, __VA_ARGS__)
#define DLOG_INFO(...) \
  DROPLENS_LOG_AT(::droplens::obs::LogLevel::kInfo, __VA_ARGS__)
#define DLOG_WARN(...) \
  DROPLENS_LOG_AT(::droplens::obs::LogLevel::kWarn, __VA_ARGS__)
#define DLOG_ERROR(...) \
  DROPLENS_LOG_AT(::droplens::obs::LogLevel::kError, __VA_ARGS__)
