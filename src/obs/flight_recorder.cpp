#include "obs/flight_recorder.hpp"

#include <time.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace droplens::obs {

namespace {

std::atomic<FlightRecorder*> g_recorder{nullptr};

uint64_t steady_now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000u +
         static_cast<uint64_t>(ts.tv_nsec);
}

uint64_t unix_now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000u +
         static_cast<uint64_t>(ts.tv_nsec);
}

/// log2 bucket of a nanosecond duration: bucket i counts [2^i, 2^(i+1)),
/// everything at or past 2^39 lands in the overflow bucket — the same
/// mapping as Registry::log2_bounds(39).
size_t duration_bucket(uint64_t ns) {
  if (ns <= 1) return 0;
  const size_t b = static_cast<size_t>(std::bit_width(ns)) - 1;
  return std::min(b, FlightRecorder::kDurationBuckets - 1);
}

/// The fixed outcome label set: a bounded cardinality contract with the
/// metrics backend. Anything else counts as "other" (the trace itself still
/// records the verbatim outcome string).
constexpr const char* kOutcomes[] = {"ok",        "shed",  "timeout",
                                     "overload",  "malformed", "error",
                                     "abandoned", "other"};
constexpr size_t kOutcomeCount = sizeof(kOutcomes) / sizeof(kOutcomes[0]);

size_t outcome_index(std::string_view outcome) {
  for (size_t i = 0; i + 1 < kOutcomeCount; ++i) {
    if (outcome == kOutcomes[i]) return i;
  }
  return kOutcomeCount - 1;  // "other"
}

void render_one(std::string& out, const RequestTrace& t) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "trace %llu op=%s outcome=%s total=%.3fms\n",
                static_cast<unsigned long long>(t.id), t.op.c_str(),
                t.outcome.c_str(), static_cast<double>(t.total_ns) / 1e6);
  out += buf;
  for (const RequestTrace::Stage& s : t.stages) {
    std::snprintf(buf, sizeof(buf), "  %-12s +%.3fms %.3fms\n", s.name,
                  static_cast<double>(s.start_ns) / 1e6,
                  static_cast<double>(s.dur_ns) / 1e6);
    out += buf;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// SpanContext

void SpanContext::stage(const char* name) {
  if (!recorder_) return;
  const uint64_t now = steady_now_ns();
  close_stage(now);
  if (stage_count_ >= kMaxStages) {
    if (dropped_ < 255) ++dropped_;
    return;
  }
  RequestTrace::Stage& s = stages_[stage_count_++];
  s.name = name;
  s.start_ns = now - start_ns_;
  s.dur_ns = 0;
  stage_open_ = true;
}

void SpanContext::stage_end() {
  if (!recorder_ || !stage_open_) return;
  close_stage(steady_now_ns());
}

void SpanContext::close_stage(uint64_t now_ns) {
  if (!stage_open_) return;
  RequestTrace::Stage& s = stages_[stage_count_ - 1];
  s.dur_ns = now_ns - start_ns_ - s.start_ns;
  stage_open_ = false;
}

void SpanContext::finish(std::string_view outcome) {
  if (!recorder_) return;
  const uint64_t now = steady_now_ns();
  close_stage(now);
  FlightRecorder* recorder = recorder_;
  recorder_ = nullptr;  // inert from here on, even if submit throws
  recorder->submit(*this, outcome, now);
}

// ---------------------------------------------------------------------------
// FlightRecorder

FlightRecorder::FlightRecorder(Options options) : options_(options) {}

uint16_t FlightRecorder::op_class(const std::string& name) {
  std::lock_guard<std::mutex> lock(ops_mu_);
  const size_t count = op_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count; ++i) {
    if (ops_[i]->name == name) return static_cast<uint16_t>(i);
  }
  if (count >= kMaxOps) {
    throw std::logic_error("obs: flight recorder op class overflow");
  }
  auto op = std::make_unique<OpState>();
  op->name = name;
  op->recent.reserve(options_.recent_capacity);
  op->slow.reserve(options_.slow_capacity);
  if (options_.slow_capacity == 0) {
    // Disabled slow ring: park the admission floor at infinity so the
    // lock-free pre-check rejects without ever touching the ring.
    op->slow_floor.store(std::numeric_limits<uint64_t>::max(),
                         std::memory_order_relaxed);
  }
  op->duration = obs::histogram(
      kDurationFamily, Registry::log2_bounds(kDurationBuckets - 1),
      {{"op", name}},
      "End-to-end request duration in nanoseconds (log2 buckets)");
  op->stages_dropped =
      obs::counter("droplens_recorder_stages_dropped_total", {{"op", name}},
                   "Trace stages past the per-context cap");
  static_assert(kOutcomeLabels == kOutcomeCount,
                "header constant must track the outcome label set");
  for (size_t i = 0; i < kOutcomeCount; ++i) {
    op->outcomes[i] =
        obs::counter("droplens_requests_total",
                     {{"op", name}, {"outcome", kOutcomes[i]}},
                     "Requests finished, by op class and outcome");
  }
  ops_[count] = std::move(op);
  op_count_.store(count + 1, std::memory_order_release);
  return static_cast<uint16_t>(count);
}

SpanContext FlightRecorder::begin(uint16_t op) {
  SpanContext ctx;
  if (op >= op_count_.load(std::memory_order_acquire)) return ctx;
  ctx.recorder_ = this;
  ctx.op_ = op;
  const uint32_t period = std::max<uint32_t>(1, options_.sample_period);
  ctx.sampled_ =
      ops_[op]->next_sample.fetch_add(1, std::memory_order_relaxed) % period ==
      0;
  ctx.start_ns_ = steady_now_ns();
  return ctx;
}

void FlightRecorder::submit(SpanContext& ctx, std::string_view outcome,
                            uint64_t end_ns) {
  OpState& op = *ops_[ctx.op_];
  const uint64_t total_ns = end_ns - ctx.start_ns_;
  finished_.fetch_add(1, std::memory_order_relaxed);
  op.duration.observe(total_ns);
  if (ctx.dropped_ > 0) op.stages_dropped.inc(ctx.dropped_);
  // Pre-interned against the FIXED label set (kOutcomes), so a hostile
  // outcome string can never mint unbounded series and the hot path never
  // pays a registry lookup.
  op.outcomes[outcome_index(outcome)].inc();

  // Slow-ring admission is judged on EVERY request; the relaxed floor makes
  // the common (fast) case lock-free. The floor alone decides — it is 0
  // while the ring has room (admit everything measurable) and UINT64_MAX
  // when the ring is disabled, so no unlocked ring access is ever needed.
  const bool maybe_slow =
      total_ns > op.slow_floor.load(std::memory_order_relaxed);
  if (!ctx.sampled_ && !maybe_slow) return;

  RequestTrace trace;
  trace.id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  trace.op = op.name;
  trace.outcome.assign(outcome.data(), outcome.size());
  // Wall-clock stamp derived here, on the capture path only — begin() pays
  // for one clock, not two, on the 1023/1024 uncaptured requests.
  trace.start_unix_ns = unix_now_ns() - total_ns;
  trace.total_ns = total_ns;
  trace.stages.assign(ctx.stages_.begin(),
                      ctx.stages_.begin() + ctx.stage_count_);

  std::lock_guard<std::mutex> lock(op.mu);
  const size_t bucket = duration_bucket(total_ns);
  op.exemplar_id[bucket] = trace.id;
  op.exemplar_ns[bucket] = total_ns;
  op.exemplar_unix_ns[bucket] = trace.start_unix_ns;
  if (options_.slow_capacity > 0) {
    const bool room = op.slow.size() < options_.slow_capacity;
    if (room || total_ns > op.slow.back().total_ns) {
      // Insert keeping slowest-first order; evict the fastest beyond cap.
      auto pos = std::upper_bound(
          op.slow.begin(), op.slow.end(), total_ns,
          [](uint64_t v, const RequestTrace& t) { return v > t.total_ns; });
      op.slow.insert(pos, trace);
      if (op.slow.size() > options_.slow_capacity) op.slow.pop_back();
      if (op.slow.size() == options_.slow_capacity) {
        op.slow_floor.store(op.slow.back().total_ns,
                            std::memory_order_relaxed);
      }
    }
  }
  if (ctx.sampled_ && options_.recent_capacity > 0) {
    if (op.recent.size() < options_.recent_capacity) {
      op.recent.push_back(std::move(trace));
    } else {
      op.recent[op.recent_next] = std::move(trace);
      op.recent_next = (op.recent_next + 1) % options_.recent_capacity;
      op.recent_wrapped = true;
    }
  }
}

FlightRecorder::OpState* FlightRecorder::find_op(
    const std::string& name) const {
  const size_t count = op_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count; ++i) {
    if (ops_[i]->name == name) return ops_[i].get();
  }
  return nullptr;
}

std::vector<RequestTrace> FlightRecorder::recent(const std::string& op) const {
  std::vector<RequestTrace> out;
  OpState* state = find_op(op);
  if (!state) return out;
  std::lock_guard<std::mutex> lock(state->mu);
  // Oldest first: the ring cursor points at the oldest once wrapped.
  const size_t n = state->recent.size();
  const size_t first = state->recent_wrapped ? state->recent_next : 0;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(state->recent[(first + i) % n]);
  }
  return out;
}

std::vector<RequestTrace> FlightRecorder::slowest(
    const std::string& op) const {
  OpState* state = find_op(op);
  if (!state) return {};
  std::lock_guard<std::mutex> lock(state->mu);
  return state->slow;
}

std::string FlightRecorder::render_tracez() const {
  std::string out;
  const size_t count = op_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count; ++i) {
    out += "== op ";
    out += ops_[i]->name;
    out += " (sampled recent, oldest first) ==\n";
    for (const RequestTrace& t : recent(ops_[i]->name)) render_one(out, t);
  }
  return out;
}

std::string FlightRecorder::render_slowz() const {
  std::string out;
  const size_t count = op_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count; ++i) {
    out += "== op ";
    out += ops_[i]->name;
    out += " (slowest first) ==\n";
    for (const RequestTrace& t : slowest(ops_[i]->name)) render_one(out, t);
  }
  return out;
}

std::optional<Exemplar> FlightRecorder::exemplar(const std::string& family,
                                                 const Labels& labels,
                                                 size_t bucket_index) const {
  if (family != kDurationFamily || bucket_index >= kDurationBuckets) {
    return std::nullopt;
  }
  const std::string* op_name = nullptr;
  for (const auto& [key, value] : labels) {
    if (key == "op") op_name = &value;
  }
  if (!op_name) return std::nullopt;
  OpState* state = find_op(*op_name);
  if (!state) return std::nullopt;
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->exemplar_id[bucket_index] == 0) return std::nullopt;
  Exemplar ex;
  ex.labels = {{"trace_id", std::to_string(state->exemplar_id[bucket_index])}};
  ex.value = static_cast<double>(state->exemplar_ns[bucket_index]);
  ex.timestamp_s =
      static_cast<double>(state->exemplar_unix_ns[bucket_index]) / 1e9;
  return ex;
}

void install_flight_recorder(FlightRecorder* r) {
  g_recorder.store(r, std::memory_order_release);
}

FlightRecorder* installed_flight_recorder() {
  return g_recorder.load(std::memory_order_acquire);
}

}  // namespace droplens::obs
