#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace droplens::obs {

namespace {

std::atomic<Registry*> g_registry{nullptr};

const char* type_name(Registry::Type t) {
  switch (t) {
    case Registry::Type::kCounter:
      return "counter";
    case Registry::Type::kGauge:
      return "gauge";
    case Registry::Type::kHistogram:
      return "histogram";
  }
  return "?";
}

}  // namespace

Registry::Series& Registry::intern(const std::string& name, Type type,
                                   const Labels& labels,
                                   const std::string& help,
                                   const std::vector<uint64_t>* bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.type = type;
    family.help = help;
    if (bounds) family.bounds = *bounds;
  } else {
    if (family.type != type) {
      throw std::logic_error("obs: metric '" + name + "' registered as " +
                             type_name(family.type) + ", re-acquired as " +
                             type_name(type));
    }
    if (bounds && family.bounds != *bounds) {
      throw std::logic_error("obs: histogram '" + name +
                             "' re-acquired with different buckets");
    }
    if (family.help.empty() && !help.empty()) family.help = help;
  }
  for (Series& s : family.series) {
    if (s.labels == labels) return s;
  }
  Series& s = family.series.emplace_back();
  s.labels = labels;
  if (type == Type::kHistogram) {
    s.hist = std::make_unique<detail::HistogramCells>(family.bounds);
  }
  return s;
}

Counter Registry::counter(const std::string& name, const Labels& labels,
                          const std::string& help) {
  return Counter(&intern(name, Type::kCounter, labels, help, nullptr).counter);
}

Gauge Registry::gauge(const std::string& name, const Labels& labels,
                      const std::string& help) {
  return Gauge(&intern(name, Type::kGauge, labels, help, nullptr).gauge);
}

Histogram Registry::histogram(const std::string& name,
                              std::vector<uint64_t> bounds,
                              const Labels& labels, const std::string& help) {
  if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::logic_error("obs: histogram '" + name +
                           "' needs ascending, non-empty bounds");
  }
  return Histogram(
      intern(name, Type::kHistogram, labels, help, &bounds).hist.get());
}

std::vector<uint64_t> Registry::log2_bounds(size_t n) {
  std::vector<uint64_t> bounds;
  bounds.reserve(n);
  for (size_t i = 1; i <= n; ++i) {
    bounds.push_back(i >= 64 ? ~uint64_t{0} : (uint64_t{1} << i) - 1);
  }
  return bounds;
}

std::vector<uint64_t> Registry::linear_bounds(uint64_t width, size_t n) {
  std::vector<uint64_t> bounds;
  bounds.reserve(n);
  for (size_t i = 1; i <= n; ++i) bounds.push_back(width * i);
  return bounds;
}

std::vector<Registry::FamilySnapshot> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FamilySnapshot> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilySnapshot f;
    f.name = name;
    f.help = family.help;
    f.type = family.type;
    f.bounds = family.bounds;
    f.series.reserve(family.series.size());
    for (const Series& s : family.series) {
      SeriesSnapshot snap;
      snap.labels = s.labels;
      snap.counter = s.counter.load(std::memory_order_relaxed);
      snap.gauge = s.gauge.load(std::memory_order_relaxed);
      if (s.hist) {
        snap.buckets.reserve(s.hist->bounds.size() + 1);
        for (size_t i = 0; i <= s.hist->bounds.size(); ++i) {
          snap.buckets.push_back(
              s.hist->buckets[i].load(std::memory_order_relaxed));
        }
        snap.sum = s.hist->sum.load(std::memory_order_relaxed);
      }
      f.series.push_back(std::move(snap));
    }
    std::sort(f.series.begin(), f.series.end(),
              [](const SeriesSnapshot& a, const SeriesSnapshot& b) {
                return a.labels < b.labels;
              });
    out.push_back(std::move(f));
  }
  return out;  // families_ is a std::map: already sorted by name
}

void install(Registry* r) { g_registry.store(r, std::memory_order_release); }

Registry* installed() { return g_registry.load(std::memory_order_acquire); }

Counter counter(const std::string& name, const Labels& labels,
                const std::string& help) {
  Registry* r = installed();
  return r ? r->counter(name, labels, help) : Counter();
}

Gauge gauge(const std::string& name, const Labels& labels,
            const std::string& help) {
  Registry* r = installed();
  return r ? r->gauge(name, labels, help) : Gauge();
}

Histogram histogram(const std::string& name, std::vector<uint64_t> bounds,
                    const Labels& labels, const std::string& help) {
  Registry* r = installed();
  return r ? r->histogram(name, std::move(bounds), labels, help) : Histogram();
}

}  // namespace droplens::obs
