// Prometheus text exposition (format version 0.0.4) for an obs::Registry.
//
// One call renders a snapshot of every family: `# HELP` / `# TYPE` headers,
// series lines with escaped label values, histograms as cumulative
// `_bucket{le=...}` series plus `_sum` and `_count`. Output is
// deterministic: families sort by name, series by label values, label pairs
// render in their interned order — the golden test in tests/test_obs.cpp
// pins the exact bytes.
//
// The exemplar-aware overload additionally asks an ExemplarSource for a
// representative observation per histogram bucket and appends it in
// OpenMetrics exemplar syntax (` # {trace_id="42"} VALUE TIMESTAMP`) — how
// a p99 bucket on /metrics links to a captured trace on /tracez. Plain
// Prometheus scrapers that predate OpenMetrics simply ignore the suffix.
#pragma once

#include <optional>
#include <string>

#include "obs/metrics.hpp"

namespace droplens::obs {

class Registry;

/// One representative observation attached to a histogram bucket line.
struct Exemplar {
  Labels labels;           ///< e.g. {{"trace_id", "42"}}
  double value = 0;        ///< the observed value (same unit as the series)
  double timestamp_s = 0;  ///< unix seconds; <= 0 renders no timestamp
};

/// Answers "which exemplar represents bucket `bucket_index` of this
/// series?" — bucket_index counts non-cumulative buckets, overflow last.
/// Return std::nullopt for buckets without one.
class ExemplarSource {
 public:
  virtual ~ExemplarSource() = default;
  virtual std::optional<Exemplar> exemplar(const std::string& family,
                                           const Labels& labels,
                                           size_t bucket_index) const = 0;
};

std::string render_prometheus(const Registry& registry);
std::string render_prometheus(const Registry& registry,
                              const ExemplarSource* exemplars);

}  // namespace droplens::obs
