// Prometheus text exposition (format version 0.0.4) for an obs::Registry.
//
// One call renders a snapshot of every family: `# HELP` / `# TYPE` headers,
// series lines with escaped label values, histograms as cumulative
// `_bucket{le=...}` series plus `_sum` and `_count`. Output is
// deterministic: families sort by name, series by label values, label pairs
// render in their interned order — the golden test in tests/test_obs.cpp
// pins the exact bytes.
#pragma once

#include <string>

namespace droplens::obs {

class Registry;

std::string render_prometheus(const Registry& registry);

}  // namespace droplens::obs
