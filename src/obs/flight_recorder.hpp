// Request flight recorder: explicit span contexts, slow/recent trace rings,
// and histogram exemplars — the "why was THIS request slow" layer.
//
// obs::Span (trace.hpp) is thread-local RAII: it nests by stack discipline
// on one thread, which is exactly wrong for a request that hops across
// epoll event-loop callbacks (read one tick, serve the next, flush a third)
// or crosses ThreadPool workers. SpanContext detaches the trace from the
// thread: it is an explicit, movable value that a transport parks on its
// connection object between callbacks and resumes wherever the next stage
// runs. One context = one request = one root trace with per-stage timings
// and a final outcome tag.
//
// The cost model, because this sits on the hot serving path:
//
//   recorder absent   begin() returns an inert context; every stage call is
//                     one branch, no clock read.
//   unsampled         stages are still timed — ONE steady_clock read per
//                     stage transition (a transition both closes the open
//                     stage and starts the next at the same timestamp) —
//                     into a fixed inline array; no allocation, no lock, no
//                     registry lookup (outcome counters are interned per op
//                     at setup). finish() takes the op's mutex ONLY when the
//                     request is slow enough for the slow ring (checked
//                     against a relaxed atomic floor first).
//   sampled (1/N)     same, plus finish() pushes into the recent ring under
//                     the op mutex.
//
// Stage names must be string literals (static storage duration) — contexts
// store the pointer, never copy the bytes.
//
// Per op class ("binary", "whois", "http", "ingest", ...) the recorder
// keeps two bounded rings: the N most recent sampled traces (/tracez) and
// the K slowest traces ever seen (/slowz) — slowness is judged on EVERY
// request, sampled or not, so the tail is never missed by the sampler. A
// per-op log2 duration histogram plus outcome counters go to the obs
// registry, and every capture stamps a per-bucket exemplar so a p99 bucket
// on /metrics links to the trace id that produced it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"

namespace droplens::obs {

class FlightRecorder;

/// One finished request trace, as captured by the recorder.
struct RequestTrace {
  struct Stage {
    const char* name = "";
    uint64_t start_ns = 0;  ///< offset from the trace's start
    uint64_t dur_ns = 0;
  };
  uint64_t id = 0;            ///< process-unique trace id (exemplar link)
  std::string op;             ///< op class name
  std::string outcome;        ///< "ok", "shed", "timeout", "overload", ...
  uint64_t start_unix_ns = 0; ///< wall clock at begin(), for display
                              ///< (derived at capture — begin() never reads
                              ///< the realtime clock)
  uint64_t total_ns = 0;      ///< begin() to finish()
  std::vector<Stage> stages;
};

/// A request trace being built. Movable (park it on a connection, hand it
/// to another thread), not copyable; exactly one thread may touch it at a
/// time — the same exclusive-ownership rule as the bytes of the request it
/// follows. Default-constructed and moved-from contexts are inert: every
/// call is a null test.
class SpanContext {
 public:
  /// Deep enough for accept→read→serve(+sub-stages)→flush; stages past the
  /// cap are dropped (counted in droplens_recorder_stages_dropped_total).
  static constexpr size_t kMaxStages = 12;

  SpanContext() = default;
  SpanContext(SpanContext&& other) noexcept { move_from(other); }
  SpanContext& operator=(SpanContext&& other) noexcept {
    if (this != &other) {
      abandon();
      move_from(other);
    }
    return *this;
  }
  SpanContext(const SpanContext&) = delete;
  SpanContext& operator=(const SpanContext&) = delete;
  /// An armed context that is destroyed without finish() submits itself
  /// with outcome "abandoned" — a dropped request is still evidence.
  ~SpanContext() { abandon(); }

  /// True when following a request (armed); false = every call is a no-op.
  explicit operator bool() const { return recorder_ != nullptr; }
  /// True when this trace is bound for the recent ring (the 1/N sampler
  /// picked it), not just slow-ring eligible.
  bool sampled() const { return sampled_; }

  /// Open a stage. An open stage is closed implicitly — stages on one
  /// context are sequential, matching a request's lifecycle.
  void stage(const char* name);
  /// Close the open stage (idempotent). finish() also closes it.
  void stage_end();

  /// Submit the trace with its final outcome. The context is inert after.
  void finish(std::string_view outcome);

 private:
  friend class FlightRecorder;

  void move_from(SpanContext& other) noexcept {
    recorder_ = other.recorder_;
    other.recorder_ = nullptr;
    op_ = other.op_;
    sampled_ = other.sampled_;
    stage_count_ = other.stage_count_;
    stage_open_ = other.stage_open_;
    dropped_ = other.dropped_;
    start_ns_ = other.start_ns_;
    stages_ = other.stages_;
  }
  void abandon() {
    if (recorder_) finish("abandoned");
  }
  /// Close the open stage at a timestamp the caller already read — stage
  /// transitions and finish() cost ONE clock read, not two.
  void close_stage(uint64_t now_ns);

  FlightRecorder* recorder_ = nullptr;
  uint16_t op_ = 0;
  bool sampled_ = false;
  uint8_t stage_count_ = 0;
  bool stage_open_ = false;
  uint8_t dropped_ = 0;  // stages past kMaxStages (counted, not recorded)
  uint64_t start_ns_ = 0;       // steady clock, ns
  std::array<RequestTrace::Stage, kMaxStages> stages_{};
};

/// RAII stage scope over a SpanContext — for code paths where the stage
/// does begin and end in one frame (Server's decode/answer/encode).
class StageScope {
 public:
  StageScope(SpanContext& ctx, const char* name) : ctx_(ctx) {
    ctx_.stage(name);
  }
  ~StageScope() { ctx_.stage_end(); }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  SpanContext& ctx_;
};

class FlightRecorder : public ExemplarSource {
 public:
  struct Options {
    /// 1-in-N recent-ring sampling. 1 = every request; 0 behaves as 1.
    uint32_t sample_period = 1024;
    /// Recent sampled traces kept per op class (/tracez).
    size_t recent_capacity = 64;
    /// Slowest traces kept per op class (/slowz).
    size_t slow_capacity = 16;
  };

  FlightRecorder() : FlightRecorder(Options()) {}
  explicit FlightRecorder(Options options);

  /// Intern an op class by name (idempotent; returns a stable index).
  /// Call once at setup, not per request. Throws std::logic_error past 64
  /// op classes — that is a naming bug, not a workload.
  uint16_t op_class(const std::string& name);

  /// Begin a trace for `op` (an op_class index). Cheap: one relaxed
  /// fetch_add plus one steady-clock read (the wall-clock display stamp is
  /// derived at capture, so the realtime clock is never read per request).
  SpanContext begin(uint16_t op);

  /// The captured rings, oldest first / slowest first.
  std::vector<RequestTrace> recent(const std::string& op) const;
  std::vector<RequestTrace> slowest(const std::string& op) const;

  /// Plain-text renderings — the /tracez and /slowz page bodies.
  std::string render_tracez() const;
  std::string render_slowz() const;

  /// Total traces finished (including unsampled, never-captured ones).
  uint64_t finished() const {
    return finished_.load(std::memory_order_relaxed);
  }

  // ExemplarSource -----------------------------------------------------------
  /// Exemplars attach to this recorder's own histogram family
  /// (droplens_request_duration_ns{op=...}): the most recent captured trace
  /// whose duration fell in the bucket.
  std::optional<Exemplar> exemplar(const std::string& family,
                                   const Labels& labels,
                                   size_t bucket_index) const override;

  /// The histogram family exemplars attach to.
  static constexpr const char* kDurationFamily =
      "droplens_request_duration_ns";
  /// log2 buckets of the duration histogram (same scheme as the server's
  /// latency histogram).
  static constexpr size_t kDurationBuckets = 40;

 private:
  friend class SpanContext;
  static constexpr size_t kMaxOps = 64;
  /// Fixed outcome label set ("ok", "shed", ..., "other") — see kOutcomes
  /// in the implementation.
  static constexpr size_t kOutcomeLabels = 8;

  struct OpState {
    std::string name;
    /// Sampling counter: one per op so a chatty op cannot starve another.
    std::atomic<uint64_t> next_sample{0};
    /// Sole pre-lock test for slow-ring admission: the smallest total_ns
    /// currently in a FULL slow ring (0 while it has room, UINT64_MAX when
    /// the ring is disabled — the hot path never reads the ring itself).
    std::atomic<uint64_t> slow_floor{0};
    /// Per-bucket exemplar: id and duration of the last captured trace in
    /// that log2 bucket, packed as (id, ns) behind the mutex.
    std::array<uint64_t, kDurationBuckets> exemplar_id{};
    std::array<uint64_t, kDurationBuckets> exemplar_ns{};
    std::array<uint64_t, kDurationBuckets> exemplar_unix_ns{};
    mutable std::mutex mu;
    std::vector<RequestTrace> recent;   // ring, oldest first
    size_t recent_next = 0;             // ring cursor
    bool recent_wrapped = false;
    std::vector<RequestTrace> slow;     // sorted slowest-first, <= capacity
    obs::Histogram duration;
    obs::Counter stages_dropped;
    /// Outcome counters interned once at op_class() — submit() must never
    /// pay a registry lookup (label allocation + map probe) per request.
    std::array<obs::Counter, kOutcomeLabels> outcomes{};
  };

  void submit(SpanContext& ctx, std::string_view outcome, uint64_t end_ns);
  OpState* find_op(const std::string& name) const;

  const Options options_;
  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint64_t> finished_{0};

  mutable std::mutex ops_mu_;  // guards op interning only
  // Fixed-capacity storage: op pointers handed to contexts stay valid for
  // the recorder's lifetime, and the hot path never takes ops_mu_.
  std::array<std::unique_ptr<OpState>, kMaxOps> ops_;
  std::atomic<size_t> op_count_{0};
};

/// Install `r` as the process-wide flight recorder (nullptr uninstalls).
/// Must outlive every context begun while installed.
void install_flight_recorder(FlightRecorder* r);
FlightRecorder* installed_flight_recorder();

/// RAII install/restore for tests and tools.
class ScopedFlightRecorder {
 public:
  explicit ScopedFlightRecorder(FlightRecorder& r)
      : previous_(installed_flight_recorder()) {
    install_flight_recorder(&r);
  }
  ~ScopedFlightRecorder() { install_flight_recorder(previous_); }
  ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
  ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;

 private:
  FlightRecorder* previous_;
};

}  // namespace droplens::obs
