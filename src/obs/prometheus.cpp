#include "obs/prometheus.hpp"

#include <cstdio>

#include "obs/metrics.hpp"

namespace droplens::obs {

namespace {

// Label values escape backslash, double-quote, and newline; HELP text
// escapes backslash and newline (the exposition-format rules).
void append_escaped(std::string& out, const std::string& value,
                    bool escape_quotes) {
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '"':
        if (escape_quotes) {
          out += "\\\"";
        } else {
          out += c;
        }
        break;
      default:
        out += c;
    }
  }
}

void append_labels(std::string& out, const Labels& labels,
                   const std::string& extra_key = {},
                   const std::string& extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    append_escaped(out, value, /*escape_quotes=*/true);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    append_escaped(out, extra_value, /*escape_quotes=*/true);
    out += '"';
  }
  out += '}';
}

// OpenMetrics exemplar suffix: ` # {labels} value [timestamp]`. Values
// render with %g so integral nanosecond counts stay compact; timestamps as
// fractional unix seconds.
void append_exemplar(std::string& out, const Exemplar& ex) {
  out += " # {";
  bool first = true;
  for (const auto& [key, value] : ex.labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    append_escaped(out, value, /*escape_quotes=*/true);
    out += '"';
  }
  out += "} ";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", ex.value);
  out += buf;
  if (ex.timestamp_s > 0) {
    std::snprintf(buf, sizeof(buf), " %.9f", ex.timestamp_s);
    out += buf;
  }
}

const char* type_keyword(Registry::Type t) {
  switch (t) {
    case Registry::Type::kCounter:
      return "counter";
    case Registry::Type::kGauge:
      return "gauge";
    case Registry::Type::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string render_prometheus(const Registry& registry) {
  return render_prometheus(registry, nullptr);
}

std::string render_prometheus(const Registry& registry,
                              const ExemplarSource* exemplars) {
  std::string out;
  for (const Registry::FamilySnapshot& family : registry.snapshot()) {
    if (!family.help.empty()) {
      out += "# HELP ";
      out += family.name;
      out += ' ';
      append_escaped(out, family.help, /*escape_quotes=*/false);
      out += '\n';
    }
    out += "# TYPE ";
    out += family.name;
    out += ' ';
    out += type_keyword(family.type);
    out += '\n';
    for (const Registry::SeriesSnapshot& series : family.series) {
      switch (family.type) {
        case Registry::Type::kCounter:
          out += family.name;
          append_labels(out, series.labels);
          out += ' ';
          out += std::to_string(series.counter);
          out += '\n';
          break;
        case Registry::Type::kGauge:
          out += family.name;
          append_labels(out, series.labels);
          out += ' ';
          out += std::to_string(series.gauge);
          out += '\n';
          break;
        case Registry::Type::kHistogram: {
          uint64_t cumulative = 0;
          for (size_t i = 0; i < series.buckets.size(); ++i) {
            cumulative += series.buckets[i];
            out += family.name;
            out += "_bucket";
            append_labels(out, series.labels, "le",
                          i < family.bounds.size()
                              ? std::to_string(family.bounds[i])
                              : "+Inf");
            out += ' ';
            out += std::to_string(cumulative);
            if (exemplars) {
              if (std::optional<Exemplar> ex =
                      exemplars->exemplar(family.name, series.labels, i)) {
                append_exemplar(out, *ex);
              }
            }
            out += '\n';
          }
          out += family.name;
          out += "_sum";
          append_labels(out, series.labels);
          out += ' ';
          out += std::to_string(series.sum);
          out += '\n';
          out += family.name;
          out += "_count";
          append_labels(out, series.labels);
          out += ' ';
          out += std::to_string(cumulative);
          out += '\n';
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace droplens::obs
