#include "obs/log.hpp"

#include <time.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace droplens::obs {

namespace {

std::atomic<Logger*> g_logger{nullptr};

uint64_t realtime_ns() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000u +
         static_cast<uint64_t>(ts.tv_nsec);
}

/// RFC 3339 UTC with millisecond precision: 2026-08-08T12:34:56.789Z.
void append_timestamp(std::string& out, uint64_t unix_ns) {
  const time_t secs = static_cast<time_t>(unix_ns / 1'000'000'000u);
  const unsigned millis =
      static_cast<unsigned>((unix_ns / 1'000'000u) % 1000u);
  tm parts{};
  gmtime_r(&secs, &parts);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03uZ",
                parts.tm_year + 1900, parts.tm_mon + 1, parts.tm_mday,
                parts.tm_hour, parts.tm_min, parts.tm_sec, millis);
  out += buf;
}

/// basename(file): sites render as "droplensd.cpp:91", not a build path.
const char* site_basename(const char* file) {
  const char* slash = std::strrchr(file, '/');
  return slash ? slash + 1 : file;
}

bool logfmt_needs_quotes(std::string_view v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' || c == '\n') {
      return true;
    }
  }
  return false;
}

void append_logfmt_value(std::string& out, std::string_view v) {
  if (!logfmt_needs_quotes(v)) {
    out += v;
    return;
  }
  out += '"';
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

void append_json_string(std::string& out, std::string_view v) {
  out += '"';
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string format_record(LogFormat format, uint64_t unix_ns, LogLevel level,
                          const LogSite& site, std::string_view msg,
                          const LogFields& fields, uint64_t suppressed) {
  std::string out;
  char site_buf[64];
  std::snprintf(site_buf, sizeof(site_buf), "%s:%d",
                site_basename(site.file), site.line);
  if (format == LogFormat::kLogfmt) {
    out += "ts=";
    append_timestamp(out, unix_ns);
    out += " level=";
    out += log_level_name(level);
    out += " site=";
    out += site_buf;
    out += " msg=";
    append_logfmt_value(out, msg);
    for (const auto& [key, value] : fields) {
      out += ' ';
      out += key;
      out += '=';
      append_logfmt_value(out, value);
    }
    if (suppressed > 0) {
      out += " suppressed=";
      out += std::to_string(suppressed);
    }
  } else {
    out += "{\"ts\":\"";
    append_timestamp(out, unix_ns);
    out += "\",\"level\":\"";
    out += log_level_name(level);
    out += "\",\"site\":\"";
    out += site_buf;
    out += "\",\"msg\":";
    append_json_string(out, msg);
    for (const auto& [key, value] : fields) {
      out += ',';
      append_json_string(out, key);
      out += ':';
      append_json_string(out, value);
    }
    if (suppressed > 0) {
      out += ",\"suppressed\":";
      out += std::to_string(suppressed);
    }
    out += '}';
  }
  return out;
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

std::optional<LogLevel> parse_log_level(std::string_view s) {
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn" || s == "warning") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  return std::nullopt;
}

std::optional<LogFormat> parse_log_format(std::string_view s) {
  if (s == "logfmt") return LogFormat::kLogfmt;
  if (s == "json") return LogFormat::kJson;
  return std::nullopt;
}

Logger::Logger(Options options)
    : options_(options),
      level_(static_cast<uint8_t>(options.level)),
      format_(options.format) {
  ring_.reserve(options_.ring_capacity);
  for (int i = 0; i < 4; ++i) {
    emitted_by_level_[i] = obs::counter(
        "droplens_log_records_total",
        {{"level", log_level_name(static_cast<LogLevel>(i))}},
        "Log records emitted, by level");
  }
  suppressed_total_ =
      obs::counter("droplens_log_suppressed_total", {},
                   "Log records dropped by per-site rate limiting");
}

uint64_t Logger::now_ns() const {
  std::function<uint64_t()> clock;
  {
    std::lock_guard<std::mutex> lock(mu_);
    clock = clock_;
  }
  return clock ? clock() : realtime_ns();
}

bool Logger::admit(LogSite& site, uint64_t now,
                   uint64_t* suppressed_before) const {
  *suppressed_before = 0;
  const uint64_t interval = options_.site_interval_ns;
  if (interval == 0) {
    *suppressed_before = site.suppressed.exchange(0, std::memory_order_relaxed);
    return true;
  }
  // GCRA: each record advances the theoretical arrival time by one
  // interval; a site may run ahead of real time by at most burst intervals.
  const uint64_t tolerance = static_cast<uint64_t>(options_.site_burst) *
                             interval;
  uint64_t tat = site.tat_ns.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t base = std::max(tat, now);
    if (base - now > tolerance) {
      site.suppressed.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (site.tat_ns.compare_exchange_weak(tat, base + interval,
                                          std::memory_order_relaxed)) {
      *suppressed_before =
          site.suppressed.exchange(0, std::memory_order_relaxed);
      return true;
    }
  }
}

void Logger::log(LogLevel level, LogSite& site, std::string_view msg,
                 const LogFields& fields) {
  if (static_cast<uint8_t>(level) < level_.load(std::memory_order_relaxed)) {
    return;
  }
  const uint64_t now = now_ns();
  uint64_t suppressed_before = 0;
  if (!admit(site, now, &suppressed_before)) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    suppressed_total_.inc();
    return;
  }
  std::string line =
      format_record(format_, now, level, site, msg, fields, suppressed_before);
  emitted_.fetch_add(1, std::memory_order_relaxed);
  emitted_by_level_[static_cast<size_t>(level)].inc();

  std::function<void(std::string_view)> sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sink = sink_;
    if (options_.ring_capacity > 0) {
      if (ring_.size() < options_.ring_capacity) {
        ring_.push_back(line);
      } else {
        ring_[ring_next_] = line;
        ring_next_ = (ring_next_ + 1) % options_.ring_capacity;
        ring_wrapped_ = true;
      }
    }
  }
  if (sink) {
    sink(line);
  } else {
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

std::string Logger::render_logz() const {
  std::string out;
  out += "log level=";
  out += log_level_name(level());
  out += " format=";
  out += format_ == LogFormat::kLogfmt ? "logfmt" : "json";
  out += " emitted=";
  out += std::to_string(emitted());
  out += " suppressed=";
  out += std::to_string(suppressed());
  out += "\n\n";
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = ring_.size();
  const size_t first = ring_wrapped_ ? ring_next_ : 0;
  for (size_t i = 0; i < n; ++i) {
    out += ring_[(first + i) % n];
    out += '\n';
  }
  return out;
}

void install_logger(Logger* l) {
  g_logger.store(l, std::memory_order_release);
}

Logger& ambient_logger() {
  if (Logger* installed = g_logger.load(std::memory_order_acquire)) {
    return *installed;
  }
  static Logger fallback;
  return fallback;
}

void log_to_ambient(LogLevel level, LogSite& site, std::string_view msg,
                    const LogFields& fields) {
  ambient_logger().log(level, site, msg, fields);
}

}  // namespace droplens::obs
