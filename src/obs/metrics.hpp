// Unified metrics registry — the process-wide observability substrate.
//
// A Registry owns named metric families (counter / gauge / histogram), each
// holding label-distinguished series. Series are interned once, under the
// registry mutex, when an instrument handle is acquired; the handle itself
// is a raw pointer at atomic cells, so the record path is a single relaxed
// atomic add — lock-free, allocation-free, and TSan-clean. Reads snapshot
// every cell with relaxed loads under the same mutex, so exposition never
// blocks a writer and never tears a series list mid-registration.
//
// Two modes, chosen by the application:
//
//   installed  the app constructs a Registry and calls obs::install(&r);
//              subsystems (ThreadPool, SnapshotCache, svc::Server, the feed
//              parsers) bind instruments from it at construction/use time.
//   no-op      nothing installed. obs::counter(...) et al. return empty
//              handles whose record calls are one null-pointer test —
//              unobserved code costs nothing measurable.
//
// Instruments bind at acquisition time: install the registry before the
// subsystems you want instrumented are constructed. Observability is
// strictly read-only on the data plane — instruments never feed back into
// analysis results (guarded by the determinism tests).
//
// This library is dependency-free by design: anything (including
// droplens_util) may link it without cycles.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace droplens::obs {

/// Label key/value pairs, in the order they render. Keys within one family
/// must be consistent; series are interned by exact label-vector match.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing count. Default-constructed handles are no-ops.
class Counter {
 public:
  Counter() = default;

  void inc(uint64_t n = 1) {
    if (cell_) cell_->fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const {
    return cell_ ? cell_->load(std::memory_order_relaxed) : 0;
  }
  /// True when bound to a registry series (false = no-op handle).
  explicit operator bool() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(std::atomic<uint64_t>* cell) : cell_(cell) {}
  std::atomic<uint64_t>* cell_ = nullptr;
};

/// Point-in-time signed value. Default-constructed handles are no-ops.
class Gauge {
 public:
  Gauge() = default;

  void set(int64_t v) {
    if (cell_) cell_->store(v, std::memory_order_relaxed);
  }
  void add(int64_t n) {
    if (cell_) cell_->fetch_add(n, std::memory_order_relaxed);
  }
  void sub(int64_t n) {
    if (cell_) cell_->fetch_sub(n, std::memory_order_relaxed);
  }
  int64_t value() const {
    return cell_ ? cell_->load(std::memory_order_relaxed) : 0;
  }
  explicit operator bool() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(std::atomic<int64_t>* cell) : cell_(cell) {}
  std::atomic<int64_t>* cell_ = nullptr;
};

namespace detail {

/// Shared cells of one histogram series. `bounds` are inclusive upper
/// bounds; bucket i counts observations v with v <= bounds[i] (and
/// > bounds[i-1]); one extra overflow (+Inf) bucket sits past the last
/// bound. Buckets are stored NON-cumulative; renderers cumulate.
struct HistogramCells {
  std::vector<uint64_t> bounds;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets;  // bounds.size() + 1
  std::atomic<uint64_t> sum{0};

  explicit HistogramCells(std::vector<uint64_t> b)
      : bounds(std::move(b)),
        buckets(new std::atomic<uint64_t>[bounds.size() + 1]()) {}
};

}  // namespace detail

/// Fixed-bucket distribution. Default-constructed handles are no-ops.
class Histogram {
 public:
  Histogram() = default;

  void observe(uint64_t v) {
    if (!cells_) return;
    const std::vector<uint64_t>& bounds = cells_->bounds;
    // First bucket whose upper bound holds v; past-the-end = overflow.
    size_t lo = 0, hi = bounds.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (v <= bounds[mid]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    cells_->buckets[lo].fetch_add(1, std::memory_order_relaxed);
    cells_->sum.fetch_add(v, std::memory_order_relaxed);
  }

  size_t bucket_count() const {
    return cells_ ? cells_->bounds.size() + 1 : 0;
  }
  /// Non-cumulative count of bucket `i` (the last index is the overflow
  /// bucket). Out-of-range or no-op handles read 0.
  uint64_t bucket_value(size_t i) const {
    if (!cells_ || i >= cells_->bounds.size() + 1) return 0;
    return cells_->buckets[i].load(std::memory_order_relaxed);
  }
  uint64_t sum() const {
    return cells_ ? cells_->sum.load(std::memory_order_relaxed) : 0;
  }

  /// Upper-bound estimate of the q-quantile (q in [0, 1]): the inclusive
  /// upper bound of the first bucket where the cumulative count reaches
  /// q * total. Resolution is the bucket width (a factor of 2 for
  /// log2_bounds); the overflow bucket answers UINT64_MAX. Reads are
  /// relaxed and unsynchronized with writers, like every other getter —
  /// fine for benchmark reporting, not for cross-counter invariants.
  /// No-op handles and empty histograms answer 0.
  uint64_t quantile(double q) const {
    if (!cells_) return 0;
    const size_t n = cells_->bounds.size() + 1;
    uint64_t total = 0;
    for (size_t i = 0; i < n; ++i) {
      total += cells_->buckets[i].load(std::memory_order_relaxed);
    }
    if (total == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    const double target = q * static_cast<double>(total);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < n; ++i) {
      cumulative += cells_->buckets[i].load(std::memory_order_relaxed);
      if (static_cast<double>(cumulative) >= target && cumulative > 0) {
        return i < cells_->bounds.size() ? cells_->bounds[i] : UINT64_MAX;
      }
    }
    return UINT64_MAX;
  }

  explicit operator bool() const { return cells_ != nullptr; }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramCells* cells) : cells_(cells) {}
  detail::HistogramCells* cells_ = nullptr;
};

class Registry {
 public:
  enum class Type : uint8_t { kCounter, kGauge, kHistogram };

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create the (name, labels) series. Re-acquiring the same series
  /// returns a handle over the same cells. Throws std::logic_error when
  /// `name` is already registered as a different type (or, for histograms,
  /// with different bounds) — a naming bug worth failing loudly on.
  Counter counter(const std::string& name, const Labels& labels = {},
                  const std::string& help = "");
  Gauge gauge(const std::string& name, const Labels& labels = {},
              const std::string& help = "");
  Histogram histogram(const std::string& name, std::vector<uint64_t> bounds,
                      const Labels& labels = {}, const std::string& help = "");

  /// n power-of-two upper bounds {2^1-1, 2^2-1, ..., 2^n-1}: with the
  /// overflow bucket this yields n+1 buckets where bucket i counts values in
  /// [2^i, 2^(i+1)) — the engine's traditional log2 latency histogram.
  static std::vector<uint64_t> log2_bounds(size_t n);
  /// n linear upper bounds {width, 2*width, ..., n*width}.
  static std::vector<uint64_t> linear_bounds(uint64_t width, size_t n);

  // Snapshot-on-read view for renderers: every atomic loaded once, relaxed,
  // under the registry mutex. Families sorted by name, series by labels.
  struct SeriesSnapshot {
    Labels labels;
    uint64_t counter = 0;
    int64_t gauge = 0;
    std::vector<uint64_t> buckets;  // non-cumulative, histograms only
    uint64_t sum = 0;
  };
  struct FamilySnapshot {
    std::string name;
    std::string help;
    Type type = Type::kCounter;
    std::vector<uint64_t> bounds;
    std::vector<SeriesSnapshot> series;
  };
  std::vector<FamilySnapshot> snapshot() const;

 private:
  // Series live in a deque (stable addresses across growth) inside a map
  // node (stable across rehash/insert) — handles stay valid for the
  // registry's lifetime.
  struct Series {
    Labels labels;
    std::atomic<uint64_t> counter{0};
    std::atomic<int64_t> gauge{0};
    std::unique_ptr<detail::HistogramCells> hist;
  };
  struct Family {
    Type type = Type::kCounter;
    std::string help;
    std::vector<uint64_t> bounds;
    std::deque<Series> series;
  };

  Series& intern(const std::string& name, Type type, const Labels& labels,
                 const std::string& help,
                 const std::vector<uint64_t>* bounds);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

/// Install `r` as the process-wide registry (nullptr uninstalls). The
/// registry must outlive every instrument handle bound from it.
void install(Registry* r);
/// The installed registry, or nullptr (the no-op mode).
Registry* installed();

// Ambient acquisition: bind from the installed registry, or return a no-op
// handle when none is installed. This is what subsystems call.
Counter counter(const std::string& name, const Labels& labels = {},
                const std::string& help = "");
Gauge gauge(const std::string& name, const Labels& labels = {},
            const std::string& help = "");
Histogram histogram(const std::string& name, std::vector<uint64_t> bounds,
                    const Labels& labels = {}, const std::string& help = "");

/// RAII helper for tests and tools: installs on construction, restores the
/// previous registry on destruction.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry& r) : previous_(installed()) {
    install(&r);
  }
  ~ScopedRegistry() { install(previous_); }
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* previous_;
};

}  // namespace droplens::obs
