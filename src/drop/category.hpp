// DROP prefix categories (§3.1).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace droplens::drop {

enum class Category : uint8_t {
  kHijacked,         // HJ: obtained through fraud or announced without right
  kSnowshoe,         // SS: spam spread thinly across many addresses
  kKnownSpamOp,      // KS: connected with a known spam operation (ROKSO)
  kMaliciousHosting, // MH: bulletproof hosting and the like
  kUnallocated,      // UA: used by attackers while allocated by no RIR
  kNoRecord,         // NR: SBL record gone (holder remediated)
};

inline constexpr std::array<Category, 6> kAllCategories = {
    Category::kHijacked,     Category::kSnowshoe,
    Category::kKnownSpamOp,  Category::kMaliciousHosting,
    Category::kUnallocated,  Category::kNoRecord,
};

std::string_view abbrev(Category c);      // "HJ", "SS", ...
std::string_view full_name(Category c);   // "Hijacked", ...

/// A set of categories (one prefix can carry several labels).
class CategorySet {
 public:
  constexpr CategorySet() = default;

  constexpr void add(Category c) { bits_ |= uint8_t{1} << static_cast<int>(c); }
  constexpr bool has(Category c) const {
    return bits_ & (uint8_t{1} << static_cast<int>(c));
  }
  constexpr bool empty() const { return bits_ == 0; }
  int count() const;

  /// True if `c` is the only category present.
  bool exclusive(Category c) const;

  std::string to_string() const;  // "HJ+SS"

  friend constexpr bool operator==(CategorySet, CategorySet) = default;

 private:
  uint8_t bits_ = 0;
};

}  // namespace droplens::drop
