#include "drop/category.hpp"

#include <bit>

namespace droplens::drop {

std::string_view abbrev(Category c) {
  switch (c) {
    case Category::kHijacked: return "HJ";
    case Category::kSnowshoe: return "SS";
    case Category::kKnownSpamOp: return "KS";
    case Category::kMaliciousHosting: return "MH";
    case Category::kUnallocated: return "UA";
    case Category::kNoRecord: return "NR";
  }
  return "?";
}

std::string_view full_name(Category c) {
  switch (c) {
    case Category::kHijacked: return "Hijacked";
    case Category::kSnowshoe: return "Snowshoe Spam";
    case Category::kKnownSpamOp: return "Known Spam Operation";
    case Category::kMaliciousHosting: return "Malicious Hosting";
    case Category::kUnallocated: return "Unallocated";
    case Category::kNoRecord: return "No SBL Record";
  }
  return "?";
}

int CategorySet::count() const { return std::popcount(bits_); }

bool CategorySet::exclusive(Category c) const {
  return bits_ == (uint8_t{1} << static_cast<int>(c));
}

std::string CategorySet::to_string() const {
  std::string out;
  for (Category c : kAllCategories) {
    if (has(c)) {
      if (!out.empty()) out += '+';
      out += abbrev(c);
    }
  }
  return out.empty() ? "-" : out;
}

}  // namespace droplens::drop
