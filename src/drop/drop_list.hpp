// The Don't Route Or Peer list: a day-indexed blocklist of IPv4 prefixes.
//
// Mirrors the Firehol daily snapshots the paper consumed (§3.1): for every
// prefix, when it was added and (possibly) removed. Re-listing after removal
// is supported (each stint is a separate Listing).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/date.hpp"
#include "net/prefix_trie.hpp"

namespace droplens::drop {

struct Listing {
  net::Prefix prefix;
  std::string sbl_id;       // may be empty (record removed / never captured)
  net::DateRange listed;    // [added, removed); unbounded while on the list
};

class DropList {
 public:
  /// Add `prefix` on `d`. Throws InvariantError if it is already listed.
  void add(const net::Prefix& prefix, net::Date d, std::string sbl_id = {});

  /// Remove `prefix` on `d` (Spamhaus delisting). Returns false if not
  /// currently listed.
  bool remove(const net::Prefix& prefix, net::Date d);

  /// Is exactly `prefix` on the list on day `d`?
  bool listed_on(const net::Prefix& prefix, net::Date d) const;

  /// Is `prefix` covered by any listing on day `d` (exact or less specific)?
  /// This is the test a DROP-filtering BGP peer applies to announcements.
  bool covered_on(const net::Prefix& prefix, net::Date d) const;

  /// All listing stints of `prefix` (possibly several), oldest first.
  std::vector<Listing> listings_of(const net::Prefix& prefix) const;

  /// Every listing stint ever, in prefix order.
  std::vector<Listing> all_listings() const;

  /// Unique prefixes that ever appeared, in prefix order.
  std::vector<net::Prefix> all_prefixes() const;

  /// The daily snapshot (what Firehol would archive for day `d`).
  std::vector<net::Prefix> snapshot(net::Date d) const;

  /// First day `prefix` appeared; nullopt if never listed.
  std::optional<net::Date> first_listed(const net::Prefix& prefix) const;

  size_t total_listings() const { return total_; }

 private:
  net::PrefixMap<std::vector<Listing>> by_prefix_;
  size_t total_ = 0;
};

}  // namespace droplens::drop
