#include "drop/drop_list.hpp"

#include "util/error.hpp"

namespace droplens::drop {

void DropList::add(const net::Prefix& prefix, net::Date d,
                   std::string sbl_id) {
  auto& stints = by_prefix_[prefix];
  for (const Listing& l : stints) {
    if (l.listed.contains(d)) {
      throw InvariantError(prefix.to_string() + " already on DROP");
    }
  }
  stints.push_back(Listing{prefix, std::move(sbl_id),
                           net::DateRange{d, net::DateRange::unbounded()}});
  ++total_;
}

bool DropList::remove(const net::Prefix& prefix, net::Date d) {
  auto* stints = by_prefix_.find(prefix);
  if (!stints) return false;
  for (Listing& l : *stints) {
    if (l.listed.contains(d)) {
      l.listed.end = d;
      return true;
    }
  }
  return false;
}

bool DropList::listed_on(const net::Prefix& prefix, net::Date d) const {
  const auto* stints = by_prefix_.find(prefix);
  if (!stints) return false;
  for (const Listing& l : *stints) {
    if (l.listed.contains(d)) return true;
  }
  return false;
}

bool DropList::covered_on(const net::Prefix& prefix, net::Date d) const {
  bool hit = false;
  by_prefix_.for_each_covering(
      prefix, [&](const net::Prefix&, const std::vector<Listing>& stints) {
        if (hit) return;
        for (const Listing& l : stints) {
          if (l.listed.contains(d)) {
            hit = true;
            return;
          }
        }
      });
  return hit;
}

std::vector<Listing> DropList::listings_of(const net::Prefix& prefix) const {
  const auto* stints = by_prefix_.find(prefix);
  return stints ? *stints : std::vector<Listing>{};
}

std::vector<Listing> DropList::all_listings() const {
  std::vector<Listing> out;
  out.reserve(total_);
  by_prefix_.for_each(
      [&](const net::Prefix&, const std::vector<Listing>& stints) {
        out.insert(out.end(), stints.begin(), stints.end());
      });
  return out;
}

std::vector<net::Prefix> DropList::all_prefixes() const {
  std::vector<net::Prefix> out;
  by_prefix_.for_each([&](const net::Prefix& p, const std::vector<Listing>&) {
    out.push_back(p);
  });
  return out;
}

std::vector<net::Prefix> DropList::snapshot(net::Date d) const {
  std::vector<net::Prefix> out;
  by_prefix_.for_each(
      [&](const net::Prefix& p, const std::vector<Listing>& stints) {
        for (const Listing& l : stints) {
          if (l.listed.contains(d)) {
            out.push_back(p);
            return;
          }
        }
      });
  return out;
}

std::optional<net::Date> DropList::first_listed(
    const net::Prefix& prefix) const {
  const auto* stints = by_prefix_.find(prefix);
  if (!stints || stints->empty()) return std::nullopt;
  net::Date best = stints->front().listed.begin;
  for (const Listing& l : *stints) {
    if (l.listed.begin < best) best = l.listed.begin;
  }
  return best;
}

}  // namespace droplens::drop
