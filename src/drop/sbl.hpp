// Spamhaus Block List (SBL) records and the Appendix-A classifier.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "drop/category.hpp"
#include "net/asn.hpp"
#include "net/prefix.hpp"

namespace droplens::drop {

/// An SBL entry: the free-form investigator text documenting why a prefix
/// was listed. Spamhaus deletes the record once the holder remediates, which
/// is why some DROP prefixes end up with "No SBL Record".
struct SblRecord {
  std::string id;  // "SBL502548"
  net::Prefix prefix;
  std::string text;
};

/// Result of classifying one SBL record.
struct Classification {
  CategorySet categories;
  std::vector<std::string> matched_keywords;
  std::optional<net::Asn> malicious_asn;
  bool inferred = false;  // no keyword hit; fell back to contextual inference
};

/// The semi-automated categorization of Appendix A: keyword search over the
/// SBL text ('hijack'/'stolen', 'snowshoe', 'known spam operation',
/// 'hosting', 'unallocated'/'bogon'), with the paper's manual checks encoded
/// as rules:
///   - 'hosting' only counts when used in a malicious-activity context, not
///     when it merely appears inside an email address or domain name;
///   - records with no keyword are classified by contextual inference where
///     possible ("high volume spam emission" -> snowshoe), else left empty
///     (the paper had two such prefixes).
/// Also extracts the "malicious ASN" annotation (first ASN named in the
/// record, as Spamhaus lists it).
class Classifier {
 public:
  Classification classify(std::string_view sbl_text) const;
};

/// The SBL database: id -> record, with per-prefix lookup. Removal models
/// Spamhaus deleting records after remediation.
class SblDatabase {
 public:
  void add(SblRecord record);

  /// Delete the record (post-remediation). Returns false if unknown id.
  bool remove(std::string_view id);

  const SblRecord* find(std::string_view id) const;
  const SblRecord* find_by_prefix(const net::Prefix& p) const;
  size_t size() const { return by_id_.size(); }

 private:
  std::unordered_map<std::string, SblRecord> by_id_;
  std::unordered_map<net::Prefix, std::string> id_by_prefix_;
};

}  // namespace droplens::drop
