// The DROP feed text format.
//
// Spamhaus publishes DROP as a plain-text file (which Firehol archives
// daily — the paper's actual input, §3.1):
//
//   ; Spamhaus DROP List 2022/03/30
//   ; Last-Modified: Wed, 30 Mar 2022 04:00:00 GMT
//   1.2.3.0/24 ; SBL123456
//
// This module renders a DropList snapshot in that format and parses such
// feeds back, so archived snapshots round-trip through the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "drop/drop_list.hpp"
#include "drop/sbl.hpp"
#include "net/date.hpp"
#include "util/parse_report.hpp"

namespace droplens::drop {

struct FeedEntry {
  net::Prefix prefix;
  std::string sbl_id;  // may be empty

  friend bool operator==(const FeedEntry&, const FeedEntry&) = default;
};

/// Render the DROP snapshot of day `d` as a feed file. Entries are emitted
/// in prefix order with their SBL ids.
std::string write_drop_feed(const DropList& list, net::Date d);

/// Parse a feed file. Comment lines (leading ';' or '#') are skipped. Under
/// kStrict a malformed prefix line throws ParseError (naming the line
/// number); under kLenient it is skipped and recorded in `report`.
std::vector<FeedEntry> parse_drop_feed(
    std::string_view text,
    util::ParsePolicy policy = util::ParsePolicy::kStrict,
    util::ParseReport* report = nullptr);

/// Reconstruct a DropList from a sequence of daily snapshots — the paper's
/// method of recovering add/remove dates from the Firehol archive. Prefixes
/// first seen in snapshot k are recorded as added on that snapshot's date;
/// prefixes that disappear are recorded as removed. Snapshots are sorted by
/// date first (archives deliver days out of order); when the same date
/// appears twice the later occurrence wins.
DropList from_daily_feeds(
    const std::vector<std::pair<net::Date, std::vector<FeedEntry>>>& days);

}  // namespace droplens::drop
