#include "drop/sbl.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace droplens::drop {

namespace {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_';
}

/// True if `needle` occurs in `text` as a whole word (not embedded in a
/// longer alphanumeric token). `text` must already be lowercase.
bool contains_word(std::string_view text, std::string_view needle) {
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string_view::npos) {
    bool left_ok = pos == 0 || !is_word_char(text[pos - 1]);
    size_t end = pos + needle.size();
    bool right_ok = end == text.size() || !is_word_char(text[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// The whitespace-delimited token of `text` containing position `pos`.
std::string_view token_at(std::string_view text, size_t pos) {
  size_t b = pos;
  while (b > 0 && !std::isspace(static_cast<unsigned char>(text[b - 1]))) --b;
  size_t e = pos;
  while (e < text.size() && !std::isspace(static_cast<unsigned char>(text[e])))
    ++e;
  return text.substr(b, e - b);
}

/// Words that mark 'hosting' as describing malicious activity — the
/// codification of the paper's manual verification step.
constexpr std::string_view kHostingContext[] = {
    "spam",    "spammer", "spammers",  "bulletproof", "botnet",
    "malware", "phish",   "malicious", "criminal",    "abusive",
};

/// True if the token looks like an email address or domain name: contains
/// '@', or a '.' with word characters on both sides ("networxhosting.com").
/// A sentence-final period ("spam hosting.") does not count.
bool email_or_domain_token(std::string_view tok) {
  if (tok.find('@') != std::string_view::npos) return true;
  for (size_t i = 1; i + 1 < tok.size(); ++i) {
    if (tok[i] == '.' && is_word_char(tok[i - 1]) && is_word_char(tok[i + 1])) {
      return true;
    }
  }
  return false;
}

/// MH test: some occurrence of "hosting" that is (a) a whole word, (b) not
/// inside an email address / domain-name token, and (c) accompanied by a
/// malicious context word in the record.
bool hosting_in_malicious_context(std::string_view lower) {
  bool clean_occurrence = false;
  size_t pos = 0;
  while ((pos = lower.find("hosting", pos)) != std::string_view::npos) {
    size_t end = pos + 7;
    bool word_bounded =
        (pos == 0 || !is_word_char(lower[pos - 1])) &&
        (end == lower.size() || !is_word_char(lower[end]));
    if (word_bounded && !email_or_domain_token(token_at(lower, pos))) {
      clean_occurrence = true;
      break;
    }
    pos += 7;
  }
  if (!clean_occurrence) return false;
  for (std::string_view ctx : kHostingContext) {
    if (lower.find(ctx) != std::string_view::npos) return true;
  }
  return false;
}

/// Extract the first "AS<digits>" token, skipping tokens embedded in email
/// addresses. `lower` is lowercase.
std::optional<net::Asn> extract_asn(std::string_view lower) {
  size_t pos = 0;
  while ((pos = lower.find("as", pos)) != std::string_view::npos) {
    size_t digits = pos + 2;
    bool left_ok = pos == 0 || !is_word_char(lower[pos - 1]);
    if (!left_ok || digits >= lower.size() ||
        !std::isdigit(static_cast<unsigned char>(lower[digits]))) {
      pos += 2;
      continue;
    }
    size_t end = digits;
    uint64_t value = 0;
    while (end < lower.size() &&
           std::isdigit(static_cast<unsigned char>(lower[end]))) {
      value = value * 10 + static_cast<uint64_t>(lower[end] - '0');
      ++end;
    }
    if (value > 0 && value <= 0xffffffffULL &&
        (end == lower.size() || !is_word_char(lower[end]))) {
      return net::Asn(static_cast<uint32_t>(value));
    }
    pos = end;
  }
  return std::nullopt;
}

}  // namespace

Classification Classifier::classify(std::string_view sbl_text) const {
  Classification out;
  std::string lower = util::to_lower(sbl_text);

  if (contains_word(lower, "hijack") || contains_word(lower, "hijacked") ||
      contains_word(lower, "hijacking") || contains_word(lower, "stolen")) {
    out.categories.add(Category::kHijacked);
    out.matched_keywords.push_back("hijack/stolen");
  }
  if (contains_word(lower, "snowshoe")) {
    out.categories.add(Category::kSnowshoe);
    out.matched_keywords.push_back("snowshoe");
  }
  if (lower.find("known spam operation") != std::string::npos) {
    out.categories.add(Category::kKnownSpamOp);
    out.matched_keywords.push_back("known spam operation");
  }
  if (hosting_in_malicious_context(lower)) {
    out.categories.add(Category::kMaliciousHosting);
    out.matched_keywords.push_back("hosting");
  }
  if (contains_word(lower, "unallocated") || contains_word(lower, "bogon")) {
    out.categories.add(Category::kUnallocated);
    out.matched_keywords.push_back("unallocated/bogon");
  }

  if (out.categories.empty()) {
    // Manual-inference fallback (App. A): Spamhaus wording for ranges "used
    // or about to be used for the purpose of high volume spam emission".
    if (lower.find("high volume spam") != std::string::npos ||
        lower.find("spam emission") != std::string::npos) {
      out.categories.add(Category::kSnowshoe);
      out.inferred = true;
    }
  }

  out.malicious_asn = extract_asn(lower);
  return out;
}

void SblDatabase::add(SblRecord record) {
  id_by_prefix_[record.prefix] = record.id;
  by_id_[record.id] = std::move(record);
}

bool SblDatabase::remove(std::string_view id) {
  auto it = by_id_.find(std::string(id));
  if (it == by_id_.end()) return false;
  id_by_prefix_.erase(it->second.prefix);
  by_id_.erase(it);
  return true;
}

const SblRecord* SblDatabase::find(std::string_view id) const {
  auto it = by_id_.find(std::string(id));
  return it == by_id_.end() ? nullptr : &it->second;
}

const SblRecord* SblDatabase::find_by_prefix(const net::Prefix& p) const {
  auto it = id_by_prefix_.find(p);
  return it == id_by_prefix_.end() ? nullptr : find(it->second);
}

}  // namespace droplens::drop
