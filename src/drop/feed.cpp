#include "drop/feed.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace droplens::drop {

std::string write_drop_feed(const DropList& list, net::Date d) {
  std::string out = "; Spamhaus DROP List " + d.to_string() + "\n";
  out += "; Expires: " + (d + 1).to_string() + "\n";
  for (const net::Prefix& p : list.snapshot(d)) {
    out += p.to_string();
    for (const Listing& l : list.listings_of(p)) {
      if (l.listed.contains(d) && !l.sbl_id.empty()) {
        out += " ; " + l.sbl_id;
        break;
      }
    }
    out += '\n';
  }
  return out;
}

std::vector<FeedEntry> parse_drop_feed(std::string_view text) {
  std::vector<FeedEntry> out;
  for (std::string_view line : util::split(text, '\n')) {
    line = util::trim(line);
    if (line.empty() || line.front() == ';' || line.front() == '#') continue;
    FeedEntry entry;
    size_t semi = line.find(';');
    std::string_view prefix_part =
        util::trim(semi == std::string_view::npos ? line
                                                  : line.substr(0, semi));
    entry.prefix = net::Prefix::parse(prefix_part);
    if (semi != std::string_view::npos) {
      entry.sbl_id = std::string(util::trim(line.substr(semi + 1)));
    }
    out.push_back(std::move(entry));
  }
  return out;
}

DropList from_daily_feeds(
    const std::vector<std::pair<net::Date, std::vector<FeedEntry>>>& days) {
  DropList list;
  std::map<net::Prefix, std::string> live;  // prefix -> sbl id
  for (const auto& [date, entries] : days) {
    std::map<net::Prefix, std::string> today;
    for (const FeedEntry& e : entries) today[e.prefix] = e.sbl_id;
    // Removals: live yesterday, absent today.
    for (const auto& [prefix, id] : live) {
      if (!today.contains(prefix)) list.remove(prefix, date);
    }
    // Additions: present today, not live yesterday.
    for (const auto& [prefix, id] : today) {
      if (!live.contains(prefix)) list.add(prefix, date, id);
    }
    live = std::move(today);
  }
  return list;
}

}  // namespace droplens::drop
