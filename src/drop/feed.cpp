#include "drop/feed.hpp"

#include <algorithm>
#include <map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace droplens::drop {

std::string write_drop_feed(const DropList& list, net::Date d) {
  std::string out = "; Spamhaus DROP List " + d.to_string() + "\n";
  out += "; Expires: " + (d + 1).to_string() + "\n";
  for (const net::Prefix& p : list.snapshot(d)) {
    out += p.to_string();
    for (const Listing& l : list.listings_of(p)) {
      if (l.listed.contains(d) && !l.sbl_id.empty()) {
        out += " ; " + l.sbl_id;
        break;
      }
    }
    out += '\n';
  }
  return out;
}

std::vector<FeedEntry> parse_drop_feed(std::string_view text,
                                       util::ParsePolicy policy,
                                       util::ParseReport* report) {
  obs::Span span("parse.drop_feed");
  std::vector<FeedEntry> out;
  size_t line_no = 0;
  size_t skipped = 0;
  for (std::string_view line : util::split(text, '\n')) {
    ++line_no;
    line = util::trim(line);
    if (line.empty() || line.front() == ';' || line.front() == '#') continue;
    FeedEntry entry;
    size_t semi = line.find(';');
    std::string_view prefix_part =
        util::trim(semi == std::string_view::npos ? line
                                                  : line.substr(0, semi));
    try {
      entry.prefix = net::Prefix::parse(prefix_part);
    } catch (const ParseError& e) {
      if (policy == util::ParsePolicy::kStrict) {
        throw ParseError("DROP feed line " + std::to_string(line_no) + ": " +
                         e.what());
      }
      if (report) report->add_error(line_no, e.what());
      ++skipped;
      continue;
    }
    if (semi != std::string_view::npos) {
      entry.sbl_id = std::string(util::trim(line.substr(semi + 1)));
    }
    if (report) report->add_parsed();
    out.push_back(std::move(entry));
  }
  if (obs::Registry* reg = obs::installed()) {
    obs::Labels feed{{"feed", "drop"}};
    reg->counter("droplens_parse_records_total", feed).inc(out.size());
    reg->counter("droplens_parse_records_skipped_total", feed).inc(skipped);
  }
  return out;
}

DropList from_daily_feeds(
    const std::vector<std::pair<net::Date, std::vector<FeedEntry>>>& in_days) {
  // Archives deliver snapshots out of order (and occasionally twice);
  // diffing adjacent snapshots only makes sense on the date-sorted sequence.
  // The sort is stable so the later occurrence of a duplicated date wins.
  std::vector<const std::pair<net::Date, std::vector<FeedEntry>>*> days;
  days.reserve(in_days.size());
  for (const auto& day : in_days) days.push_back(&day);
  std::stable_sort(days.begin(), days.end(),
                   [](const auto* a, const auto* b) {
                     return a->first < b->first;
                   });
  auto last_of_date = [&](size_t i) {
    return i + 1 == days.size() || days[i + 1]->first != days[i]->first;
  };
  DropList list;
  std::map<net::Prefix, std::string> live;  // prefix -> sbl id
  size_t day_index = 0;
  for (const auto* day : days) {
    if (!last_of_date(day_index++)) continue;
    const auto& [date, entries] = *day;
    std::map<net::Prefix, std::string> today;
    for (const FeedEntry& e : entries) today[e.prefix] = e.sbl_id;
    // Removals: live yesterday, absent today.
    for (const auto& [prefix, id] : live) {
      if (!today.contains(prefix)) list.remove(prefix, date);
    }
    // Additions: present today, not live yesterday.
    for (const auto& [prefix, id] : today) {
      if (!live.contains(prefix)) list.add(prefix, date, id);
    }
    live = std::move(today);
  }
  return list;
}

}  // namespace droplens::drop
