// IRRd-style whois query interface.
//
// Operators and researchers query IRR databases over the whois protocol;
// IRRd's terse command set is the de-facto API. We implement the subset the
// tooling around this paper would use:
//
//   !rPREFIX        route objects exactly matching PREFIX
//   !rPREFIX,l      objects for PREFIX and less-specifics (covering)
//   !rPREFIX,M      objects for more-specifics of PREFIX
//   !gAS64500       prefixes originated by an ASN
//   !iAS-SET        expand an as-set to its member ASNs
//
// Responses use IRRd framing: "A<len>\n<payload>C\n" for data, "C\n" for
// success with no data, "D\n" for no entries, "F <msg>\n" for errors.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "irr/database.hpp"
#include "irr/sets.hpp"

namespace droplens::irr {

class WhoisServer {
 public:
  /// Serve `db` as of day `today`; `sets` backs !i expansion.
  WhoisServer(const Database& db, net::Date today,
              std::map<std::string, AsSet> sets = {});

  /// Handle one query line (without trailing newline); returns the framed
  /// response. Unknown or malformed queries return an F response.
  std::string handle(std::string_view query) const;

 private:
  std::string frame(const std::string& payload) const;

  const Database& db_;
  net::Date today_;
  std::map<std::string, AsSet> sets_;
};

}  // namespace droplens::irr
