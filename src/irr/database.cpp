#include "irr/database.hpp"

#include "util/error.hpp"

namespace droplens::irr {

bool Database::register_object(RouteObject obj) {
  if (auth_ && !auth_(obj)) return false;
  obj.source = source_;
  net::Prefix prefix = obj.prefix;
  net::Date created = obj.created;
  by_prefix_[prefix].push_back(
      Registration{std::move(obj),
                   net::DateRange{created, net::DateRange::unbounded()}});
  ++total_;
  return true;
}

bool Database::remove_object(const net::Prefix& prefix, net::Asn origin,
                             net::Date d) {
  auto* regs = by_prefix_.find(prefix);
  if (!regs) return false;
  for (Registration& r : *regs) {
    if (r.object.origin == origin && r.live_on(d)) {
      r.lifetime.end = d;
      return true;
    }
  }
  return false;
}

std::vector<Registration> Database::exact(const net::Prefix& p,
                                          net::Date d) const {
  std::vector<Registration> out;
  if (const auto* regs = by_prefix_.find(p)) {
    for (const Registration& r : *regs) {
      if (r.live_on(d)) out.push_back(r);
    }
  }
  return out;
}

std::vector<Registration> Database::exact_or_more_specific(
    const net::Prefix& p, net::Date d) const {
  std::vector<Registration> out;
  by_prefix_.for_each_covered(
      p, [&](const net::Prefix&, const std::vector<Registration>& regs) {
        for (const Registration& r : regs) {
          if (r.live_on(d)) out.push_back(r);
        }
      });
  return out;
}

std::vector<Registration> Database::covering(const net::Prefix& p,
                                             net::Date d) const {
  std::vector<Registration> out;
  by_prefix_.for_each_covering(
      p, [&](const net::Prefix&, const std::vector<Registration>& regs) {
        for (const Registration& r : regs) {
          if (r.live_on(d)) out.push_back(r);
        }
      });
  return out;
}

std::vector<Registration> Database::history(const net::Prefix& p) const {
  std::vector<Registration> out;
  by_prefix_.for_each_covered(
      p, [&](const net::Prefix&, const std::vector<Registration>& regs) {
        out.insert(out.end(), regs.begin(), regs.end());
      });
  return out;
}

std::vector<Registration> Database::all_history() const {
  std::vector<Registration> out;
  out.reserve(total_);
  by_prefix_.for_each(
      [&](const net::Prefix&, const std::vector<Registration>& regs) {
        out.insert(out.end(), regs.begin(), regs.end());
      });
  return out;
}

size_t Database::live_count(net::Date d) const {
  size_t n = 0;
  by_prefix_.for_each(
      [&](const net::Prefix&, const std::vector<Registration>& regs) {
        for (const Registration& r : regs) {
          if (r.live_on(d)) ++n;
        }
      });
  return n;
}

std::string Database::snapshot_rpsl(net::Date d) const {
  std::string out;
  by_prefix_.for_each(
      [&](const net::Prefix&, const std::vector<Registration>& regs) {
        for (const Registration& r : regs) {
          if (r.live_on(d)) {
            out += r.object.to_rpsl();
            out += '\n';
          }
        }
      });
  return out;
}

}  // namespace droplens::irr
