// RPSL as-set objects and filter building.
//
// Operators derive BGP prefix filters from the IRR: expand a customer's
// as-set to its member ASNs, then collect the route objects those ASNs
// registered. This is the workflow that makes unauthenticated route objects
// dangerous — a forged object (§5) flows straight into someone's filters.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "irr/database.hpp"
#include "irr/rpsl.hpp"

namespace droplens::irr {

/// The `as-set:` RPSL object: named group of ASNs and nested sets.
struct AsSet {
  std::string name;                       // "AS-EXAMPLE"
  std::vector<net::Asn> members;          // direct ASN members
  std::vector<std::string> set_members;   // nested as-set names

  static AsSet from_rpsl(const RpslObject& obj);
  std::string to_rpsl() const;

  friend bool operator==(const AsSet&, const AsSet&) = default;
};

/// Recursively expand `root` to its member ASNs. Unknown nested sets are
/// skipped (IRR data is messy); cycles terminate. Result sorted, deduped.
std::vector<net::Asn> expand_as_set(
    const std::map<std::string, AsSet>& sets, const std::string& root);

/// The prefixes an operator would allow from `asns`: every route object
/// live on `d` whose origin is in the list. Sorted, deduped.
std::vector<net::Prefix> build_prefix_filter(
    const Database& db, const std::vector<net::Asn>& asns, net::Date d);

}  // namespace droplens::irr
