// Daily-snapshot machinery for the IRR.
//
// Merit archives RADb as daily dumps; the paper recovers route-object
// creation and removal dates by diffing consecutive snapshots (§3, §5).
// This module implements that: diff two RPSL dumps, and rebuild a
// day-indexed Database from a dated snapshot series.
#pragma once

#include <string_view>
#include <vector>

#include "irr/database.hpp"

namespace droplens::irr {

struct SnapshotDiff {
  std::vector<RouteObject> created;  // in `newer` but not `older`
  std::vector<RouteObject> removed;  // in `older` but not `newer`

  bool empty() const { return created.empty() && removed.empty(); }
};

/// Diff two RPSL dumps by (prefix, origin) identity.
SnapshotDiff diff_snapshots(std::string_view older, std::string_view newer);

/// Rebuild a Database from date-ordered daily dumps: objects first seen on
/// day k are recorded as created then; objects that disappear are recorded
/// as removed. This loses sub-day timing exactly the way the paper's
/// archive-based method does.
Database from_daily_snapshots(
    const std::vector<std::pair<net::Date, std::string>>& days);

}  // namespace droplens::irr
