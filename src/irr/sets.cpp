#include "irr/sets.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace droplens::irr {

AsSet AsSet::from_rpsl(const RpslObject& obj) {
  if (obj.cls() != "as-set") {
    throw ParseError("RPSL: not an as-set (class '" + std::string(obj.cls()) +
                     "')");
  }
  AsSet out;
  out.name = std::string(*obj.get("as-set"));
  for (const auto& [attr, value] : obj.attributes) {
    if (attr != "members") continue;
    for (std::string_view token : util::split(value, ',')) {
      token = util::trim(token);
      if (token.empty()) continue;
      if (token.size() > 2 && (token.substr(0, 2) == "AS") &&
          std::isdigit(static_cast<unsigned char>(token[2]))) {
        out.members.emplace_back(
            static_cast<uint32_t>(util::parse_u64(token.substr(2))));
      } else {
        out.set_members.emplace_back(token);
      }
    }
  }
  return out;
}

std::string AsSet::to_rpsl() const {
  RpslObject obj;
  obj.attributes.emplace_back("as-set", name);
  std::vector<std::string> parts;
  for (net::Asn a : members) parts.push_back(a.to_string());
  for (const std::string& s : set_members) parts.push_back(s);
  obj.attributes.emplace_back("members", util::join(parts, ", "));
  obj.attributes.emplace_back("source", "RADB");
  return obj.to_string();
}

std::vector<net::Asn> expand_as_set(const std::map<std::string, AsSet>& sets,
                                    const std::string& root) {
  std::set<uint32_t> asns;
  std::set<std::string> visited;
  std::vector<std::string> stack{root};
  while (!stack.empty()) {
    std::string name = std::move(stack.back());
    stack.pop_back();
    if (!visited.insert(name).second) continue;  // cycle / duplicate
    auto it = sets.find(name);
    if (it == sets.end()) continue;  // unknown nested set: skip
    for (net::Asn a : it->second.members) asns.insert(a.value());
    for (const std::string& nested : it->second.set_members) {
      stack.push_back(nested);
    }
  }
  std::vector<net::Asn> out;
  for (uint32_t a : asns) out.emplace_back(a);
  return out;
}

std::vector<net::Prefix> build_prefix_filter(
    const Database& db, const std::vector<net::Asn>& asns, net::Date d) {
  std::set<net::Prefix> prefixes;
  for (const Registration& reg : db.all_history()) {
    if (!reg.live_on(d)) continue;
    if (std::find(asns.begin(), asns.end(), reg.object.origin) !=
        asns.end()) {
      prefixes.insert(reg.object.prefix);
    }
  }
  return std::vector<net::Prefix>(prefixes.begin(), prefixes.end());
}

}  // namespace droplens::irr
