#include "irr/rpsl.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace droplens::irr {

std::optional<std::string_view> RpslObject::get(std::string_view name) const {
  for (const auto& [attr, value] : attributes) {
    if (attr == name) return std::string_view(value);
  }
  return std::nullopt;
}

std::string RpslObject::to_string() const {
  std::string out;
  for (const auto& [attr, value] : attributes) {
    out += attr;
    out += ':';
    // Column-align values the way IRR whois output does.
    size_t pad = attr.size() + 1 < 16 ? 16 - attr.size() - 1 : 1;
    out += std::string(pad, ' ');
    out += value;
    out += '\n';
  }
  return out;
}

std::vector<RpslObject> parse_rpsl(std::string_view text,
                                   util::ParsePolicy policy,
                                   util::ParseReport* report) {
  obs::Span span("parse.rpsl");
  size_t skipped = 0;
  std::vector<RpslObject> objects;
  RpslObject current;
  auto flush = [&] {
    if (!current.attributes.empty()) {
      if (report) report->add_parsed();
      objects.push_back(std::move(current));
      current = RpslObject{};
    }
  };
  size_t line_no = 0;
  auto bad_line = [&](const std::string& message) {
    if (policy == util::ParsePolicy::kStrict) {
      throw ParseError("RPSL line " + std::to_string(line_no) + ": " +
                       message);
    }
    if (report) report->add_error(line_no, message);
    ++skipped;
  };
  for (std::string_view line : util::split(text, '\n')) {
    ++line_no;
    // Strip comments.
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    if (util::trim(line).empty()) {
      flush();
      continue;
    }
    bool continuation = line.front() == ' ' || line.front() == '\t' ||
                        line.front() == '+';
    if (continuation) {
      if (current.attributes.empty()) {
        bad_line("continuation line before any attribute");
        continue;
      }
      std::string& value = current.attributes.back().second;
      if (!value.empty()) value += ' ';
      value += util::trim(line.front() == '+' ? line.substr(1) : line);
      continue;
    }
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      bad_line("line missing ':': '" + std::string(line) + "'");
      continue;
    }
    std::string attr(util::trim(line.substr(0, colon)));
    if (attr.empty()) {
      bad_line("empty attribute name");
      continue;
    }
    current.attributes.emplace_back(
        std::move(attr), std::string(util::trim(line.substr(colon + 1))));
  }
  flush();
  if (obs::Registry* reg = obs::installed()) {
    obs::Labels feed{{"feed", "irr"}};
    reg->counter("droplens_parse_records_total", feed).inc(objects.size());
    reg->counter("droplens_parse_records_skipped_total", feed).inc(skipped);
  }
  return objects;
}

std::string RouteObject::to_rpsl() const {
  RpslObject obj;
  obj.attributes = {
      {"route", prefix.to_string()},
      {"descr", descr},
      {"origin", origin.to_string()},
      {"mnt-by", maintainer},
      {"org", org_id},
      {"created", created.to_string()},
      {"source", source},
  };
  return obj.to_string();
}

RouteObject RouteObject::from_rpsl(const RpslObject& obj) {
  if (obj.cls() != "route") {
    throw ParseError("RPSL: not a route object (class '" +
                     std::string(obj.cls()) + "')");
  }
  RouteObject out;
  out.prefix = net::Prefix::parse(*obj.get("route"));
  auto origin = obj.get("origin");
  if (!origin || origin->size() < 3 ||
      (origin->substr(0, 2) != "AS" && origin->substr(0, 2) != "as")) {
    throw ParseError("RPSL: route object missing/invalid origin");
  }
  out.origin = net::Asn(
      static_cast<uint32_t>(util::parse_u64(origin->substr(2))));
  if (auto v = obj.get("mnt-by")) out.maintainer = std::string(*v);
  if (auto v = obj.get("org")) out.org_id = std::string(*v);
  if (auto v = obj.get("descr")) out.descr = std::string(*v);
  if (auto v = obj.get("created")) {
    // Accept full RPSL timestamps ("2020-01-01T00:00:00Z") or bare dates.
    out.created = net::Date::parse(v->substr(0, 10));
  }
  if (auto v = obj.get("source")) out.source = std::string(*v);
  return out;
}

}  // namespace droplens::irr
