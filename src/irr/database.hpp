// Day-indexed IRR database with RADb semantics.
//
// RADb performs no authorization check when a route object is registered —
// the property the paper shows attackers exploit (§5: 45% of hijacked DROP
// prefixes had the hijacker's ASN in a route object). The database stores the
// full registration history so analyses can ask "what objects existed for
// this prefix on day D" and "when was this object created/removed".
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "irr/rpsl.hpp"
#include "net/date.hpp"
#include "net/prefix_trie.hpp"

namespace droplens::irr {

/// One historical registration: the object plus its lifetime in the IRR.
struct Registration {
  RouteObject object;
  net::DateRange lifetime;  // [created, removed); unbounded() if still live

  bool live_on(net::Date d) const { return lifetime.contains(d); }
};

/// Optional authorization hook: given a route object being registered,
/// return true if the registrant is authorized. RADb-style databases pass
/// nullptr (accept everything); a hardened IRR can enforce origin ownership.
using AuthorizationCheck = std::function<bool(const RouteObject&)>;

class Database {
 public:
  /// `source` names the registry ("RADB"); `auth` of nullptr reproduces
  /// RADb's accept-everything behaviour.
  explicit Database(std::string source = "RADB",
                    AuthorizationCheck auth = nullptr)
      : source_(std::move(source)), auth_(std::move(auth)) {}

  const std::string& source() const { return source_; }

  /// Register a route object on `obj.created`. Returns false (and stores
  /// nothing) if the authorization hook rejects it.
  bool register_object(RouteObject obj);

  /// Remove the live object for (prefix, origin) on date `d`. Returns false
  /// if no live object matches.
  bool remove_object(const net::Prefix& prefix, net::Asn origin, net::Date d);

  /// Objects live on day `d` whose prefix exactly matches `p`.
  std::vector<Registration> exact(const net::Prefix& p, net::Date d) const;

  /// Objects live on day `d` whose prefix equals `p` or is more specific —
  /// the §5 "exact match or a more specific prefix" query.
  std::vector<Registration> exact_or_more_specific(const net::Prefix& p,
                                                   net::Date d) const;

  /// Objects live on day `d` whose prefix covers `p` (equal or less
  /// specific) — what an operator building filters would consult.
  std::vector<Registration> covering(const net::Prefix& p, net::Date d) const;

  /// Complete history (live and removed) for prefixes equal to or more
  /// specific than `p`, in registration order.
  std::vector<Registration> history(const net::Prefix& p) const;

  /// Every registration ever made, in prefix order then registration order.
  std::vector<Registration> all_history() const;

  /// Count of live objects on day `d`.
  size_t live_count(net::Date d) const;

  /// Total registrations ever.
  size_t total_registrations() const { return total_; }

  /// Export all objects live on `d` as one RPSL text dump (daily snapshot,
  /// the form Merit archives RADb in).
  std::string snapshot_rpsl(net::Date d) const;

 private:
  std::string source_;
  AuthorizationCheck auth_;
  net::PrefixMap<std::vector<Registration>> by_prefix_;
  size_t total_ = 0;
};

}  // namespace droplens::irr
