// RPSL (Routing Policy Specification Language) object model and parser.
//
// IRR databases exchange objects as "attribute: value" text blocks (RFC
// 2622). We parse the generic form, plus the typed `route:` object the paper
// analyzes in §5.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/asn.hpp"
#include "net/date.hpp"
#include "net/prefix.hpp"
#include "util/parse_report.hpp"

namespace droplens::irr {

/// A generic RPSL object: ordered attribute/value pairs. The first attribute
/// names the object class ("route", "mntner", ...).
struct RpslObject {
  std::vector<std::pair<std::string, std::string>> attributes;

  std::string_view cls() const {
    return attributes.empty() ? std::string_view{} : attributes.front().first;
  }

  /// First value of `name`, if present.
  std::optional<std::string_view> get(std::string_view name) const;

  std::string to_string() const;
};

/// Parse one or more whitespace-separated RPSL objects. Handles continuation
/// lines (leading whitespace or '+') and '#' comments. Under kStrict a
/// malformed line throws ParseError (naming the line number); under kLenient
/// the line is skipped — the surrounding object's remaining attributes are
/// kept — and the skip is recorded in `report`.
std::vector<RpslObject> parse_rpsl(
    std::string_view text,
    util::ParsePolicy policy = util::ParsePolicy::kStrict,
    util::ParseReport* report = nullptr);

/// The `route:` object: the prefix and origin AS a network intends to
/// announce in BGP — the record attackers forge to make hijacks look
/// legitimate (§5).
struct RouteObject {
  net::Prefix prefix;
  net::Asn origin;
  std::string maintainer;  // mnt-by
  std::string org_id;      // org — §5 clusters fraudulent records by ORG-ID
  std::string descr;
  net::Date created;
  std::string source = "RADB";

  /// Render as an RPSL text block.
  std::string to_rpsl() const;

  /// Build from a parsed RPSL object; throws ParseError if not a valid
  /// route object.
  static RouteObject from_rpsl(const RpslObject& obj);

  friend bool operator==(const RouteObject&, const RouteObject&) = default;
};

}  // namespace droplens::irr
