#include "irr/whois.hpp"

#include <cstdint>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace droplens::irr {

WhoisServer::WhoisServer(const Database& db, net::Date today,
                         std::map<std::string, AsSet> sets)
    : db_(db), today_(today), sets_(std::move(sets)) {}

std::string WhoisServer::frame(const std::string& payload) const {
  if (payload.empty()) return "D\n";
  return "A" + std::to_string(payload.size()) + "\n" + payload + "C\n";
}

std::string WhoisServer::handle(std::string_view query) const {
  query = util::trim(query);
  if (query.size() < 2 || query.front() != '!') {
    return "F unrecognized command\n";
  }
  char command = query[1];
  std::string_view arg = query.substr(2);
  try {
    switch (command) {
      case 'r': {
        // !rPREFIX[,o|,l|,M]
        std::string_view spec = arg;
        char option = 0;
        size_t comma = arg.rfind(',');
        if (comma != std::string_view::npos && comma + 2 == arg.size()) {
          option = arg[comma + 1];
          spec = arg.substr(0, comma);
        }
        net::Prefix prefix = net::Prefix::parse(util::trim(spec));
        std::vector<Registration> regs;
        switch (option) {
          case 0:
          case 'o':
            regs = db_.exact(prefix, today_);
            break;
          case 'l':
            regs = db_.covering(prefix, today_);
            break;
          case 'M':
            regs = db_.exact_or_more_specific(prefix, today_);
            break;
          default:
            return "F unknown !r option\n";
        }
        std::string payload;
        for (const Registration& reg : regs) {
          payload += reg.object.to_rpsl();
          payload += '\n';
        }
        return frame(payload);
      }
      case 'g': {
        // !gASN -> space-separated prefixes originated by the ASN.
        std::string_view asn_text = util::trim(arg);
        if (asn_text.size() < 3 || asn_text.substr(0, 2) != "AS") {
          return "F bad ASN\n";
        }
        // Reject unparsable or >32-bit ASNs explicitly: a silent uint32_t
        // truncation would answer for the wrong ASN.
        uint64_t asn_value;
        try {
          asn_value = util::parse_u64(asn_text.substr(2));
        } catch (const ParseError&) {
          return "F bad ASN\n";
        }
        if (asn_value > 0xFFFFFFFFull) return "F bad ASN\n";
        net::Asn asn(static_cast<uint32_t>(asn_value));
        std::vector<std::string> prefixes;
        for (const Registration& reg : db_.all_history()) {
          if (reg.live_on(today_) && reg.object.origin == asn) {
            prefixes.push_back(reg.object.prefix.to_string());
          }
        }
        return frame(util::join(prefixes, " ") +
                     (prefixes.empty() ? "" : "\n"));
      }
      case 'i': {
        // !iAS-SET -> member ASNs after recursive expansion.
        std::vector<net::Asn> asns =
            expand_as_set(sets_, std::string(util::trim(arg)));
        std::vector<std::string> names;
        for (net::Asn a : asns) names.push_back(a.to_string());
        return frame(util::join(names, " ") + (names.empty() ? "" : "\n"));
      }
      default:
        return "F unrecognized command\n";
    }
  } catch (const ParseError& e) {
    return std::string("F ") + e.what() + "\n";
  } catch (const InvariantError& e) {
    return std::string("F ") + e.what() + "\n";
  }
}

}  // namespace droplens::irr
