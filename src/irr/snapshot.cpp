#include "irr/snapshot.hpp"

#include <map>

namespace droplens::irr {

namespace {

using Key = std::pair<net::Prefix, net::Asn>;

std::map<Key, RouteObject> index_dump(std::string_view text) {
  std::map<Key, RouteObject> out;
  for (const RpslObject& obj : parse_rpsl(text)) {
    if (obj.cls() != "route") continue;
    RouteObject route = RouteObject::from_rpsl(obj);
    out[{route.prefix, route.origin}] = std::move(route);
  }
  return out;
}

}  // namespace

SnapshotDiff diff_snapshots(std::string_view older, std::string_view newer) {
  std::map<Key, RouteObject> before = index_dump(older);
  std::map<Key, RouteObject> after = index_dump(newer);
  SnapshotDiff diff;
  for (const auto& [key, obj] : after) {
    if (!before.contains(key)) diff.created.push_back(obj);
  }
  for (const auto& [key, obj] : before) {
    if (!after.contains(key)) diff.removed.push_back(obj);
  }
  return diff;
}

Database from_daily_snapshots(
    const std::vector<std::pair<net::Date, std::string>>& days) {
  Database db;
  std::map<Key, RouteObject> live;
  for (const auto& [date, text] : days) {
    std::map<Key, RouteObject> today = index_dump(text);
    for (const auto& [key, obj] : live) {
      if (!today.contains(key)) {
        db.remove_object(key.first, key.second, date);
      }
    }
    for (auto& [key, obj] : today) {
      if (!live.contains(key)) {
        RouteObject created = obj;
        created.created = date;  // archive granularity: first-seen day
        db.register_object(std::move(created));
      }
    }
    live = std::move(today);
  }
  return db;
}

}  // namespace droplens::irr
