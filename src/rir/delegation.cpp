#include "rir/delegation.hpp"

#include <cctype>
#include <optional>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace droplens::rir {

std::string_view to_string(DelegationStatus s) {
  switch (s) {
    case DelegationStatus::kAllocated: return "allocated";
    case DelegationStatus::kAssigned: return "assigned";
    case DelegationStatus::kAvailable: return "available";
    case DelegationStatus::kReserved: return "reserved";
  }
  return "?";
}

DelegationStatus parse_status(std::string_view s) {
  if (s == "allocated") return DelegationStatus::kAllocated;
  if (s == "assigned") return DelegationStatus::kAssigned;
  if (s == "available") return DelegationStatus::kAvailable;
  if (s == "reserved") return DelegationStatus::kReserved;
  throw ParseError("unknown delegation status: '" + std::string(s) + "'");
}

namespace {

// Parse one non-comment line; returns nullopt for the header, summary, and
// non-ipv4 lines that the format defines but this reader skips.
std::optional<DelegationRecord> parse_delegation_line(std::string_view line) {
  std::vector<std::string_view> f = util::split(line, '|');
  if (f.size() >= 2 && f[1] == "*") return std::nullopt;  // summary line
  if (f.size() >= 1 && !f[0].empty() &&
      std::isdigit(static_cast<unsigned char>(f[0].front())) &&
      f[0].find('.') == std::string_view::npos) {
    return std::nullopt;  // version header: "2|apnic|20220330|..."
  }
  if (f.size() < 7) {
    throw ParseError("short record: '" + std::string(line) + "'");
  }
  if (f[2] != "ipv4") return std::nullopt;  // asn / ipv6 are out of scope
  DelegationRecord rec;
  rec.registry = parse_rir(f[0]);
  rec.country = std::string(f[1]);
  rec.start = net::Ipv4::parse(f[3]);
  rec.value = util::parse_u64(f[4]);
  if (rec.value == 0 ||
      uint64_t{rec.start.value()} + rec.value > (uint64_t{1} << 32)) {
    throw ParseError("bad address count: '" + std::string(line) + "'");
  }
  rec.date = f[5].empty() ? net::Date(0) : net::Date::parse(f[5]);
  rec.status = parse_status(f[6]);
  if (f.size() >= 8) rec.opaque_id = std::string(f[7]);
  return rec;
}

}  // namespace

std::vector<DelegationRecord> parse_delegation_file(
    std::string_view text, util::ParsePolicy policy,
    util::ParseReport* report) {
  obs::Span span("parse.delegation");
  std::vector<DelegationRecord> out;
  size_t line_no = 0;
  size_t skipped = 0;
  for (std::string_view line : util::split(text, '\n')) {
    ++line_no;
    line = util::trim(line);
    if (line.empty() || line.front() == '#') continue;
    std::optional<DelegationRecord> rec;
    try {
      rec = parse_delegation_line(line);
    } catch (const ParseError& e) {
      if (policy == util::ParsePolicy::kStrict) {
        throw ParseError("delegation line " + std::to_string(line_no) + ": " +
                         e.what());
      }
      if (report) report->add_error(line_no, e.what());
      ++skipped;
      continue;
    }
    if (!rec) continue;
    if (report) report->add_parsed();
    out.push_back(std::move(*rec));
  }
  if (obs::Registry* reg = obs::installed()) {
    obs::Labels feed{{"feed", "delegations"}};
    reg->counter("droplens_parse_records_total", feed).inc(out.size());
    reg->counter("droplens_parse_records_skipped_total", feed).inc(skipped);
  }
  return out;
}

std::string write_delegation_file(
    Rir registry, net::Date snapshot,
    const std::vector<DelegationRecord>& records) {
  std::string name(delegation_name(registry));
  auto ymd_compact = [](net::Date d) {
    std::string s = d.to_string();  // YYYY-MM-DD
    // Dates far outside the civil range (e.g. negative years) render shorter
    // or shifted; substr on those would throw std::out_of_range. Surface the
    // bad date as a ParseError instead.
    if (s.size() < 10 || s[4] != '-' || s[7] != '-') {
      throw ParseError("delegation: unrepresentable date '" + s + "'");
    }
    return s.substr(0, 4) + s.substr(5, 2) + s.substr(8, 2);
  };
  std::string out = "2|" + name + "|" + ymd_compact(snapshot) + "|" +
                    std::to_string(records.size()) + "||" +
                    ymd_compact(snapshot) + "|+0000\n";
  out += name + "|*|ipv4|*|" + std::to_string(records.size()) + "|summary\n";
  for (const DelegationRecord& r : records) {
    out += name;
    out += '|';
    out += r.country.empty() ? "ZZ" : r.country;
    out += "|ipv4|";
    out += r.start.to_string();
    out += '|';
    out += std::to_string(r.value);
    out += '|';
    out += r.date == net::Date(0) ? std::string() : ymd_compact(r.date);
    out += '|';
    out += to_string(r.status);
    if (!r.opaque_id.empty()) {
      out += '|';
      out += r.opaque_id;
    }
    out += '\n';
  }
  return out;
}

}  // namespace droplens::rir
