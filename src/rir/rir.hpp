// The five Regional Internet Registries.
#pragma once

#include <array>
#include <string>
#include <string_view>

namespace droplens::rir {

enum class Rir : uint8_t { kAfrinic, kApnic, kArin, kLacnic, kRipe };

inline constexpr std::array<Rir, 5> kAllRirs = {
    Rir::kAfrinic, Rir::kApnic, Rir::kArin, Rir::kLacnic, Rir::kRipe};

/// Lowercase registry name as used in delegation files ("ripencc" for RIPE).
std::string_view delegation_name(Rir rir);

/// Display name as the paper's tables use ("RIPE NCC").
std::string_view display_name(Rir rir);

/// Parse either form; throws ParseError on unknown registry.
Rir parse_rir(std::string_view name);

}  // namespace droplens::rir
