#include "rir/rir.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace droplens::rir {

std::string_view delegation_name(Rir rir) {
  switch (rir) {
    case Rir::kAfrinic: return "afrinic";
    case Rir::kApnic: return "apnic";
    case Rir::kArin: return "arin";
    case Rir::kLacnic: return "lacnic";
    case Rir::kRipe: return "ripencc";
  }
  return "?";
}

std::string_view display_name(Rir rir) {
  switch (rir) {
    case Rir::kAfrinic: return "AFRINIC";
    case Rir::kApnic: return "APNIC";
    case Rir::kArin: return "ARIN";
    case Rir::kLacnic: return "LACNIC";
    case Rir::kRipe: return "RIPE NCC";
  }
  return "?";
}

Rir parse_rir(std::string_view name) {
  std::string n = util::to_lower(name);
  if (n == "afrinic") return Rir::kAfrinic;
  if (n == "apnic") return Rir::kApnic;
  if (n == "arin") return Rir::kArin;
  if (n == "lacnic") return Rir::kLacnic;
  if (n == "ripencc" || n == "ripe" || n == "ripe ncc") return Rir::kRipe;
  throw ParseError("unknown RIR: '" + std::string(name) + "'");
}

}  // namespace droplens::rir
