// RIR statistics exchange format ("RIR stats" / delegation files).
//
// Each RIR publishes daily snapshots of its number resources in a
// pipe-separated format:
//   registry|cc|type|start|value|date|status[|opaque-id]
// e.g. "apnic|CN|ipv4|1.0.0.0|256|20110414|allocated|A91872ED"
// The paper uses these archives to track the allocation status of DROP
// addresses (§3). We parse and emit the ipv4 records (header and summary
// lines are recognized and skipped/produced).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "net/date.hpp"
#include "net/ipv4.hpp"
#include "rir/rir.hpp"
#include "util/parse_report.hpp"

namespace droplens::rir {

enum class DelegationStatus : uint8_t {
  kAllocated,
  kAssigned,
  kAvailable,
  kReserved,
};

std::string_view to_string(DelegationStatus s);
DelegationStatus parse_status(std::string_view s);

/// One ipv4 record. `value` is an address count — not necessarily a CIDR
/// block in real files, though our writer always emits CIDR-aligned ranges.
struct DelegationRecord {
  Rir registry = Rir::kArin;
  std::string country;  // ISO 3166 code, or "ZZ" for none
  net::Ipv4 start;
  uint64_t value = 0;
  net::Date date;  // allocation date; epoch (day 0) encodes the format's
                   // empty-date convention for available/reserved space
  DelegationStatus status = DelegationStatus::kAvailable;
  std::string opaque_id;

  friend bool operator==(const DelegationRecord&,
                         const DelegationRecord&) = default;
};

/// Parse a delegation file body; skips the version header, summary lines,
/// comments, and non-ipv4 records. Under kStrict a malformed line throws
/// ParseError (naming the line number); under kLenient it is skipped and
/// recorded in `report`.
std::vector<DelegationRecord> parse_delegation_file(
    std::string_view text,
    util::ParsePolicy policy = util::ParsePolicy::kStrict,
    util::ParseReport* report = nullptr);

/// Emit a delegation file: version header, ipv4 summary, records.
/// `registry` names the publishing RIR; `snapshot` is the file date.
std::string write_delegation_file(Rir registry, net::Date snapshot,
                                  const std::vector<DelegationRecord>& records);

}  // namespace droplens::rir
