// Time-indexed Internet number resource registry.
//
// Mirrors what the daily "RIR stats" archives let the paper reconstruct
// (§3): which RIR administers an address block, whether it was allocated on
// a given date, to whom, when it was deallocated, and how much unallocated
// space remains in each RIR's free pool (Fig 7).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/date.hpp"
#include "net/interval_set.hpp"
#include "net/prefix_trie.hpp"
#include "rir/delegation.hpp"
#include "rir/rir.hpp"

namespace droplens::rir {

/// One allocation episode of a prefix to a resource holder.
struct Allocation {
  net::Prefix prefix;
  Rir rir = Rir::kArin;
  std::string holder;   // organization name ("Amazon", ...) — §6.2.1 uses it
  std::string country;  // ISO 3166
  net::DateRange lifetime;  // [allocated, deallocated); unbounded if live

  bool live_on(net::Date d) const { return lifetime.contains(d); }
};

class Registry {
 public:
  Registry() = default;

  /// Declare that `rir` administers `block` (e.g. IANA gave 41/8 to
  /// AFRINIC). Administered blocks of different RIRs must not overlap.
  void administer(Rir rir, const net::Prefix& block);

  const net::IntervalSet& administered(Rir rir) const;

  /// The RIR whose administered space contains `p` entirely, if any.
  std::optional<Rir> rir_of(const net::Prefix& p) const;

  /// Allocate `prefix` to `holder` on `date`. Throws InvariantError if the
  /// prefix is outside administered space of `rir` or overlaps a live
  /// allocation.
  void allocate(const net::Prefix& prefix, Rir rir, std::string holder,
                net::Date date, std::string country = "ZZ");

  /// End the live allocation of exactly `prefix` on `date`. Throws
  /// InvariantError if there is none.
  void deallocate(const net::Prefix& prefix, net::Date date);

  /// Most specific live allocation containing `p` on `d`; nullptr if `p`
  /// is (even partially) unallocated.
  const Allocation* allocation_on(const net::Prefix& p, net::Date d) const;

  bool is_allocated(const net::Prefix& p, net::Date d) const {
    return allocation_on(p, d) != nullptr;
  }

  /// True if no live allocation covers any part of `p` — the paper's
  /// "unallocated" category (UA).
  bool is_fully_unallocated(const net::Prefix& p, net::Date d) const;

  /// All allocation episodes (live or ended) for prefixes equal to or more
  /// specific than `p`.
  std::vector<Allocation> history(const net::Prefix& p) const;

  /// Space allocated by `rir` as of `d`.
  net::IntervalSet allocated_space(Rir rir, net::Date d) const;
  /// Space allocated by all RIRs as of `d`.
  net::IntervalSet allocated_space(net::Date d) const;

  /// Administered-but-unallocated space: the RIR's free pool on `d` (Fig 7).
  net::IntervalSet free_pool(Rir rir, net::Date d) const;

  /// Live allocations on `d`, optionally restricted to one RIR.
  std::vector<Allocation> live_allocations(net::Date d) const;
  std::vector<Allocation> live_allocations(Rir rir, net::Date d) const;

  /// Daily RIR-stats snapshot for `rir` at `d`: allocated records for live
  /// allocations plus `available` records covering the free pool.
  std::vector<DelegationRecord> snapshot(Rir rir, net::Date d) const;

 private:
  net::IntervalSet administered_[kAllRirs.size()];
  net::PrefixMap<std::vector<Allocation>> allocations_;
};

}  // namespace droplens::rir
