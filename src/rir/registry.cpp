#include "rir/registry.hpp"

#include <algorithm>

#include "net/cidr_cover.hpp"
#include "util/error.hpp"

namespace droplens::rir {

namespace {
size_t idx(Rir r) { return static_cast<size_t>(r); }
}  // namespace

void Registry::administer(Rir rir, const net::Prefix& block) {
  for (Rir other : kAllRirs) {
    if (other != rir && administered_[idx(other)].intersects(block)) {
      throw InvariantError("administered blocks overlap across RIRs: " +
                           block.to_string());
    }
  }
  administered_[idx(rir)].insert(block);
}

const net::IntervalSet& Registry::administered(Rir rir) const {
  return administered_[idx(rir)];
}

std::optional<Rir> Registry::rir_of(const net::Prefix& p) const {
  for (Rir rir : kAllRirs) {
    if (administered_[idx(rir)].covers(p)) return rir;
  }
  return std::nullopt;
}

void Registry::allocate(const net::Prefix& prefix, Rir rir, std::string holder,
                        net::Date date, std::string country) {
  if (!administered_[idx(rir)].covers(prefix)) {
    throw InvariantError(prefix.to_string() + " is not administered by " +
                         std::string(display_name(rir)));
  }
  // Overlap check: any live allocation covering or covered by `prefix`.
  const Allocation* clash = allocation_on(prefix, date);
  if (!clash) {
    allocations_.for_each_covered(
        prefix, [&](const net::Prefix&, const std::vector<Allocation>& v) {
          for (const Allocation& a : v) {
            if (a.live_on(date)) clash = &a;
          }
        });
  }
  if (clash) {
    throw InvariantError(prefix.to_string() + " overlaps live allocation " +
                         clash->prefix.to_string());
  }
  allocations_[prefix].push_back(
      Allocation{prefix, rir, std::move(holder), std::move(country),
                 net::DateRange{date, net::DateRange::unbounded()}});
}

void Registry::deallocate(const net::Prefix& prefix, net::Date date) {
  auto* v = allocations_.find(prefix);
  if (v) {
    for (Allocation& a : *v) {
      if (a.live_on(date)) {
        a.lifetime.end = date;
        return;
      }
    }
  }
  throw InvariantError("no live allocation of " + prefix.to_string());
}

const Allocation* Registry::allocation_on(const net::Prefix& p,
                                          net::Date d) const {
  const Allocation* best = nullptr;
  allocations_.for_each_covering(
      p, [&](const net::Prefix&, const std::vector<Allocation>& v) {
        for (const Allocation& a : v) {
          if (a.live_on(d)) best = &a;  // covering walk goes root-down: the
                                        // last hit is the most specific
        }
      });
  return best;
}

bool Registry::is_fully_unallocated(const net::Prefix& p, net::Date d) const {
  if (allocation_on(p, d)) return false;
  bool overlap = false;
  allocations_.for_each_covered(
      p, [&](const net::Prefix&, const std::vector<Allocation>& v) {
        for (const Allocation& a : v) {
          if (a.live_on(d)) overlap = true;
        }
      });
  return !overlap;
}

std::vector<Allocation> Registry::history(const net::Prefix& p) const {
  std::vector<Allocation> out;
  allocations_.for_each_covered(
      p, [&](const net::Prefix&, const std::vector<Allocation>& v) {
        out.insert(out.end(), v.begin(), v.end());
      });
  return out;
}

net::IntervalSet Registry::allocated_space(Rir rir, net::Date d) const {
  net::IntervalSet out;
  allocations_.for_each(
      [&](const net::Prefix& p, const std::vector<Allocation>& v) {
        for (const Allocation& a : v) {
          if (a.rir == rir && a.live_on(d)) out.insert(p);
        }
      });
  return out;
}

net::IntervalSet Registry::allocated_space(net::Date d) const {
  net::IntervalSet out;
  allocations_.for_each(
      [&](const net::Prefix& p, const std::vector<Allocation>& v) {
        for (const Allocation& a : v) {
          if (a.live_on(d)) out.insert(p);
        }
      });
  return out;
}

net::IntervalSet Registry::free_pool(Rir rir, net::Date d) const {
  return net::IntervalSet::set_difference(administered_[idx(rir)],
                                          allocated_space(rir, d));
}

std::vector<Allocation> Registry::live_allocations(net::Date d) const {
  std::vector<Allocation> out;
  allocations_.for_each(
      [&](const net::Prefix&, const std::vector<Allocation>& v) {
        for (const Allocation& a : v) {
          if (a.live_on(d)) out.push_back(a);
        }
      });
  return out;
}

std::vector<Allocation> Registry::live_allocations(Rir rir,
                                                   net::Date d) const {
  std::vector<Allocation> out;
  for (Allocation& a : live_allocations(d)) {
    if (a.rir == rir) out.push_back(std::move(a));
  }
  return out;
}

std::vector<DelegationRecord> Registry::snapshot(Rir rir, net::Date d) const {
  std::vector<DelegationRecord> out;
  for (const Allocation& a : live_allocations(rir, d)) {
    DelegationRecord rec;
    rec.registry = rir;
    rec.country = a.country;
    rec.start = a.prefix.network();
    rec.value = a.prefix.size();
    rec.date = a.lifetime.begin;
    rec.status = DelegationStatus::kAllocated;
    rec.opaque_id = a.holder;
    out.push_back(std::move(rec));
  }
  for (const net::Prefix& p : net::cidr_cover(free_pool(rir, d))) {
    DelegationRecord rec;
    rec.registry = rir;
    rec.country = "ZZ";
    rec.start = p.network();
    rec.value = p.size();
    rec.date = net::Date(0);
    rec.status = DelegationStatus::kAvailable;
    out.push_back(std::move(rec));
  }
  std::sort(out.begin(), out.end(),
            [](const DelegationRecord& a, const DelegationRecord& b) {
              return a.start < b.start;
            });
  return out;
}

}  // namespace droplens::rir
