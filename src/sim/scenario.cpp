#include "sim/scenario.hpp"

namespace droplens::sim {

ScenarioConfig ScenarioConfig::small() {
  ScenarioConfig c;
  c.full_table_peers = 20;
  c.collectors = 4;
  c.unsigned_background = {40, 420, 650, 150, 680};
  c.presigned_space_slash8 = 0.5;
  c.prudential_slash8 = 0.02;
  c.alibaba_slash8 = 0.012;
  c.amazon_unrouted_slash8 = 0.06;
  c.amazon_routed_slash8 = 0.02;
  c.signed_goes_unrouted_slash8 = 0.04;
  c.unrouted_unsigned_start_slash8 = 0.52;
  c.unrouted_unsigned_growth_slash8 = 0.08;
  c.free_pool_start = {70'000, 50'000, 25'000, 26'000, 15'000};
  c.hijacked_regular = 13;
  c.afrinic_incident_prefixes = 6;
  c.afrinic_incident_space = 240'000;
  c.snowshoe = 22;
  c.known_spam_op = 4;
  c.malicious_hosting = 5;
  c.unclassifiable = 1;
  c.unallocated_drop = 8;
  c.unallocated_by_rir = {2, 1, 1, 3, 1};
  c.no_record = 18;
  c.snowshoe_second_label = 2;
  c.forged_irr_hijacks = 6;
  c.forged_irr_other_orgs = 2;
  c.hijacking_asn_count = 4;
  c.forged_irr_late_records = 1;
  c.forged_irr_preexisting = 1;
  c.attacker_controlled_roas = 1;
  c.background_bogons = 5;
  return c;
}

}  // namespace droplens::sim
