// DROP population: plans and realizes the ~712 blocklisted prefixes with the
// BGP / IRR / RPKI / registry behaviour the paper measures (§3–§6).
#include <algorithm>
#include <cassert>

#include "sim/generator_impl.hpp"
#include "util/error.hpp"

namespace droplens::sim::detail {

namespace {

using drop::Category;

const LengthDist kHijackLen{{16, 17, 18, 19, 20, 21, 22},
                            {0.03, 0.05, 0.12, 0.25, 0.30, 0.15, 0.10}};
const LengthDist kSnowshoeLen{{20, 21, 22, 23, 24},
                              {0.30, 0.30, 0.20, 0.10, 0.10}};
const LengthDist kSpamOpLen{{20, 21, 22}, {0.4, 0.35, 0.25}};
const LengthDist kHostingLen{{19, 20, 21}, {0.35, 0.40, 0.25}};
const LengthDist kUnallocLen{{16, 17, 18, 19, 20},
                             {0.10, 0.20, 0.30, 0.25, 0.15}};
const LengthDist kNoRecordLen{{21, 22, 23, 24}, {0.30, 0.30, 0.25, 0.15}};

// RIR mix for present-on-DROP prefixes, from Table 1's "Present" column
// counts {11, 37, 169, 9, 172}.
const std::array<double, 5> kPresentRirWeights = {0.028, 0.093, 0.425, 0.023,
                                                  0.432};
// "Removed from DROP" (our NR population) per-RIR counts, Table 1 column 2.
const std::array<int, 5> kRemovedByRir = {7, 19, 40, 37, 83};  // sums to 186

const LengthDist& length_dist(Category c) {
  switch (c) {
    case Category::kHijacked: return kHijackLen;
    case Category::kSnowshoe: return kSnowshoeLen;
    case Category::kKnownSpamOp: return kSpamOpLen;
    case Category::kMaliciousHosting: return kHostingLen;
    case Category::kUnallocated: return kUnallocLen;
    case Category::kNoRecord: return kNoRecordLen;
  }
  return kNoRecordLen;
}

}  // namespace

void Generator::gen_drop_population() {
  std::vector<DropPlan> plans = plan_drop_entries();
  int index = 0;
  for (DropPlan& plan : plans) realize(plan, index++);
}

void Generator::plan_category(std::vector<DropPlan>& plans, Category cat,
                              int count) {
  for (int i = 0; i < count; ++i) {
    DropPlan p;
    p.primary = cat;
    p.rir = pick_rir(kPresentRirWeights);
    p.listed = in_window_date(40);
    plans.push_back(std::move(p));
  }
}

void Generator::plan_incidents(std::vector<DropPlan>& plans) {
  // Two AFRINIC incidents of fraudulent address acquisition (§3.1):
  // ~6% of DROP prefixes but ~49% of the address space, in two clusters.
  int total = cfg_.afrinic_incident_prefixes;
  if (total <= 0) return;
  int count_a = std::max(1, (total * 5 + 4) / 9);  // ~55% of the prefixes
  int count_b = total - count_a;
  uint64_t space_a =
      static_cast<uint64_t>(0.7 * static_cast<double>(cfg_.afrinic_incident_space));
  uint64_t space_b = cfg_.afrinic_incident_space - space_a;
  net::Date listed_a = net::Date::from_ymd(2019, 8, 20);
  net::Date listed_b = net::Date::from_ymd(2021, 2, 10);
  auto make_cluster = [&](int count, uint64_t space, net::Date listed,
                          const std::string& org) {
    uint64_t remaining = space;
    for (int i = 0; i < count; ++i) {
      // Power-of-two share of what's left, largest blocks first.
      uint64_t share = remaining / static_cast<uint64_t>(count - i);
      int len = 24;
      while (len > 10 && (uint64_t{1} << (32 - len)) < share) --len;
      remaining -= std::min(remaining, uint64_t{1} << (32 - len));
      DropPlan p;
      p.primary = Category::kHijacked;
      p.rir = rir::Rir::kAfrinic;
      p.prefix = blocks_.take(rir::Rir::kAfrinic, len);
      p.listed = listed + static_cast<int32_t>(rng_.below(14));
      p.legit_irr = true;  // fraud came with IRR records
      p.irr_org = org;
      p.irr_created = net::Date::from_ymd(2019, 2, 1) +
                      static_cast<int32_t>(rng_.below(60));
      p.irr_removed_after = rng_.chance(0.5);
      p.announce_begin = p.irr_created + static_cast<int32_t>(rng_.below(20));
      plans.push_back(std::move(p));
    }
  };
  make_cluster(count_a, space_a, listed_a, "ORG-INCIDENT-A");
  make_cluster(count_b, space_b, listed_b, "ORG-INCIDENT-B");
}

void Generator::assign_forged_irr(std::vector<DropPlan>& plans) {
  // §5: 57 hijacked prefixes whose SBL-labeled hijacking ASN appears in a
  // RADb route object the attacker registered. 49 of them trace to three
  // ORG-IDs; the serial ORG (15 prefixes) always transits AS50509.
  std::vector<size_t> hijack_idx;
  for (size_t i = 0; i < plans.size(); ++i) {
    // Incidents (legit_irr already set) keep their own IRR story.
    if (plans[i].primary == Category::kHijacked && !plans[i].legit_irr) {
      hijack_idx.push_back(i);
    }
  }
  rng_.shuffle(hijack_idx);
  int want = std::min<int>(cfg_.forged_irr_hijacks,
                           static_cast<int>(hijack_idx.size()));
  const auto& hijackers = asns_.hijacking_asns();
  int late_budget = cfg_.forged_irr_late_records;
  int preexisting_budget = cfg_.forged_irr_preexisting;
  for (int k = 0; k < want; ++k) {
    DropPlan& p = plans[hijack_idx[static_cast<size_t>(k)]];
    p.forged_irr = true;
    p.asn_in_sbl = true;
    // ORG assignment: 15 / 17 / 17 to the three serial ORG-IDs, the rest to
    // one-off ORGs; hijacking ASNs partitioned so 13 distinct ASNs appear.
    size_t asn_slot;
    if (k < 15) {
      p.irr_org = "ORG-SERIAL-1";
      p.transit = net::Asn(50509);  // the paper's recurring transit
      asn_slot = static_cast<size_t>(k % 5);
    } else if (k < 32) {
      p.irr_org = "ORG-SERIAL-2";
      asn_slot = 5 + static_cast<size_t>(k % 4);
    } else if (k < 49) {
      p.irr_org = "ORG-SERIAL-3";
      asn_slot = 9 + static_cast<size_t>(k % 3);
    } else {
      p.irr_org = "ORG-ONEOFF-" + std::to_string(k - 48);
      asn_slot = 12;
    }
    p.origin = hijackers[asn_slot % hijackers.size()];

    // Timing (Fig 3): IRR record first, BGP within a week — except the two
    // prefixes that had been in BGP for over a year before the record.
    p.irr_created = cfg_.window_begin +
                    static_cast<int32_t>(rng_.below(static_cast<uint64_t>(
                        std::max(1, cfg_.window_end - cfg_.window_begin - 330))));
    bool is_late = late_budget > 0 && k >= want - cfg_.forged_irr_late_records;
    if (is_late) {
      --late_budget;
      p.announce_begin = p.irr_created;
      p.irr_created = p.announce_begin + 366 +
                      static_cast<int32_t>(rng_.below(130));
      p.listed = p.irr_created + static_cast<int32_t>(rng_.range(30, 90));
    } else {
      p.announce_begin = p.irr_created + static_cast<int32_t>(rng_.below(7));
      double u = rng_.uniform();
      p.listed = p.irr_created + 7 +
                 static_cast<int32_t>(293.0 * u * u);
    }
    if (p.listed >= cfg_.window_end) p.listed = cfg_.window_end - 1;
    if (preexisting_budget > 0) {
      --preexisting_budget;
      p.irr_preexisting = true;
    }
    p.irr_removed_after = rng_.chance(0.70);
  }
}

std::vector<DropPlan> Generator::plan_drop_entries() {
  std::vector<DropPlan> plans;

  // --- Hijacked (non-incident, non-case-study) ---------------------------
  int hijacked_planned = std::max(0, cfg_.hijacked_regular - 3);
  plan_category(plans, Category::kHijacked, hijacked_planned);
  plan_category(plans, Category::kSnowshoe, cfg_.snowshoe);
  plan_category(plans, Category::kKnownSpamOp, cfg_.known_spam_op);
  plan_category(plans, Category::kMaliciousHosting, cfg_.malicious_hosting);

  // --- Unallocated (Fig 6): per-RIR clusters ------------------------------
  for (rir::Rir r : rir::kAllRirs) {
    int n = cfg_.unallocated_by_rir[static_cast<size_t>(r)];
    for (int i = 0; i < n; ++i) {
      DropPlan p;
      p.primary = Category::kUnallocated;
      p.rir = r;
      p.allocated = false;
      if (r == rir::Rir::kLacnic) {
        // The LACNIC cluster in Fig 6 — it straddles the LACNIC AS0 policy
        // date (2021-06-23), showing the policy did not stop the hijacks.
        p.listed = net::Date::from_ymd(2020, 9, 1) +
                   static_cast<int32_t>(rng_.below(540));
      } else {
        p.listed = in_window_date(40);
      }
      plans.push_back(std::move(p));
    }
  }

  // --- No SBL record = removed from DROP (Table 1 column 2) --------------
  int nr_total = cfg_.no_record - (cfg_.include_case_study ? 1 : 0);
  int nr_made = 0;
  for (rir::Rir r : rir::kAllRirs) {
    int n = kRemovedByRir[static_cast<size_t>(r)];
    for (int i = 0; i < n && nr_made < nr_total; ++i, ++nr_made) {
      DropPlan p;
      p.primary = Category::kNoRecord;
      p.no_record = true;
      p.rir = r;
      p.listed = in_window_date(80);
      plans.push_back(std::move(p));
    }
  }
  while (nr_made < nr_total) {  // top up if the per-RIR counts fell short
    DropPlan p;
    p.primary = Category::kNoRecord;
    p.no_record = true;
    p.rir = rir::Rir::kRipe;
    p.listed = in_window_date(80);
    plans.push_back(std::move(p));
    ++nr_made;
  }

  // --- Unclassifiable records (App. A: two) -------------------------------
  for (int i = 0; i < cfg_.unclassifiable; ++i) {
    DropPlan p;
    p.primary = Category::kSnowshoe;  // behaviourally snowshoe-like
    p.unclassifiable = true;
    p.rir = pick_rir(kPresentRirWeights);
    p.listed = in_window_date(40);
    plans.push_back(std::move(p));
  }

  // --- Second labels & vague texts among snowshoe -------------------------
  {
    std::vector<size_t> ss_idx;
    for (size_t i = 0; i < plans.size(); ++i) {
      if (plans[i].primary == Category::kSnowshoe && !plans[i].unclassifiable) {
        ss_idx.push_back(i);
      }
    }
    rng_.shuffle(ss_idx);
    size_t cursor = 0;
    for (int i = 0; i < cfg_.snowshoe_second_label && cursor < ss_idx.size();
         ++i, ++cursor) {
      if (i < (2 * cfg_.snowshoe_second_label) / 3) {
        plans[ss_idx[cursor]].second_label_ks = true;
      } else {
        plans[ss_idx[cursor]].second_label_hj = true;
      }
    }
    int vague = static_cast<int>(
        cfg_.sbl_no_keyword_rate *
        static_cast<double>(cfg_.total_drop_prefixes() - cfg_.no_record)) -
        cfg_.unclassifiable;
    for (int i = 0; i < vague && cursor < ss_idx.size(); ++i, ++cursor) {
      plans[ss_idx[cursor]].vague_text = true;
    }
  }

  plan_incidents(plans);
  assign_forged_irr(plans);

  // --- Common per-plan attributes -----------------------------------------
  for (DropPlan& p : plans) {
    Category c = p.primary;
    // Address block (incidents already carved theirs).
    if (p.prefix.length() == 0) {
      int len = length_dist(c).sample(rng_);
      if (p.allocated) {
        p.prefix = blocks_.take(p.rir, len);
      } else {
        // Keep squatted blocks well inside what the pool can still give up
        // (small scenarios have tiny pools).
        while (len < 24 &&
               (uint64_t{1} << (32 - len)) * 4 > blocks_.pool_headroom(p.rir)) {
          ++len;
        }
        p.prefix = blocks_.squat_in_pool(p.rir, len);
      }
    }
    p.origin = p.origin.value() ? p.origin : asns_.fresh_operator();
    p.transit = p.transit.value() ? p.transit : asns_.transit(rng_);

    // Announcement behaviour & §4.1 withdrawal.
    double withdraw_rate =
        c == Category::kHijacked ? cfg_.withdraw_within_30d_hijacked
        : c == Category::kUnallocated ? cfg_.withdraw_within_30d_unallocated
                                      : cfg_.withdraw_within_30d_other;
    if (p.legit_irr && p.irr_org.starts_with("ORG-INCIDENT")) {
      withdraw_rate = 0;  // the incident holders kept announcing
    }
    if (p.no_record && rng_.chance(cfg_.removed_signed_unannounced)) {
      p.announced = false;  // §4.2's removed-then-signed-but-never-announced
    }
    if (p.announced && p.announce_begin == net::Date()) {
      p.announce_begin =
          c == Category::kHijacked
              ? p.listed - static_cast<int32_t>(rng_.range(10, 90))
              : pre_window_date(0, 6);
      if (p.announce_begin < cfg_.history_begin) {
        p.announce_begin = cfg_.history_begin;
      }
    }
    p.withdraw_rate = withdraw_rate;
    if (p.announced && !p.no_record && rng_.chance(0.15) &&
        withdraw_rate < 0.5) {
      // Some attackers withdraw later than the 30-day mark (provisional;
      // the quota pass below may override with an early withdrawal).
      p.announce_end = p.listed + static_cast<int32_t>(rng_.range(45, 400));
    }

    // DROP removal (NR population).
    if (p.no_record) {
      p.removed = true;
      p.removed_on = p.listed + static_cast<int32_t>(rng_.range(30, 300));
      if (p.removed_on >= cfg_.window_end) {
        p.removed_on = cfg_.window_end - static_cast<int32_t>(rng_.below(20)) - 1;
      }
      if (p.removed_on <= p.listed) p.removed_on = p.listed + 1;
    }

    // ASN named in the SBL record: all forged-IRR prefixes, plus enough
    // other hijacks to reach ~130, plus ~20% of SS/KS/MH (→ ~190 total).
    if (!p.asn_in_sbl) {
      if (c == Category::kHijacked && !p.legit_irr) {
        // Nearly all non-incident hijack records name the hijacking ASN
        // (§5's 130); the incident records (legit_irr set above) do not.
        p.asn_in_sbl = rng_.chance(0.95);
      } else if (c == Category::kSnowshoe || c == Category::kKnownSpamOp ||
                 c == Category::kMaliciousHosting) {
        p.asn_in_sbl = !p.vague_text && !p.unclassifiable && rng_.chance(0.20);
      }
    }
  }

  apply_quotas(plans);

  // Legit route objects (§5): bring route-object coverage to ~31.7% of
  // prefixes / ~68.8% of space. Incidents already carry objects; select
  // others weighted by size.
  {
    std::vector<size_t> candidates;
    for (size_t i = 0; i < plans.size(); ++i) {
      const DropPlan& p = plans[i];
      if (!p.forged_irr && !p.legit_irr &&
          p.primary != Category::kUnallocated) {
        candidates.push_back(i);
      }
    }
    // Bias toward larger prefixes: route objects covered 68.8% of the DROP
    // space but only 31.7% of its prefixes, so the big blocks were the
    // registered ones.
    std::vector<double> weight(candidates.size());
    for (size_t k = 0; k < candidates.size(); ++k) {
      weight[k] = static_cast<double>(plans[candidates[k]].prefix.size()) *
                  rng_.uniform();
    }
    std::vector<size_t> order(candidates.size());
    for (size_t k = 0; k < order.size(); ++k) order[k] = k;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return weight[a] > weight[b]; });
    std::vector<size_t> picked;
    for (size_t k : order) picked.push_back(candidates[k]);
    candidates = std::move(picked);
    int want = static_cast<int>(cfg_.legit_route_object_rate *
                                static_cast<double>(candidates.size()));
    for (int k = 0; k < want && k < static_cast<int>(candidates.size()); ++k) {
      DropPlan& p = plans[candidates[static_cast<size_t>(k)]];
      p.legit_irr = true;
      p.irr_org = "ORG-" + std::to_string(1000 + k);
      if (rng_.chance(0.33)) {
        // Registered just before first use — the suspicious pattern.
        p.irr_created = p.listed - static_cast<int32_t>(rng_.range(1, 30));
      } else {
        p.irr_created = pre_window_date(0, 8);
      }
      p.irr_removed_after = rng_.chance(0.28);
    }
    // §5: one route object for an unallocated prefix.
    for (DropPlan& p : plans) {
      if (p.primary == Category::kUnallocated) {
        p.legit_irr = true;
        p.irr_org = "ORG-BOGON-REG";
        p.irr_created = p.listed - static_cast<int32_t>(rng_.range(5, 25));
        break;
      }
    }
  }

  return plans;
}

void Generator::apply_quotas(std::vector<DropPlan>& plans) {
  // Exact-count selection for the §4.1 statistics (withdrawals and RIR
  // deallocations). Bernoulli draws made these drift several sigma across
  // seeds; quotas pin them to the calibrated rates.
  auto pick = [&](std::vector<size_t> eligible, double rate, auto&& apply) {
    rng_.shuffle(eligible);
    size_t quota = static_cast<size_t>(
        rate * static_cast<double>(eligible.size()) + 0.5);
    for (size_t k = 0; k < quota && k < eligible.size(); ++k) {
      apply(plans[eligible[k]], k);
    }
  };

  // Withdrawals within 30 days, per withdrawal-rate group.
  std::vector<double> rates = {cfg_.withdraw_within_30d_hijacked,
                               cfg_.withdraw_within_30d_unallocated,
                               cfg_.withdraw_within_30d_other};
  for (double rate : rates) {
    if (rate <= 0) continue;
    std::vector<size_t> eligible;
    for (size_t i = 0; i < plans.size(); ++i) {
      if (plans[i].announced && plans[i].withdraw_rate == rate) {
        eligible.push_back(i);
      }
    }
    pick(std::move(eligible), rate, [&](DropPlan& p, size_t k) {
      p.withdrawn_30d = true;
      int32_t offset =
          k % 10 == 0 ? -1 : static_cast<int32_t>(rng_.below(30));
      p.announce_end = p.listed + offset;
      if (p.announce_end <= p.announce_begin) {
        p.announce_end = p.announce_begin + 1;
      }
    });
  }

  // MH deallocations (17.4% of malicious-hosting prefixes).
  {
    std::vector<size_t> eligible;
    for (size_t i = 0; i < plans.size(); ++i) {
      if (plans[i].primary == Category::kMaliciousHosting &&
          plans[i].allocated) {
        eligible.push_back(i);
      }
    }
    pick(std::move(eligible), cfg_.mh_deallocated_rate,
         [&](DropPlan& p, size_t) {
           p.deallocated = true;
           p.dealloc_date =
               p.listed + static_cast<int32_t>(rng_.range(60, 500));
           if (p.dealloc_date >= cfg_.window_end) {
             p.dealloc_date = cfg_.window_end - 10;
           }
         });
  }

  // Removed-prefix deallocations (8.8%; half within a week of removal).
  {
    std::vector<size_t> eligible;
    for (size_t i = 0; i < plans.size(); ++i) {
      if (plans[i].removed && plans[i].allocated) eligible.push_back(i);
    }
    pick(std::move(eligible), cfg_.removed_deallocated_rate,
         [&](DropPlan& p, size_t k) {
           p.deallocated = true;
           if (k % 2 == 0) {
             // Spamhaus removed within a week of the RIR deallocating.
             p.dealloc_date =
                 p.removed_on - static_cast<int32_t>(rng_.below(7));
           } else {
             p.dealloc_date =
                 p.removed_on + static_cast<int32_t>(rng_.range(30, 200));
             if (p.dealloc_date >= cfg_.window_end) {
               p.dealloc_date = cfg_.window_end - 5;
             }
           }
           if (p.dealloc_date <= p.listed) p.dealloc_date = p.listed + 1;
         });
  }

  // Post-listing RPKI signing, per RIR (Table 1 columns 2-3). Quota'd for
  // the same reason: the per-RIR denominators are small.
  for (rir::Rir rir : rir::kAllRirs) {
    size_t i_r = static_cast<size_t>(rir);
    std::vector<size_t> removed_set, present_set;
    for (size_t i = 0; i < plans.size(); ++i) {
      const DropPlan& p = plans[i];
      if (p.rir != rir || !p.allocated) continue;
      if (p.primary == Category::kUnallocated) continue;
      if (p.removed) {
        removed_set.push_back(i);
      } else {
        present_set.push_back(i);
      }
    }
    pick(std::move(removed_set), cfg_.removed_signing_rate[i_r],
         [&](DropPlan& p, size_t) {
           p.signs_after = true;
           p.sign_date =
               p.removed_on - 30 +
               static_cast<int32_t>(rng_.below(static_cast<uint64_t>(
                   std::max<int32_t>(31,
                                     cfg_.window_end - p.removed_on + 30))));
           if (p.sign_date <= p.listed) p.sign_date = p.listed + 1;
           if (p.sign_date >= cfg_.window_end) {
             p.sign_date = cfg_.window_end - 1;
           }
           p.sign_same_asn =
               p.announced &&
               rng_.chance(cfg_.removed_signed_same_asn /
                           (1.0 - cfg_.removed_signed_unannounced));
         });
    pick(std::move(present_set), cfg_.present_signing_rate[i_r],
         [&](DropPlan& p, size_t) {
           p.signs_after = true;
           p.sign_date =
               p.listed + 1 +
               static_cast<int32_t>(rng_.below(static_cast<uint64_t>(
                   std::max<int32_t>(2, cfg_.window_end - p.listed - 1))));
           p.sign_same_asn = false;
         });
  }
}

void Generator::realize(DropPlan& plan, int index) {
  const net::Prefix& prefix = plan.prefix;
  net::Date long_ago = pre_window_date(4, 15);
  // The allocation must predate every IRR record of the prefix — otherwise
  // old owner objects would look like registrations of unallocated space
  // (§5 has exactly ONE of those, planted deliberately).
  if (plan.legit_irr || plan.forged_irr) {
    net::Date earliest = plan.irr_created;
    if (plan.irr_preexisting) earliest = earliest - (365 * 14);
    if (long_ago >= earliest) {
      long_ago = earliest - static_cast<int32_t>(rng_.range(30, 700));
    }
    if (long_ago < cfg_.history_begin) long_ago = cfg_.history_begin;
  }

  // Registry. Incident prefixes were genuinely (if fraudulently) allocated
  // to the registering ORG; other legit route objects belong to the actual
  // holder; hijacked prefixes belong to a victim the hijacker is not.
  if (plan.allocated && !w_->registry.allocation_on(prefix, plan.listed)) {
    std::string holder;
    if (plan.irr_org.starts_with("ORG-INCIDENT")) {
      holder = plan.irr_org;
    } else if (plan.primary == drop::Category::kHijacked) {
      holder = "victim-org-" + std::to_string(index);
    } else if (plan.legit_irr && !plan.second_label_hj) {
      holder = plan.irr_org;
    } else {
      holder = "org-" + std::to_string(index);
    }
    w_->registry.allocate(prefix, plan.rir, holder, long_ago);
  }
  if (plan.deallocated) {
    w_->registry.deallocate(prefix, plan.dealloc_date);
  }

  // BGP.
  if (plan.announced) {
    net::Date end = plan.announce_end;
    announce_simple(prefix, plan.origin, plan.transit, plan.announce_begin,
                    end);
  }
  if (plan.primary == drop::Category::kHijacked && !plan.forged_irr &&
      plan.announced && rng_.chance(0.25)) {
    // The "origin consistent with historic route announcements" hijacks
    // (§1): the victim once announced this prefix with the very origin ASN
    // the hijacker now forges — only the upstream differs. Detection
    // systems keyed on origin changes stay silent (Vervier et al.).
    net::Date old_end = plan.announce_begin - static_cast<int32_t>(
        rng_.range(200, 1500));
    net::Date old_begin = old_end - static_cast<int32_t>(rng_.range(400, 2000));
    if (old_begin < cfg_.history_begin) old_begin = cfg_.history_begin;
    if (old_end > old_begin) {
      net::Asn old_transit = asns_.transit(rng_);
      while (old_transit == plan.transit) old_transit = asns_.transit(rng_);
      announce_simple(prefix, plan.origin, old_transit, old_begin, old_end);
    }
  }

  // IRR.
  if (plan.forged_irr || plan.legit_irr) {
    if (plan.irr_preexisting) {
      // The abandoned owner's own, older record (it would survive an
      // authenticated IRR — the owner really held the prefix).
      irr::RouteObject old_obj;
      old_obj.prefix = prefix;
      old_obj.origin = asns_.fresh_operator();
      old_obj.maintainer = "MAINT-OLDOWNER";
      old_obj.org_id = "victim-org-" + std::to_string(index);
      old_obj.descr = "legacy route object";
      old_obj.created = pre_window_date(6, 14);
      w_->irr.register_object(old_obj);
    }
    irr::RouteObject obj;
    obj.prefix = prefix;
    // Non-forged route objects on hijacked prefixes carry the *old owner's*
    // ASN, not the hijacker's — §5's "no route object or a route object
    // with a different ASN" population. Incidents keep their own origin
    // (the fraud org really did register and announce with it).
    bool owner_object = plan.legit_irr &&
                        (plan.primary == drop::Category::kHijacked ||
                         plan.second_label_hj) &&
                        !plan.irr_org.starts_with("ORG-INCIDENT");
    obj.origin = owner_object ? asns_.fresh_operator() : plan.origin;
    if (owner_object) {
      // A route object the real (now absent) holder left behind.
      plan.irr_org = "victim-org-" + std::to_string(index);
    }
    obj.maintainer = "MAINT-" + plan.irr_org;
    obj.org_id = plan.irr_org;
    obj.descr = plan.forged_irr ? "transit customer route" : "customer route";
    obj.created = plan.irr_created;
    net::Asn registered_origin = obj.origin;
    w_->irr.register_object(std::move(obj));
    if (plan.irr_removed_after) {
      w_->irr.remove_object(prefix, registered_origin,
                            plan.listed + static_cast<int32_t>(
                                rng_.range(3, 28)));
    }
  }

  // DROP + SBL.
  std::string sbl_id;
  if (!plan.no_record) {
    sbl_id = "SBL" + std::to_string(sbl_counter_++);
    w_->sbl.add(drop::SblRecord{sbl_id, prefix, sbl_text(plan, index)});
  }
  w_->drop.add(prefix, plan.listed, sbl_id);
  if (plan.removed) {
    w_->drop.remove(prefix, plan.removed_on);
    w_->truth.removed_from_drop.push_back(prefix);
  }
  if (plan.withdrawn_30d) w_->truth.withdrawn_within_30d.push_back(prefix);
  if (plan.primary == drop::Category::kUnallocated) {
    w_->truth.unallocated_prefixes.push_back(prefix);
  }
  if (plan.forged_irr) w_->truth.forged_irr_prefixes.push_back(prefix);
  if (plan.legit_irr && plan.irr_org.starts_with("ORG-INCIDENT")) {
    w_->truth.incident_prefixes.push_back(prefix);
  }

  // RPKI uptake after listing (Table 1, §4.2).
  if (plan.signs_after) {
    net::Asn roa_asn =
        plan.sign_same_asn ? plan.origin : asns_.fresh_operator();
    w_->roas.publish(
        rpki::Roa(prefix, roa_asn, rpki::production_tal(plan.rir)),
        plan.sign_date);
  }
}

std::string Generator::sbl_text(const DropPlan& plan, int index) const {
  const std::string asn = plan.origin.to_string();
  const std::string cidr = plan.prefix.to_string();
  std::string text;
  if (plan.unclassifiable) {
    return "Suspicious activity observed in this range; investigation "
           "ongoing. Escalated per policy.";
  }
  if (plan.vague_text) {
    return "Spamhaus believes that this IP address range is being used or is "
           "about to be used for the purpose of high volume spam emission.";
  }
  switch (plan.primary) {
    case drop::Category::kHijacked:
      if (plan.forged_irr) {
        text = "Hijacked IP range " + cidr + " announced by stolen " + asn +
               "; route object registered to disguise the theft. Contact "
               "billing@ahostinginc" + std::to_string(index % 7) + ".com";
      } else if (plan.asn_in_sbl) {
        text = "Hijacked netblock " + cidr + ", stolen " + asn +
               ", announced without authorization of the address holder.";
      } else {
        text = "Hijacked netblock " + cidr +
               " obtained by fraud; registry records falsified.";
      }
      break;
    case drop::Category::kSnowshoe:
      if (plan.second_label_hj) {
        text = "Snowshoe IP block on Stolen " + asn +
               " ... james.johnson@networxhosting" +
               std::to_string(index % 5) + ".com";
      } else if (plan.second_label_ks) {
        text = "Register Of Known Spam Operations ... snowshoe range " + cidr;
      } else if (plan.asn_in_sbl) {
        text = "Snowshoe spam range " + cidr + " on " + asn +
               "; dozens of freshly registered domains.";
      } else {
        text = "Snowshoe spam source; wide dispersal of spam senders across " +
               cidr + ".";
      }
      break;
    case drop::Category::kKnownSpamOp:
      text = plan.asn_in_sbl
                 ? "Register Of Known Spam Operations: netblock " + cidr +
                       " under control of spam operation on " + asn + "."
                 : "Register Of Known Spam Operations: " + cidr +
                       " connected with a known spam operation.";
      break;
    case drop::Category::kMaliciousHosting:
      text = plan.asn_in_sbl
                 ? asn + " spammer hosting; ignores all abuse reports."
                 : "Bulletproof spam hosting operation; provider ignores "
                   "complaints for " + cidr + ".";
      break;
    case drop::Category::kUnallocated:
      text = "Unallocated (bogon) netblock " + cidr +
             " announced and used for abuse; no RIR has issued this space.";
      break;
    case drop::Category::kNoRecord:
      break;
  }
  return text;
}

}  // namespace droplens::sim::detail
