#include "sim/event_replayer.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "core/drop_index.hpp"
#include "core/study.hpp"
#include "drop/category.hpp"

namespace droplens::sim {

namespace {

using stream::Event;
using stream::EventType;

void push(std::vector<Event>& out, EventType type, net::Date date,
          const net::Prefix& prefix, uint32_t value = 0, uint8_t aux = 0,
          uint8_t aux2 = 0) {
  Event e;
  e.type = type;
  e.date = date;
  e.prefix = prefix;
  e.value = value;
  e.aux = aux;
  e.aux2 = aux2;
  out.push_back(e);
}

uint8_t category_bits(const drop::CategorySet& categories) {
  uint8_t bits = 0;
  for (drop::Category c : drop::kAllCategories) {
    if (categories.has(c)) bits |= uint8_t{1} << static_cast<int>(c);
  }
  return bits;
}

}  // namespace

EventReplayer::EventReplayer(const World& world) {
  // BGP: one announce per episode, one withdraw when it ends.
  for (const net::Prefix& p : world.fleet.announced_prefixes()) {
    for (const bgp::Episode& e : world.fleet.episodes(p)) {
      const uint32_t origin = e.origin().value();
      push(events_, EventType::kBgpAnnounce, e.range.begin, p, origin);
      if (e.range.end != net::DateRange::unbounded()) {
        push(events_, EventType::kBgpWithdraw, e.range.end, p, origin);
      }
    }
  }

  // RPKI: publish/revoke per record lifetime, all TALs.
  for (const rpki::RoaRecord& r : world.roas.all_records()) {
    const uint32_t asn = r.roa.asn.value();
    const uint8_t maxlen = static_cast<uint8_t>(r.roa.max_length);
    const uint8_t tal = static_cast<uint8_t>(r.roa.tal);
    push(events_, EventType::kRoaAdd, r.lifetime.begin, r.roa.prefix, asn,
         maxlen, tal);
    if (r.lifetime.end != net::DateRange::unbounded()) {
      push(events_, EventType::kRoaRemove, r.lifetime.end, r.roa.prefix, asn,
           maxlen, tal);
    }
  }

  // DROP: every stint asserts the DropIndex entry's whole-history category
  // bits (see header comment); the incident flag rides in aux2.
  core::Study study{world.registry,       world.fleet,
                    world.irr,            world.roas,
                    world.drop,           world.sbl,
                    world.config.window_begin, world.config.window_end};
  core::DropIndex index = core::DropIndex::build(study);
  std::unordered_map<net::Prefix, std::pair<uint8_t, uint8_t>> drop_label;
  for (const core::DropEntry& entry : index.entries()) {
    drop_label[entry.prefix] = {category_bits(entry.categories),
                                entry.incident ? uint8_t{1} : uint8_t{0}};
  }
  for (const drop::Listing& l : world.drop.all_listings()) {
    const auto& [bits, incident] = drop_label.at(l.prefix);
    push(events_, EventType::kDropAdd, l.listed.begin, l.prefix, 0, bits,
         incident);
    if (l.listed.end != net::DateRange::unbounded()) {
      push(events_, EventType::kDropRemove, l.listed.end, l.prefix, 0, bits,
           incident);
    }
  }

  // IRR: route-object registrations and removals.
  for (const irr::Registration& r : world.irr.all_history()) {
    const uint32_t origin = r.object.origin.value();
    push(events_, EventType::kIrrAdd, r.lifetime.begin, r.object.prefix,
         origin);
    if (r.lifetime.end != net::DateRange::unbounded()) {
      push(events_, EventType::kIrrRemove, r.lifetime.end, r.object.prefix,
           origin);
    }
  }

  // RIR delegations: allocation episodes under the whole v4 space.
  for (const rir::Allocation& a : world.registry.history(net::Prefix())) {
    const uint8_t rir = static_cast<uint8_t>(a.rir);
    push(events_, EventType::kDelegationAdd, a.lifetime.begin, a.prefix, 0, 0,
         rir);
    if (a.lifetime.end != net::DateRange::unbounded()) {
      push(events_, EventType::kDelegationRemove, a.lifetime.end, a.prefix, 0,
           0, rir);
    }
  }

  std::sort(events_.begin(), events_.end(), stream::canonical_less);
}

std::span<const stream::Event> EventReplayer::on(net::Date d) const {
  auto lo = std::lower_bound(
      events_.begin(), events_.end(), d,
      [](const Event& e, net::Date day) { return e.date < day; });
  auto hi = std::upper_bound(
      events_.begin(), events_.end(), d,
      [](net::Date day, const Event& e) { return day < e.date; });
  return {lo, hi};
}

}  // namespace droplens::sim
