// Deterministic fault injection for archive ingestion tests and benches.
//
// Real multi-year archives (Firehol DROP snapshots, RouteViews MRT, RIR
// delegation files, RIPE roas.csv, RADb dumps) arrive with truncated files,
// flipped bits, garbage lines, duplicated lines, corrupted headers, and
// missing or out-of-order days. FaultInjector reproduces each of those
// failure modes from a single seed, so recovery properties ("lenient mode
// skips exactly the corrupted records") can be asserted reproducibly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/date.hpp"
#include "sim/rng.hpp"

namespace droplens::sim {

/// The named fault kinds the injector can apply to a single file's bytes.
enum class FaultKind : uint8_t {
  kTruncate,        // cut the file off mid-record
  kBitFlip,         // flip random bits (binary formats)
  kGarbageLines,    // splice in lines of junk (text formats)
  kDuplicateLines,  // repeat existing lines
  kCorruptHeader,   // scramble the first line / magic bytes
};

constexpr FaultKind kAllFaultKinds[] = {
    FaultKind::kTruncate, FaultKind::kBitFlip, FaultKind::kGarbageLines,
    FaultKind::kDuplicateLines, FaultKind::kCorruptHeader,
};

std::string_view to_string(FaultKind kind);

class FaultInjector {
 public:
  /// A date-keyed sequence of snapshot files — the shape of every daily
  /// archive the pipeline ingests.
  using DailyArchive = std::vector<std::pair<net::Date, std::string>>;

  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  // --- single-file faults -------------------------------------------------

  /// Drop a random non-empty suffix (keeps at least one byte, cuts at
  /// least one, so the result is always a proper truncation).
  std::string truncate(std::string_view input);

  /// Flip `flips` random bits.
  std::string flip_bits(std::string_view input, int flips = 8);

  /// Splice `lines` junk lines at random line boundaries. The junk is
  /// guaranteed unparsable by every droplens text parser (and is not a
  /// comment), so each line costs lenient mode exactly one skip.
  std::string garbage_lines(std::string_view input, int lines = 4);

  /// Repeat `dups` randomly chosen existing lines immediately after their
  /// original — the classic double-write archive defect.
  std::string duplicate_lines(std::string_view input, int dups = 4);

  /// Overwrite the first line (or the first 8 bytes, when the input has no
  /// newline) with junk.
  std::string corrupt_header(std::string_view input);

  /// Apply one named fault at its default intensity.
  std::string apply(FaultKind kind, std::string_view input);

  // --- archive-level faults ----------------------------------------------

  /// Remove `n` randomly chosen days (all when n >= size). Returns the
  /// removed dates in ascending order.
  std::vector<net::Date> drop_days(DailyArchive& days, int n);

  /// Shuffle the snapshot order — archives are not always date-sorted.
  void shuffle_days(DailyArchive& days);

 private:
  Rng rng_;
};

}  // namespace droplens::sim
