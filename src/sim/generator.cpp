#include "sim/generator.hpp"

#include <algorithm>

#include "rpki/as0_policy.hpp"
#include "sim/generator_impl.hpp"
#include "util/error.hpp"

namespace droplens::sim {

std::unique_ptr<World> generate(const ScenarioConfig& config) {
  return detail::Generator(config).run();
}

namespace detail {

// ---------------------------------------------------------------------------
// BlockAllocator

namespace {

// Curated /8 lists per RIR, loosely following the IANA IPv4 map. The
// hardcoded case-study blocks (132/8, 187/8, 191/8, 200/8 LACNIC; 45/8,
// 47/8, 48/8, 52/8) are deliberately absent — the generator administers
// those explicitly.
const std::vector<uint32_t> kAfrinicBases = {41, 102, 154, 196, 197};
const std::vector<uint32_t> kApnicBases = {
    1,   14,  27,  36,  39,  42,  43,  49,  58,  59,  60,  61,  101, 103,
    106, 110, 111, 112, 113, 114, 115, 116, 117, 118, 119, 120, 121, 122,
    123, 124, 125, 126, 133, 150, 153, 163, 171, 175, 180, 182, 183, 202,
    203, 210, 211, 218, 219, 220, 221, 222};
const std::vector<uint32_t> kArinBases = {
    3,   4,   6,   7,   8,   9,   11,  12,  13,  15,  16,  17,  18,  19,
    20,  21,  22,  26,  28,  29,  30,  32,  33,  34,  35,
    44,  50,  64,  65,  66,  67,  68,  69,  70,  71,  72,  73,  74,
    75,  76,  96,  97,  98,  99,  100, 104, 107, 108, 128, 129, 130, 131,
    134, 135, 136, 137, 138, 139, 140, 142, 143, 144, 146, 147, 148, 149,
    152, 155, 156, 157, 158, 159, 160, 161, 162, 164, 165, 166, 167, 168,
    169, 170, 172, 173, 174, 184, 192, 198, 199, 204, 205, 206, 207, 208,
    209, 214, 215, 216};
const std::vector<uint32_t> kLacnicBases = {177, 179, 181, 189, 190,
                                            201, 24,  38,  40,  63};
const std::vector<uint32_t> kRipeBases = {
    2,  5,  25, 31, 37, 46, 51, 57,  62,  77,  78,  79,  80,  81,
    82, 83, 84, 85, 86, 87, 88,  89,  90,  91,  92,  93,  94,  95,
    109, 141, 145, 151, 176, 178, 185, 193, 194, 195, 212, 213, 217};
// Dedicated pool /8s (free-pool space; never handed out by take()).
const std::array<uint32_t, 5> kPoolBases = {105, 223, 23, 186, 188};

size_t idx(rir::Rir r) { return static_cast<size_t>(r); }

const std::vector<uint32_t>& bases_for(rir::Rir r) {
  switch (r) {
    case rir::Rir::kAfrinic: return kAfrinicBases;
    case rir::Rir::kApnic: return kApnicBases;
    case rir::Rir::kArin: return kArinBases;
    case rir::Rir::kLacnic: return kLacnicBases;
    case rir::Rir::kRipe: return kRipeBases;
  }
  return kArinBases;
}

}  // namespace

BlockAllocator::BlockAllocator(rir::Registry& registry) : registry_(registry) {
  for (rir::Rir r : rir::kAllRirs) {
    Cursor& cur = general_[idx(r)];
    cur.bases = bases_for(r);
    cur.next = uint64_t{cur.bases[0]} << 24;
  }
}

uint64_t BlockAllocator::grab(Cursor& cur, uint64_t size) {
  while (true) {
    uint64_t base = uint64_t{cur.bases[cur.base_idx]} << 24;
    uint64_t aligned = (cur.next + size - 1) / size * size;
    if (aligned + size <= base + (uint64_t{1} << 24)) {
      cur.next = aligned + size;
      return aligned;
    }
    if (++cur.base_idx >= cur.bases.size()) {
      throw InvariantError(
          "BlockAllocator: RIR space exhausted (cursor at " +
          net::Ipv4(static_cast<uint32_t>(cur.next)).to_string() + ")");
    }
    cur.next = uint64_t{cur.bases[cur.base_idx]} << 24;
  }
}

net::Prefix BlockAllocator::carve(Cursor& cur, int len) {
  uint64_t size = uint64_t{1} << (32 - len);
  if (len <= 16) {
    return net::Prefix(net::Ipv4(static_cast<uint32_t>(grab(cur, size))), len);
  }
  // Small blocks come from per-length lanes over /16 granules.
  Cursor::Lane& lane = cur.lanes[static_cast<size_t>(len)];
  if (lane.next + size > lane.end) {
    lane.next = grab(cur, uint64_t{1} << 16);
    lane.end = lane.next + (uint64_t{1} << 16);
  }
  uint64_t at = lane.next;
  lane.next += size;
  return net::Prefix(net::Ipv4(static_cast<uint32_t>(at)), len);
}

net::Prefix BlockAllocator::take(rir::Rir rir, int len) {
  net::Prefix p = carve(general_[idx(rir)], len);
  registry_.administer(rir, p);
  return p;
}

void BlockAllocator::setup_pool(rir::Rir rir, uint64_t addresses) {
  Pool& pool = pools_[idx(rir)];
  pool.base = uint64_t{kPoolBases[idx(rir)]} << 24;
  pool.top = pool.base + addresses;
  pool.drain_next = pool.base;
  pool.squat_next = pool.top;
  for (const net::Prefix& p : net::cidr_cover(pool.base, pool.top)) {
    registry_.administer(rir, p);
  }
}

net::Prefix BlockAllocator::take_from_pool(rir::Rir rir, int len) {
  Pool& pool = pools_[idx(rir)];
  uint64_t size = uint64_t{1} << (32 - len);
  uint64_t aligned = (pool.drain_next + size - 1) / size * size;
  if (aligned + size > pool.squat_next) {
    throw InvariantError("BlockAllocator: pool exhausted");
  }
  pool.drain_next = aligned + size;
  return net::Prefix(net::Ipv4(static_cast<uint32_t>(aligned)), len);
}

uint64_t BlockAllocator::pool_headroom(rir::Rir rir) const {
  const Pool& pool = pools_[idx(rir)];
  return pool.squat_next > pool.drain_next
             ? pool.squat_next - pool.drain_next
             : 0;
}

net::Prefix BlockAllocator::squat_in_pool(rir::Rir rir, int len) {
  Pool& pool = pools_[idx(rir)];
  uint64_t size = uint64_t{1} << (32 - len);
  uint64_t start = (pool.squat_next - size) / size * size;
  if (start < pool.drain_next) {
    throw InvariantError("BlockAllocator: pool exhausted (squat)");
  }
  pool.squat_next = start;
  return net::Prefix(net::Ipv4(static_cast<uint32_t>(start)), len);
}

// ---------------------------------------------------------------------------
// AsnPlan

AsnPlan::AsnPlan(Rng& rng) {
  transits_.reserve(40);
  for (int i = 0; i < 40; ++i) {
    transits_.emplace_back(static_cast<uint32_t>(2000 + i));
  }
  (void)rng;
}

void AsnPlan::set_hijacker_count(int n) {
  hijackers_.clear();
  for (int i = 0; i < n; ++i) {
    hijackers_.emplace_back(static_cast<uint32_t>(61000 + 7 * i));
  }
}

// ---------------------------------------------------------------------------
// Generator

Generator::Generator(const ScenarioConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), w_(std::make_unique<World>()),
      blocks_(w_->registry), asns_(rng_) {
  w_->config = cfg;
  asns_.set_hijacker_count(cfg.hijacking_asn_count);
}

std::unique_ptr<World> Generator::run() {
  setup_fleet();
  setup_pools();
  gen_presigned();
  gen_mega_holders();
  gen_background_unsigned();
  gen_pool_drain();
  gen_drop_population();
  if (cfg_.include_case_study) {
    gen_case_study();
    gen_operator_as0_case();
  }
  gen_attacker_controlled_roas();
  gen_bogons();
  run_as0_policies();
  return std::move(w_);
}

net::Date Generator::pre_window_date(int min_years_back, int max_years_back) {
  int back = static_cast<int>(
      rng_.range(365L * min_years_back, 365L * max_years_back));
  net::Date d = cfg_.window_begin - back;
  return d < cfg_.history_begin ? cfg_.history_begin : d;
}

net::Date Generator::in_window_date(int margin_end) {
  int32_t span = cfg_.window_end - cfg_.window_begin - margin_end;
  if (span < 1) span = 1;
  return cfg_.window_begin + static_cast<int32_t>(rng_.below(span));
}

rir::Rir Generator::pick_rir(const std::array<double, 5>& weights) {
  std::vector<double> w(weights.begin(), weights.end());
  return static_cast<rir::Rir>(rng_.weighted(w));
}

void Generator::announce_simple(const net::Prefix& p, net::Asn origin,
                                net::Asn transit, net::Date begin,
                                net::Date end) {
  w_->fleet.announce(p, bgp::AsPath{transit, origin},
                     net::DateRange{begin, end});
}

void Generator::setup_fleet() {
  for (int c = 0; c < cfg_.collectors; ++c) {
    w_->fleet.add_collector("route-views" + std::to_string(c));
  }
  const drop::DropList* drop_list = &w_->drop;
  for (int i = 0; i < cfg_.full_table_peers; ++i) {
    uint32_t collector = static_cast<uint32_t>(i % cfg_.collectors);
    net::Asn asn = asns_.fresh_operator();
    bgp::RejectPolicy reject = nullptr;
    bool filters = i < cfg_.drop_filtering_peers;
    if (filters) {
      // §4.1: three peers whose operators filter DROP-listed prefixes.
      reject = [drop_list](const net::Prefix& p, net::Date d) {
        return drop_list->covered_on(p, d);
      };
    }
    bgp::PeerId id = w_->fleet.add_peer(collector, asn, /*full_table=*/true,
                                        std::move(reject),
                                        "peer" + std::to_string(i));
    if (filters) w_->truth.drop_filtering_peers.push_back(id);
  }
}

void Generator::setup_pools() {
  for (rir::Rir r : rir::kAllRirs) {
    blocks_.setup_pool(r, cfg_.free_pool_start[static_cast<size_t>(r)]);
  }
}

uint64_t Generator::background_prefix(rir::Rir rir, int len, bool presign,
                                      bool withdraw_mid_window) {
  net::Prefix p = blocks_.take(rir, len);
  net::Date allocated = pre_window_date(1, 15);
  w_->registry.allocate(p, rir, "org-" + std::to_string(p.network().value()),
                        allocated);
  net::Asn origin = asns_.fresh_operator();
  net::Date announce_begin = allocated + static_cast<int32_t>(rng_.below(90));
  net::Date announce_end = net::DateRange::unbounded();
  if (withdraw_mid_window) {
    announce_end = in_window_date(30) + 15;
  }
  net::Asn transit = asns_.transit(rng_);
  announce_simple(p, origin, transit, announce_begin, announce_end);
  if (presign) {
    net::Date signed_on = announce_begin + static_cast<int32_t>(rng_.below(365));
    if (signed_on >= cfg_.window_begin) signed_on = cfg_.window_begin - 1;
    int max_length = maxlength_for(p, origin, transit, announce_begin,
                                   announce_end, /*may_cover_subs=*/true);
    w_->roas.publish(
        rpki::Roa(p, origin, rpki::production_tal(rir), max_length),
        signed_on);
  }
  return p.size();
}

int Generator::maxlength_for(const net::Prefix& p, net::Asn origin,
                             net::Asn transit, net::Date begin, net::Date end,
                             bool may_cover_subs) {
  // §2.3 / Gilad et al.: a slice of operator ROAs carry maxLength. Most of
  // those are vulnerable to forged-origin sub-prefix hijacks because the
  // owner does not announce every covered more-specific; the protected
  // minority announce all their /maxLength sub-prefixes (modeled only for
  // the pre-signed population so the Table 1 denominators stay clean —
  // 0.34 here combines with the in-window signers to land at the ~84%
  // overall vulnerable rate the CoNEXT'17 study measured).
  if (p.length() > 22 || !rng_.chance(cfg_.maxlength_roa_rate)) return 0;
  bool vulnerable = !may_cover_subs || rng_.chance(0.34) ||
                    cfg_.maxlength_vulnerable_rate >= 0.999;
  if (vulnerable) {
    return std::min(24, p.length() + static_cast<int>(rng_.range(2, 6)));
  }
  int max_length = p.length() + 1;
  for (int b = 0; b < 2; ++b) {
    announce_simple(p.child(b), origin, transit, begin, end);
  }
  return max_length;
}

void Generator::gen_presigned() {
  // Signed-and-routed space at window start (Fig 5's 49.1 /8s, less the
  // signed-unrouted organizations), plus signed space that goes unrouted
  // during the window.
  const LengthDist dist{{14, 15, 16, 17, 18, 19, 20},
                        {0.05, 0.10, 0.25, 0.20, 0.20, 0.12, 0.08}};
  // Weighted so no RIR's curated /8 list is over-subscribed once the
  // unsigned background population (Table 1 counts) is added on top.
  const std::array<double, 5> rir_weights = {0.03, 0.33, 0.47, 0.02, 0.15};
  uint64_t target =
      static_cast<uint64_t>(cfg_.presigned_space_slash8 * (1 << 24));
  uint64_t made = 0;
  size_t count = 0;
  while (made < target) {
    made += background_prefix(pick_rir(rir_weights), dist.sample(rng_),
                              /*presign=*/true, /*withdraw=*/false);
    ++count;
  }
  // Signed space that becomes unrouted mid-window (Fig 5's growing
  // signed-unrouted series beyond the named organizations).
  uint64_t unrouted_target =
      static_cast<uint64_t>(cfg_.signed_goes_unrouted_slash8 * (1 << 24));
  made = 0;
  while (made < unrouted_target) {
    made += background_prefix(pick_rir(rir_weights), dist.sample(rng_),
                              /*presign=*/true, /*withdraw=*/true);
    ++count;
  }
  w_->truth.presigned_prefixes = count;
}

void Generator::gen_mega_holders() {
  net::Date long_ago = net::Date::from_ymd(2005, 6, 1);

  // Prudential (§6.2.1): one unrouted /8-equivalent, ARIN legacy, signed
  // before the window, never announced.
  {
    uint64_t size = static_cast<uint64_t>(cfg_.prudential_slash8 * (1 << 24));
    net::Prefix p = net::cidr_cover(uint64_t{48} << 24,
                                    (uint64_t{48} << 24) + size)[0];
    w_->registry.administer(rir::Rir::kArin, p);
    w_->registry.allocate(p, rir::Rir::kArin, "Prudential Insurance",
                          long_ago, "US");
    w_->roas.publish(rpki::Roa(p, net::Asn(100), rpki::Tal::kArin),
                     net::Date::from_ymd(2018, 3, 1));
  }
  // Alibaba (§6.2.1): 0.64 /8s, APNIC, signed pre-window, unrouted.
  {
    uint64_t base = uint64_t{47} << 24;
    uint64_t size = static_cast<uint64_t>(cfg_.alibaba_slash8 * (1 << 24));
    for (const net::Prefix& p : net::cidr_cover(base, base + size)) {
      w_->registry.administer(rir::Rir::kApnic, p);
      w_->registry.allocate(p, rir::Rir::kApnic, "Alibaba", long_ago, "CN");
      w_->roas.publish(rpki::Roa(p, net::Asn(134963), rpki::Tal::kApnic),
                       net::Date::from_ymd(2019, 1, 15));
    }
  }
  // Amazon (§6.2.1 and the labeled event in Fig 5): signs routed + unrouted
  // space on one day in September 2020.
  {
    uint64_t base = uint64_t{52} << 24;
    uint64_t routed =
        static_cast<uint64_t>(cfg_.amazon_routed_slash8 * (1 << 24));
    uint64_t unrouted =
        static_cast<uint64_t>(cfg_.amazon_unrouted_slash8 * (1 << 24));
    net::Asn amazon_asn(16509);
    for (const net::Prefix& p : net::cidr_cover(base, base + routed)) {
      w_->registry.administer(rir::Rir::kArin, p);
      w_->registry.allocate(p, rir::Rir::kArin, "Amazon", long_ago, "US");
      announce_simple(p, amazon_asn, asns_.transit(rng_),
                      net::Date::from_ymd(2012, 1, 1),
                      net::DateRange::unbounded());
      w_->roas.publish(rpki::Roa(p, amazon_asn, rpki::Tal::kArin),
                       cfg_.amazon_roa_date);
    }
    for (const net::Prefix& p :
         net::cidr_cover(base + routed, base + routed + unrouted)) {
      w_->registry.administer(rir::Rir::kArin, p);
      w_->registry.allocate(p, rir::Rir::kArin, "Amazon", long_ago, "US");
      w_->roas.publish(rpki::Roa(p, amazon_asn, rpki::Tal::kArin),
                       cfg_.amazon_roa_date);
    }
  }
  // Allocated, unrouted, never signed (Fig 5: 29.2 /8s at start, ARIN-heavy
  // per §6.1's 60.8%). Modeled as a handful of large legacy holders.
  {
    uint64_t total = static_cast<uint64_t>(
        cfg_.unrouted_unsigned_start_slash8 * (1 << 24));
    uint64_t arin_part = static_cast<uint64_t>(
        static_cast<double>(total) * cfg_.unrouted_unsigned_arin_share);
    struct Part { rir::Rir rir; double share; const char* holder; };
    const Part rest[] = {
        {rir::Rir::kAfrinic, 0.08, "Legacy-AF"},
        {rir::Rir::kApnic, 0.62, "Legacy-AP"},
        {rir::Rir::kLacnic, 0.10, "Legacy-LA"},
        {rir::Rir::kRipe, 0.20, "Legacy-EU"},
    };
    auto plant = [&](rir::Rir r, uint64_t amount, const std::string& holder) {
      while (amount > 0) {
        int len = amount >= (uint64_t{1} << 24) ? 8 : 12;
        if (amount < (uint64_t{1} << 20)) len = 16;
        net::Prefix p = blocks_.take(r, len);
        w_->registry.allocate(p, r, holder, long_ago);
        amount = amount > p.size() ? amount - p.size() : 0;
      }
    };
    plant(rir::Rir::kArin, arin_part, "US-DoD-Legacy");
    for (const Part& part : rest) {
      plant(part.rir,
            static_cast<uint64_t>(
                static_cast<double>(total - arin_part) * part.share),
            part.holder);
    }
  }
}

void Generator::gen_background_unsigned() {
  // Table 1 column 1: the unsigned routed population per RIR, which signs
  // at the base rate during the window. A slice of it withdraws mid-window
  // without signing (the unrouted-unsigned growth in Fig 5).
  const LengthDist dist{{17, 18, 19, 20, 21, 22},
                        {0.03, 0.09, 0.35, 0.29, 0.13, 0.11}};
  uint64_t withdraw_budget = static_cast<uint64_t>(
      cfg_.unrouted_unsigned_growth_slash8 * (1 << 24));
  size_t count = 0;
  for (rir::Rir r : rir::kAllRirs) {
    size_t i_r = static_cast<size_t>(r);
    int n = cfg_.unsigned_background[i_r];
    double sign_rate = cfg_.base_signing_rate[i_r];
    for (int i = 0; i < n; ++i) {
      int len = dist.sample(rng_);
      net::Prefix p = blocks_.take(r, len);
      net::Date allocated = pre_window_date(1, 15);
      w_->registry.allocate(
          p, r, "org-" + std::to_string(p.network().value()), allocated);
      net::Asn origin = asns_.fresh_operator();
      bool withdraws = false;
      if (withdraw_budget > 0 && rng_.chance(0.05)) {
        withdraws = true;
        withdraw_budget =
            withdraw_budget > p.size() ? withdraw_budget - p.size() : 0;
      }
      net::Date end = withdraws ? in_window_date(30)
                                : net::DateRange::unbounded();
      announce_simple(p, origin, asns_.transit(rng_),
                      allocated + static_cast<int32_t>(rng_.below(90)), end);
      if (!withdraws && rng_.chance(sign_rate)) {
        int max_length =
            maxlength_for(p, origin, net::Asn(), net::Date(), net::Date(),
                          /*may_cover_subs=*/false);
        w_->roas.publish(
            rpki::Roa(p, origin, rpki::production_tal(r), max_length),
            in_window_date());
      }
      ++count;
    }
  }
  w_->truth.background_unsigned_prefixes = count;
}

void Generator::gen_pool_drain() {
  // RIRs keep allocating from their pools during the window (Fig 7's
  // downward slopes). Blocks are /20s handed out at a steady monthly rate.
  for (rir::Rir r : rir::kAllRirs) {
    size_t i_r = static_cast<size_t>(r);
    uint64_t drain = static_cast<uint64_t>(
        static_cast<double>(cfg_.free_pool_start[i_r]) * cfg_.pool_drain[i_r]);
    int months = (cfg_.window_end - cfg_.window_begin) / 30;
    uint64_t per_month = drain / static_cast<uint64_t>(months);
    // Block size adapts to the drain rate so even tiny (test-scale) pools
    // shrink visibly: prefer /20s, fall back to smaller blocks.
    int len = 20;
    while (len < 24 && (uint64_t{1} << (32 - len)) > per_month) ++len;
    uint64_t block = uint64_t{1} << (32 - len);
    uint64_t backlog = 0;
    for (int m = 0; m < months; ++m) {
      net::Date when = cfg_.window_begin + m * 30 +
                       static_cast<int32_t>(rng_.below(28));
      backlog += per_month;
      while (backlog >= block) {
        backlog -= block;
        net::Prefix p = blocks_.take_from_pool(r, len);
        w_->registry.allocate(
            p, r, "neworg-" + std::to_string(p.network().value()), when);
        announce_simple(p, asns_.fresh_operator(), asns_.transit(rng_),
                        when + static_cast<int32_t>(rng_.below(30)),
                        net::DateRange::unbounded());
      }
    }
  }
}

void Generator::gen_bogons() {
  // §6.2.2: announced-but-unallocated prefixes alive at the end of the
  // window, not on DROP — the ~30 routes per peer an AS0 TAL would reject.
  const std::array<double, 5> weights = {0.2, 0.35, 0.05, 0.35, 0.05};
  for (int i = 0; i < cfg_.background_bogons; ++i) {
    rir::Rir r = pick_rir(weights);
    net::Prefix p = blocks_.squat_in_pool(r, 22);
    net::Date begin = in_window_date(60);
    announce_simple(p, asns_.fresh_operator(), asns_.transit(rng_), begin,
                    net::DateRange::unbounded());
    w_->truth.background_bogons.push_back(p);
  }
}

void Generator::run_as0_policies() {
  // APNIC and LACNIC sync AS0 ROAs against their free pools monthly from
  // their policy dates (§2.3.1).
  rpki::As0PolicyEngine engine(w_->registry, w_->roas);
  for (net::Date d = cfg_.window_begin; d < cfg_.window_end; d += 30) {
    engine.sync_all(d);
  }
  engine.sync_all(cfg_.window_end);
}

}  // namespace detail
}  // namespace droplens::sim
