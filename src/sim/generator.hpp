// Scenario generator: builds a World from a ScenarioConfig.
#pragma once

#include <memory>

#include "sim/scenario.hpp"
#include "sim/world.hpp"

namespace droplens::sim {

/// Generate the synthetic Internet. Deterministic in `config.seed`.
std::unique_ptr<World> generate(const ScenarioConfig& config);

}  // namespace droplens::sim
