// Full-table-magnitude world generator.
//
// The scenario generator (sim/generator.hpp) reproduces the paper's world:
// ~712 DROP prefixes, hundreds of announced prefixes, 244 KB snapshots. The
// ROADMAP north-star is the real Internet — ~1M routed prefixes — where the
// data plane's behaviour changes qualitatively (the lookup arrays outgrow
// cache). generate_scale() builds that world: it streams the unicast
// address space in increasing address order, carving aligned /16–/24
// prefixes with deterministic gaps, and plants every substrate the query
// service compiles (announcements, ROAs with a controlled invalid rate, IRR
// route objects, DROP listings, RIR administration and allocations).
//
// Streaming in address order is load-bearing, not cosmetic: every
// downstream consumer (IntervalSet::insert, the IRR history walk, the ROV
// paint) appends at the back of its structure, so fixture construction
// stays O(n log n) and in memory budget at millions of prefixes — inserting
// in random order would quadratically memmove the interval arrays.
//
// Deterministic in `seed`: same config, same World, byte for byte.
#pragma once

#include <memory>

#include "sim/world.hpp"

namespace droplens::sim {

struct ScaleConfig {
  uint64_t seed = 42;
  /// Announced prefixes to carve; >=1M is full-table magnitude.
  size_t routed_prefixes = 1'000'000;
  double gap_rate = 0.5;       // chance of unrouted space after each prefix
  double signed_rate = 0.35;   // fraction of prefixes with a covering ROA
  double invalid_rate = 0.05;  // of signed: ROA origin mismatches the route
  double irr_rate = 0.25;      // fraction with a live IRR route object
  size_t drop_entries = 4096;  // DROP listings spread over the routed space
  /// The snapshot date the scale tier compiles; the window extends 30 days
  /// to each side.
  net::Date day = net::Date::from_ymd(2022, 1, 15);
};

/// Generate the full-table World. Throws InvariantError if the requested
/// prefix count cannot be carved from the unicast space.
std::unique_ptr<World> generate_scale(const ScaleConfig& config);

}  // namespace droplens::sim
