// Internal machinery of the scenario generator. Not part of the public API.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "net/asn.hpp"
#include "net/cidr_cover.hpp"
#include "net/date.hpp"
#include "net/prefix.hpp"
#include "sim/generator.hpp"
#include "sim/rng.hpp"
#include "sim/world.hpp"

namespace droplens::sim::detail {

/// Hands out non-overlapping, CIDR-aligned address blocks per RIR from
/// curated lists of /8s, administering exactly what it hands out. Pool
/// space (the RIR free pools) lives in dedicated /8s so that unallocated
/// space stays cleanly separated from allocated space.
class BlockAllocator {
 public:
  explicit BlockAllocator(rir::Registry& registry);

  /// Next free aligned block of 2^(32-len) addresses in `rir` general
  /// space; administers it. Does NOT allocate it to a holder.
  net::Prefix take(rir::Rir rir, int len);

  /// Set up the RIR's free pool: administer `addresses` worth of space in
  /// the pool /8 starting at its base. Must be called once per RIR.
  void setup_pool(rir::Rir rir, uint64_t addresses);

  /// Carve a block of the pool for an in-window allocation (pool drain).
  /// Walks upward from the pool base.
  net::Prefix take_from_pool(rir::Rir rir, int len);

  /// Carve a block from the TOP of the pool — space that will never be
  /// allocated (used for unallocated squatters and bogons).
  net::Prefix squat_in_pool(rir::Rir rir, int len);

  /// Unclaimed pool space remaining between the drain and squat cursors.
  uint64_t pool_headroom(rir::Rir rir) const;

 private:
  struct Cursor {
    std::vector<uint32_t> bases;  // /8 network addresses
    size_t base_idx = 0;
    uint64_t next = 0;  // absolute address of the next free address
    // Per-length lanes for blocks smaller than a /16: each lane consumes
    // whole /16 granules from the shared cursor, so mixing block sizes does
    // not fragment the /8s (alignment waste nearly bankrupted small RIRs).
    struct Lane {
      uint64_t next = 0;
      uint64_t end = 0;
    };
    std::array<Lane, 33> lanes{};
  };

  net::Prefix carve(Cursor& cur, int len);
  uint64_t grab(Cursor& cur, uint64_t size);  // size-aligned shared carve

  rir::Registry& registry_;
  std::array<Cursor, 5> general_;
  // Pool state: [base, top) administered; drain moves `drain_next` up,
  // squatters move `squat_next` down.
  struct Pool {
    uint64_t base = 0;
    uint64_t top = 0;
    uint64_t drain_next = 0;
    uint64_t squat_next = 0;
  };
  std::array<Pool, 5> pools_;
};

/// ASN handout plan. Operator ASNs are sequential from a high base so the
/// hardcoded case-study ASNs (AS50509, AS263692, ...) never collide.
class AsnPlan {
 public:
  explicit AsnPlan(Rng& rng);

  net::Asn fresh_operator() { return net::Asn(next_operator_++); }
  net::Asn transit(Rng& rng) {
    return transits_[rng.below(transits_.size())];
  }
  /// The paper's 13 distinct hijacking ASNs seen in forged route objects.
  const std::vector<net::Asn>& hijacking_asns() const { return hijackers_; }

  void set_hijacker_count(int n);

 private:
  uint32_t next_operator_ = 100000;
  std::vector<net::Asn> transits_;
  std::vector<net::Asn> hijackers_;
};

/// Weighted prefix-length sampler.
struct LengthDist {
  std::vector<int> lengths;
  std::vector<double> weights;

  int sample(Rng& rng) const { return lengths[rng.weighted(weights)]; }
};

/// Everything one DROP entry needs before it is written into the data sets.
struct DropPlan {
  net::Prefix prefix;
  rir::Rir rir = rir::Rir::kArin;
  bool allocated = true;       // false for UA prefixes
  drop::Category primary = drop::Category::kHijacked;
  bool second_label_ks = false;  // snowshoe prefixes with a 2nd keyword
  bool second_label_hj = false;
  bool no_record = false;      // NR: record deleted after remediation
  bool vague_text = false;     // App. A: inference-only wording
  bool unclassifiable = false;
  net::Date listed;
  bool removed = false;
  net::Date removed_on;
  bool announced = true;
  net::Asn origin;             // BGP origin at listing time
  net::Asn transit;
  net::Date announce_begin;
  double withdraw_rate = 0;    // category withdrawal probability (quota'd)
  bool withdrawn_30d = false;
  net::Date announce_end = net::DateRange::unbounded();
  bool asn_in_sbl = false;     // record names a malicious ASN
  bool deallocated = false;
  net::Date dealloc_date;
  // IRR
  bool forged_irr = false;     // §5's 57: hijacker ASN in the route object
  bool legit_irr = false;
  net::Date irr_created;
  bool irr_removed_after = false;
  std::string irr_org;
  bool irr_preexisting = false;  // an old owner object exists too
  // RPKI
  bool signs_after = false;    // gets a ROA between listing and window end
  net::Date sign_date;
  bool sign_same_asn = false;
  bool signed_before_listing = false;  // §6.1's attacker-controlled ROAs
};

class Generator {
 public:
  explicit Generator(const ScenarioConfig& cfg);

  std::unique_ptr<World> run();

 private:
  // generator.cpp
  void setup_fleet();
  void setup_pools();
  void gen_presigned();
  void gen_mega_holders();
  void gen_background_unsigned();
  void gen_pool_drain();
  void gen_bogons();
  void run_as0_policies();

  // gen_drop.cpp
  void gen_drop_population();
  std::vector<DropPlan> plan_drop_entries();
  void plan_category(std::vector<DropPlan>& plans, drop::Category cat,
                     int count);
  void plan_incidents(std::vector<DropPlan>& plans);
  void assign_forged_irr(std::vector<DropPlan>& plans);
  void apply_quotas(std::vector<DropPlan>& plans);
  void realize(DropPlan& plan, int index);
  std::string sbl_text(const DropPlan& plan, int index) const;

  // gen_case_study.cpp
  void gen_case_study();
  void gen_attacker_controlled_roas();
  void gen_operator_as0_case();

  // helpers (generator.cpp)
  net::Date pre_window_date(int min_years_back = 1, int max_years_back = 12);
  net::Date in_window_date(int margin_end = 0);
  rir::Rir pick_rir(const std::array<double, 5>& weights);
  void announce_simple(const net::Prefix& p, net::Asn origin, net::Asn transit,
                       net::Date begin, net::Date end);
  /// Allocate + announce + maybe pre-sign one background prefix; returns
  /// space consumed.
  uint64_t background_prefix(rir::Rir rir, int len, bool presign,
                             bool withdraw_mid_window);
  /// Decide a ROA's maxLength (0 = none); for the non-vulnerable minority
  /// announces the covered sub-prefixes too.
  int maxlength_for(const net::Prefix& p, net::Asn origin, net::Asn transit,
                    net::Date begin, net::Date end, bool may_cover_subs);

  ScenarioConfig cfg_;
  Rng rng_;
  std::unique_ptr<World> w_;
  BlockAllocator blocks_;
  AsnPlan asns_;
  int sbl_counter_ = 300000;
};

}  // namespace droplens::sim::detail
