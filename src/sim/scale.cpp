#include "sim/scale.hpp"

#include <bit>
#include <string>

#include "net/asn.hpp"
#include "rpki/roa.hpp"
#include "sim/rng.hpp"
#include "util/error.hpp"

namespace droplens::sim {

namespace {

// Unicast-ish carving range: first octets 1..223.
constexpr uint64_t kSpaceBegin = uint64_t{1} << 24;
constexpr uint64_t kSpaceEnd = uint64_t{223} << 24;

rir::Rir rir_for_octet(uint32_t octet) {
  return rir::kAllRirs[octet % rir::kAllRirs.size()];
}

// Prefix length distribution, roughly a real table's /24-heavy shape.
int pick_length(Rng& rng) {
  const uint64_t r = rng.below(100);
  if (r < 60) return 24;
  if (r < 80) return 23;
  if (r < 90) return 22;
  if (r < 96) return 21;
  return 20;
}

}  // namespace

std::unique_ptr<World> generate_scale(const ScaleConfig& config) {
  auto world = std::make_unique<World>();
  world->config.seed = config.seed;
  world->config.window_begin = config.day - 30;
  world->config.window_end = config.day + 30;
  const net::Date wb = world->config.window_begin;
  const net::Date we = world->config.window_end;

  // RIR plane: every first-octet /8 is administered; the lower half of each
  // is a live allocation, so rir_status exercises all three answers
  // (allocated / free pool / unadministered space past 223.0.0.0).
  for (uint32_t octet = 1; octet < 223; ++octet) {
    const rir::Rir rir = rir_for_octet(octet);
    const net::Prefix block(net::Ipv4(octet << 24), 8);
    world->registry.administer(rir, block);
    world->registry.allocate(net::Prefix(net::Ipv4(octet << 24), 9), rir,
                             "SCALE-HOLDER-" + std::to_string(octet), wb - 100);
  }

  world->fleet.add_collector("scale-rrc00");
  world->fleet.add_peer(0, net::Asn(65001), /*full_table=*/true);

  Rng rng(config.seed);
  const net::DateRange lifetime{wb, we};
  const size_t drop_stride =
      config.drop_entries
          ? std::max<size_t>(1, config.routed_prefixes / config.drop_entries)
          : 0;

  // Stream the space in increasing address order (see header). All index
  // math is uint64: at full-table magnitude the cursor and every derived
  // count are far past what 32-bit arithmetic survives.
  uint64_t cursor = kSpaceBegin;
  size_t drop_added = 0;
  for (size_t made = 0; made < config.routed_prefixes; ++made) {
    // Carve an aligned prefix at the cursor; the cursor is always at least
    // /24-aligned, so lengthening to the alignment always terminates.
    int len = pick_length(rng);
    const int max_len_for_alignment =
        32 - std::countr_zero(cursor | (uint64_t{1} << 24));
    if (len < max_len_for_alignment) len = max_len_for_alignment;
    const uint64_t size = uint64_t{1} << (32 - len);
    if (cursor + size > kSpaceEnd) {
      throw InvariantError(
          "sim: scale generator exhausted the unicast space at " +
          std::to_string(made) + " prefixes");
    }
    const net::Prefix prefix(net::Ipv4(static_cast<uint32_t>(cursor)), len);
    cursor += size;

    const net::Asn origin(10'000 + static_cast<uint32_t>(rng.below(50'000)));
    world->fleet.announce(
        prefix,
        bgp::AsPath{net::Asn(64'500 + static_cast<uint32_t>(rng.below(1'000))),
                    origin},
        lifetime);

    if (rng.chance(config.signed_rate)) {
      const net::Asn roa_origin = rng.chance(config.invalid_rate)
                                      ? net::Asn(origin.value() + 1)
                                      : origin;
      const int max_length =
          rng.chance(0.2) && len < 24 ? len + 1 : 0;  // 0 = prefix length
      world->roas.publish(
          rpki::Roa(prefix, roa_origin, rpki::Tal::kRipe, max_length),
          wb - 10);
    }
    // Sparse AS0 ROAs so the as0 substrate has full-table-spread entries.
    if (made % 977 == 0) {
      world->roas.publish(
          rpki::Roa(prefix, net::Asn::as0(), rpki::Tal::kApnicAs0), wb - 10);
    }

    if (rng.chance(config.irr_rate)) {
      irr::RouteObject obj;
      obj.prefix = prefix;
      obj.origin = origin;
      obj.maintainer = "MNT-SCALE-" + std::to_string(rng.below(1'000));
      obj.org_id = "ORG-SCALE-" + std::to_string(rng.below(1'000));
      obj.descr = "scale world route object";
      obj.created = wb - 20;
      world->irr.register_object(std::move(obj));
    }

    if (drop_stride && made % drop_stride == 0 &&
        drop_added < config.drop_entries) {
      world->drop.add(prefix, wb);
      ++drop_added;
    }

    if (rng.chance(config.gap_rate)) {
      cursor += (uint64_t{1} << 8) * (1 + rng.below(8));
    }
  }

  return world;
}

}  // namespace droplens::sim
