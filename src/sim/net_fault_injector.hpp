// Hostile-client driver for the serving edge.
//
// Where sim::FaultInjector corrupts archives on disk, NetFaultInjector
// attacks a live listener over TCP with the classic resource-exhaustion
// repertoire — the same class of attack the Stalloris work mounts against
// RPKI relying parties by stalling their network I/O:
//
//   kSlowDrip            feeds a message one byte at a time with seeded
//                        inter-byte delays (slowloris); a hardened server
//                        cuts it off at the read deadline
//   kMidFrameDisconnect  sends a seeded prefix of the message, then closes
//   kPartialWriteStall   sends a seeded prefix of the message, then goes
//                        silent holding the connection open
//   kNeverRead           pipelines `repeats` copies of the message and
//                        never reads a byte back (write-queue saturation)
//   kConnectFlood        opens `clients` connections as fast as possible
//                        and holds them open, sending nothing
//
// The injector is protocol-agnostic: the caller supplies one complete
// message's bytes (a binary query frame, a whois line, an HTTP request),
// so droplens_sim stays free of svc dependencies. All schedules derive
// from the config seed; the report aggregates what the server did to us.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace droplens::sim {

class NetFaultInjector {
 public:
  enum class Profile : uint8_t {
    kSlowDrip,
    kMidFrameDisconnect,
    kPartialWriteStall,
    kNeverRead,
    kConnectFlood,
  };

  struct Config {
    uint16_t port = 0;            ///< target on 127.0.0.1
    uint64_t seed = 1;            ///< drives delays and cut points
    std::string message;          ///< one complete protocol message
    size_t clients = 8;           ///< concurrent hostile clients
    size_t repeats = 4;           ///< messages per client (kNeverRead)
    uint32_t drip_delay_ms = 20;  ///< mean inter-byte delay (kSlowDrip)
    uint32_t duration_ms = 3000;  ///< hard budget; stalled clients give up
  };

  struct Report {
    size_t attempted = 0;         ///< connection attempts
    size_t connected = 0;         ///< three-way handshakes that succeeded
    size_t connect_failures = 0;  ///< refused / reset during connect
    size_t closed_by_server = 0;  ///< EOF/reset observed while still active
    size_t gave_up = 0;           ///< duration budget ran out first
    size_t bytes_sent = 0;
    size_t bytes_received = 0;    ///< typed refusals/timeouts count here
  };

  /// Run one hostile scenario to completion (bounded by duration_ms) and
  /// report. Thread count is capped internally; `clients` beyond the cap
  /// take turns.
  static Report run(Profile profile, const Config& config);
};

}  // namespace droplens::sim
