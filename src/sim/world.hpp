// The synthetic Internet: every data set the paper consumes, plus ground
// truth for tests. Analyses must only read the data sets (registry, fleet,
// irr, roas, drop, sbl) — ground truth exists so tests can check that the
// *analysis* recovers what the *generator* planted, never as an input.
#pragma once

#include <memory>
#include <vector>

#include "bgp/fleet.hpp"
#include "drop/drop_list.hpp"
#include "drop/sbl.hpp"
#include "irr/database.hpp"
#include "net/date.hpp"
#include "net/prefix.hpp"
#include "rir/registry.hpp"
#include "rpki/archive.hpp"
#include "sim/scenario.hpp"

namespace droplens::sim {

struct World {
  ScenarioConfig config;

  rir::Registry registry;
  bgp::CollectorFleet fleet;
  irr::Database irr{"RADB"};
  rpki::RoaArchive roas;
  drop::DropList drop;
  drop::SblDatabase sbl;

  /// What the generator planted (test oracle only).
  struct GroundTruth {
    std::vector<net::Prefix> incident_prefixes;      // two AFRINIC incidents
    std::vector<net::Prefix> forged_irr_prefixes;    // §5's 57
    std::vector<net::Prefix> unallocated_prefixes;   // §6.2.2's 40
    std::vector<net::Prefix> withdrawn_within_30d;
    std::vector<net::Prefix> removed_from_drop;
    std::vector<net::Prefix> signed_before_listing;  // §6.1's 3 HJ prefixes
    net::Prefix case_study_prefix;                   // 132.255.0.0/22
    std::vector<net::Prefix> case_study_siblings;    // Fig 4's other rows
    std::vector<bgp::PeerId> drop_filtering_peers;
    std::vector<net::Prefix> background_bogons;      // announced, unallocated,
                                                     // never listed
    size_t background_unsigned_prefixes = 0;
    size_t presigned_prefixes = 0;
  } truth;

  // Peer reject policies capture `&drop`; the object must never move.
  World() = default;
  World(const World&) = delete;
  World& operator=(const World&) = delete;
  World(World&&) = delete;
  World& operator=(World&&) = delete;
};

}  // namespace droplens::sim
