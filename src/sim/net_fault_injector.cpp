#include "sim/net_fault_injector.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/rng.hpp"

namespace droplens::sim {

namespace {

constexpr size_t kMaxThreads = 32;

uint64_t steady_ms() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int connect_loopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Drain whatever the server sent without blocking. Returns bytes read;
/// sets `closed` when the server hung up.
size_t drain_nonblocking(int fd, bool& closed) {
  size_t total = 0;
  char buf[4096];
  while (true) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      total += static_cast<size_t>(n);
      continue;
    }
    if (n == 0 || (n < 0 && (errno == ECONNRESET || errno == EPIPE))) {
      closed = true;  // a reset is the server hanging up mid-drain
    }
    break;
  }
  return total;
}

/// Wait up to `budget_ms` for the server to close the connection, draining
/// (and counting) anything it sends. Returns true when the server closed.
bool await_server_close(int fd, uint64_t budget_ms, size_t& received) {
  const uint64_t deadline = steady_ms() + budget_ms;
  while (true) {
    const uint64_t now = steady_ms();
    if (now >= deadline) return false;
    pollfd p{fd, POLLIN, 0};
    int r = ::poll(&p, 1, static_cast<int>(std::min<uint64_t>(
                              deadline - now, 100)));
    if (r < 0 && errno != EINTR) return false;
    if (r <= 0) continue;
    bool closed = false;
    received += drain_nonblocking(fd, closed);
    if (closed || (p.revents & (POLLHUP | POLLERR))) return true;
  }
}

/// Best-effort send that tolerates a server-side close (RST ⇒ EPIPE).
/// Returns bytes actually written.
size_t send_some(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    sent += static_cast<size_t>(n);
  }
  return sent;
}

struct ClientOutcome {
  bool connected = false;
  bool server_closed = false;
  bool gave_up = false;
  size_t sent = 0;
  size_t received = 0;
};

ClientOutcome run_one(NetFaultInjector::Profile profile,
                      const NetFaultInjector::Config& config, Rng& rng,
                      uint64_t deadline_ms) {
  ClientOutcome out;
  int fd = connect_loopback(config.port);
  if (fd < 0) return out;
  out.connected = true;
  const std::string& msg = config.message;
  using Profile = NetFaultInjector::Profile;
  switch (profile) {
    case Profile::kSlowDrip: {
      // One byte at a time, jittered around drip_delay_ms: steady enough
      // to defeat a naive per-read idle timeout, slow enough that a real
      // read deadline must fire before the message completes.
      for (size_t i = 0; i < msg.size(); ++i) {
        if (steady_ms() >= deadline_ms) {
          out.gave_up = true;
          break;
        }
        if (send_some(fd, msg.data() + i, 1) != 1) {
          out.server_closed = true;
          break;
        }
        out.sent += 1;
        bool closed = false;
        out.received += drain_nonblocking(fd, closed);
        if (closed) {
          out.server_closed = true;
          break;
        }
        const uint64_t jitter =
            config.drip_delay_ms == 0
                ? 0
                : rng.below(2 * static_cast<uint64_t>(config.drip_delay_ms));
        std::this_thread::sleep_for(std::chrono::milliseconds(jitter));
      }
      if (!out.server_closed && !out.gave_up) {
        // Whole message dripped through: wait briefly for the verdict.
        out.server_closed = await_server_close(
            fd, deadline_ms > steady_ms() ? deadline_ms - steady_ms() : 1,
            out.received);
        out.gave_up = !out.server_closed;
      }
      break;
    }
    case Profile::kMidFrameDisconnect: {
      const size_t cut =
          msg.empty() ? 0 : 1 + static_cast<size_t>(rng.below(msg.size()));
      out.sent = send_some(fd, msg.data(), cut);
      break;  // close() below is the attack
    }
    case Profile::kPartialWriteStall: {
      const size_t cut =
          msg.empty() ? 0 : 1 + static_cast<size_t>(rng.below(msg.size()));
      out.sent = send_some(fd, msg.data(), cut);
      out.server_closed = await_server_close(
          fd, deadline_ms > steady_ms() ? deadline_ms - steady_ms() : 1,
          out.received);
      out.gave_up = !out.server_closed;
      break;
    }
    case Profile::kNeverRead: {
      for (size_t r = 0; r < config.repeats; ++r) {
        if (steady_ms() >= deadline_ms) {
          out.gave_up = true;
          break;
        }
        const size_t sent = send_some(fd, msg.data(), msg.size());
        out.sent += sent;
        if (sent != msg.size()) {
          out.server_closed = true;
          break;
        }
      }
      if (!out.server_closed) {
        // Hold the connection without ever reading; a bounded server must
        // eventually cut us off (write watermark or write deadline). The
        // server's FIN hides behind the response bytes we refuse to drain,
        // so POLLRDHUP — which fires on a peer close even with unread data
        // pending — is the only honest way to see the eviction.
        pollfd p{fd, POLLRDHUP, 0};
        while (steady_ms() < deadline_ms) {
          int r = ::poll(&p, 1, 50);
          if (r > 0 && (p.revents & (POLLRDHUP | POLLHUP | POLLERR))) {
            out.server_closed = true;
            break;
          }
        }
        out.gave_up = !out.server_closed;
      }
      break;
    }
    case Profile::kConnectFlood:
      // Handled by the caller (needs all fds open at once).
      break;
  }
  ::close(fd);
  return out;
}

}  // namespace

NetFaultInjector::Report NetFaultInjector::run(Profile profile,
                                               const Config& config) {
  Report report;
  std::mutex mu;
  const uint64_t deadline = steady_ms() + config.duration_ms;

  if (profile == Profile::kConnectFlood) {
    // The flood needs every connection open simultaneously — one thread
    // owns them all; connect() on loopback does not block long enough to
    // need parallelism.
    std::vector<int> fds;
    fds.reserve(config.clients);
    for (size_t i = 0; i < config.clients && steady_ms() < deadline; ++i) {
      ++report.attempted;
      int fd = connect_loopback(config.port);
      if (fd < 0) {
        ++report.connect_failures;
        continue;
      }
      ++report.connected;
      fds.push_back(fd);
    }
    // Hold the herd open for the remaining budget, watching for evictions.
    while (steady_ms() < deadline && !fds.empty()) {
      for (size_t i = 0; i < fds.size();) {
        bool closed = false;
        report.bytes_received += drain_nonblocking(fds[i], closed);
        pollfd p{fds[i], POLLIN, 0};
        if (!closed && ::poll(&p, 1, 0) > 0 &&
            (p.revents & (POLLHUP | POLLERR))) {
          closed = true;
        }
        if (closed) {
          ++report.closed_by_server;
          ::close(fds[i]);
          fds[i] = fds.back();
          fds.pop_back();
        } else {
          ++i;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    report.gave_up = fds.size();
    for (int fd : fds) ::close(fd);
    return report;
  }

  const size_t threads = std::min(config.clients, kMaxThreads);
  std::vector<std::thread> pool;
  std::atomic<size_t> next{0};
  Rng root(config.seed);
  std::vector<Rng> rngs;
  rngs.reserve(threads);
  for (size_t t = 0; t < threads; ++t) rngs.push_back(root.fork());
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      Rng rng = rngs[t];
      while (true) {
        const size_t i = next.fetch_add(1);
        if (i >= config.clients || steady_ms() >= deadline) break;
        ClientOutcome out = run_one(profile, config, rng, deadline);
        std::lock_guard<std::mutex> lock(mu);
        ++report.attempted;
        if (out.connected) {
          ++report.connected;
        } else {
          ++report.connect_failures;
        }
        if (out.server_closed) ++report.closed_by_server;
        if (out.gave_up) ++report.gave_up;
        report.bytes_sent += out.sent;
        report.bytes_received += out.received;
      }
    });
  }
  for (std::thread& th : pool) th.join();
  return report;
}

}  // namespace droplens::sim
