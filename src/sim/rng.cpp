#include "sim/rng.hpp"

#include <bit>
#include <cmath>

namespace droplens::sim {

namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (uint64_t& s : s_) s = splitmix64(x);
}

uint64_t Rng::next() {
  // xoshiro256++
  uint64_t result = std::rotl(s_[0] + s_[3], 23) + s_[0];
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

uint64_t Rng::below(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::range(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

size_t Rng::weighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  double r = uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0) return i;
  }
  return weights.size() - 1;
}

int Rng::geometric(double p, int cap) {
  if (p >= 1.0) return 0;
  int n = 0;
  while (n < cap && !chance(p)) ++n;
  return n;
}

Rng Rng::fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace droplens::sim
