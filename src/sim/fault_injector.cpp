#include "sim/fault_injector.hpp"

#include <algorithm>

namespace droplens::sim {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kBitFlip: return "bit-flip";
    case FaultKind::kGarbageLines: return "garbage-lines";
    case FaultKind::kDuplicateLines: return "duplicate-lines";
    case FaultKind::kCorruptHeader: return "corrupt-header";
  }
  return "?";
}

namespace {

// Offsets just past each '\n', i.e. the positions where a new line may be
// spliced in. Position 0 is deliberately excluded: corrupting the very first
// line is kCorruptHeader's job, and keeping it intact preserves headers
// (roas.csv "URI,..." line, MRTL magic) so garbage costs exactly one skipped
// record per line in every text parser.
std::vector<size_t> line_starts_after_first(std::string_view s) {
  std::vector<size_t> starts;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n' && i + 1 < s.size()) starts.push_back(i + 1);
  }
  return starts;
}

}  // namespace

std::string FaultInjector::truncate(std::string_view input) {
  if (input.size() < 2) return std::string();
  // Keep at least one byte, cut at least one.
  size_t keep = 1 + static_cast<size_t>(rng_.below(input.size() - 1));
  return std::string(input.substr(0, keep));
}

std::string FaultInjector::flip_bits(std::string_view input, int flips) {
  std::string out(input);
  if (out.empty()) return out;
  for (int i = 0; i < flips; ++i) {
    size_t byte = static_cast<size_t>(rng_.below(out.size()));
    out[byte] = static_cast<char>(out[byte] ^ (1u << rng_.below(8)));
  }
  return out;
}

std::string FaultInjector::garbage_lines(std::string_view input, int lines) {
  // The junk alphabet avoids every character the parsers assign meaning to:
  // comment markers (';', '#'), field separators ('|', ',', ':'), prefix
  // syntax ('.', '/'), digits (a leading digit reads as a delegation-file
  // version header), and leading whitespace / '+' (an RPSL continuation).
  static const char kJunk[] = "~!@^&*=_qwertyzxcvbnm";
  std::vector<size_t> starts = line_starts_after_first(input);
  std::string out(input);
  for (int i = 0; i < lines; ++i) {
    std::string junk;
    size_t len = 6 + static_cast<size_t>(rng_.below(18));
    for (size_t j = 0; j < len; ++j) {
      junk += kJunk[rng_.below(sizeof(kJunk) - 1)];
    }
    junk += '\n';
    size_t at = starts.empty()
                    ? out.size()
                    : starts[static_cast<size_t>(rng_.below(starts.size()))];
    out.insert(at, junk);
    // Recompute splice points so later insertions land on real boundaries.
    starts = line_starts_after_first(out);
  }
  return out;
}

std::string FaultInjector::duplicate_lines(std::string_view input, int dups) {
  std::string out(input);
  for (int i = 0; i < dups; ++i) {
    std::vector<size_t> starts = line_starts_after_first(out);
    if (starts.empty()) break;
    size_t begin = starts[static_cast<size_t>(rng_.below(starts.size()))];
    size_t end = out.find('\n', begin);
    if (end == std::string::npos) end = out.size();
    if (end == begin) continue;  // empty line: nothing to double-write
    std::string line = out.substr(begin, end - begin) + "\n";
    out.insert(std::min(end + 1, out.size()), line);
  }
  return out;
}

std::string FaultInjector::corrupt_header(std::string_view input) {
  std::string out(input);
  size_t first_line_end = out.find('\n');
  size_t n = first_line_end == std::string::npos
                 ? std::min<size_t>(out.size(), 8)
                 : first_line_end;
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<char>(rng_.below(256));
  }
  return out;
}

std::string FaultInjector::apply(FaultKind kind, std::string_view input) {
  switch (kind) {
    case FaultKind::kTruncate: return truncate(input);
    case FaultKind::kBitFlip: return flip_bits(input);
    case FaultKind::kGarbageLines: return garbage_lines(input);
    case FaultKind::kDuplicateLines: return duplicate_lines(input);
    case FaultKind::kCorruptHeader: return corrupt_header(input);
  }
  return std::string(input);
}

std::vector<net::Date> FaultInjector::drop_days(DailyArchive& days, int n) {
  std::vector<net::Date> dropped;
  for (int i = 0; i < n && !days.empty(); ++i) {
    size_t at = static_cast<size_t>(rng_.below(days.size()));
    dropped.push_back(days[at].first);
    days.erase(days.begin() + static_cast<ptrdiff_t>(at));
  }
  std::sort(dropped.begin(), dropped.end());
  return dropped;
}

void FaultInjector::shuffle_days(DailyArchive& days) {
  rng_.shuffle(days);
}

}  // namespace droplens::sim
