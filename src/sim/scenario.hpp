// Scenario configuration: every calibration knob of the synthetic Internet.
//
// Defaults reproduce the paper's study (June 5, 2019 – March 30, 2022) at
// full scale; `ScenarioConfig::small()` gives a fast, reduced world for unit
// tests and the quickstart example. Knobs are annotated with the paper
// statistic they calibrate.
#pragma once

#include <array>
#include <cstdint>

#include "net/date.hpp"
#include "rir/rir.hpp"

namespace droplens::sim {

struct ScenarioConfig {
  uint64_t seed = 0x5d10'9222'd309'a001ULL;

  // ---- Study window (§3.1) -------------------------------------------
  net::Date window_begin = net::Date::from_ymd(2019, 6, 5);
  net::Date window_end = net::Date::from_ymd(2022, 3, 30);
  // BGP / IRR / allocation pre-history reaches back this far, so "no
  // origination for 15 yrs" style statements are representable.
  net::Date history_begin = net::Date::from_ymd(2005, 1, 1);

  // ---- Collector fleet (§3, §4.1) ------------------------------------
  int collectors = 36;             // all RouteViews collectors
  int full_table_peers = 100;      // peers providing full tables
  int drop_filtering_peers = 3;    // §4.1: three peers filter DROP prefixes

  // ---- Background (never-on-DROP) prefix population (Table 1) --------
  // Prefix counts without a ROA at window start, per RIR — Table 1 column 1
  // denominators: AFRINIC 3901, APNIC 42.2K, ARIN 65.2K, LACNIC 15.1K,
  // RIPE 68.2K. Scaled by `background_scale` (1.0 = paper scale).
  std::array<int, 5> unsigned_background = {3901, 42200, 65200, 15100, 68200};
  // Base RPKI signing rate during the window, per RIR — Table 1 column 1:
  // 11.8% / 26.3% / 8.5% / 25.5% / 33.0%.
  std::array<double, 5> base_signing_rate = {0.118, 0.263, 0.085, 0.255, 0.330};
  // Pre-signed (ROA before window) routed space: together with the
  // signed-goes-unrouted slice and the pre-signed organizations below this
  // brings start-of-window signed space to Fig 5's 49.1 /8 equivalents.
  double presigned_space_slash8 = 45.5;

  // ---- Fig 5 space targets (/8 equivalents) --------------------------
  // Signed-but-unrouted non-AS0 space at window start (~1.6 /8s): Prudential
  // (1.0, ARIN legacy) + Alibaba (0.64, APNIC).
  double prudential_slash8 = 1.0;
  double alibaba_slash8 = 0.64;
  // Amazon signs ~Sep 2020; 3.1 /8s of it stays unrouted (§6.2.1).
  net::Date amazon_roa_date = net::Date::from_ymd(2020, 9, 1);
  double amazon_unrouted_slash8 = 3.1;
  double amazon_routed_slash8 = 1.0;
  // Other signed space that goes unrouted during the window (takes the
  // signed-unrouted series from 1.6 to 6.7 with the three orgs above).
  double signed_goes_unrouted_slash8 = 1.96;
  // Allocated, unrouted, never signed. The Fig 5 "no ROA" series runs
  // 29.2 -> 30.0 /8s with ARIN holding 60.8%: at window start it is this
  // static legacy space PLUS Amazon's 3.1 /8s (unsigned until Sep 2020);
  // the growth slice (routed space withdrawn mid-window without signing)
  // refills the series after Amazon's space moves to signed-unrouted.
  double unrouted_unsigned_start_slash8 = 26.1;
  double unrouted_unsigned_growth_slash8 = 3.9;
  double unrouted_unsigned_arin_share = 0.65;

  // ---- RIR free pools at window start, in addresses (Fig 7) ----------
  std::array<uint64_t, 5> free_pool_start = {
      7'000'000,   // AFRINIC
      5'000'000,   // APNIC
      2'500'000,   // ARIN
      2'600'000,   // LACNIC
      1'500'000};  // RIPE NCC
  // Fraction of the start pool each RIR hands out during the window.
  std::array<double, 5> pool_drain = {0.25, 0.30, 0.20, 0.70, 0.40};

  // ---- DROP composition (§3.1, Fig 1) --------------------------------
  int hijacked_regular = 131;       // + 3 RPKI-signed-before-listing = 134
                                    //   non-incident HJ (§6.1); 45 incident
                                    //   prefixes bring HJ to 179
  int afrinic_incident_prefixes = 45;   // 6.3% of prefixes, 48.8% of space
  uint64_t afrinic_incident_space = 2'640'000;
  int snowshoe = 225;               // ~1/3 of prefix additions, 8.5% of space
  int known_spam_op = 35;
  int malicious_hosting = 45;
  int unclassifiable = 2;           // App. A: two records too vague to label
  int unallocated_drop = 40;        // §6.2.2: 40 unallocated prefixes
  // Fig 6 clusters: LACNIC 19, AFRINIC 12; remainder spread over the rest.
  std::array<int, 5> unallocated_by_rir = {12, 4, 3, 19, 2};
  int no_record = 186;              // 712 - 526 with SBL records
  int snowshoe_second_label = 15;   // SS prefixes with a second category

  // ---- SBL text shape (Appendix A) ------------------------------------
  double sbl_two_keyword_rate = 0.027;  // 2.7% of records have two keywords
  double sbl_no_keyword_rate = 0.073;   // 7.3% need manual inference

  // ---- Blocklisting effects (§4.1) ------------------------------------
  // Planned rate over the generated hijack prefixes; slightly above the
  // paper's 70.7% because the measured population also contains the
  // case-study and attacker-controlled-ROA hijacks, which stay announced.
  double withdraw_within_30d_hijacked = 0.765;
  double withdraw_within_30d_unallocated = 0.548;
  double withdraw_within_30d_other = 0.02;
  double mh_deallocated_rate = 0.174;  // 17.4% of MH deallocated by RIR
  // 8.8% of removed prefixes were deallocated; half removed within a week
  // of deallocation.
  double removed_deallocated_rate = 0.088;

  // ---- DROP removal & RPKI uptake (Table 1, §4.2) ---------------------
  // Per-RIR counts of unsigned-at-listing prefixes removed from DROP /
  // still present (Table 1 columns 2-3 denominators: 7/18/40/37/83 and
  // 11/37/169/9/172 — realized counts depend on category mix; see
  // EXPERIMENTS.md).
  std::array<double, 5> removed_fraction = {0.30, 0.33, 0.19, 0.80, 0.33};
  std::array<double, 5> removed_signing_rate = {0.143, 0.444, 0.250, 0.351,
                                                0.542};
  std::array<double, 5> present_signing_rate = {0.000, 0.216, 0.006, 0.000,
                                                0.198};
  // §4.2: of removed-and-then-signed prefixes, 82.3% signed with an ASN
  // different from the listing-time origin, 6.3% with the same ASN.
  double removed_signed_same_asn = 0.063;
  double removed_signed_unannounced = 0.114;

  // ---- IRR behaviour (§5, Fig 3) ---------------------------------------
  int forged_irr_hijacks = 57;   // hijacker ASN in the route object
  int forged_irr_org_count = 3;  // 49 of 57 share three ORG-IDs
  int forged_irr_other_orgs = 8;
  int hijacking_asn_count = 13;
  int forged_irr_late_records = 2;  // IRR record >1yr after BGP
  int forged_irr_preexisting = 5;   // prefixes with an owner's older entry
  // Non-forged route objects so ~31.7% of DROP prefixes have one, covering
  // ~68.8% of DROP space (incident prefixes all carry route objects).
  double legit_route_object_rate = 0.22;
  double route_object_removed_month_after = 0.43;

  // ---- Case study (Fig 4, §6.1) ----------------------------------------
  bool include_case_study = true;
  // Two further HJ prefixes whose ROA the hijacker itself controls.
  int attacker_controlled_roas = 2;

  // ---- maxLength usage (§2.3 context; Gilad et al. CoNEXT'17) ----------
  // Fraction of operator ROAs that set maxLength beyond the prefix length,
  // and of those, the fraction vulnerable to forged-origin sub-prefix
  // hijacks (the owner does not announce every covered more-specific).
  // Gilad et al. measured 84% of maxLength ROAs vulnerable in June 2017.
  double maxlength_roa_rate = 0.12;
  double maxlength_vulnerable_rate = 0.84;

  // ---- §6.2.2: bogon announcements not on DROP -------------------------
  // Announced-from-free-pool prefixes alive at window end, so every peer
  // carries ~30 routes an AS0 TAL would reject.
  int background_bogons = 26;

  /// Reduced world: same mechanisms, ~1% the size; runs in milliseconds.
  static ScenarioConfig small();

  /// Derived: total DROP prefix count (the paper's defaults give 712).
  /// The `snowshoe_second_label` prefixes are within the snowshoe count;
  /// they only gain an extra keyword in their SBL text.
  int total_drop_prefixes() const {
    return hijacked_regular + (include_case_study ? 1 : 0) +
           attacker_controlled_roas + afrinic_incident_prefixes + snowshoe +
           known_spam_op + malicious_hosting + unclassifiable +
           unallocated_drop + no_record;
  }
};

}  // namespace droplens::sim
