// Hardcoded narratives: the Fig 4 RPKI-valid hijack of 132.255.0.0/22 and
// its sibling prefixes, the two attacker-controlled-ROA hijacks (§6.1), and
// the operator AS0 remediation of 45.65.112.0/22 (§6.2.1).
#include "sim/generator_impl.hpp"

namespace droplens::sim::detail {

namespace {

// The recurring actors of Fig 4.
const net::Asn kPeruOrigin{263692};   // legitimate LACNIC origin of the /22
const net::Asn kSaTransit{21575};     // South American transit provider
const net::Asn kRuTransit1{50509};    // Russian transit (also §5's serial AS)
const net::Asn kRuTransit2{34665};

net::Date ymd(int y, int m, int d) { return net::Date::from_ymd(y, m, d); }

}  // namespace

void Generator::gen_case_study() {
  auto administer_lacnic = [&](const net::Prefix& p, const char* holder,
                               net::Date when) {
    w_->registry.administer(rir::Rir::kLacnic, p);
    w_->registry.allocate(p, rir::Rir::kLacnic, holder, when, "PE");
  };

  // --- 132.255.0.0/22: the RPKI-valid hijack ------------------------------
  net::Prefix the22 = net::Prefix::parse("132.255.0.0/22");
  administer_lacnic(the22, "Peruvian Network SAC", ymd(2014, 5, 20));
  // ROA for AS263692, published well before the window.
  w_->roas.publish(rpki::Roa(the22, kPeruOrigin, rpki::Tal::kLacnic),
                   ymd(2018, 6, 1));
  // Owner announces via the South American transit until July 2020.
  w_->fleet.announce(the22, bgp::AsPath{kSaTransit, kPeruOrigin},
                     net::DateRange{ymd(2015, 1, 10), ymd(2020, 7, 15)});
  // December 2020: the hijacker re-originates the prefix with the ROA's ASN
  // through Russian transit — RPKI-valid, yet a hijack.
  w_->fleet.announce(
      the22, bgp::AsPath{kRuTransit1, kRuTransit2, kPeruOrigin},
      net::DateRange{ymd(2020, 12, 5), net::DateRange::unbounded()});
  // June 2021: the hijacker adds the four /24s (invalid under the /22 ROA's
  // maxLength, but announced regardless).
  for (int i = 0; i < 4; ++i) {
    net::Prefix sub = net::Prefix::parse("132.255." + std::to_string(i) +
                                         ".0/24");
    w_->fleet.announce(
        sub, bgp::AsPath{kRuTransit1, kRuTransit2, kPeruOrigin},
        net::DateRange{ymd(2021, 6, 10), net::DateRange::unbounded()});
  }

  // --- The six sibling prefixes (same origin + Russian transit pattern) ---
  struct Sibling {
    const char* cidr;
    bool historic_origin;       // had a different origin AS years ago
    net::Asn old_origin;
    net::Asn old_transit;
    net::Date old_begin, old_end;
    net::Date hijack_begin;
    bool on_drop;               // three of the six were listed Mar 4 2022
  };
  const Sibling siblings[] = {
      {"187.19.64.0/20", true, net::Asn{19361}, net::Asn{3549},
       ymd(2016, 2, 1), ymd(2018, 9, 1), ymd(2020, 12, 5), true},
      {"187.110.192.0/20", false, {}, {}, {}, {}, ymd(2020, 12, 5), true},
      {"191.7.224.0/19", true, net::Asn{263330}, net::Asn{16735},
       ymd(2013, 4, 1), ymd(2019, 3, 1), ymd(2021, 6, 10), false},
      {"200.150.240.0/20", false, {}, {}, {}, {}, ymd(2021, 6, 10), false},
      {"200.189.64.0/20", true, net::Asn{28129}, net::Asn{3549},
       ymd(2012, 1, 1), ymd(2018, 6, 1), ymd(2021, 6, 10), true},
      {"200.202.80.0/20", false, {}, {}, {}, {}, ymd(2021, 6, 10), false},
  };
  net::Date drop_day = ymd(2022, 3, 4);
  for (const Sibling& s : siblings) {
    net::Prefix p = net::Prefix::parse(s.cidr);
    administer_lacnic(p, "abandoned-br-org", ymd(2006, 3, 15));
    if (s.historic_origin) {
      w_->fleet.announce(p, bgp::AsPath{s.old_transit, s.old_origin},
                         net::DateRange{s.old_begin, s.old_end});
    }
    w_->fleet.announce(
        p, bgp::AsPath{kRuTransit1, kRuTransit2, kPeruOrigin},
        net::DateRange{s.hijack_begin, net::DateRange::unbounded()});
    if (s.on_drop) {
      std::string id = "SBL" + std::to_string(sbl_counter_++);
      w_->sbl.add(drop::SblRecord{
          id, p,
          "Hijacked netblock " + p.to_string() +
              ", stolen routing via AS50509; announced with forged origin " +
              kPeruOrigin.to_string() + "."});
      w_->drop.add(p, drop_day, id);
    }
    w_->truth.case_study_siblings.push_back(p);
  }

  // The /22 itself joins DROP the same day — one of the three HJ prefixes
  // that were RPKI-signed before listing (§6.1).
  {
    std::string id = "SBL" + std::to_string(sbl_counter_++);
    w_->sbl.add(drop::SblRecord{
        id, the22,
        "Hijacked netblock 132.255.0.0/22, stolen " +
            kPeruOrigin.to_string() +
            " origin with RPKI-valid announcement via AS50509."});
    w_->drop.add(the22, drop_day, id);
  }
  w_->truth.case_study_prefix = the22;
  w_->truth.signed_before_listing.push_back(the22);
}

void Generator::gen_attacker_controlled_roas() {
  // §6.1: two hijacked prefixes whose ROA the hijacker itself controls —
  // the published ROA's ASN tracked the BGP origin as it changed during the
  // two years before listing.
  for (int i = 0; i < cfg_.attacker_controlled_roas; ++i) {
    rir::Rir r = i % 2 == 0 ? rir::Rir::kRipe : rir::Rir::kApnic;
    net::Prefix p = blocks_.take(r, 20);
    w_->registry.allocate(p, r, "shell-org-" + std::to_string(i),
                          pre_window_date(4, 9));
    net::Asn origin_a = asns_.fresh_operator();
    net::Asn origin_b = asns_.fresh_operator();
    net::Date listed = in_window_date(60);
    if (listed < cfg_.window_begin + 200) listed = cfg_.window_begin + 200;
    // Both ROA changes land inside the two years before listing — that is
    // the window §6.1 inspected for origin-tracking ROAs.
    net::Date flip = listed - static_cast<int32_t>(rng_.range(100, 300));
    net::Date start = flip - static_cast<int32_t>(rng_.range(100, 300));

    rpki::Roa roa_a(p, origin_a, rpki::production_tal(r));
    w_->roas.publish(roa_a, start);
    w_->roas.revoke(roa_a, flip);
    w_->roas.publish(rpki::Roa(p, origin_b, rpki::production_tal(r)), flip);

    net::Asn transit = asns_.transit(rng_);
    w_->fleet.announce(p, bgp::AsPath{transit, origin_a},
                       net::DateRange{start, flip});
    w_->fleet.announce(p, bgp::AsPath{transit, origin_b},
                       net::DateRange{flip, net::DateRange::unbounded()});

    std::string id = "SBL" + std::to_string(sbl_counter_++);
    w_->sbl.add(drop::SblRecord{
        id, p,
        "Hijacked IP range " + p.to_string() + " on " + origin_b.to_string() +
            "; resource records under criminal control."});
    w_->drop.add(p, listed, id);
    w_->truth.signed_before_listing.push_back(p);
  }
}

void Generator::gen_operator_as0_case() {
  // §6.2.1: Spamhaus added 45.65.112.0/22 on 2020-01-28; the operator signed
  // it with AS0 on 2021-05-05; Spamhaus removed it on 2021-06-16.
  net::Prefix p = net::Prefix::parse("45.65.112.0/22");
  w_->registry.administer(rir::Rir::kLacnic, p);
  w_->registry.allocate(p, rir::Rir::kLacnic, "remediated-operator",
                        ymd(2016, 8, 1), "BR");
  net::Asn origin = asns_.fresh_operator();
  w_->fleet.announce(p, bgp::AsPath{asns_.transit(rng_), origin},
                     net::DateRange{ymd(2019, 10, 1), ymd(2021, 4, 20)});
  w_->drop.add(p, ymd(2020, 1, 28));  // record later deleted -> NR
  w_->roas.publish(rpki::Roa(p, net::Asn::as0(), rpki::Tal::kLacnic),
                   ymd(2021, 5, 5));
  w_->drop.remove(p, ymd(2021, 6, 16));
  w_->truth.removed_from_drop.push_back(p);
}

}  // namespace droplens::sim::detail
