// Deterministic PRNG for the scenario generator.
//
// Every figure must regenerate byte-identically, so the generator seeds a
// xoshiro256++ stream from a single scenario seed (expanded via splitmix64).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace droplens::sim {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t next();

  /// Uniform in [0, bound) without modulo bias. Requires bound > 0.
  uint64_t below(uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi);

  /// Uniform real in [0, 1).
  double uniform();

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Pick an index according to `weights` (need not be normalized).
  size_t weighted(const std::vector<double>& weights);

  /// Geometric-ish count: number of failures before success at rate p,
  /// capped at `cap`.
  int geometric(double p, int cap);

  /// Fork a decorrelated child stream (for per-subsystem determinism that
  /// doesn't depend on call order elsewhere).
  Rng fork();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace droplens::sim
