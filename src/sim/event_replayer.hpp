// Lowers a generated World into the streaming subsystem's event currency.
//
// The generator plants *histories* — episodes, lifetimes, listing stints —
// and the batch pipeline reads them day by day. EventReplayer flattens those
// same histories into one ordered stream::Event sequence: every episode
// becomes an announce at range.begin (and a withdraw at range.end when
// bounded), every ROA/IRR/delegation lifetime becomes an add/remove pair,
// every DROP stint a listing/delisting. Sorted by stream::canonical_less,
// the result is exactly the input the online pipeline (Applier +
// AlarmMonitor) needs to reproduce the batch outputs — compile_snapshot
// byte-identically on any day, analyze_alarms alarm-for-alarm.
//
// One deliberate wrinkle: kDropAdd events carry the DropIndex entry's
// whole-history category bits (plus the incident flag), not some
// per-stint classification. compile_snapshot paints a listed day with the
// entry's whole-history bits, so the live OR over active listings only
// matches if every stint asserts those same bits.
#pragma once

#include <span>
#include <vector>

#include "sim/world.hpp"
#include "stream/event.hpp"

namespace droplens::sim {

class EventReplayer {
 public:
  /// Builds the full sorted event stream; O(total history) time and space.
  explicit EventReplayer(const World& world);

  /// All events, in canonical order (dates nondecreasing; within a day,
  /// removals before additions).
  const std::vector<stream::Event>& events() const { return events_; }

  /// The contiguous run of events dated exactly `d` (empty if none) — the
  /// follower's per-day feed unit.
  std::span<const stream::Event> on(net::Date d) const;

  size_t size() const { return events_.size(); }

 private:
  std::vector<stream::Event> events_;
};

}  // namespace droplens::sim
