#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

#include "util/error.hpp"

namespace droplens::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  auto ieq = [](char a, char b) {
    return std::tolower(static_cast<unsigned char>(a)) ==
           std::tolower(static_cast<unsigned char>(b));
  };
  auto it = std::search(haystack.begin(), haystack.end(), needle.begin(),
                        needle.end(), ieq);
  return it != haystack.end();
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

unsigned long parse_u64(std::string_view s) {
  unsigned long value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last || s.empty()) {
    throw ParseError("not a non-negative integer: '" + std::string(s) + "'");
  }
  return value;
}

}  // namespace droplens::util
