// CRC32C (Castagnoli) checksum.
//
// The snapshot persistence layer (svc/snapshot_io.hpp) checksums its header
// and every segment blob so a loader that mmaps attacker-influenceable bytes
// can reject corruption before trusting any of them. CRC32C rather than
// plain CRC32: the Castagnoli polynomial has better error-detection
// properties for storage payloads and matches what hardware offers if this
// ever grows an SSE4.2/ARMv8 fast path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace droplens::util {

/// CRC32C of `len` bytes at `data`. `seed` chains partial computations:
/// crc32c(ab) == crc32c(b, crc32c(a)).
uint32_t crc32c(const void* data, size_t len, uint32_t seed = 0);

inline uint32_t crc32c(std::string_view data, uint32_t seed = 0) {
  return crc32c(data.data(), data.size(), seed);
}

}  // namespace droplens::util
