#include "util/parse_report.hpp"

namespace droplens::util {

void ParseReport::add_error(size_t line, std::string message) {
  ++skipped_;
  if (diags_.size() < kMaxDiagnostics) {
    diags_.push_back(ParseDiagnostic{line, 0, std::move(message)});
  }
}

void ParseReport::add_error_at(uint64_t offset, std::string message) {
  ++skipped_;
  if (diags_.size() < kMaxDiagnostics) {
    diags_.push_back(ParseDiagnostic{0, offset, std::move(message)});
  }
}

void ParseReport::merge(const ParseReport& other) {
  parsed_ += other.parsed_;
  skipped_ += other.skipped_;
  for (const ParseDiagnostic& d : other.diags_) {
    if (diags_.size() >= kMaxDiagnostics) break;
    diags_.push_back(d);
  }
}

std::string ParseReport::summary() const {
  std::string out = input_.empty() ? std::string("<input>") : input_;
  out += ": " + std::to_string(parsed_) + " records";
  if (skipped_ == 0) return out;
  out += ", " + std::to_string(skipped_) + " skipped";
  if (!diags_.empty()) {
    const ParseDiagnostic& d = diags_.front();
    out += " (first: ";
    if (d.line > 0) out += "line " + std::to_string(d.line) + ": ";
    if (d.offset > 0) out += "offset " + std::to_string(d.offset) + ": ";
    out += d.message + ")";
  }
  return out;
}

}  // namespace droplens::util
