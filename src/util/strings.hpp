// Small string helpers used by the parsers (RPSL, delegation files, SBL text).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace droplens::util {

/// Split `s` on `sep`, keeping empty fields ("a||b" -> {"a","","b"}).
std::vector<std::string_view> split(std::string_view s, char sep);

/// Split `s` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string_view> split_ws(std::string_view s);

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// True if `haystack` contains `needle` case-insensitively (ASCII).
bool icontains(std::string_view haystack, std::string_view needle);

/// Join `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Parse a non-negative integer; throws ParseError on junk or overflow.
unsigned long parse_u64(std::string_view s);

}  // namespace droplens::util
