#include "util/crc32c.hpp"

#include <array>

namespace droplens::util {

namespace {

// Reflected Castagnoli polynomial (0x1EDC6F41 bit-reversed).
constexpr uint32_t kPoly = 0x82f63b78u;

constexpr std::array<uint32_t, 256> make_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = make_table();

}  // namespace

uint32_t crc32c(const void* data, size_t len, uint32_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace droplens::util
