// Error accumulation for the feed parsers.
//
// Real archive snapshots (Firehol DROP feeds, RouteViews MRT, RADb dumps,
// RIPE roas.csv, RIR delegation files) routinely contain truncated files and
// garbage lines. Every parser therefore takes a ParsePolicy: kStrict keeps
// the historical throw-on-first-error behavior, kLenient skips malformed
// records and accounts for each skip in a ParseReport, so dirty input never
// aborts a multi-year run but is never silently swallowed either.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace droplens::util {

enum class ParsePolicy : uint8_t {
  kStrict,   // throw ParseError on the first malformed record
  kLenient,  // skip malformed records, recording each skip
};

/// One skipped record: where it was and why it failed.
struct ParseDiagnostic {
  size_t line = 0;      // 1-based line number; 0 when not line-oriented
  uint64_t offset = 0;  // byte offset (binary formats); 0 otherwise
  std::string message;
};

/// Per-input accumulation of parse outcomes. Detailed diagnostics are capped
/// at kMaxDiagnostics (counters keep counting past the cap), so a wholly
/// corrupt multi-MB feed cannot balloon memory.
class ParseReport {
 public:
  static constexpr size_t kMaxDiagnostics = 64;

  ParseReport() = default;
  explicit ParseReport(std::string input_name)
      : input_(std::move(input_name)) {}

  void set_input(std::string name) { input_ = std::move(name); }
  const std::string& input() const { return input_; }

  /// Count `n` successfully parsed records.
  void add_parsed(size_t n = 1) { parsed_ += n; }

  /// Record a skipped record at a 1-based line number.
  void add_error(size_t line, std::string message);

  /// Record a skipped record at a byte offset (binary formats).
  void add_error_at(uint64_t offset, std::string message);

  /// Fold `other` into this report (counters add; diagnostics append up to
  /// the cap). Used to aggregate per-file reports into a per-substrate one.
  void merge(const ParseReport& other);

  size_t parsed() const { return parsed_; }
  size_t skipped() const { return skipped_; }
  bool ok() const { return skipped_ == 0; }
  const std::vector<ParseDiagnostic>& diagnostics() const { return diags_; }

  /// One-line human summary: input, counts, and the first diagnostic.
  std::string summary() const;

 private:
  std::string input_;
  size_t parsed_ = 0;
  size_t skipped_ = 0;
  std::vector<ParseDiagnostic> diags_;
};

}  // namespace droplens::util
