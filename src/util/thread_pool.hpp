// Fixed-size thread pool for the analysis engine.
//
// Deliberately simple: one locked queue, no work stealing. Analysis fan-out
// is coarse (one task per sampled date / entry chunk), so queue contention
// is negligible and the simple design is easy to reason about under TSan.
//
// Determinism contract: `parallel_for(n, fn)` runs fn(i) exactly once for
// every i in [0, n) and returns only when all calls finished. Callers write
// results into index i of a pre-sized buffer, so the assembled output is
// identical whatever the worker count — including the inline sequential
// path used when the pool has no workers (thread count 1).
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace droplens::util {

class ThreadPool {
 public:
  /// `threads` == 0 picks default_thread_count(); 1 means "no workers":
  /// submit() and parallel_for() run inline on the caller, reproducing the
  /// sequential engine exactly.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads owned by the pool (0 in sequential mode).
  size_t worker_count() const { return workers_.size(); }

  /// Effective parallelism: worker count, or 1 when running inline.
  size_t concurrency() const { return workers_.empty() ? 1 : workers_.size(); }

  /// Queue `fn` for execution; the future carries its result or exception.
  /// In sequential mode the call runs inline before submit() returns.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    std::packaged_task<R()> task(std::forward<Fn>(fn));
    std::future<R> result = task.get_future();
    if (workers_.empty()) {
      tasks_submitted_.inc();
      run_counted(task);
      return result;
    }
    enqueue(std::packaged_task<void()>(
        [t = std::move(task)]() mutable { t(); }));
    return result;
  }

  /// Run fn(i) for every i in [0, n), fanning chunks across the workers.
  /// Blocks until every call finished; the first exception (lowest chunk
  /// index) is rethrown after all chunks settle. Nested calls from inside a
  /// worker run inline — the pool never deadlocks on itself.
  template <typename Fn>
  void parallel_for(size_t n, Fn&& fn) {
    if (n == 0) return;
    if (workers_.empty() || n == 1 || in_worker()) {
      for (size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    // ~4 chunks per worker: large enough to amortize queue traffic, small
    // enough that an unlucky slow chunk can't serialize the tail.
    const size_t chunks = std::min(n, workers_.size() * 4);
    std::vector<std::future<void>> pending;
    pending.reserve(chunks);
    for (size_t c = 0; c < chunks; ++c) {
      const size_t begin = n * c / chunks;
      const size_t end = n * (c + 1) / chunks;
      pending.push_back(submit([begin, end, &fn] {
        for (size_t i = begin; i < end; ++i) fn(i);
      }));
    }
    std::exception_ptr first_error;
    for (auto& f : pending) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  /// Resolve the engine's thread knob: DROPLENS_THREADS from the
  /// environment if set to a positive integer, else hardware_concurrency
  /// (never less than 1).
  static unsigned default_thread_count();

  /// True when the calling thread is one of this process's pool workers.
  static bool in_worker();

 private:
  void enqueue(std::packaged_task<void()> task);
  void worker_loop();

  /// Execute one task, timing it into the latency histogram when observed
  /// (no clock read otherwise) and counting its completion. Shared by the
  /// inline sequential path and the worker loop.
  template <typename Task>
  void run_counted(Task& task) {
    if (task_latency_) {
      const auto start = std::chrono::steady_clock::now();
      task();
      task_latency_.observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
    } else {
      task();
    }
    tasks_completed_.inc();
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  // Bound from the installed obs::Registry at construction (no-op handles
  // otherwise). The queue-depth gauge tracks queued-but-unstarted tasks.
  obs::Counter tasks_submitted_;
  obs::Counter tasks_completed_;
  obs::Gauge queue_depth_;
  obs::Histogram task_latency_;
};

}  // namespace droplens::util
