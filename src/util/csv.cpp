#include "util/csv.hpp"

namespace droplens::util {

std::string CsvWriter::escape(std::string_view field) const {
  bool needs_quote = field.find(sep_) != std::string_view::npos ||
                     field.find('"') != std::string_view::npos ||
                     field.find('\n') != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << sep_;
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

}  // namespace droplens::util
