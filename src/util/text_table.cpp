#include "util/text_table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace droplens::util {

TextTable::TextTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() > columns_.size()) {
    throw std::invalid_argument("TextTable: row wider than header");
  }
  cells.resize(columns_.size());
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::add_rule() { rows_.push_back(Row{{}, true}); }

void TextTable::print(std::ostream& out) const {
  std::vector<size_t> width(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const Row& r : rows_) {
    if (r.rule) continue;
    for (size_t c = 0; c < r.cells.size(); ++c) {
      width[c] = std::max(width[c], r.cells[c].size());
    }
  }
  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << "  " << cell;
      out << std::string(width[c] - cell.size(), ' ');
    }
    out << '\n';
  };
  auto print_rule = [&] {
    for (size_t c = 0; c < columns_.size(); ++c) {
      out << "  " << std::string(width[c], '-');
    }
    out << '\n';
  };
  print_cells(columns_);
  print_rule();
  for (const Row& r : rows_) {
    if (r.rule) {
      print_rule();
    } else {
      print_cells(r.cells);
    }
  }
}

std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string percent(double num, double den, int digits) {
  if (den == 0) return "n/a";
  return fixed(100.0 * num / den, digits) + "%";
}

}  // namespace droplens::util
