#include "util/thread_pool.hpp"

#include <cstdlib>
#include <string>

namespace droplens::util {

namespace {

// Set while a thread is executing inside worker_loop(); lets parallel_for
// detect nesting and degrade to an inline loop instead of deadlocking on a
// queue its own workers can never drain.
thread_local bool t_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  tasks_submitted_ = obs::counter("droplens_pool_tasks_submitted_total", {},
                                  "Tasks submitted to the engine thread pool");
  tasks_completed_ = obs::counter("droplens_pool_tasks_completed_total", {},
                                  "Tasks the engine thread pool finished");
  queue_depth_ = obs::gauge("droplens_pool_queue_depth", {},
                            "Tasks queued but not yet started");
  task_latency_ = obs::histogram(
      "droplens_pool_task_latency_ns", obs::Registry::log2_bounds(39), {},
      "Per-task execution time in nanoseconds (log2 buckets)");
  if (threads == 0) threads = default_thread_count();
  if (threads <= 1) return;  // sequential mode: no workers, run inline
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::enqueue(std::packaged_task<void()> task) {
  tasks_submitted_.inc();
  queue_depth_.add(1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_depth_.sub(1);
    run_counted(task);  // exceptions land in the task's future
  }
}

unsigned ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("DROPLENS_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 1024) {
      return static_cast<unsigned>(v);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

bool ThreadPool::in_worker() { return t_in_worker; }

}  // namespace droplens::util
