// Error types shared across droplens libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace droplens {

/// Raised when textual input (an address, a delegation line, an RPSL object,
/// ...) cannot be parsed. The message names the offending input.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an operation would violate a data-set invariant (e.g. removing
/// a prefix from DROP before it was added).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

}  // namespace droplens
