// Fixed-width ASCII table printer: the bench binaries use it to print the
// paper-vs-measured rows for each table/figure.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace droplens::util {

/// Collects rows of string cells and renders them with aligned columns.
class TextTable {
 public:
  /// `columns` are header names; column count is fixed from here on.
  explicit TextTable(std::vector<std::string> columns);

  /// Add a row. Missing cells render empty; extra cells are an error.
  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal rule before the next added row.
  void add_rule();

  void print(std::ostream& out) const;

 private:
  std::vector<std::string> columns_;
  // A row is either cells, or empty-with-rule flag.
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };
  std::vector<Row> rows_;
};

/// Format a double with `digits` decimal places.
std::string fixed(double v, int digits = 1);

/// Format `num/den` as a percentage string like "42.5%".
std::string percent(double num, double den, int digits = 1);

}  // namespace droplens::util
