// Minimal CSV/TSV writer used by the bench harnesses to dump figure series.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace droplens::util {

/// Streams rows of RFC-4180-style CSV. Fields containing the separator,
/// quotes, or newlines are quoted; everything else is written verbatim.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char sep = ',') : out_(out), sep_(sep) {}

  void header(const std::vector<std::string>& names) { row(names); }
  void row(const std::vector<std::string>& fields);

  /// Convenience: format arbitrary streamable values into one row.
  template <typename... Ts>
  void values(const Ts&... vs) {
    std::vector<std::string> fields;
    (fields.push_back(to_field(vs)), ...);
    row(fields);
  }

 private:
  template <typename T>
  static std::string to_field(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      return std::to_string(v);
    }
  }

  std::string escape(std::string_view field) const;

  std::ostream& out_;
  char sep_;
};

}  // namespace droplens::util
