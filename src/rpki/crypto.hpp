// Simulated signatures for the RPKI object model.
//
// SUBSTITUTION NOTE (see DESIGN.md): real RPKI objects are CMS-signed with
// RSA keys. This library models the *structure* of the PKI — who signed
// what, over which bytes, with which key — with a deterministic keyed hash
// instead of real asymmetric cryptography. Validation logic (signature
// checks, resource containment, expiry, revocation, manifest completeness)
// is exercised exactly as in a real validator; only the hardness of forging
// differs, which no analysis here depends on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace droplens::rpki {

/// A key pair. The public identifier is a one-way-ish function of the
/// secret so holders can prove possession by signing.
struct KeyPair {
  uint64_t secret = 0;
  uint64_t public_id = 0;

  static KeyPair derive(uint64_t secret);
};

using Signature = uint64_t;

/// Deterministic content hash (FNV-1a over the bytes).
uint64_t digest(std::string_view bytes);

/// Sign `bytes` with the secret key.
Signature sign(uint64_t secret, std::string_view bytes);

/// Verify a signature against the signer's public identifier.
bool verify(uint64_t public_id, std::string_view bytes, Signature sig);

}  // namespace droplens::rpki
