// Top-down RPKI validator (relying-party software, e.g. Routinator/rpki-
// client): walks the certificate tree from each configured TAL, checks
// signatures, validity windows, RFC 3779 resource containment, manifest
// completeness and CRL status, and emits the validated ROA payloads (VRPs)
// that feed route origin validation.
#pragma once

#include <string>
#include <vector>

#include "rpki/cert.hpp"

namespace droplens::rpki {

struct ValidationIssue {
  std::string object;   // "cert:example-isp", "roa:42", "mft:APNIC", ...
  std::string reason;   // "bad-signature", "overclaim", "expired", ...
};

struct ValidatorOutput {
  std::vector<Roa> vrps;             // validated ROA payloads
  std::vector<ValidationIssue> rejected;
  int publication_points_visited = 0;

  bool accepted(const Roa& roa) const;
};

/// Validate the repository from `tals` as of day `now`.
ValidatorOutput run_validator(const RpkiRepository& repository,
                              const std::vector<TrustAnchorLocator>& tals,
                              net::Date now);

}  // namespace droplens::rpki
