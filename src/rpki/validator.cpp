#include "rpki/validator.hpp"

#include <algorithm>

namespace droplens::rpki {

bool ValidatorOutput::accepted(const Roa& roa) const {
  return std::find(vrps.begin(), vrps.end(), roa) != vrps.end();
}

namespace {

class Walk {
 public:
  Walk(const RpkiRepository& repo, net::Date now, ValidatorOutput& out)
      : repo_(repo), now_(now), out_(out) {}

  void from_tal(const TrustAnchorLocator& tal) {
    const PublicationPoint* point = repo_.find(tal.repository);
    if (!point) {
      reject("tal:" + tal.name, "missing-publication-point");
      return;
    }
    const ResourceCert& root = point->ca_cert;
    if (root.subject_key != tal.public_key) {
      reject("cert:" + root.subject, "key-mismatch-with-tal");
      return;
    }
    if (!verify(tal.public_key, root.to_be_signed(), root.signature)) {
      reject("cert:" + root.subject, "bad-signature");
      return;
    }
    if (!root.valid_on(now_)) {
      reject("cert:" + root.subject, "expired");
      return;
    }
    visit(*point);
  }

 private:
  void reject(std::string object, std::string reason) {
    out_.rejected.push_back(
        ValidationIssue{std::move(object), std::move(reason)});
  }

  /// Validate one publication point whose CA certificate has already been
  /// accepted, then recurse into accepted children.
  void visit(const PublicationPoint& point) {
    ++out_.publication_points_visited;
    const ResourceCert& ca = point.ca_cert;

    // Manifest: signed by this CA, current.
    if (!verify(ca.subject_key, point.manifest.to_be_signed(),
                point.manifest.signature)) {
      reject("mft:" + ca.subject, "bad-signature");
      return;  // without a manifest nothing below is trustworthy
    }
    if (!point.manifest.validity.contains(now_)) {
      reject("mft:" + ca.subject, "stale-manifest");
      return;
    }
    // CRL: signed by this CA.
    if (!verify(ca.subject_key, point.crl.to_be_signed(),
                point.crl.signature)) {
      reject("crl:" + ca.subject, "bad-signature");
      return;
    }
    auto on_manifest = [&](uint64_t d) {
      return std::find(point.manifest.object_digests.begin(),
                       point.manifest.object_digests.end(),
                       d) != point.manifest.object_digests.end();
    };

    // ROAs.
    for (const SignedRoa& roa : point.roas) {
      std::string label = "roa:" + std::to_string(roa.serial) + "@" +
                          ca.subject;
      if (!on_manifest(digest(roa.to_be_signed()))) {
        reject(label, "not-in-manifest");
        continue;
      }
      if (point.crl.revoked(roa.serial)) {
        reject(label, "revoked");
        continue;
      }
      const ResourceCert& ee = roa.ee_cert;
      if (ee.issuer_key != ca.subject_key ||
          !verify(ca.subject_key, ee.to_be_signed(), ee.signature)) {
        reject(label, "bad-ee-signature");
        continue;
      }
      if (!ee.valid_on(now_)) {
        reject(label, "expired");
        continue;
      }
      if (!net::IntervalSet::set_difference(ee.resources, ca.resources)
               .empty()) {
        reject(label, "overclaim");
        continue;
      }
      if (!ee.resources.covers(roa.payload.prefix)) {
        reject(label, "payload-outside-ee-resources");
        continue;
      }
      if (!verify(ee.subject_key, roa.to_be_signed(), roa.signature)) {
        reject(label, "bad-signature");
        continue;
      }
      out_.vrps.push_back(roa.payload);
    }

    // Child CAs.
    for (const ResourceCert& child : point.child_certs) {
      std::string label = "cert:" + child.subject;
      if (!on_manifest(digest(child.to_be_signed()))) {
        reject(label, "not-in-manifest");
        continue;
      }
      if (point.crl.revoked(child.serial)) {
        reject(label, "revoked");
        continue;
      }
      if (child.issuer_key != ca.subject_key ||
          !verify(ca.subject_key, child.to_be_signed(), child.signature)) {
        reject(label, "bad-signature");
        continue;
      }
      if (!child.valid_on(now_)) {
        reject(label, "expired");
        continue;
      }
      if (!net::IntervalSet::set_difference(child.resources, ca.resources)
               .empty()) {
        reject(label, "overclaim");
        continue;
      }
      const PublicationPoint* child_point = repo_.find(child.subject);
      if (!child_point) {
        reject(label, "missing-publication-point");
        continue;
      }
      if (child_point->ca_cert.subject_key != child.subject_key) {
        reject(label, "key-mismatch-at-publication-point");
        continue;
      }
      visit(*child_point);
    }
  }

  const RpkiRepository& repo_;
  net::Date now_;
  ValidatorOutput& out_;
};

}  // namespace

ValidatorOutput run_validator(const RpkiRepository& repository,
                              const std::vector<TrustAnchorLocator>& tals,
                              net::Date now) {
  ValidatorOutput out;
  Walk walk(repository, now, out);
  for (const TrustAnchorLocator& tal : tals) walk.from_tal(tal);
  return out;
}

}  // namespace droplens::rpki
