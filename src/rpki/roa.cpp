#include "rpki/roa.hpp"

#include "util/error.hpp"

namespace droplens::rpki {

Roa::Roa(net::Prefix prefix_in, net::Asn asn_in, Tal tal_in, int max_length_in)
    : prefix(prefix_in),
      max_length(max_length_in == 0 ? prefix_in.length() : max_length_in),
      asn(asn_in),
      tal(tal_in) {
  if (max_length < prefix.length() || max_length > 32) {
    throw InvariantError("ROA maxLength out of range for " +
                         prefix.to_string());
  }
}

std::string Roa::to_string() const {
  std::string out = prefix.to_string();
  if (max_length != prefix.length()) {
    out += "-" + std::to_string(max_length);
  }
  out += " => " + asn.to_string() + " [" + std::string(rpki::to_string(tal)) +
         "]";
  return out;
}

}  // namespace droplens::rpki
