// Certificate-authority builder: constructs publication points the way an
// RIR or delegated CA would — issuing child certificates, signing ROAs,
// maintaining the manifest and CRL.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rpki/cert.hpp"

namespace droplens::rpki {

class CertificateAuthority {
 public:
  /// A self-signed trust anchor (an RIR root).
  static CertificateAuthority trust_anchor(std::string name, uint64_t secret,
                                           net::IntervalSet resources,
                                           net::DateRange validity);

  /// Issue a child CA certificate over a subset of this CA's resources.
  /// Throws InvariantError if `resources` are not contained in this CA's
  /// (use issue_overclaiming_child in tests to build bad trees).
  CertificateAuthority delegate(std::string name, uint64_t secret,
                                net::IntervalSet resources,
                                net::DateRange validity);

  /// Like delegate() but skips the containment check — for building the
  /// malformed trees a validator must reject.
  CertificateAuthority delegate_unchecked(std::string name, uint64_t secret,
                                          net::IntervalSet resources,
                                          net::DateRange validity);

  /// Sign a ROA (issues a one-time EE certificate). Returns its serial.
  uint64_t issue_roa(const Roa& payload, net::DateRange validity);

  /// Revoke a previously issued object by serial (lands on the CRL).
  void revoke(uint64_t serial);

  /// Assemble this CA's publication point: manifest over all current
  /// objects, CRL, certificates, ROAs.
  PublicationPoint publish(net::Date now) const;

  /// The TAL a validator would configure for this (root) CA.
  TrustAnchorLocator tal() const;

  const std::string& name() const { return name_; }
  uint64_t public_key() const { return key_.public_id; }
  const net::IntervalSet& resources() const { return cert_.resources; }

 private:
  CertificateAuthority() = default;

  std::string name_;
  KeyPair key_;
  ResourceCert cert_;        // this CA's own certificate
  std::vector<SignedRoa> roas_;
  std::vector<ResourceCert> child_certs_;
  std::vector<uint64_t> revoked_;
  uint64_t next_serial_ = 1;
  uint64_t manifest_number_ = 1;
};

}  // namespace droplens::rpki
