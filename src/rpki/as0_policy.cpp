#include "rpki/as0_policy.hpp"

#include <algorithm>

#include "net/cidr_cover.hpp"

namespace droplens::rpki {

std::optional<net::Date> as0_policy_date(rir::Rir rir) {
  switch (rir) {
    case rir::Rir::kApnic: return net::Date::from_ymd(2020, 9, 2);
    case rir::Rir::kLacnic: return net::Date::from_ymd(2021, 6, 23);
    default: return std::nullopt;
  }
}

size_t As0PolicyEngine::sync(rir::Rir rir, net::Date d) {
  std::optional<Tal> tal = as0_tal(rir);
  std::optional<net::Date> start = as0_policy_date(rir);
  if (!tal || !start || d < *start) return 0;

  TalSet only;
  only.add(*tal);

  std::vector<net::Prefix> want = net::cidr_cover(registry_.free_pool(rir, d));
  std::vector<Roa> have = archive_.live_roas(d, only);

  size_t ops = 0;
  for (const Roa& roa : have) {
    if (!std::binary_search(want.begin(), want.end(), roa.prefix)) {
      archive_.revoke(roa, d);
      ++ops;
    }
  }
  for (const net::Prefix& p : want) {
    bool present = std::any_of(have.begin(), have.end(), [&](const Roa& r) {
      return r.prefix == p;
    });
    if (!present) {
      archive_.publish(Roa(p, net::Asn::as0(), *tal), d);
      ++ops;
    }
  }
  return ops;
}

size_t As0PolicyEngine::sync_all(net::Date d) {
  size_t ops = 0;
  for (rir::Rir r : rir::kAllRirs) ops += sync(r, d);
  return ops;
}

}  // namespace droplens::rpki
